// Image-processing pipeline: the paper's motivating workload. A stream of
// frames runs through median -> sobel -> smoothing, each stage a hardware
// function that must be (re)configured into a PRR. The example shows
//  (a) the behavioural kernels actually transforming pixels, and
//  (b) the same pipeline executed on the simulated XD1 under FRTR vs PRTR,
//      with the PRTR timeline rendered as a Gantt chart.
#include <iostream>

#include "runtime/scenario.hpp"
#include "tasks/kernels.hpp"
#include "tasks/workload.hpp"

int main() {
  using namespace prtr;
  const auto registry = tasks::makePaperFunctions();

  // --- (a) Functional view: one frame through the three filters ----------
  util::Rng rng{2026};
  const tasks::Image frame =
      tasks::makeSaltPepperImage(512, 512, 120, 0.03, rng);
  const tasks::Image denoised = tasks::kernels::medianFilter3x3(frame);
  const tasks::Image edges = tasks::kernels::sobelFilter(denoised);
  const tasks::Image smoothed = tasks::kernels::smoothingFilter3x3(edges);
  std::cout << "Functional pass over one 512x512 frame:\n"
            << "  input   mean=" << frame.meanIntensity()
            << " var=" << frame.variance() << '\n'
            << "  median  mean=" << denoised.meanIntensity()
            << " var=" << denoised.variance() << "  (impulses removed)\n"
            << "  sobel   mean=" << edges.meanIntensity()
            << "  (edge map)\n"
            << "  smooth  var=" << smoothed.variance()
            << "  (softened edge map)\n\n";

  // --- (b) Timing view: 8 frames through the pipeline on the XD1 ---------
  // Each frame issues three calls (median, sobel, smoothing) of 512x512
  // bytes: a round-robin over the common hardware library.
  const std::size_t frames = 8;
  const auto workload = tasks::makeRoundRobinWorkload(
      registry, frames * registry.size(), frame.sizeBytes());

  sim::Timeline prtrTimeline;
  runtime::ScenarioOptions options;
  options.basis = model::ConfigTimeBasis::kMeasured;
  options.forceMiss = true;  // 3 filters round-robin over 2 PRRs: all misses
  options.hooks.timeline = &prtrTimeline;
  const runtime::ScenarioResult result =
      runtime::runScenario(registry, workload, options);

  std::cout << "Pipeline on the simulated XD1 (" << workload.callCount()
            << " calls of " << frame.sizeBytes().toString() << "):\n"
            << "  FRTR total " << result.frtr.total.toString()
            << "  (config overhead "
            << result.frtr.configOverheadFraction() * 100.0 << "%)\n"
            << "  PRTR total " << result.prtr.total.toString()
            << "  (config overhead "
            << result.prtr.configOverheadFraction() * 100.0 << "%)\n"
            << "  speedup " << result.speedup << "x, model predicts "
            << result.modelSpeedup << "x\n\n";
  std::cout << "PRTR timeline (partial configurations overlap execution in "
               "the other PRR):\n"
            << prtrTimeline.renderGantt(110);
  return 0;
}
