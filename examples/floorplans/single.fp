# Paper Figure 8, single-PRR layout on the XC2VP50 (fabric::makeSinglePrrLayout).
# One 34-CLB + 1-BRAM region, 834 frames; four bus-macro pairs on the left
# boundary (the PRR does not touch column 0, so the boundary is firstColumn).
device xc2vp50
prr PRR0 16 35
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
