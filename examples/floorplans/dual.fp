# Paper Figure 8, dual-PRR layout on the XC2VP50 (fabric::makeDualPrrLayout).
# Two 380-frame edge regions; macros pinned to the boundary column nearer
# the device centre.
device xc2vp50
prr PRR0 0 16
prr PRR1 67 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR0 l2r 8 16
busmacro PRR0 r2l 8 16
busmacro PRR1 l2r 8 67
busmacro PRR1 r2l 8 67
busmacro PRR1 l2r 8 67
busmacro PRR1 r2l 8 67
busmacro PRR1 l2r 8 67
busmacro PRR1 r2l 8 67
busmacro PRR1 l2r 8 67
busmacro PRR1 r2l 8 67
