# Hypothetical quad-PRR layout (fabric::makeQuadPrrLayout): four 13-CLB
# regions of 286 frames each, for the granularity ablations.
device xc2vp50
prr PRR0 2 13
prr PRR1 16 13
prr PRR2 30 13
prr PRR3 68 13
busmacro PRR0 l2r 8 2
busmacro PRR0 r2l 8 2
busmacro PRR0 l2r 8 2
busmacro PRR0 r2l 8 2
busmacro PRR0 l2r 8 2
busmacro PRR0 r2l 8 2
busmacro PRR0 l2r 8 2
busmacro PRR0 r2l 8 2
busmacro PRR1 l2r 8 16
busmacro PRR1 r2l 8 16
busmacro PRR1 l2r 8 16
busmacro PRR1 r2l 8 16
busmacro PRR1 l2r 8 16
busmacro PRR1 r2l 8 16
busmacro PRR1 l2r 8 16
busmacro PRR1 r2l 8 16
busmacro PRR2 l2r 8 30
busmacro PRR2 r2l 8 30
busmacro PRR2 l2r 8 30
busmacro PRR2 r2l 8 30
busmacro PRR2 l2r 8 30
busmacro PRR2 r2l 8 30
busmacro PRR2 l2r 8 30
busmacro PRR2 r2l 8 30
busmacro PRR3 l2r 8 68
busmacro PRR3 r2l 8 68
busmacro PRR3 l2r 8 68
busmacro PRR3 r2l 8 68
busmacro PRR3 l2r 8 68
busmacro PRR3 r2l 8 68
busmacro PRR3 l2r 8 68
busmacro PRR3 r2l 8 68
