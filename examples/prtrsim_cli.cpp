// prtrsim: command-line driver over the whole library — build a workload,
// pick a layout/basis/policy, run FRTR vs PRTR on the simulated XD1, and
// print the report with the model cross-check. The "adopt me" entry point
// for users who want numbers for their own parameters without writing C++.
//
// Usage:
//   prtrsim_cli [--layout single|dual|quad] [--basis estimated|measured]
//               [--calls N] [--bytes B] [--workload roundrobin|uniform|
//               markov|phased] [--locality P] [--registry paper|extended]
//               [--cache lru|lfu|fifo|random|belady] [--prefetch none|
//               queue|markov|association] [--force-miss 0|1]
//               [--control-us U] [--decision-us U] [--seed S] [--timeline]
//               [--trace FILE.json] [--metrics FILE.json]
//               [--profile FILE.json] [--threads N]
//               [--fault-rate P] [--fault-seed S] [--max-retries N]
//
// --fault-rate injects word flips at P per configuration word (plus ICAP
// aborts at P*100, capped at 2%) from the deterministic --fault-seed, and
// enables the recovery runtime with --max-retries attempts per ladder rung.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "analyze/checks_scenario.hpp"
#include "bench/options.hpp"
#include "exec/pool.hpp"
#include "obs/trace_export.hpp"
#include "prof/profiler.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"

namespace {

using namespace prtr;

/// Domain flags on top of the shared bench::Options vocabulary, shown by
/// `--help` below the common block.
constexpr const char* kDomainUsage =
    "  --layout single|dual|quad      XD1 floorplan (default dual)\n"
    "  --basis estimated|measured     config-time basis (default measured)\n"
    "  --calls N                      workload call count (default 100)\n"
    "  --bytes B                      data bytes per call (default 10000000)\n"
    "  --workload roundrobin|uniform|markov|phased\n"
    "  --locality P                   markov locality (default 0.7)\n"
    "  --registry paper|extended      function registry (default paper)\n"
    "  --cache lru|lfu|fifo|random|belady\n"
    "  --prefetch none|queue|markov|association\n"
    "  --force-miss 0|1               defeat the configuration cache\n"
    "  --control-us U                 control overhead per call (default 10)\n"
    "  --decision-us U                scheduler decision latency (default 0)\n"
    "  --timeline                     print the PRTR Gantt timeline\n"
    "  --metrics FILE.json            write the metrics snapshot\n"
    "  --fault-rate P                 chaos mode: word-flip rate per word\n"
    "  --fault-seed S                 chaos mode fault RNG seed\n"
    "  --max-retries N                recovery retries per ladder rung\n";

/// Parses the prtrsim domain flags from what bench::Options left behind.
std::map<std::string, std::string> parseArgs(
    const std::vector<std::string>& rest) {
  std::map<std::string, std::string> args;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    std::string key = rest[i];
    if (key.rfind("--", 0) != 0) {
      throw util::DomainError{"prtrsim: options start with --, got " + key};
    }
    key = key.substr(2);
    if (key == "timeline") {
      args[key] = "1";
      continue;
    }
    util::require(i + 1 < rest.size(), "prtrsim: missing value for --" + key);
    args[key] = rest[++i];
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // The shared vocabulary (--trace/--profile/--threads/--seed/--help)
    // comes from bench::Options; everything it leaves in rest() is a
    // prtrsim domain flag.
    const auto common = bench::Options::parse("prtrsim", argc, argv);
    if (common.helpRequestedAndHandled(kDomainUsage)) return 0;
    const auto args = parseArgs(common.rest());

    // Sizes the process-wide exec pool; a single scenario run is serial,
    // but library users driving sweeps through the same process inherit it.
    exec::Pool::setGlobalThreads(common.threads());

    const auto registry = get(args, "registry", "paper") == "extended"
                              ? tasks::makeExtendedFunctions()
                              : tasks::makePaperFunctions();

    const auto calls = static_cast<std::size_t>(
        std::stoull(get(args, "calls", "100")));
    const util::Bytes bytes{std::stoull(get(args, "bytes", "10000000"))};
    const double locality = std::stod(get(args, "locality", "0.7"));
    util::Rng rng{common.seedOr(1)};

    tasks::Workload workload;
    const std::string kind = get(args, "workload", "roundrobin");
    if (kind == "roundrobin") {
      workload = tasks::makeRoundRobinWorkload(registry, calls, bytes);
    } else if (kind == "uniform") {
      workload = tasks::makeUniformWorkload(registry, calls, bytes, rng);
    } else if (kind == "markov") {
      workload = tasks::makeMarkovWorkload(registry, calls, bytes, locality, rng);
    } else if (kind == "phased") {
      workload = tasks::makePhasedWorkload(
          registry, calls, bytes, std::max<std::size_t>(calls / 10, 1),
          std::min<std::size_t>(3, registry.size()), rng);
    } else {
      throw util::DomainError{"prtrsim: unknown workload '" + kind + "'"};
    }

    runtime::ScenarioOptions options;
    const std::string layout = get(args, "layout", "dual");
    options.layout = layout == "single" ? xd1::Layout::kSinglePrr
                     : layout == "quad" ? xd1::Layout::kQuadPrr
                                        : xd1::Layout::kDualPrr;
    options.basis = get(args, "basis", "measured") == "estimated"
                        ? model::ConfigTimeBasis::kEstimated
                        : model::ConfigTimeBasis::kMeasured;
    // Lint the raw names exactly as prtr-lint would (MD011/MD012) before
    // converting to the typed options.
    const std::string cacheName = get(args, "cache", "lru");
    const std::string prefetch = get(args, "prefetch", "queue");
    const std::string prefetcherName =
        (prefetch == "queue" || prefetch == "none") ? "none" : prefetch;
    analyze::DiagnosticSink nameLint;
    analyze::checkScenarioNames(cacheName, prefetcherName, nameLint);
    if (nameLint.hasErrors()) {
      std::cerr << nameLint.toText();
      return 1;
    }
    options.cachePolicy = *runtime::cachePolicyFromString(cacheName);
    options.prepare = prefetch == "none" ? runtime::PrepareSource::kNone
                      : prefetch == "queue"
                          ? runtime::PrepareSource::kQueue
                          : runtime::PrepareSource::kPrefetcher;
    if (options.prepare == runtime::PrepareSource::kPrefetcher) {
      options.prefetcherKind = *runtime::prefetcherKindFromString(prefetcherName);
    }
    options.forceMiss = get(args, "force-miss", "0") == "1";
    options.tControl = util::Time::microseconds(
        std::stoll(get(args, "control-us", "10")));
    options.decisionLatency = util::Time::microseconds(
        std::stoll(get(args, "decision-us", "0")));

    // Chaos mode: deterministic fault injection + the recovery runtime.
    // runScenario's strict lint (FT rules) vets the combination.
    const double faultRate = std::stod(get(args, "fault-rate", "0"));
    if (faultRate > 0.0 || args.count("max-retries") ||
        args.count("fault-seed")) {
      options.faults.seed = std::stoull(get(args, "fault-seed", "24091"));
      options.faults.wordFlipRate = faultRate;
      options.faults.icapAbortRate = std::min(faultRate * 100.0, 0.02);
      options.recovery.enabled = true;
      options.recovery.maxRetries = static_cast<std::uint32_t>(
          std::stoul(get(args, "max-retries", "3")));
    }

    sim::Timeline timeline;
    if (args.count("timeline")) options.hooks.timeline = &timeline;
    obs::ChromeTrace trace;
    const std::string& tracePath = common.tracePath();
    if (!tracePath.empty()) options.hooks.trace = &trace;
    prof::Profiler profiler;
    const std::string& profilePath = common.profilePath();
    if (!profilePath.empty()) options.hooks.profiler = &profiler;
    const std::string metricsPath = get(args, "metrics", "");

    std::cout << "prtrsim: " << workload.callCount() << " calls x "
              << bytes.toString() << " (" << kind << "), layout " << layout
              << ", basis " << toString(options.basis) << ", cache "
              << cacheName << ", prefetch " << prefetch
              << (options.forceMiss ? ", force-miss" : "") << "\n\n";

    const runtime::ScenarioResult result =
        runtime::runScenario(registry, workload, options);
    std::cout << result.toString();
    if (options.recovery.enabled) {
      std::cout << "\nchaos (seed " << options.faults.seed << "):\n";
      for (const auto& [name, value] : result.metrics.counters) {
        if (name.find("fault.injected") != std::string::npos ||
            name.find("recovery.") != std::string::npos) {
          std::cout << "  " << name << " = " << value << "\n";
        }
      }
    }
    if (args.count("timeline")) {
      std::cout << "\nPRTR timeline:\n" << timeline.renderGantt(110);
    }
    if (!tracePath.empty()) {
      trace.writeFile(tracePath);
      std::cout << "\ntrace written to " << tracePath
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!metricsPath.empty()) {
      std::ofstream out{metricsPath};
      util::require(out.good(),
                    "prtrsim: cannot open " + metricsPath + " for writing");
      out << result.metrics.toJson() << '\n';
      std::cout << "metrics snapshot written to " << metricsPath << '\n';
    }
    if (!profilePath.empty()) {
      std::ofstream out{profilePath};
      util::require(out.good(),
                    "prtrsim: cannot open " + profilePath + " for writing");
      out << profiler.snapshot().toJson() << '\n';
      std::cout << "host profile written to " << profilePath << '\n';
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "prtrsim: " << error.what() << '\n';
    return 1;
  }
}
