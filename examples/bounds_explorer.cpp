// Bounds explorer: an interactive-style CLI over the bound analysis.
//
//   ./examples/bounds_explorer [xTask] [xPrtr] [hitRatio] [xControl] [xDecision]
//
// Prints the regime classification, the asymptotic speedup, the universal
// bound, the peak analysis, and the hit ratio required for a set of target
// speedups -- everything a system designer needs to decide whether PRTR
// pays off on their platform.
#include <cstdlib>
#include <iostream>

#include "model/bounds.hpp"
#include "model/insights.hpp"
#include "model/model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;

  model::Params p;
  p.nCalls = 10'000;
  p.xTask = argc > 1 ? std::atof(argv[1]) : 0.1;
  p.xPrtr = argc > 2 ? std::atof(argv[2]) : 0.012;
  p.hitRatio = argc > 3 ? std::atof(argv[3]) : 0.0;
  p.xControl = argc > 4 ? std::atof(argv[4]) : 0.0;
  p.xDecision = argc > 5 ? std::atof(argv[5]) : 0.0;

  std::cout << "Parameters: X_task=" << p.xTask << " X_PRTR=" << p.xPrtr
            << " H=" << p.hitRatio << " X_control=" << p.xControl
            << " X_decision=" << p.xDecision << " n=" << p.nCalls << "\n\n";
  std::cout << model::describeBounds(p) << '\n';
  std::cout << "Finite-run speedup S(n=" << p.nCalls
            << ") = " << model::speedup(p) << "\n";
  if (const auto breakEven = model::breakEvenCalls(p)) {
    std::cout << "Break-even: PRTR beats FRTR from call " << *breakEven
              << " onward (the initial full configuration amortizes).\n";
  } else {
    std::cout << "Break-even: never -- the per-call PRTR cost exceeds FRTR's "
                 "at these overheads.\n";
  }

  model::Perturbation sigma;
  sigma.xTask = 0.1;
  sigma.xPrtr = 0.1;
  const auto sens = model::sensitivity(p, sigma, 10'000, 1);
  std::cout << "Under 10% parameter jitter: S_inf = " << sens.p50 << " [p05 "
            << sens.p05 << ", p95 " << sens.p95 << "]\n\n";

  std::cout << "Hit ratio required for target speedups at this (X_task, "
               "X_PRTR):\n";
  util::Table targets{{"target S", "required H"}};
  for (const double target : {1.5, 2.0, 5.0, 10.0, 25.0, 50.0}) {
    const double h = model::requiredHitRatio(p.xTask, p.xPrtr, target);
    targets.row()
        .cell(util::formatDouble(target, 3))
        .cell(h > 1.0 ? "unattainable" : util::formatDouble(h, 4));
  }
  targets.print(std::cout);

  std::cout << "\nSpeedup across the task-size axis at this configuration:\n";
  util::Table sweep{{"X_task", "S_inf", "regime"}};
  for (const double xTask : {0.001, 0.01, p.xPrtr, 0.1, 0.5, 1.0, 5.0, 50.0}) {
    model::Params q = p;
    q.xTask = xTask;
    sweep.row()
        .cell(util::formatDouble(xTask, 4))
        .cell(util::formatDouble(model::asymptoticSpeedup(q), 4))
        .cell(toString(model::classifyRegime(xTask, p.xPrtr)));
  }
  sweep.print(std::cout);
  return 0;
}
