// HW/SW codesign example: the software tasks the paper deferred ("we
// preserve this inclusion for future considerations", section 6). A mixed
// workload of small control-ish tasks and large data-parallel tasks runs
// under the four partitioning policies; the adaptive scheduler splits it.
#include <iostream>

#include "runtime/hwsw.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main() {
  using namespace prtr;
  const auto registry = tasks::makePaperFunctions();

  // A realistic mix: 70% thumbnail-sized frames, 30% full frames.
  util::Rng rng{7};
  tasks::Workload mixed{"mixed", {}};
  for (int i = 0; i < 60; ++i) {
    const util::Bytes bytes =
        rng.chance(0.7) ? util::Bytes{64 * 64} : util::Bytes{40'000'000};
    mixed.calls.push_back(tasks::TaskCall{rng.below(registry.size()), bytes});
  }
  std::cout << "Workload: " << mixed.callCount() << " calls, "
            << mixed.totalBytes().toString() << " total payload\n\n";

  util::Table table{{"policy", "total", "hw calls", "sw calls", "configs",
                     "sw time"}};
  for (const auto policy :
       {runtime::Partitioning::kAlwaysHardware,
        runtime::Partitioning::kAlwaysSoftware,
        runtime::Partitioning::kStaticThreshold,
        runtime::Partitioning::kAdaptive}) {
    sim::Simulator sim;
    xd1::Node node{sim};
    bitstream::Library library{
        node.floorplan(),
        registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
    runtime::LruCache cache{2};
    runtime::HwSwOptions options;
    options.policy = policy;
    runtime::HwSwExecutor executor{node, registry, library, cache, options};
    const runtime::HwSwReport report = executor.run(mixed);
    table.row()
        .cell(toString(policy))
        .cell(report.base.total.toString())
        .cell(report.hardwareCalls)
        .cell(report.softwareCalls)
        .cell(report.base.configurations)
        .cell(report.softwareTime.toString());
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive policy keeps tiny frames on the Opteron and "
               "ships the big ones to the fabric, beating both pure "
               "strategies.\n";
  return 0;
}
