// Hardware virtualization (paper sections 2.1 and 5): eight hardware
// functions -- more than any layout can hold at once -- multiplexed onto
// the FPGA by treating the PRRs as a configuration cache with pre-fetching.
// This is the paper's "far more beneficial for versatility purposes,
// multi-tasking applications, and hardware virtualization" scenario,
// implemented: the application sees a virtual FPGA with 8 resident cores.
#include <iostream>

#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main() {
  using namespace prtr;
  const auto registry = tasks::makeExtendedFunctions();  // 8 cores
  std::cout << "Common hardware library (" << registry.size() << " cores): ";
  for (const auto& fn : registry.all()) std::cout << fn.name << ' ';
  std::cout << "\n\n";

  // A multitasking mix: two "applications" interleaved, each with strong
  // phase locality (paper section 2.1: group functions requested together).
  util::Rng rng{424242};
  const auto workload = tasks::makePhasedWorkload(
      registry, 400, util::Bytes{4'000'000}, /*phaseLength=*/40,
      /*workingSet=*/3, rng);
  std::cout << "Workload: " << workload.callCount() << " calls, "
            << workload.distinctFunctions()
            << " distinct functions, phased locality\n\n";

  util::Table table{{"layout", "prepare", "cache", "H", "configs",
                     "total", "vs FRTR"}};
  struct Config {
    xd1::Layout layout;
    const char* prepareName;
    runtime::PrepareSource prepare;
    runtime::CachePolicy cache;
  };
  const Config configs[] = {
      {xd1::Layout::kDualPrr, "none", runtime::PrepareSource::kNone,
       runtime::CachePolicy::kLru},
      {xd1::Layout::kDualPrr, "markov", runtime::PrepareSource::kPrefetcher,
       runtime::CachePolicy::kLru},
      {xd1::Layout::kQuadPrr, "none", runtime::PrepareSource::kNone,
       runtime::CachePolicy::kLru},
      {xd1::Layout::kQuadPrr, "markov", runtime::PrepareSource::kPrefetcher,
       runtime::CachePolicy::kLru},
      {xd1::Layout::kQuadPrr, "markov", runtime::PrepareSource::kPrefetcher,
       runtime::CachePolicy::kBelady},
  };

  double frtrTotal = 0.0;
  {
    runtime::ScenarioOptions so;
    so.forceMiss = true;
    const auto result = runtime::runScenario(registry, workload, so);
    frtrTotal = result.frtr.total.toSeconds();
    std::cout << "FRTR baseline: " << result.frtr.total.toString()
              << " (every call reloads the whole device)\n\n";
  }

  for (const Config& c : configs) {
    runtime::ScenarioOptions so;
    so.layout = c.layout;
    so.forceMiss = false;
    so.prepare = c.prepare;
    so.sides = runtime::ScenarioSides::kPrtrOnly;
    so.prefetcherKind = c.prepare == runtime::PrepareSource::kPrefetcher
                            ? runtime::PrefetcherKind::kMarkov
                            : runtime::PrefetcherKind::kNone;
    so.cachePolicy = c.cache;
    const auto report = runtime::runScenario(registry, workload, so).prtr;
    table.row()
        .cell(toString(c.layout))
        .cell(c.prepareName)
        .cell(runtime::toString(c.cache))
        .cell(util::formatDouble(report.hitRatio(), 3))
        .cell(report.configurations)
        .cell(report.total.toString())
        .cell(util::formatDouble(frtrTotal / report.total.toSeconds(), 4) + "x");
  }
  table.print(std::cout);
  std::cout << "\nThe PRRs virtualize the fabric: 8 cores share 2-4 regions "
               "transparently, and locality-aware pre-fetching recovers most "
               "of the reconfiguration cost.\n";
  return 0;
}
