// Quickstart: the five-minute tour of the library.
//
//  1. Evaluate the paper's analytical model (equations 6/7) directly.
//  2. Spin up a simulated Cray XD1 and read its Table-2 calibration.
//  3. Run one workload under FRTR and PRTR and compare with the model.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "model/bounds.hpp"
#include "model/calibration.hpp"
#include "model/model.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

int main() {
  using namespace prtr;

  // --- 1. Pure model -----------------------------------------------------
  model::Params p;
  p.nCalls = 1000;
  p.xTask = 0.1;    // task takes 10% of a full configuration
  p.xPrtr = 0.012;  // measured dual-PRR partial configuration (Table 2)
  p.hitRatio = 0.0; // no pre-fetching (the paper's experimental setting)
  std::cout << "Analytical model (eq. 6/7):\n"
            << "  S(n=1000) = " << model::speedup(p)
            << ", S_inf = " << model::asymptoticSpeedup(p) << "\n\n"
            << model::describeBounds(p) << '\n';

  // --- 2. Simulated platform ---------------------------------------------
  sim::Simulator sim;
  xd1::Node node{sim};  // Cray XD1 blade, dual-PRR layout
  const model::ConfigTimes times = model::configTimes(node);
  std::cout << "Simulated Cray XD1 (" << node.device().name() << ", "
            << toString(node.config().layout) << "):\n"
            << "  full bitstream  = " << times.fullBytes.toString()
            << "  (config: est " << times.fullEstimated.toString() << ", meas "
            << times.fullMeasured.toString() << ")\n"
            << "  PRR bitstream   = " << times.partialBytes.toString()
            << "  (config: est " << times.partialEstimated.toString()
            << ", meas " << times.partialMeasured.toString() << ")\n"
            << "  X_PRTR measured = "
            << times.xPrtr(model::ConfigTimeBasis::kMeasured) << "\n\n";

  // --- 3. Measured vs model ----------------------------------------------
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 100, util::Bytes{20'000'000});
  runtime::ScenarioOptions options;
  options.forceMiss = true;  // H = 0, as in the paper's experiments
  const runtime::ScenarioResult result =
      runtime::runScenario(registry, workload, options);
  std::cout << "One workload, both executors:\n" << result.toString();
  return 0;
}
