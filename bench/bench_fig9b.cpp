// Reproduces Figure 9(b): PRTR speedup vs task time requirement using the
// MEASURED configuration times (T_FRTR = 1678.04 ms via the vendor API,
// dual-PRR T_PRTR = 19.77 ms via the ICAP controller, X_PRTR = 0.012).
// Peak expectation: "can reach up to 87x higher than the performance of
// FRTR" (paper section 5) -- approached asymptotically; finite runs and
// the dual-channel input constraint land slightly below.
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "prof/profiler.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport report{"fig9b", argc, argv};
  analysis::Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kMeasured;
  opts.points = 21;
  opts.xTaskLo = 1e-3;
  opts.xTaskHi = 50.0;
  opts.nCalls = 400;
  opts.threads = report.threads();
  opts.artifacts = &exec::ArtifactCache::global();

  prof::Profiler profiler;
  obs::ChromeTrace trace;
  if (report.profileRequested()) {
    opts.profiler = &profiler;
    exec::Pool::global().setProfiler(&profiler);
    exec::ArtifactCache::global().setProfiler(&profiler);
  }
  if (report.traceRequested()) opts.trace = &trace;

  std::cout << "=== Figure 9(b): speedup vs X_task, measured configuration "
               "times (dual PRR, H=0) ===\n\n";
  const auto points = analysis::makeFig9(opts);
  std::cout << analysis::fig9Plot(points, "Fig 9(b), measured basis") << '\n';
  analysis::fig9Table(points).print(std::cout);

  double bestSim = 0.0;
  double bestInf = 0.0;
  for (const auto& p : points) {
    bestSim = std::max(bestSim, p.simSpeedup);
    bestInf = std::max(bestInf, p.modelAsymptote);
  }
  std::cout << "\nPeak simulated speedup (n=400 calls): " << bestSim
            << "; eq.7 asymptotic peak on this grid: " << bestInf
            << " (paper: \"up to 87x\")\n";
  report.table("fig9b", analysis::fig9Table(points));
  report.scalar("peak_sim_speedup", bestSim);
  report.scalar("peak_asymptote", bestInf);
  report.metrics(exec::Pool::global().metricsSnapshot());
  report.metrics(exec::ArtifactCache::global().metricsSnapshot());

  if (report.traceRequested()) trace.writeFile(report.tracePath());
  if (report.profileRequested()) {
    exec::Pool::global().setProfiler(nullptr);
    exec::ArtifactCache::global().setProfiler(nullptr);
    std::ofstream out{report.profilePath()};
    util::require(out.good(), "bench_fig9b: cannot open " +
                                  report.profilePath() + " for writing");
    out << profiler.snapshot().toJson() << '\n';
  }
  return report.finish();
}
