// Ablation B: the paper's future work, implemented -- configuration
// pre-fetching and caching. Sweeps workload locality against prefetcher /
// cache-policy combinations, measures the achieved hit ratio H, and checks
// that plugging the measured H into equation (6) predicts the measured
// speedup (validating the model's H axis, which the authors could only
// exercise at H = 0).
#include <iostream>

#include "model/model.hpp"
#include "obs/bench_io.hpp"
#include "runtime/scenario.hpp"
#include "tasks/locality.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"prefetch", argc, argv};
  const auto registry = tasks::makeExtendedFunctions();  // 8 modules, 2 PRRs

  std::cout << "=== Ablation B1: prefetcher x workload locality (8 modules, "
               "2 PRRs, LRU, measured basis) ===\n\n";
  util::Table table{{"workload", "prepare", "H (measured)", "configs",
                     "S (simulated)", "S (model @ measured H)"}};
  for (const double bias : {0.0, 0.5, 0.9}) {
    for (const char* prepare : {"none", "queue", "markov"}) {
      util::Rng rng{911};
      const auto workload = tasks::makeMarkovWorkload(
          registry, 250, util::Bytes{20'000'000}, bias, rng);
      runtime::ScenarioOptions so;
      so.forceMiss = false;
      so.cachePolicy = runtime::CachePolicy::kLru;
      if (std::string{prepare} == "none") {
        so.prepare = runtime::PrepareSource::kNone;
      } else if (std::string{prepare} == "queue") {
        so.prepare = runtime::PrepareSource::kQueue;
      } else {
        so.prepare = runtime::PrepareSource::kPrefetcher;
        so.prefetcherKind = runtime::PrefetcherKind::kMarkov;
      }
      const auto result = runtime::runScenario(registry, workload, so);
      table.row()
          .cell("markov(p=" + util::formatDouble(bias, 2) + ")")
          .cell(prepare)
          .cell(util::formatDouble(result.prtr.hitRatio(), 3))
          .cell(result.prtr.configurations)
          .cell(util::formatDouble(result.speedup, 4))
          .cell(util::formatDouble(result.modelSpeedup, 4));
    }
  }
  table.print(std::cout);

  std::cout << "\n=== Ablation B2: cache policy comparison (phased workload, "
               "quad-PRR layout, PRTR only) ===\n\n";
  util::Table policies{{"policy", "H (measured)", "configs", "total"}};
  // Working set of 6 over 4 PRRs: eviction choice now matters, so the
  // policies separate (the dual-PRR layout always has exactly one victim
  // candidate while a task executes).
  util::Rng rng{77};
  // Tasks (~1.1 ms) shorter than a quad-PRR partial config (~15 ms), so
  // misses cannot hide behind execution and the totals separate too.
  const auto phased = tasks::makePhasedWorkload(
      registry, 300, util::Bytes{200'000}, 30, 6, rng);
  for (const runtime::CachePolicy policy : runtime::allCachePolicies()) {
    runtime::ScenarioOptions so;
    so.sides = runtime::ScenarioSides::kPrtrOnly;
    so.layout = xd1::Layout::kQuadPrr;
    so.forceMiss = false;
    so.prepare = runtime::PrepareSource::kQueue;
    so.cachePolicy = policy;
    const auto report = runtime::runScenario(registry, phased, so).prtr;
    policies.row()
        .cell(runtime::toString(policy))
        .cell(util::formatDouble(report.hitRatio(), 3))
        .cell(report.configurations)
        .cell(report.total.toString());
  }
  policies.print(std::cout);
  std::cout << "\nBelady (offline-optimal) bounds every online policy; the "
               "measured H values map directly onto the model's H axis "
               "(Figure 5).\n";

  // Mattson stack-distance analysis: the LRU hit-ratio curve for every
  // possible PRR count in one pass over the trace -- "how many PRRs do I
  // need for H >= target?" answered analytically.
  std::cout << "\n=== Ablation B3: Mattson LRU hit-ratio curve for the "
               "phased workload ===\n\n";
  util::Table mattson{{"PRR slots", "predicted LRU H"}};
  const auto curve =
      tasks::lruHitRatioCurve(phased, registry.size());
  for (std::size_t k = 0; k < curve.size(); ++k) {
    mattson.row()
        .cell(std::uint64_t{k + 1})
        .cell(util::formatDouble(curve[k], 4));
  }
  mattson.print(std::cout);
  const std::size_t needed = tasks::slotsForHitRatio(phased, 0.8);
  std::cout << "Slots needed for H >= 0.8: "
            << (needed ? std::to_string(needed) : std::string{"unattainable"})
            << " (exactness vs the simulated LRU cache is property-tested).\n";
  breport.table("prefetcher_locality", table);
  breport.table("cache_policies", policies);
  breport.table("mattson_curve", mattson);
  return breport.finish();
}
