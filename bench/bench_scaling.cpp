// Extension bench: chassis-level scaling. The paper's platform is a
// parallel reconfigurable supercomputer; this bench runs the same workload
// on 1..6 blades and shows (a) near-linear scaling once the per-blade
// initial full configuration amortizes and (b) the Table-2 "measured" full
// configuration acting as the Amdahl serial term for short workloads.
#include <iostream>

#include "hprc/chassis.hpp"
#include "obs/bench_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"scaling", argc, argv};
  const auto registry = tasks::makePaperFunctions();

  for (const auto basis : {model::ConfigTimeBasis::kEstimated,
                           model::ConfigTimeBasis::kMeasured}) {
    std::cout << "=== Chassis scaling, " << toString(basis)
              << " configuration times (60 calls x 10 MB, PRTR, H=0) ===\n\n";
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 60, util::Bytes{10'000'000});
    util::Table table{{"blades", "makespan", "speedup", "efficiency",
                       "balance", "reconfigs"}};
    double base = 0.0;
    for (std::size_t blades = 1; blades <= 6; ++blades) {
      hprc::ChassisOptions options;
      options.blades = blades;
      options.threads = breport.threads();
      options.scenario.forceMiss = true;
      options.scenario.basis = basis;
      const hprc::ChassisReport report =
          hprc::runChassis(registry, workload, options);
      if (blades == 6) breport.metrics(report.metrics);
      if (blades == 1) base = report.makespan.toSeconds();
      const double speedup = base / report.makespan.toSeconds();
      table.row()
          .cell(std::uint64_t{blades})
          .cell(report.makespan.toString())
          .cell(util::formatDouble(speedup, 4))
          .cell(util::formatDouble(speedup / static_cast<double>(blades), 4))
          .cell(util::formatDouble(report.balance(), 4))
          .cell(report.configurations);
    }
    table.print(std::cout);
    std::cout << '\n';
    breport.table(std::string{"scaling_"} + toString(basis), table);
  }
  std::cout << "On the measured basis every blade pays the 1.678 s vendor-API "
               "full configuration up front, capping short-workload scaling "
               "-- a chassis-level consequence of Table 2.\n";
  return breport.finish();
}
