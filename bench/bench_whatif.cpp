// Extension bench: what-if on newer silicon. The paper's conclusions hinge
// on the Virtex-II-Pro's slow 8-bit/66 MHz configuration interfaces; this
// bench recomputes the Table-2-style quantities and the Figure-5 peaks for
// the Virtex-4 (32-bit ICAP at 100 MHz) and for a hypothetical ideal ICAP
// controller with zero FSM overhead, quantifying how much of the PRTR
// ceiling is technology rather than model.
#include <iostream>

#include "config/icap_controller.hpp"
#include "config/port.hpp"
#include "fabric/device.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"whatif", argc, argv};

  struct Scenario {
    const char* name;
    fabric::Device device;
    config::Port icap;
    std::uint32_t fsmOverheadCyclesPerWord;
  };
  Scenario scenarios[] = {
      {"XC2VP50 + paper's controller", fabric::makeXc2vp50(),
       config::makeIcapV2(), 9},
      {"XC2VP50 + ideal controller", fabric::makeXc2vp50(),
       config::makeIcapV2(), 0},
      {"XC4VLX60 + V4 ICAP (32b/100MHz)", fabric::makeXc4vlx60(),
       config::makeIcapV4(), 2},
  };

  std::cout << "=== What-if: configuration technology vs the PRTR ceiling "
               "===\n\n";
  util::Table table{{"platform", "full bytes", "ICAP eff.", "T_PRTR (1/6 dev)",
                     "X_PRTR", "H=0 peak S_inf"}};
  for (auto& s : scenarios) {
    // A PRR sized at ~1/6 of the device, mirroring the dual-PRR ratio.
    const std::uint32_t frames = s.device.geometry().totalFrames() / 6;
    const util::Bytes partial =
        s.device.geometry().partialBitstreamBytes(frames);

    sim::Simulator sim;
    config::ConfigMemory memory{s.device};
    sim::SimplexLink link{sim, "in", util::DataRate::megabytesPerSecond(1400)};
    config::IcapTiming timing;
    timing.fsmOverheadCyclesPerWord = s.fsmOverheadCyclesPerWord;
    config::IcapController icap{sim, memory, link, s.icap, timing};

    const util::Time tPrtr = icap.drainTime(partial);
    // Full configuration through the external parallel port at its raw
    // rate (the best case a fixed vendor API could reach).
    const util::Time tFrtr =
        config::makeSelectMap().transferTime(s.device.geometry().fullBitstreamBytes());
    const double xPrtr = std::min(1.0, tPrtr.toSeconds() / tFrtr.toSeconds());
    const model::Peak peak = model::peakSpeedup(0.0, xPrtr);

    table.row()
        .cell(s.name)
        .cell(s.device.geometry().fullBitstreamBytes().toString())
        .cell(icap.effectiveThroughput().toString())
        .cell(tPrtr.toString())
        .cell(util::formatDouble(xPrtr, 4))
        .cell(util::formatDouble(peak.speedup, 4));
  }
  table.print(std::cout);
  std::cout << "\nFaster internal ports shrink X_PRTR and raise the H=0 "
               "ceiling as (1+X)/X -- the paper's 'future usage in HPRC' "
               "argument, quantified.\n";

  std::cout << "\n=== Device catalog: configuration cost across three FPGA "
               "generations ===\n\n";
  util::Table catalog{{"device", "frames", "full bytes", "usable LUTs",
                       "full config @66MB/s", "frame time"}};
  for (const std::string& name : fabric::deviceCatalog()) {
    const fabric::Device dev = fabric::makeDevice(name);
    const util::Bytes full = dev.geometry().fullBitstreamBytes();
    catalog.row()
        .cell(name)
        .cell(std::uint64_t{dev.geometry().totalFrames()})
        .cell(full.toString())
        .cell(std::uint64_t{dev.usableResources().luts})
        .cell(config::makeSelectMap().transferTime(full).toString())
        .cell(config::makeSelectMap()
                  .transferTime(util::Bytes{dev.geometry().encoding().frameBytes})
                  .toString());
  }
  catalog.print(std::cout);
  std::cout << "\nBigger parts raise T_FRTR (and with it the PRTR win for "
               "fixed task sizes); newer families shrink the frame -- the "
               "reconfiguration quantum -- by ~6.5x.\n";
  breport.table("whatif_platforms", table);
  breport.table("device_catalog", catalog);
  return breport.finish();
}
