// Extension bench: bitstream compression. Two levers on the measured
// configuration path -- ZRL wire compression (smaller host transfer) and
// multi-frame-write dedup (fewer ICAP payload writes) -- swept against
// module occupancy, plus the end-to-end effect of MFW on a Figure-9-style
// operating point.
#include <iostream>

#include "bitstream/builder.hpp"
#include "bitstream/compress.hpp"
#include "config/icap_controller.hpp"
#include "config/memory.hpp"
#include "fabric/floorplan.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"compression", argc, argv};
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};

  std::cout << "=== Compression vs module occupancy (dual-PRR stream, "
               "404,388 B raw) ===\n\n";
  util::Table table{{"occupancy", "ZRL ratio", "MFW unique/total",
                     "MFW wire bytes", "T_PRTR raw", "T_PRTR MFW",
                     "H=0 peak (raw)", "H=0 peak (MFW)"}};

  sim::Simulator sim;
  config::ConfigMemory memory{plan.device()};
  sim::SimplexLink link{sim, "in", util::DataRate::megabytesPerSecond(1400)};
  const config::IcapController icap{sim, memory, link};
  const util::Time tFrtrMeasured =
      util::Time::seconds(1.67804);  // Table 2 measured full config

  for (const double occupancy : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const bitstream::Bitstream stream =
        builder.buildModulePartial(plan.prr(0), 7, occupancy);
    const double zrl = bitstream::zrlRatio(stream.bytes());
    const bitstream::MfwPlan mfw = bitstream::planMfw(stream, plan.device());

    const util::Time rawTime = icap.drainTime(stream.size());
    const util::Time mfwTime = icap.drainTime(mfw.wireBytes);
    const double xRaw = rawTime.toSeconds() / tFrtrMeasured.toSeconds();
    const double xMfw = mfwTime.toSeconds() / tFrtrMeasured.toSeconds();

    table.row()
        .cell(util::formatDouble(occupancy, 3))
        .cell(util::formatDouble(zrl, 3))
        .cell(std::to_string(mfw.uniqueFrames) + "/" +
              std::to_string(mfw.totalFrames))
        .cell(mfw.wireBytes.toString())
        .cell(rawTime.toString())
        .cell(mfwTime.toString())
        .cell(util::formatDouble(model::peakSpeedup(0.0, xRaw).speedup, 4))
        .cell(util::formatDouble(model::peakSpeedup(0.0, xMfw).speedup, 4));
  }
  table.print(std::cout);

  // End-to-end: one small-task operating point with MFW on/off. The paper
  // functions occupy 31-69% of a dual PRR, so their streams carry zero
  // fill that MFW removes.
  std::cout << "\n=== End-to-end effect at X_task ~ 0.008 (measured basis, "
               "H=0) ===\n\n";
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 200, util::Bytes{2'000'000});
  for (const bool mfwOn : {false, true}) {
    runtime::ScenarioOptions so;
    so.forceMiss = true;
    so.mfwCompression = mfwOn;
    const auto result = runtime::runScenario(registry, workload, so);
    std::cout << (mfwOn ? "MFW on : " : "MFW off: ") << "S = " << result.speedup
              << " (PRTR total " << result.prtr.total.toString() << ")\n";
    breport.scalar(mfwOn ? "speedup_mfw_on" : "speedup_mfw_off",
                   result.speedup);
  }
  std::cout << "\nMFW shrinks the effective X_PRTR, which raises the "
               "configuration-dominant ceiling exactly as equation (7) "
               "predicts.\n";
  breport.table("compression_occupancy", table);
  return breport.finish();
}
