// Reproduces Figure 5 of the paper: asymptotic performance of PRTR
// (equation 7) vs the normalized task time requirement, for a family of
// pre-fetching hit ratios, at X_decision = X_control = 0.
#include <iostream>

#include "analysis/figures.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport report{"fig5", argc, argv};

  const std::vector<double> hitRatios{0.0, 0.25, 0.5, 0.75, 1.0};
  // The three X_PRTR values of Table 2's normalized column:
  // 0.37 (single PRR est.), 0.17 (dual PRR est.), 0.012 (dual PRR meas.).
  for (const double xPrtr : {0.37, 0.17, 0.012}) {
    std::cout << "=== Figure 5: asymptotic speedup S_inf vs X_task, X_PRTR = "
              << xPrtr << " ===\n";
    const auto series = analysis::makeFig5Series(xPrtr, hitRatios, 161, 1e-3,
                                                 100.0, report.threads());
    util::PlotOptions po;
    po.logX = true;
    po.logY = true;
    po.xLabel = "X_task";
    po.yLabel = "S_inf";
    std::cout << util::renderAsciiPlot(series, po) << '\n';

    const model::Peak h0 = model::peakSpeedup(0.0, xPrtr);
    std::cout << "H=0 peak: S_inf = " << h0.speedup
              << " at X_task = X_PRTR = " << h0.xTask << '\n';
    std::cout << "X_task >= 1 cap: S_inf <= 2 for every H (e.g. at X_task=1: "
              << model::idealAsymptote(1.0, xPrtr, 0.0) << ")\n\n";
    report.scalar("peak_sinf_xprtr_" + util::formatDouble(xPrtr, 3),
                  h0.speedup);
  }

  std::cout << "CSV (X_PRTR=0.17):\nxTask";
  const auto csvSeries = analysis::makeFig5Series(0.17, hitRatios, 31, 1e-3,
                                                  100.0, report.threads());
  for (const auto& s : csvSeries) std::cout << ',' << s.name;
  std::cout << '\n';
  std::vector<std::string> header{"xTask"};
  for (const auto& s : csvSeries) header.push_back(s.name);
  util::Table csv{header};
  for (std::size_t i = 0; i < csvSeries.front().x.size(); ++i) {
    std::cout << csvSeries.front().x[i];
    csv.row().cell(csvSeries.front().x[i], 6);
    for (const auto& s : csvSeries) {
      std::cout << ',' << s.y[i];
      csv.cell(s.y[i], 6);
    }
    std::cout << '\n';
  }
  report.table("fig5_xprtr_0.17", csv);

  // The curves are closed-form; --trace captures the simulated scenario
  // behind the X_PRTR = 0.17 family (dual PRR, estimated basis) with inline
  // timeline verification on, so prtr-verify has a capture of this figure's
  // operating point to check.
  if (report.traceRequested()) {
    obs::ChromeTrace trace;
    runtime::ScenarioOptions options;
    options.layout = xd1::Layout::kDualPrr;
    options.basis = model::ConfigTimeBasis::kEstimated;
    options.hooks.trace = &trace;
    options.verify = true;
    const auto registry = tasks::makePaperFunctions();
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{1'000'000});
    const runtime::ScenarioResult traced =
        runtime::runScenario(registry, workload, options);
    trace.writeFile(report.tracePath());
    report.scalar("traced_speedup", traced.speedup);
    std::cout << "trace written to " << report.tracePath() << '\n';
  }
  return report.finish();
}
