// Extension bench: fully dynamic PRTR with right-sized regions vs the
// paper's fixed layouts. Realizes section 5's "partitions must be so fine
// grained to match the task time requirements ... and to increase the
// system density": per-module regions let the whole 8-core library reside
// at once and shrink each configuration to the module's own width.
#include <iostream>

#include "obs/bench_io.hpp"
#include "runtime/dynamic_executor.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"dynamic", argc, argv};
  const auto registry = tasks::makeExtendedFunctions();

  std::cout << "=== Right-sized dynamic regions vs fixed PRRs (8-module "
               "round-robin, steady state after the initial full config) "
               "===\n\n";
  util::Table table{{"task bytes", "fixed dual", "fixed quad",
                     "dynamic", "dyn configs", "dyn mean cols"}};
  for (const std::uint64_t bytes :
       {50'000ull, 500'000ull, 5'000'000ull, 50'000'000ull}) {
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 96, util::Bytes{bytes});

    auto fixedSteady = [&](xd1::Layout layout) {
      runtime::ScenarioOptions so;
      so.sides = runtime::ScenarioSides::kPrtrOnly;
      so.layout = layout;
      so.forceMiss = false;
      so.prepare = runtime::PrepareSource::kNone;
      const auto report = runtime::runScenario(registry, workload, so).prtr;
      return report.total - report.initialConfig;
    };
    const util::Time dual = fixedSteady(xd1::Layout::kDualPrr);
    const util::Time quad = fixedSteady(xd1::Layout::kQuadPrr);

    sim::Simulator sim;
    xd1::Node node{sim};
    runtime::DynamicPrtrExecutor dynamic{node, registry};
    const runtime::DynamicReport report = dynamic.run(workload);
    const util::Time dyn = report.base.total - report.base.initialConfig;
    breport.metrics(report.base.metrics);

    table.row()
        .cell(util::Bytes{bytes}.toString())
        .cell(dual.toString())
        .cell(quad.toString())
        .cell(dyn.toString())
        .cell(report.base.configurations)
        .cell(util::formatDouble(report.meanOccupiedColumns, 4));
  }
  table.print(std::cout);
  std::cout << "\nWith 8 modules over 2 or 4 fixed regions every call "
               "reconfigures a full-size region; right-sized regions hold "
               "the whole library (23 of 34 columns) so steady state has "
               "zero reconfigurations. The advantage shrinks as tasks grow "
               "(the 2x cap reasserts itself).\n";
  breport.table("dynamic_vs_fixed", table);
  return breport.finish();
}
