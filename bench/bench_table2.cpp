// Reproduces Table 2 of the paper: bitstream sizes and estimated/measured
// configuration times for the full, single-PRR, and dual-PRR layouts, with
// the paper's own values printed side by side.
#include <iostream>

#include "analysis/figures.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport report{"table2", argc, argv};
  std::cout << "=== Table 2: Experimental values for model parameters ===\n\n";
  const util::Table table = analysis::makeTable2();
  table.print(std::cout);
  std::cout
      << "\nEstimated = bitstream bytes / 66 MB/s SelectMap (lower bound).\n"
         "Measured  = vendor-API driver path (full: 12 ms + 699.5 ns/B) and\n"
         "            ICAP controller path (partials: 20.31 MB/s effective "
         "FSM drain).\n"
         "Full size matches the paper exactly; PRR sizes are frame-column "
         "quantized (within 0.06%).\n";
  report.table("table2", table);

  // The table itself is analytic; --trace captures the measured-basis
  // dual-PRR scenario whose configuration times the table tabulates, with
  // inline timeline verification on, so prtr-verify has a real capture of
  // this bench's model point to check.
  if (report.traceRequested()) {
    obs::ChromeTrace trace;
    runtime::ScenarioOptions options;
    options.layout = xd1::Layout::kDualPrr;
    options.basis = model::ConfigTimeBasis::kMeasured;
    options.hooks.trace = &trace;
    options.verify = true;
    const auto registry = tasks::makePaperFunctions();
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 12, util::Bytes{1'000'000});
    const runtime::ScenarioResult traced =
        runtime::runScenario(registry, workload, options);
    trace.writeFile(report.tracePath());
    report.scalar("traced_speedup", traced.speedup);
    std::cout << "\ntrace written to " << report.tracePath() << '\n';
  }
  return report.finish();
}
