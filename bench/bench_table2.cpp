// Reproduces Table 2 of the paper: bitstream sizes and estimated/measured
// configuration times for the full, single-PRR, and dual-PRR layouts, with
// the paper's own values printed side by side.
#include <iostream>

#include "analysis/figures.hpp"
#include "obs/bench_io.hpp"

int main(int argc, char** argv) {
  prtr::obs::BenchReport report{"table2", argc, argv};
  std::cout << "=== Table 2: Experimental values for model parameters ===\n\n";
  const prtr::util::Table table = prtr::analysis::makeTable2();
  table.print(std::cout);
  std::cout
      << "\nEstimated = bitstream bytes / 66 MB/s SelectMap (lower bound).\n"
         "Measured  = vendor-API driver path (full: 12 ms + 699.5 ns/B) and\n"
         "            ICAP controller path (partials: 20.31 MB/s effective "
         "FSM drain).\n"
         "Full size matches the paper exactly; PRR sizes are frame-column "
         "quantized (within 0.06%).\n";
  report.table("table2", table);
  return report.finish();
}
