// Extension bench: uncertainty propagation and the regime map.
//
// Part 1 puts Monte-Carlo error bars on Figure-9(b) operating points: the
// paper's parameters are point measurements; this shows how robust the
// headline speedups are to realistic jitter in task time, partial-config
// time, and hit ratio.
//
// Part 2 renders the (X_task, H) regime map of the asymptotic speedup at
// the measured X_PRTR -- the whole Figure-5 family as one heatmap.
#include <iostream>

#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "model/insights.hpp"
#include "model/model.hpp"
#include "util/plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"sensitivity", argc, argv};
  const double xPrtrMeasured = 19.77 / 1678.04;

  std::cout << "=== Sensitivity of S_inf to 10% parameter jitter (measured "
               "basis, H=0) ===\n\n";
  util::Table table{{"X_task", "S_inf (point)", "mean", "stddev", "p05",
                     "p50", "p95"}};
  model::Perturbation sigma;
  sigma.xTask = 0.10;
  sigma.xPrtr = 0.10;
  sigma.hitRatio = 0.02;
  for (const double xTask : {0.002, xPrtrMeasured, 0.05, 0.5, 2.0}) {
    model::Params p;
    p.xTask = xTask;
    p.xPrtr = xPrtrMeasured;
    p.hitRatio = 0.0;
    const auto r = model::sensitivity(p, sigma, 20'000, 99);
    table.row()
        .cell(util::formatDouble(xTask, 4))
        .cell(util::formatDouble(model::asymptoticSpeedup(p), 4))
        .cell(util::formatDouble(r.speedup.mean(), 4))
        .cell(util::formatDouble(r.speedup.stddev(), 4))
        .cell(util::formatDouble(r.p05, 4))
        .cell(util::formatDouble(r.p50, 4))
        .cell(util::formatDouble(r.p95, 4));
  }
  table.print(std::cout);
  std::cout << "\nAt the X_task = X_PRTR peak the distribution sits *below* "
               "the point value (perturbations only go downhill), so the "
               "paper's peak numbers are optimistic under jitter; the 2x-cap "
               "region is essentially insensitive.\n\n";
  breport.table("sensitivity", table);

  std::cout << "=== Regime map: S_inf over (X_task, H) at X_PRTR = "
            << util::formatDouble(xPrtrMeasured, 3) << " ===\n\n";
  const int cols = 96;
  const int rowsN = 20;
  std::vector<std::vector<double>> grid;
  for (int r = 0; r < rowsN; ++r) {
    // Top row = H = 1.
    const double h = 1.0 - static_cast<double>(r) / (rowsN - 1);
    std::vector<double> row;
    for (int c = 0; c < cols; ++c) {
      const double xTask = std::pow(
          10.0, -3.0 + 5.0 * static_cast<double>(c) / (cols - 1));  // 1e-3..1e2
      row.push_back(model::idealAsymptote(xTask, xPrtrMeasured, h));
    }
    grid.push_back(std::move(row));
  }
  util::HeatmapOptions ho;
  ho.title = "S_inf (brighter = faster); x: X_task 1e-3..1e2 (log), y: H 1 "
             "(top) .. 0 (bottom)";
  ho.xLabel = "X_task";
  ho.yLabel = "H";
  ho.logScale = true;
  std::cout << util::renderHeatmap(grid, ho);
  std::cout << "\nThe bright band at small X_task widens with H; right of "
               "X_task = 1 every row collapses onto the same <=2x ridge.\n";
  return breport.finish();
}
