// Reproduces the execution profiles of Figures 2-4 as simulator-derived
// Gantt charts:
//   Figure 2/3: FRTR task anatomy (full config -> control -> in -> compute
//               -> out, repeated per call);
//   Figure 4(a): PRTR missed tasks (partial configurations overlapping the
//               previous task's execution);
//   Figure 4(b): PRTR pre-fetched (hit) tasks (no configuration at all).
//
// With `--trace out.json` the same timelines are exported as a Chrome
// trace_event document: load it in chrome://tracing or ui.perfetto.dev to
// scrub through the profiles interactively.
#include <iostream>

#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport report{"profiles", argc, argv};
  obs::ChromeTrace trace;
  const auto registry = tasks::makePaperFunctions();
  const util::Bytes data{30'000'000};  // mid-range task (~0.16 s)

  {
    std::cout << "=== Figures 2/3: task execution using FRTR ===\n";
    sim::Timeline frtrTl;
    runtime::ScenarioOptions so;
    so.forceMiss = true;
    so.hooks.frtrTimeline = &frtrTl;
    const auto workload = tasks::makeRoundRobinWorkload(registry, 4, data);
    const auto result = runtime::runScenario(registry, workload, so);
    std::cout << frtrTl.renderGantt(110);
    std::cout << "FRTR total: " << result.frtr.total.toString()
              << " (config overhead "
              << result.frtr.configOverheadFraction() * 100.0 << "% -- the "
              << "\"25% to 98.5%\" regime of the paper's introduction)\n\n";
    trace.add("fig2-3 FRTR", frtrTl);
    report.scalar("frtr_config_overhead", result.frtr.configOverheadFraction());

    std::cout << "=== Figure 4(a): PRTR, missed tasks (H=0, configs overlap "
                 "previous execution) ===\n";
    sim::Timeline prtrTl;
    so.hooks.frtrTimeline = nullptr;
    so.hooks.timeline = &prtrTl;
    const auto prtrResult = runtime::runScenario(registry, workload, so);
    std::cout << prtrTl.renderGantt(110);
    std::cout << "PRTR total: " << prtrResult.prtr.total.toString()
              << ", speedup " << prtrResult.speedup << "x\n\n";
    trace.add("fig4a PRTR miss", prtrTl);
    report.scalar("miss_speedup", prtrResult.speedup);
    report.metrics(prtrResult.metrics);
  }

  {
    std::cout << "=== Figure 4(b): PRTR, pre-fetched (hit) tasks ===\n";
    sim::Timeline hitTl;
    runtime::ScenarioOptions so;
    so.forceMiss = false;  // alternating 2 modules stay resident in 2 PRRs
    so.hooks.timeline = &hitTl;
    tasks::Workload alternating{"alt", {}};
    for (int i = 0; i < 6; ++i) {
      alternating.calls.push_back(
          tasks::TaskCall{static_cast<std::size_t>(i % 2), data});
    }
    const auto result = runtime::runScenario(registry, alternating, so);
    std::cout << hitTl.renderGantt(110);
    std::cout << "Hit ratio: " << result.prtr.hitRatio()
              << " (only the two warm-up loads configure), speedup "
              << result.speedup << "x\n";
    trace.add("fig4b PRTR hit", hitTl);
    report.scalar("hit_ratio", result.prtr.hitRatio());
    report.scalar("hit_speedup", result.speedup);
  }

  if (report.traceRequested()) {
    trace.writeFile(report.tracePath());
    std::cout << "\ntrace written to " << report.tracePath()
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  return report.finish();
}
