// Reproduces the execution profiles of Figures 2-4 as simulator-derived
// Gantt charts:
//   Figure 2/3: FRTR task anatomy (full config -> control -> in -> compute
//               -> out, repeated per call);
//   Figure 4(a): PRTR missed tasks (partial configurations overlapping the
//               previous task's execution);
//   Figure 4(b): PRTR pre-fetched (hit) tasks (no configuration at all).
#include <iostream>

#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

int main() {
  using namespace prtr;
  const auto registry = tasks::makePaperFunctions();
  const util::Bytes data{30'000'000};  // mid-range task (~0.16 s)

  {
    std::cout << "=== Figures 2/3: task execution using FRTR ===\n";
    sim::Timeline frtrTl;
    runtime::ScenarioOptions so;
    so.forceMiss = true;
    so.frtrTimeline = &frtrTl;
    const auto workload = tasks::makeRoundRobinWorkload(registry, 4, data);
    const auto result = runtime::runScenario(registry, workload, so);
    std::cout << frtrTl.renderGantt(110);
    std::cout << "FRTR total: " << result.frtr.total.toString()
              << " (config overhead "
              << result.frtr.configOverheadFraction() * 100.0 << "% -- the "
              << "\"25% to 98.5%\" regime of the paper's introduction)\n\n";

    std::cout << "=== Figure 4(a): PRTR, missed tasks (H=0, configs overlap "
                 "previous execution) ===\n";
    sim::Timeline prtrTl;
    so.frtrTimeline = nullptr;
    so.prtrTimeline = &prtrTl;
    const auto prtrResult = runtime::runScenario(registry, workload, so);
    std::cout << prtrTl.renderGantt(110);
    std::cout << "PRTR total: " << prtrResult.prtr.total.toString()
              << ", speedup " << prtrResult.speedup << "x\n\n";
  }

  {
    std::cout << "=== Figure 4(b): PRTR, pre-fetched (hit) tasks ===\n";
    sim::Timeline hitTl;
    runtime::ScenarioOptions so;
    so.forceMiss = false;  // alternating 2 modules stay resident in 2 PRRs
    so.prtrTimeline = &hitTl;
    tasks::Workload alternating{"alt", {}};
    for (int i = 0; i < 6; ++i) {
      alternating.calls.push_back(
          tasks::TaskCall{static_cast<std::size_t>(i % 2), data});
    }
    const auto result = runtime::runScenario(registry, alternating, so);
    std::cout << hitTl.renderGantt(110);
    std::cout << "Hit ratio: " << result.prtr.hitRatio()
              << " (only the two warm-up loads configure), speedup "
              << result.speedup << "x\n";
  }
  return 0;
}
