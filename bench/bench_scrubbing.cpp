// Extension bench: SEU scrubbing. Sweeps upset rate x scrub period over a
// dual-PRR region and reports detection/repair behaviour and the share of
// configuration-port bandwidth the scrubber consumes -- another tenant of
// the same bandwidth the paper's model prices for reconfiguration.
#include <iostream>

#include "bitstream/builder.hpp"
#include "config/scrubber.hpp"
#include "obs/bench_io.hpp"
#include "fabric/floorplan.hpp"
#include "sim/link.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"scrubbing", argc, argv};
  std::cout << "=== SEU scrubbing over one dual-PRR region (380 frames, "
               "2 s mission) ===\n\n";
  util::Table table{{"upset mean", "scrub period", "injected", "detected",
                     "repairs", "residual", "port busy", "busy %"}};

  const util::Time mission = util::Time::seconds(2.0);
  for (const std::int64_t upsetMs : {500, 100, 20}) {
    for (const std::int64_t scrubMs : {250, 100, 25}) {
      fabric::Floorplan plan = fabric::makeDualPrrLayout();
      bitstream::Builder builder{plan.device()};
      sim::Simulator sim;
      config::ConfigMemory memory{plan.device()};
      memory.enableReadback();
      memory.applyFull(bitstream::parse(builder.buildFull(1), plan.device()));
      sim::SimplexLink link{sim, "HT-in",
                            util::DataRate::megabytesPerSecond(1400)};
      config::IcapController icap{sim, memory, link};

      const bitstream::Bitstream golden =
          builder.buildModulePartial(plan.prr(0), 7);
      memory.applyPartial(bitstream::parse(golden, plan.device()));

      config::Scrubber scrubber{sim,    memory, icap, plan.device(), golden,
                                util::Time::milliseconds(scrubMs)};
      config::UpsetInjector injector{
          sim, memory, plan.prr(0).frames(plan.device()),
          util::Time::milliseconds(upsetMs), 1234};
      sim.spawn(
          scrubber.run(static_cast<std::uint64_t>(2000 / scrubMs)));
      sim.spawn(injector.run(mission));
      sim.run();

      const auto& stats = scrubber.stats();
      const std::size_t residual = config::verifyRegion(memory, golden).size();
      const double busyPct = 100.0 * stats.busyTime().toSeconds() /
                             mission.toSeconds();
      table.row()
          .cell(util::Time::milliseconds(upsetMs).toString())
          .cell(util::Time::milliseconds(scrubMs).toString())
          .cell(injector.injected())
          .cell(stats.upsetsDetected)
          .cell(stats.repairs)
          .cell(std::uint64_t{residual})
          .cell(stats.busyTime().toString())
          .cell(util::formatDouble(busyPct, 3) + "%");
    }
  }
  table.print(std::cout);
  std::cout << "\nFaster scrubbing shortens the corrupted-exposure window "
               "but eats configuration-port bandwidth (readback 19.9 ms + "
               "repair 19.9 ms per pass at the paper's effective ICAP "
               "rate); at a 25 ms period the port is busy most of the "
               "mission.\n";
  breport.table("scrubbing", table);
  return breport.finish();
}
