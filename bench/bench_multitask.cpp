// Extension bench: multitasking / hardware virtualization (paper section 5
// outlook). Four applications with their own arrival processes share one
// blade; sweeping the offered load and the layout shows how PRR count and
// configuration caching shape latency under multiprogramming.
#include <iostream>

#include "obs/bench_io.hpp"
#include "runtime/multitask.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"multitask", argc, argv};
  const auto registry = tasks::makeExtendedFunctions();

  auto makeApps = [&](std::size_t nApps, util::Time interArrival) {
    std::vector<runtime::AppSpec> apps;
    for (std::size_t a = 0; a < nApps; ++a) {
      runtime::AppSpec app;
      app.name = "app" + std::to_string(a);
      app.meanInterArrival = interArrival;
      for (int i = 0; i < 25; ++i) {
        app.workload.calls.push_back(
            tasks::TaskCall{a % registry.size(), util::Bytes{10'000'000}});
      }
      apps.push_back(std::move(app));
    }
    return apps;
  };

  std::cout << "=== Multitasking: 4 apps x 25 calls x 10 MB, arrival sweep "
               "===\n\n";
  util::Table table{{"inter-arrival", "layout", "H", "configs",
                     "mean latency", "mean queueing", "makespan",
                     "PRR util"}};
  for (const std::int64_t msArrival : {200, 60, 20, 5}) {
    for (const auto layout : {xd1::Layout::kDualPrr, xd1::Layout::kQuadPrr}) {
      runtime::MultitaskOptions options;
      options.layout = layout;
      const auto apps =
          makeApps(4, util::Time::milliseconds(msArrival));
      const runtime::MultitaskReport report =
          runtime::runMultitask(registry, apps, options);
      breport.metrics(report.metrics);

      double latency = 0.0;
      double queueing = 0.0;
      for (const auto& app : report.apps) {
        latency += app.latencySeconds.mean();
        queueing += app.queueingSeconds.mean();
      }
      latency /= static_cast<double>(report.apps.size());
      queueing /= static_cast<double>(report.apps.size());
      const std::size_t prrs = layout == xd1::Layout::kDualPrr ? 2 : 4;

      table.row()
          .cell(util::Time::milliseconds(msArrival).toString())
          .cell(toString(layout))
          .cell(util::formatDouble(report.hitRatio(), 3))
          .cell(report.configurations)
          .cell(util::Time::seconds(latency).toString())
          .cell(util::Time::seconds(queueing).toString())
          .cell(report.makespan.toString())
          .cell(util::formatDouble(report.prrUtilization(prrs), 3));
    }
  }
  table.print(std::cout);
  std::cout << "\nUnder light load the layouts tie; as the offered load "
               "rises, four distinct apps on two PRRs queue behind each "
               "other's regions while the quad layout gives every app a "
               "home -- the versatility argument of section 5, measured.\n";
  breport.table("multitask_sweep", table);
  return breport.finish();
}
