// Chaos benchmark: the dual-PRR Figure-9 scenario under deterministic fault
// injection at a ladder of word-flip rates, with the recovery runtime
// absorbing the damage. This is the robustness gate for the prtr::fault
// subsystem: CI runs it with --json under asan and validates that every
// chaos run recovers (no unrecovered scenarios), that retries stay inside
// the policy budget, and that the pooled sweep is byte-identical to the
// serial one — chaos must not cost determinism.
//
// Usage: bench_chaos [--threads N] [--json FILE]
#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "config/recovery.hpp"
#include "exec/pool.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace prtr;

constexpr std::uint64_t kChaosSeed = 24091;
// The fault seed actually used: kChaosSeed unless `--seed` overrides it.
std::uint64_t gChaosSeed = kChaosSeed;
const std::vector<double> kRates = {0.0, 1e-6, 1e-4};

runtime::ScenarioOptions chaosOptions(double rate, bool recovery) {
  runtime::ScenarioOptions options;
  options.layout = xd1::Layout::kDualPrr;
  options.basis = model::ConfigTimeBasis::kMeasured;
  options.forceMiss = true;  // every call reconfigures: worst-case exposure
  options.faults.seed = gChaosSeed;
  options.faults.wordFlipRate = rate;
  options.faults.icapAbortRate = rate > 0.0 ? 0.01 : 0.0;
  options.faults.apiRejectRate = rate > 0.0 ? 0.005 : 0.0;
  options.recovery.enabled = recovery;
  return options;
}

/// One chaos point: the scenario result plus whether it recovered at all.
struct ChaosPoint {
  double rate = 0.0;
  bool recovered = false;
  runtime::ScenarioResult result;
};

ChaosPoint runPoint(double rate, bool recovery) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 24, util::Bytes{1'000'000});
  ChaosPoint point;
  point.rate = rate;
  try {
    point.result =
        runtime::runScenario(registry, workload, chaosOptions(rate, recovery));
    point.recovered = true;
  } catch (const util::FaultError&) {
    point.recovered = false;  // ladder exhausted: the gate fails on this
  }
  return point;
}

/// Sum of every counter whose name ends with `suffix` (both scenario sides
/// carry the recovery accounting under their frtr. / prtr. prefixes).
std::uint64_t counterSum(const runtime::ScenarioResult& result,
                         const std::string& suffix) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : result.metrics.counters) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      total += value;
    }
  }
  return total;
}

/// Folds every `recovery.ladder_depth` histogram in the snapshot (one per
/// scenario side) into one distribution of rung indices.
obs::HistogramSummary ladderDepth(const runtime::ScenarioResult& result) {
  constexpr std::string_view kSuffix = "recovery.ladder_depth";
  obs::HistogramSummary depth;
  for (const auto& [name, histogram] : result.metrics.histograms) {
    if (name.size() >= kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      depth.fold(histogram);
    }
  }
  return depth;
}

/// Renders every rate through the exec pool at the given width; pooled
/// chaos must reproduce the serial bytes exactly.
std::string sweepRender(std::size_t threads) {
  exec::ForOptions options;
  options.threads = threads;
  const auto rendered = exec::parallelMap(
      kRates,
      [](double rate) {
        const ChaosPoint point = runPoint(rate, /*recovery=*/true);
        return point.result.toString() + point.result.metrics.toString();
      },
      options);
  std::string joined;
  for (const std::string& r : rendered) joined += r;
  return joined;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report{"chaos", argc, argv};
  const std::size_t n = report.threads();
  exec::Pool::setGlobalThreads(n);
  gChaosSeed = report.seedOr(kChaosSeed);

  std::cout << "=== Chaos: dual-PRR Figure-9 scenario under fault injection"
               " (seed "
            << gChaosSeed << ") ===\n\n";

  util::Table table{{"flip rate", "recovered", "injected", "requests",
                     "retries", "repairs", "escalations", "full-device",
                     "speedup"}};
  std::uint64_t unrecovered = 0;
  std::uint64_t retriesTotal = 0;
  std::uint64_t requestsTotal = 0;
  std::uint64_t injectedTotal = 0;
  std::uint64_t repairsTotal = 0;
  std::uint64_t escalationsTotal = 0;
  std::uint64_t fullDeviceTotal = 0;
  const std::uint32_t maxRetries = runtime::RecoveryPolicy{}.maxRetries;
  std::array<std::uint64_t, config::kRecoveryRungCount> landedTotals{};
  obs::HistogramSummary depthTotal;
  for (const double rate : kRates) {
    const ChaosPoint point = runPoint(rate, /*recovery=*/true);
    if (!point.recovered) ++unrecovered;
    const std::uint64_t injected =
        counterSum(point.result, "fault.injected.total");
    const std::uint64_t requests = counterSum(point.result, "recovery.requests");
    const std::uint64_t retries = counterSum(point.result, "recovery.retries");
    const std::uint64_t repairs =
        counterSum(point.result, "recovery.frame_repairs");
    const std::uint64_t escalations =
        counterSum(point.result, "recovery.escalations");
    const std::uint64_t fullDevice =
        counterSum(point.result, "recovery.full_device_fallbacks");
    injectedTotal += injected;
    requestsTotal += requests;
    retriesTotal += retries;
    repairsTotal += repairs;
    escalationsTotal += escalations;
    fullDeviceTotal += fullDevice;
    for (std::size_t r = 0; r < config::kRecoveryRungCount; ++r) {
      landedTotals[r] += counterSum(
          point.result,
          std::string("recovery.landed.") +
              config::metricSuffix(static_cast<config::RecoveryRung>(r)));
    }
    depthTotal.fold(ladderDepth(point.result));
    table.row()
        .cell(util::formatDouble(rate, 6))
        .cell(point.recovered ? "yes" : "NO")
        .cell(injected)
        .cell(requests)
        .cell(retries)
        .cell(repairs)
        .cell(escalations)
        .cell(fullDevice)
        .cell(util::formatDouble(point.recovered ? point.result.speedup : 0.0,
                                 3));
  }
  table.print(std::cout);
  report.table("chaos_ladder", table);

  // --- Recovery-ladder depth distribution: where every recovering load
  // actually landed, rung by rung, pooled across the rate ladder. The
  // per-rung counters and the ladder_depth histogram are two views of the
  // same events, so their totals must agree — CI gates on that, and on the
  // depth quantiles staying shallow (healthy chaos recovers at the first
  // rungs; p95 at full-device would mean the ladder is not absorbing).
  std::uint64_t landedSum = 0;
  util::Table depthTable{{"rung", "landed", "share"}};
  for (std::size_t r = 0; r < config::kRecoveryRungCount; ++r) {
    landedSum += landedTotals[r];
  }
  for (std::size_t r = 0; r < config::kRecoveryRungCount; ++r) {
    const double share =
        landedSum == 0 ? 0.0
                       : static_cast<double>(landedTotals[r]) /
                             static_cast<double>(landedSum);
    depthTable.row()
        .cell(config::metricSuffix(static_cast<config::RecoveryRung>(r)))
        .cell(landedTotals[r])
        .cell(util::formatDouble(share, 4));
    report.scalar(std::string("ladder_landed_") +
                      config::metricSuffix(static_cast<config::RecoveryRung>(r)),
                  landedTotals[r]);
  }
  std::cout << "\nrecovery-ladder depth distribution (all rates pooled):\n";
  depthTable.print(std::cout);
  report.table("ladder_depth", depthTable);
  const bool ladderConsistent = depthTotal.count == landedSum;
  std::cout << "ladder histogram agrees with per-rung counters: "
            << (ladderConsistent ? "yes" : "NO") << '\n';
  report.scalar("ladder_depth_count", depthTotal.count);
  report.scalar("ladder_depth_p50", depthTotal.quantile(0.50));
  report.scalar("ladder_depth_p95", depthTotal.quantile(0.95));
  report.scalar("ladder_depth_max",
                depthTotal.count == 0
                    ? std::uint64_t{0}
                    : static_cast<std::uint64_t>(depthTotal.max));
  report.scalar("ladder_depth_consistent",
                std::uint64_t{ladderConsistent ? 1u : 0u});

  // --- Zero-overhead-when-healthy: rate 0 with recovery enabled must match
  // the recovery-disabled baseline on every report byte (the recovery.*
  // counter lines are only present when the policy is on, so compare the
  // shared report body).
  const ChaosPoint baseline = runPoint(0.0, /*recovery=*/false);
  const ChaosPoint healthy = runPoint(0.0, /*recovery=*/true);
  const bool healthyIdentical =
      baseline.recovered && healthy.recovered &&
      baseline.result.toString() == healthy.result.toString();
  std::cout << "\nhealthy run (rate 0, recovery on) report-identical to"
               " baseline: "
            << (healthyIdentical ? "yes" : "NO") << '\n';

  // --- Determinism under the pool: the rate ladder rendered serially and
  // at N threads must agree byte-for-byte.
  const std::string serial = sweepRender(1);
  const bool identical = sweepRender(n) == serial;
  std::cout << "chaos sweep byte-identical at 1 vs " << n
            << " threads: " << (identical ? "yes" : "NO") << '\n';

  // Retry budget: the policy grants maxRetries per rung per request; a
  // healthy recovery runtime stays well under one retry per request even at
  // the hottest rate. CI gates on this scalar.
  const double retriesPerRequest =
      requestsTotal == 0
          ? 0.0
          : static_cast<double>(retriesTotal) / static_cast<double>(requestsTotal);
  std::cout << "retries per recovering request: "
            << util::formatDouble(retriesPerRequest, 4) << " (budget "
            << maxRetries << " per rung)\n";

  report.scalar("unrecovered_scenarios", unrecovered);
  report.scalar("faults_injected_total", injectedTotal);
  report.scalar("recovery_requests_total", requestsTotal);
  report.scalar("recovery_retries_total", retriesTotal);
  report.scalar("retries_per_request", retriesPerRequest);
  report.scalar("retry_budget_per_rung", std::uint64_t{maxRetries});
  report.scalar("frame_repairs_total", repairsTotal);
  report.scalar("escalations_total", escalationsTotal);
  report.scalar("full_device_fallbacks_total", fullDeviceTotal);
  report.scalar("healthy_identical", std::uint64_t{healthyIdentical ? 1u : 0u});
  report.scalar("outputs_identical", std::uint64_t{identical ? 1u : 0u});
  report.scalar("fault_seed", gChaosSeed);

  // --trace re-runs the hottest recovering point (rate 1e-4) with the
  // timeline hook attached: the capture shows the recovery lane interleaved
  // with ICAP traffic, and prtr-verify checks it against the TL0xx
  // invariants (including the recovery pairing rule TL007).
  if (report.traceRequested()) {
    obs::ChromeTrace trace;
    runtime::ScenarioOptions options = chaosOptions(1e-4, /*recovery=*/true);
    options.hooks.trace = &trace;
    options.verify = true;
    const auto registry = tasks::makePaperFunctions();
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 24, util::Bytes{1'000'000});
    const runtime::ScenarioResult traced =
        runtime::runScenario(registry, workload, options);
    trace.writeFile(report.tracePath());
    report.scalar("traced_speedup", traced.speedup);
    std::cout << "trace written to " << report.tracePath() << '\n';
  }
  const bool ok =
      identical && healthyIdentical && unrecovered == 0 && ladderConsistent;
  return ok ? report.finish() : 1;
}
