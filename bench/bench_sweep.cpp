// Sweep-engine benchmark: the same paper reproductions (Figure 5, Figure 9,
// chassis scaling) run serially and on the exec work-stealing pool, with
// wall-clock timings, a byte-identity check on every output, and the
// repeated-layout artifact-cache hit rate. This is the perf gate for the
// prtr::exec subsystem: CI runs it with --json and validates that the
// pooled sweeps are no slower than serial and produce identical bytes.
//
// The Fig-9 runs record through a sharded metrics sink (one obs::Registry
// shard per pool worker), so the byte-identity check covers the merged
// metrics snapshot too, and the four-participant run feeds the
// parallel-efficiency scalars CI gates on multi-core runners.
//
// Usage: bench_sweep [--threads N] [--json FILE] [--trace FILE]
//                    [--profile FILE]
#include <chrono>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "analysis/figures.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "hprc/chassis.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "prof/profiler.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace prtr;

/// Wall-clock of one run, in milliseconds.
template <typename Fn>
double timedMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// The Figure-9 sweep this bench times (smaller than bench_fig9b's grid so
/// the CI smoke run stays fast, but large enough to amortize pool startup).
std::string runFig9(std::size_t threads, exec::ArtifactCache* artifacts,
                    obs::ShardedRegistry* metrics = nullptr,
                    obs::ChromeTrace* trace = nullptr) {
  analysis::Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kMeasured;
  opts.points = 12;
  opts.xTaskLo = 1e-2;
  opts.xTaskHi = 20.0;
  opts.nCalls = 120;
  opts.threads = threads;
  opts.artifacts = artifacts;
  opts.metrics = metrics;
  opts.trace = trace;
  return analysis::fig9Table(analysis::makeFig9(opts)).toString();
}

/// The Figure-5 series family (analytic; exercises parallelMap ordering).
std::string runFig5(std::size_t threads) {
  const auto series = analysis::makeFig5Series(0.17, {0.0, 0.25, 0.5, 0.75, 1.0},
                                               161, 1e-3, 100.0, threads);
  std::string out;
  for (const auto& s : series) {
    out += s.name;
    for (const double y : s.y) out += ',' + util::formatDouble(y, 6);
    out += '\n';
  }
  return out;
}

/// The 6-blade chassis run (exercises the deterministic bladeN. merge).
std::string runChassisSweep(std::size_t threads,
                            exec::ArtifactCache* artifacts) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload =
      tasks::makeRoundRobinWorkload(registry, 48, util::Bytes{10'000'000});
  hprc::ChassisOptions options;
  options.blades = 6;
  options.threads = threads;
  options.scenario.forceMiss = true;
  options.scenario.basis = model::ConfigTimeBasis::kMeasured;
  options.scenario.artifacts = artifacts;
  const hprc::ChassisReport report =
      hprc::runChassis(registry, workload, options);
  return report.toString() + report.metrics.toString();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report{"sweep", argc, argv};
  const std::size_t n = report.threads();
  exec::Pool::setGlobalThreads(n);

  // With --profile, time the pool's task execution, steals, and queue depth
  // across every sweep below (the cache seams are covered by bench_fig9*).
  prof::Profiler profiler;
  if (report.profileRequested()) exec::Pool::global().setProfiler(&profiler);

  // Thread ladder: 1, 2, 4, N (deduplicated, capped at N).
  std::vector<std::size_t> ladder{1};
  for (const std::size_t t : {std::size_t{2}, std::size_t{4}, n}) {
    if (t <= n && t != ladder.back()) ladder.push_back(t);
  }

  std::cout << "=== Sweep engine: serial vs exec::Pool (" << n
            << " worker threads) ===\n\n";

  // --- Figure 9, serial reference, then the ladder. Every run must render
  // byte-identical tables: parallelism only reorders the work, not results.
  // The serial run also records through a sharded sink; its merged snapshot
  // is the reference the pooled runs must reproduce byte for byte.
  bool identical = true;
  std::string fig9Ref;
  obs::ShardedRegistry fig9SerialMetrics;
  const double fig9SerialMs =
      timedMs([&] { fig9Ref = runFig9(1, nullptr, &fig9SerialMetrics); });
  const std::string fig9MetricsRef = fig9SerialMetrics.takeMerged().toJson();
  double fig9ParallelMs = fig9SerialMs;
  util::Table fig9Times{{"threads", "fig9 (ms)", "speedup"}};
  fig9Times.row().cell(std::uint64_t{1}).cell(util::formatDouble(fig9SerialMs, 2))
      .cell("1");
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    const std::size_t t = ladder[i];
    std::string out;
    const double ms = timedMs([&] { out = runFig9(t, nullptr); });
    identical = identical && out == fig9Ref;
    if (t == n) fig9ParallelMs = ms;
    fig9Times.row()
        .cell(std::uint64_t{t})
        .cell(util::formatDouble(ms, 2))
        .cell(util::formatDouble(fig9SerialMs / ms, 3));
  }
  if (ladder.size() == 1) fig9ParallelMs = fig9SerialMs;
  fig9Times.print(std::cout);
  report.table("fig9_times", fig9Times);

  // --- Four-participant Fig-9 run, always measured: feeds the
  // parallel-efficiency scalars CI gates on >=4-core runners, and checks
  // that the sharded metrics merge is byte-identical to the serial
  // reference. The pool caps participants at its worker count, so on
  // smaller machines this stays a correctness run (efficiency is then
  // informational — the "_wall" suffix keeps prtr-report treating it as
  // wall-clock).
  obs::ShardedRegistry fig9T4Metrics;
  std::string fig9T4Out;
  const double fig9T4Ms =
      timedMs([&] { fig9T4Out = runFig9(4, nullptr, &fig9T4Metrics); });
  identical = identical && fig9T4Out == fig9Ref;
  obs::MetricsSnapshot fig9T4Merged = fig9T4Metrics.takeMerged();
  identical = identical && fig9T4Merged.toJson() == fig9MetricsRef;
  const double speedupT4 = fig9SerialMs / fig9T4Ms;
  std::cout << "\nfig9 sweep at 4 participants: "
            << util::formatDouble(fig9T4Ms, 2) << " ms ("
            << util::formatDouble(speedupT4, 3) << "x serial, efficiency "
            << util::formatDouble(speedupT4 / 4.0, 3) << ")\n";

  // --- With --trace, one more run at the requested width writes the merged
  // Chrome trace: CI compares the --threads 1 and --threads 4 trace files
  // byte for byte (simulated time is schedule-independent).
  if (report.traceRequested()) {
    obs::ChromeTrace trace;
    identical = identical && runFig9(n, nullptr, nullptr, &trace) == fig9Ref;
    trace.writeFile(report.tracePath());
  }

  // --- Figure 5 and chassis: serial vs N threads, byte identity.
  const std::string fig5Ref = runFig5(1);
  identical = identical && runFig5(n) == fig5Ref;
  std::string chassisRef;
  const double chassisSerialMs =
      timedMs([&] { chassisRef = runChassisSweep(1, nullptr); });
  std::string chassisPooled;
  const double chassisParallelMs =
      timedMs([&] { chassisPooled = runChassisSweep(n, nullptr); });
  identical = identical && chassisPooled == chassisRef;
  std::cout << "\nchassis (6 blades): serial "
            << util::formatDouble(chassisSerialMs, 2) << " ms, pooled "
            << util::formatDouble(chassisParallelMs, 2) << " ms\n";

  // --- Artifact cache: the same Fig-9 sweep re-run against one cache. The
  // layout never changes across points, so after the first point seeds the
  // floorplan + bitstreams everything else hits.
  exec::ArtifactCache cache;
  identical = identical && runFig9(n, &cache) == fig9Ref;
  const double cachedMs = timedMs([&] {
    identical = identical && runFig9(n, &cache) == fig9Ref;
  });
  const exec::ArtifactCache::Stats stats = cache.stats();
  std::cout << "repeated-layout sweep with ArtifactCache: "
            << util::formatDouble(cachedMs, 2) << " ms, hit rate "
            << util::formatDouble(stats.hitRate(), 4) << " (" << stats.hits
            << " hits / " << stats.misses << " misses)\n";

  const double speedup = fig9SerialMs / fig9ParallelMs;
  std::cout << "\nfig9 sweep speedup at " << n
            << " threads: " << util::formatDouble(speedup, 3)
            << "x; outputs byte-identical: " << (identical ? "yes" : "NO")
            << '\n';

  // Single-thread Fig-9 throughput plus the kernel-rewrite gate: wall-clock
  // against the frozen pre-rewrite serial time (bench/goldens/
  // BENCH_sweep_pr6.json, captured on the CI reference machine). CI asserts
  // speedup_vs_pr6_wall >= 5 from the JSON files; the scalar here makes the
  // ratio visible in every report. The "_wall" suffix keeps prtr-report
  // treating both as wall-clock (informational unless --gate-wall).
  constexpr double kFrozenPr6SerialMs = 987.416757;
  const double points = 12.0;
  report.scalar("fig9_points_per_s_wall", points / (fig9SerialMs / 1e3));
  report.scalar("speedup_vs_pr6_wall", kFrozenPr6SerialMs / fig9SerialMs);
  report.scalar("time_serial_ms", fig9SerialMs);
  report.scalar("time_parallel_ms", fig9ParallelMs);
  report.scalar("speedup_parallel", speedup);
  report.scalar("time_t4_ms", fig9T4Ms);
  report.scalar("fig9_speedup_t4_wall", speedupT4);
  report.scalar("parallel_efficiency_t4_wall", speedupT4 / 4.0);
  report.scalar("chassis_serial_ms", chassisSerialMs);
  report.scalar("chassis_parallel_ms", chassisParallelMs);
  report.scalar("time_cached_ms", cachedMs);
  report.scalar("cache_hit_rate", stats.hitRate());
  report.scalar("outputs_identical", std::uint64_t{identical ? 1u : 0u});
  report.metrics(std::move(fig9T4Merged));
  report.metrics(exec::Pool::global().metricsSnapshot());
  report.metrics(cache.metricsSnapshot());

  if (report.profileRequested()) {
    exec::Pool::global().setProfiler(nullptr);
    std::ofstream out{report.profilePath()};
    util::require(out.good(), "bench_sweep: cannot open " +
                                  report.profilePath() + " for writing");
    out << profiler.snapshot().toJson() << '\n';
  }
  return identical ? report.finish() : 1;
}
