// Extension bench: HW/SW codesign (the software tasks the paper deferred).
// Sweeps task size and compares the four partitioning policies; the
// crossover where hardware starts paying for its reconfiguration is the
// system-level reading of the paper's X_task axis.
#include <iostream>

#include "obs/bench_io.hpp"
#include "runtime/hwsw.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

namespace {

prtr::runtime::HwSwReport runPolicy(prtr::runtime::Partitioning policy,
                                    const prtr::tasks::Workload& workload) {
  using namespace prtr;
  sim::Simulator sim;
  xd1::Node node{sim};
  auto registry = tasks::makePaperFunctions();
  bitstream::Library library{
      node.floorplan(),
      registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
  runtime::LruCache cache{2};
  runtime::HwSwOptions options;
  options.policy = policy;
  runtime::HwSwExecutor executor{node, registry, library, cache, options};
  return executor.run(workload);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"hwsw", argc, argv};
  const auto registry = tasks::makePaperFunctions();

  std::cout << "=== Extension: HW/SW partitioning vs task size (3 cores, "
               "dual PRR, measured basis) ===\n\n";
  util::Table table{{"task bytes", "always-hw", "always-sw",
                     "static-threshold", "adaptive", "adaptive hw-share"}};
  for (const std::uint64_t bytes :
       {10'000ull, 100'000ull, 1'000'000ull, 5'000'000ull, 20'000'000ull,
        100'000'000ull}) {
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 30, util::Bytes{bytes});
    const auto hw = runPolicy(runtime::Partitioning::kAlwaysHardware, workload);
    const auto sw = runPolicy(runtime::Partitioning::kAlwaysSoftware, workload);
    const auto st =
        runPolicy(runtime::Partitioning::kStaticThreshold, workload);
    const auto ad = runPolicy(runtime::Partitioning::kAdaptive, workload);
    breport.metrics(ad.base.metrics);
    table.row()
        .cell(util::Bytes{bytes}.toString())
        .cell(hw.base.total.toString())
        .cell(sw.base.total.toString())
        .cell(st.base.total.toString())
        .cell(ad.base.total.toString())
        .cell(util::formatDouble(ad.hardwareFraction(), 3));
  }
  table.print(std::cout);
  std::cout << "\nSmall tasks: software wins (a partial reconfiguration "
               "costs ~20 ms). Large tasks: the 42x-faster fabric wins. "
               "Adaptive tracks the better side of the crossover.\n"
               "Caveat visible at 5 MB: the greedy per-call heuristic does "
               "not amortize the one-time 1.678 s full configuration, so "
               "right at the crossover it can commit to hardware too "
               "early -- amortization-aware placement is future work.\n";
  breport.table("hwsw_policies", table);
  return breport.finish();
}
