// Fleet benchmark: the prtr::fleet serving simulation at one million
// requests, healthy and under chaos (20% of blades running a hostile
// fault plan), with the full resilience stack engaged. This is the
// robustness gate for the fleet subsystem: CI runs it at 1 and N threads
// and validates that the merged snapshots are byte-identical, that the
// retry budget holds under chaos (no retry storm), that breakers open and
// recover, and that tail latency stays inside the committed baseline band
// via prtr-report (the run is fully deterministic, so every simulated
// scalar reproduces exactly).
//
// Usage: bench_fleet [--requests N] [--spec FILE] [--threads N] [--seed N]
//                    [--json FILE]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/checks_fleet.hpp"
#include "exec/pool.hpp"
#include "fleet/fleet.hpp"
#include "obs/bench_io.hpp"
#include "tasks/hwfunction.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace prtr;

constexpr std::uint64_t kFleetSeed = 61927;  // matches examples/fleet/*.fleet
constexpr std::uint64_t kDefaultRequests = 1'000'000;

/// The committed-baseline configuration: examples/fleet/steady.fleet.
fleet::FleetOptions baseOptions() {
  fleet::FleetOptions options;
  options.cells = 4;
  options.bladesPerCell = 6;
  options.requests = kDefaultRequests;
  options.seed = kFleetSeed;
  options.offeredLoad = 0.7;
  return options;
}

/// The chaos variant: 20% of blades (rounded per cell) run a hostile
/// plan — ICAP aborts, transfer timeouts, and link stalls — while the
/// healthy majority carries the traffic around the open breakers.
fleet::FleetOptions chaosOptions(const fleet::FleetOptions& base) {
  fleet::FleetOptions options = base;
  options.degradedFraction = 0.2;
  options.degradedFaults.seed = base.seed ^ 0xC4A05u;
  options.degradedFaults.icapAbortRate = 0.30;
  options.degradedFaults.transferTimeoutRate = 0.10;
  options.degradedFaults.linkStallRate = 0.05;
  return options;
}

/// One fleet point rendered for the byte-identity gate: the report body
/// plus every merged metric line.
std::string render(const fleet::FleetReport& report) {
  return report.toString() + report.metrics.toString();
}

double quantileUs(const obs::HistogramSummary& h, double q) {
  return h.quantile(q) / 1e6;
}

void pointScalars(obs::BenchReport& report, const std::string& prefix,
                  const fleet::FleetReport& r) {
  report.scalar(prefix + "_p50_us", quantileUs(r.latency, 0.50));
  report.scalar(prefix + "_p95_us", quantileUs(r.latency, 0.95));
  report.scalar(prefix + "_p99_us", quantileUs(r.latency, 0.99));
  report.scalar(prefix + "_completed", r.completed);
  report.scalar(prefix + "_failed", r.failed);
  report.scalar(prefix + "_shed_rate", r.shedRate());
  report.scalar(prefix + "_retries", r.retries);
  report.scalar(prefix + "_retries_denied", r.retriesDenied);
  report.scalar(prefix + "_retry_budget_consumption",
                r.retryBudgetConsumption());
  report.scalar(prefix + "_breaker_opens", r.breakerOpens);
  report.scalar(prefix + "_breaker_closes", r.breakerCloses);
  report.scalar(prefix + "_utilization_mean", r.utilizationMean);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report{"fleet", argc, argv};
  const std::size_t n = report.threads();
  exec::Pool::setGlobalThreads(n);

  fleet::FleetOptions options = baseOptions();
  std::uint64_t requests = kDefaultRequests;
  const auto& rest = report.options().rest();
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--requests" && i + 1 < rest.size()) {
      requests = std::stoull(rest[++i]);
    } else if (rest[i] == "--spec" && i + 1 < rest.size()) {
      std::ifstream in{rest[++i]};
      if (!in) {
        std::cerr << "bench_fleet: cannot open spec '" << rest[i] << "'\n";
        return 2;
      }
      options = analyze::fleetSpecToOptions(analyze::parseFleetSpec(in));
      requests = options.requests;
    }
  }
  options.requests = requests;
  options.seed = report.seedOr(options.seed);

  // Refuse configurations the linter rejects before a million-request run.
  analyze::DiagnosticSink sink;
  analyze::checkFleetOptions(options, sink);
  if (sink.hasErrors()) {
    std::cerr << sink.toText();
    return 2;
  }

  std::cout << "=== Fleet: " << options.cells << " cells x "
            << options.bladesPerCell << " blades, " << options.requests
            << " requests (seed " << options.seed << ") ===\n\n";

  // Calibrate once; both points and both thread widths share the profile,
  // so the identity gate measures the fleet simulation alone.
  const auto registry = tasks::makePaperFunctions();
  const fleet::BladeProfile profile = fleet::calibrateBladeProfile(
      registry, runtime::ScenarioOptions{}, options.payloadBytes);

  const fleet::FleetOptions chaos = chaosOptions(options);

  // --- Byte-identity at 1 vs N threads, healthy and chaos.
  fleet::FleetOptions serialOpts = options;
  serialOpts.threads = 1;
  fleet::FleetOptions pooledOpts = options;
  pooledOpts.threads = n;
  const fleet::FleetReport healthy = runFleet(registry, profile, pooledOpts);
  const bool healthyIdentical =
      render(runFleet(registry, profile, serialOpts)) == render(healthy);

  fleet::FleetOptions chaosSerial = chaos;
  chaosSerial.threads = 1;
  fleet::FleetOptions chaosPooled = chaos;
  chaosPooled.threads = n;
  const fleet::FleetReport degraded =
      runFleet(registry, profile, chaosPooled);
  const bool chaosIdentical =
      render(runFleet(registry, profile, chaosSerial)) == render(degraded);
  const bool identical = healthyIdentical && chaosIdentical;

  util::Table table{{"point", "completed", "failed", "shed", "retries",
                     "denied", "opens", "closes", "p50 us", "p95 us",
                     "p99 us", "util"}};
  for (const auto& [name, r] :
       {std::pair<const char*, const fleet::FleetReport&>{"healthy", healthy},
        {"chaos", degraded}}) {
    table.row()
        .cell(name)
        .cell(r.completed)
        .cell(r.failed)
        .cell(r.shed)
        .cell(r.retries)
        .cell(r.retriesDenied)
        .cell(r.breakerOpens)
        .cell(r.breakerCloses)
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.50)))
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.95)))
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.99)))
        .cell(util::formatDouble(r.utilizationMean, 3));
  }
  table.print(std::cout);
  report.table("fleet_points", table);

  std::cout << "\nfleet byte-identical at 1 vs " << n
            << " threads (healthy and chaos): " << (identical ? "yes" : "NO")
            << '\n';

  // Graceful degradation: chaos inflates the tail but must not blow it up,
  // and the retry budget must hold (no retry storm). Both are gated by the
  // committed baseline through prtr-report; the ratio is printed for
  // humans.
  const double p99Ratio =
      quantileUs(healthy.latency, 0.99) <= 0.0
          ? 0.0
          : quantileUs(degraded.latency, 0.99) /
                quantileUs(healthy.latency, 0.99);
  std::cout << "chaos p99 / healthy p99: " << util::formatDouble(p99Ratio, 3)
            << "\nchaos retry-budget consumption: "
            << util::formatDouble(degraded.retryBudgetConsumption(), 4)
            << " (budget " << chaos.retry.budgetFraction << ")\n";

  pointScalars(report, "healthy", healthy);
  pointScalars(report, "chaos", degraded);
  report.scalar("chaos_p99_over_healthy", p99Ratio);
  report.scalar("requests", options.requests);
  report.scalar("outputs_identical", std::uint64_t{identical ? 1u : 0u});
  report.scalar("fleet_seed", options.seed);
  report.metrics(degraded.metrics);

  const bool ok =
      identical && healthy.failed == 0 && degraded.breakerOpens > 0 &&
      degraded.retryBudgetConsumption() <=
          chaos.retry.budgetFraction + 0.01;
  return ok ? report.finish() : 1;
}
