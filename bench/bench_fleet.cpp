// Fleet benchmark: the prtr::fleet serving simulation at one million
// requests — healthy, under chaos (20% of blades running a hostile fault
// plan), and under surge (the rate limiter, request tracing, and the SLO
// burn-rate gate engaged). This is the robustness gate for the fleet
// subsystem: CI runs it at 1 and N threads and validates that the merged
// snapshots are byte-identical for all three points, that the retry
// budget holds under chaos (no retry storm), that breakers open and
// recover, that the admission rate limiter engages under surge, that
// tail-based trace sampling retains 100% of its tail, and that tail
// latency stays inside the committed baseline band via prtr-report (the
// run is fully deterministic, so every simulated scalar reproduces
// exactly). With --trace, a reduced surge run exports its kept request
// traces as Chrome/Perfetto JSON for prtr-verify and prtr-trace.
//
// Usage: bench_fleet [--requests N] [--spec FILE] [--threads N] [--seed N]
//                    [--json FILE] [--trace FILE]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/checks_fleet.hpp"
#include "exec/pool.hpp"
#include "fleet/fleet.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "tasks/hwfunction.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace prtr;

constexpr std::uint64_t kFleetSeed = 61927;  // matches examples/fleet/*.fleet
constexpr std::uint64_t kDefaultRequests = 1'000'000;

/// The committed-baseline configuration: examples/fleet/steady.fleet.
fleet::FleetOptions baseOptions() {
  fleet::FleetOptions options;
  options.cells = 4;
  options.bladesPerCell = 6;
  options.requests = kDefaultRequests;
  options.seed = kFleetSeed;
  options.offeredLoad = 0.7;
  return options;
}

/// The chaos variant: 20% of blades (rounded per cell) run a hostile
/// plan — ICAP aborts, transfer timeouts, and link stalls — while the
/// healthy majority carries the traffic around the open breakers.
fleet::FleetOptions chaosOptions(const fleet::FleetOptions& base) {
  fleet::FleetOptions options = base;
  options.degradedFraction = 0.2;
  options.degradedFaults.seed = base.seed ^ 0xC4A05u;
  options.degradedFaults.icapAbortRate = 0.30;
  options.degradedFaults.transferTimeoutRate = 0.10;
  options.degradedFaults.linkStallRate = 0.05;
  return options;
}

/// The surge variant: the same fleet pushed to 95% offered load with the
/// full observability stack on — per-user admission rate limiting,
/// tail-based request tracing, and the multi-window SLO burn-rate gate.
/// Buckets are per cell (each cell admits its shard of a user's traffic
/// independently), so the 4.5 rps quota sits below the ~5.4 rps per-user
/// per-cell offered rate: the buckets drain within seconds and the
/// limiter sheds the sustained excess. The shed fraction makes the SLO
/// breach by design — surge is the point that demonstrates the gates
/// fire, healthy is the point that demonstrates they stay quiet.
fleet::FleetOptions surgeOptions(const fleet::FleetOptions& base) {
  fleet::FleetOptions options = base;
  options.offeredLoad = 0.95;
  options.rateLimit.enabled = true;
  options.rateLimit.ratePerSecond = 4.5;
  options.rateLimit.burst = 10.0;
  options.tracing.enabled = true;
  options.tracing.sampleRate = 0.01;
  options.slo.enabled = true;
  return options;
}

/// One fleet point rendered for the byte-identity gate: the report body
/// plus every merged metric line.
std::string render(const fleet::FleetReport& report) {
  return report.toString() + report.metrics.toString();
}

double quantileUs(const obs::HistogramSummary& h, double q) {
  return h.quantile(q) / 1e6;
}

void pointScalars(obs::BenchReport& report, const std::string& prefix,
                  const fleet::FleetReport& r) {
  report.scalar(prefix + "_p50_us", quantileUs(r.latency, 0.50));
  report.scalar(prefix + "_p95_us", quantileUs(r.latency, 0.95));
  report.scalar(prefix + "_p99_us", quantileUs(r.latency, 0.99));
  report.scalar(prefix + "_completed", r.completed);
  report.scalar(prefix + "_failed", r.failed);
  report.scalar(prefix + "_shed_rate", r.shedRate());
  report.scalar(prefix + "_retries", r.retries);
  report.scalar(prefix + "_retries_denied", r.retriesDenied);
  report.scalar(prefix + "_retry_budget_consumption",
                r.retryBudgetConsumption());
  report.scalar(prefix + "_breaker_opens", r.breakerOpens);
  report.scalar(prefix + "_breaker_closes", r.breakerCloses);
  report.scalar(prefix + "_utilization_mean", r.utilizationMean);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report{"fleet", argc, argv};
  const std::size_t n = report.threads();
  exec::Pool::setGlobalThreads(n);

  fleet::FleetOptions options = baseOptions();
  std::uint64_t requests = kDefaultRequests;
  const auto& rest = report.options().rest();
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--requests" && i + 1 < rest.size()) {
      requests = std::stoull(rest[++i]);
    } else if (rest[i] == "--spec" && i + 1 < rest.size()) {
      std::ifstream in{rest[++i]};
      if (!in) {
        std::cerr << "bench_fleet: cannot open spec '" << rest[i] << "'\n";
        return 2;
      }
      options = analyze::fleetSpecToOptions(analyze::parseFleetSpec(in));
      requests = options.requests;
    }
  }
  options.requests = requests;
  options.seed = report.seedOr(options.seed);

  // Refuse configurations the linter rejects before a million-request run.
  analyze::DiagnosticSink sink;
  analyze::checkFleetOptions(options, sink);
  if (sink.hasErrors()) {
    std::cerr << sink.toText();
    return 2;
  }

  std::cout << "=== Fleet: " << options.cells << " cells x "
            << options.bladesPerCell << " blades, " << options.requests
            << " requests (seed " << options.seed << ") ===\n\n";

  // Calibrate once; both points and both thread widths share the profile,
  // so the identity gate measures the fleet simulation alone.
  const auto registry = tasks::makePaperFunctions();
  const fleet::BladeProfile profile = fleet::calibrateBladeProfile(
      registry, runtime::ScenarioOptions{}, options.payloadBytes);

  const fleet::FleetOptions chaos = chaosOptions(options);

  // --- Byte-identity at 1 vs N threads, healthy and chaos.
  fleet::FleetOptions serialOpts = options;
  serialOpts.threads = 1;
  fleet::FleetOptions pooledOpts = options;
  pooledOpts.threads = n;
  const fleet::FleetReport healthy = runFleet(registry, profile, pooledOpts);
  const bool healthyIdentical =
      render(runFleet(registry, profile, serialOpts)) == render(healthy);

  fleet::FleetOptions chaosSerial = chaos;
  chaosSerial.threads = 1;
  fleet::FleetOptions chaosPooled = chaos;
  chaosPooled.threads = n;
  const fleet::FleetReport degraded =
      runFleet(registry, profile, chaosPooled);
  const bool chaosIdentical =
      render(runFleet(registry, profile, chaosSerial)) == render(degraded);

  const fleet::FleetOptions surge = surgeOptions(options);
  fleet::FleetOptions surgeSerial = surge;
  surgeSerial.threads = 1;
  fleet::FleetOptions surgePooled = surge;
  surgePooled.threads = n;
  const fleet::FleetReport surged = runFleet(registry, profile, surgePooled);
  const bool surgeIdentical =
      render(runFleet(registry, profile, surgeSerial)) == render(surged);
  const bool identical = healthyIdentical && chaosIdentical && surgeIdentical;

  util::Table table{{"point", "completed", "failed", "shed", "retries",
                     "denied", "opens", "closes", "p50 us", "p95 us",
                     "p99 us", "util"}};
  for (const auto& [name, r] :
       {std::pair<const char*, const fleet::FleetReport&>{"healthy", healthy},
        {"chaos", degraded},
        {"surge", surged}}) {
    table.row()
        .cell(name)
        .cell(r.completed)
        .cell(r.failed)
        .cell(r.shed)
        .cell(r.retries)
        .cell(r.retriesDenied)
        .cell(r.breakerOpens)
        .cell(r.breakerCloses)
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.50)))
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.95)))
        .cell(static_cast<std::uint64_t>(quantileUs(r.latency, 0.99)))
        .cell(util::formatDouble(r.utilizationMean, 3));
  }
  table.print(std::cout);
  report.table("fleet_points", table);

  std::cout << "\nfleet byte-identical at 1 vs " << n
            << " threads (healthy, chaos, surge): "
            << (identical ? "yes" : "NO") << '\n';

  // Graceful degradation: chaos inflates the tail but must not blow it up,
  // and the retry budget must hold (no retry storm). Both are gated by the
  // committed baseline through prtr-report; the ratio is printed for
  // humans.
  const double p99Ratio =
      quantileUs(healthy.latency, 0.99) <= 0.0
          ? 0.0
          : quantileUs(degraded.latency, 0.99) /
                quantileUs(healthy.latency, 0.99);
  std::cout << "chaos p99 / healthy p99: " << util::formatDouble(p99Ratio, 3)
            << "\nchaos retry-budget consumption: "
            << util::formatDouble(degraded.retryBudgetConsumption(), 4)
            << " (budget " << chaos.retry.budgetFraction << ")\n";

  // Surge observability: the limiter must engage, tail sampling must keep
  // its whole tail, and the SLO burn-rate verdict is printed and gated
  // against the committed baseline.
  std::cout << "surge shed by rate limiter: " << surged.shedRateLimited
            << " of " << surged.offered << " offered\n"
            << "surge traces: " << surged.tracesKept << " kept of "
            << surged.tracesRecorded << " recorded (tail "
            << surged.tracesKeptTail << "/" << surged.tailEligible
            << ", retention "
            << util::formatDouble(surged.tailRetention(), 3)
            << "), dropped by cap " << surged.tracesDroppedCap << '\n'
            << "surge SLO: " << (surged.slo.pass ? "pass" : "BREACH")
            << " (good fraction "
            << util::formatDouble(surged.slo.goodFraction, 6)
            << ", burn max fast/slow "
            << util::formatDouble(surged.slo.fastBurnMax, 2) << "/"
            << util::formatDouble(surged.slo.slowBurnMax, 2) << ", "
            << surged.slo.breachWindows << " breach window(s))\n";

  // With --trace, a reduced surge run exports its kept request traces
  // (full-length surge keeps every rate-limited shed — far too many
  // spans for a reviewable artifact).
  if (report.traceRequested()) {
    obs::ChromeTrace trace;
    fleet::FleetOptions exportOpts = surge;
    exportOpts.threads = n;
    exportOpts.requests = std::min<std::uint64_t>(surge.requests, 50'000);
    exportOpts.hooks.trace = &trace;
    const fleet::FleetReport exported =
        runFleet(registry, profile, exportOpts);
    trace.writeFile(report.tracePath());
    report.scalar("trace_export_kept", exported.tracesKept);
    std::cout << "trace: " << exported.tracesKept
              << " kept request(s) written to " << report.tracePath()
              << '\n';
  }

  pointScalars(report, "healthy", healthy);
  pointScalars(report, "chaos", degraded);
  pointScalars(report, "surge", surged);
  report.scalar("chaos_p99_over_healthy", p99Ratio);
  report.scalar("surge_shed_ratelimited", surged.shedRateLimited);
  report.scalar("surge_traces_recorded", surged.tracesRecorded);
  report.scalar("surge_traces_kept", surged.tracesKept);
  report.scalar("surge_traces_kept_tail", surged.tracesKeptTail);
  report.scalar("surge_traces_kept_sampled", surged.tracesKeptSampled);
  report.scalar("surge_traces_dropped_cap", surged.tracesDroppedCap);
  report.scalar("surge_trace_tail_retention", surged.tailRetention());
  report.scalar("surge_slo_pass",
                std::uint64_t{surged.slo.pass ? 1u : 0u});
  report.scalar("surge_slo_good_fraction", surged.slo.goodFraction);
  report.scalar("surge_slo_fast_burn_max", surged.slo.fastBurnMax);
  report.scalar("surge_slo_slow_burn_max", surged.slo.slowBurnMax);
  report.scalar("surge_slo_breach_windows", surged.slo.breachWindows);
  report.scalar("requests", options.requests);
  report.scalar("outputs_identical", std::uint64_t{identical ? 1u : 0u});
  report.scalar("fleet_seed", options.seed);
  report.metrics(degraded.metrics);

  const bool ok =
      identical && healthy.failed == 0 && degraded.breakerOpens > 0 &&
      degraded.retryBudgetConsumption() <=
          chaos.retry.budgetFraction + 0.01 &&
      surged.shedRateLimited > 0 && surged.tailRetention() == 1.0;
  return ok ? report.finish() : 1;
}
