// Extension bench: the application suite. The paper's introduction argues
// PRTR from application studies (remote sensing, hyperspectral imaging,
// target recognition); this bench runs structurally faithful synthetic
// versions of those workloads end to end under FRTR and PRTR, with and
// without prefetching, on the measured-basis XD1.
#include <iostream>

#include "obs/bench_io.hpp"
#include "runtime/scenario.hpp"
#include "tasks/appsuite.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"appsuite", argc, argv};
  const auto registry = tasks::makeExtendedFunctions();
  util::Rng rng{20260705};
  const auto suite = tasks::makeApplicationSuite(registry, rng);

  std::cout << "=== Application suite on the measured-basis XD1 (dual PRR) "
               "===\n\n";
  util::Table table{{"application", "calls", "payload", "FRTR", "PRTR (LRU)",
                     "S", "H", "S model"}};
  for (const tasks::Application& app : suite) {
    runtime::ScenarioOptions so;
    so.forceMiss = false;
    so.prepare = runtime::PrepareSource::kQueue;
    const auto result = runtime::runScenario(registry, app.workload, so);
    breport.metrics(result.metrics);
    table.row()
        .cell(app.name)
        .cell(app.workload.callCount())
        .cell(app.workload.totalBytes().toString())
        .cell(result.frtr.total.toString())
        .cell(result.prtr.total.toString())
        .cell(util::formatDouble(result.speedup, 4))
        .cell(util::formatDouble(result.prtr.hitRatio(), 3))
        .cell(util::formatDouble(result.modelSpeedup, 4));
  }
  table.print(std::cout);

  std::cout << "\n=== Same suite on the quad-PRR layout (virtualized "
               "library) ===\n\n";
  util::Table quad{{"application", "PRTR (quad)", "S", "H", "configs"}};
  for (const tasks::Application& app : suite) {
    runtime::ScenarioOptions so;
    so.layout = xd1::Layout::kQuadPrr;
    so.forceMiss = false;
    so.prepare = runtime::PrepareSource::kQueue;
    const auto result = runtime::runScenario(registry, app.workload, so);
    quad.row()
        .cell(app.name)
        .cell(result.prtr.total.toString())
        .cell(util::formatDouble(result.speedup, 4))
        .cell(util::formatDouble(result.prtr.hitRatio(), 3))
        .cell(result.prtr.configurations);
  }
  quad.print(std::cout);
  std::cout << "\nPipelined applications have strong module locality, so "
               "PRTR's configuration cache turns most calls into hits; the "
               "branching ATR workload reconfigures most.\n";
  breport.table("appsuite_dual", table);
  breport.table("appsuite_quad", quad);
  return breport.finish();
}
