// Ablation C: PRR granularity. Paper section 5: "in order to achieve the
// optimal performance ... the partitions (PRRs) must be so fine grained to
// match the task time requirements, i.e. X_PRTR = X_task". This bench
// sweeps hypothetical PRR sizes (frames per region) and, for each, finds
// the task size at which the speedup peaks and the peak value (1+X)/X.
#include <iostream>

#include "config/port.hpp"
#include "fabric/device.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"granularity", argc, argv};
  const fabric::Device device = fabric::makeXc2vp50();
  const auto& geometry = device.geometry();
  const config::Port selectMap = config::makeSelectMap();
  const double tFull = selectMap.transferTime(geometry.fullBitstreamBytes())
                           .toSeconds();

  std::cout << "=== Ablation C: PRR granularity vs peak speedup (H = 0, "
               "estimated basis) ===\n\n";
  util::Table table{{"PRR frames", "partial bytes", "X_PRTR",
                     "peak S_inf = (1+X)/X", "task time at peak"}};
  for (const std::uint32_t frames :
       {2246u, 1123u, 834u, 380u, 190u, 86u, 22u, 4u, 1u}) {
    const util::Bytes bytes = geometry.partialBitstreamBytes(frames);
    const double xPrtr =
        selectMap.transferTime(bytes).toSeconds() / tFull;
    const model::Peak peak = model::peakSpeedup(0.0, std::min(xPrtr, 1.0));
    table.row()
        .cell(std::uint64_t{frames})
        .cell(bytes.toString())
        .cell(util::formatDouble(xPrtr, 4))
        .cell(util::formatDouble(peak.speedup, 4))
        .cell(util::Time::seconds(peak.xTask * tFull).toString());
  }
  table.print(std::cout);

  std::cout << "\nFiner partitions push the peak towards smaller tasks and "
               "raise it as (1+X)/X.\n"
               "The practical floor: a PRR must still fit the largest module "
               "(median filter needs 3141 LUTs ~ 5 CLB columns ~ 110 "
               "frames) plus bus macros, and the paper warns that the "
               "design-cycle cost grows with the PRR count (section 5).\n";
  breport.table("granularity", table);
  return breport.finish();
}
