// Ablation A: sensitivity of the PRTR speedup to the transfer-of-control
// and pre-fetch-decision overheads. The paper (section 3.1) plots Figure 5
// at X_control = X_decision = 0 and notes "these overheads will reduce the
// final performance if non-zero values are considered" -- this bench
// quantifies by how much, analytically and on the simulator.
#include <iostream>

#include "model/model.hpp"
#include "obs/bench_io.hpp"
#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"overheads", argc, argv};

  // Analytic sweep at the estimated dual-PRR operating point.
  std::cout << "=== Ablation A1 (analytic): S_inf vs overheads at X_task = "
               "X_PRTR = 0.17, H = 0 ===\n\n";
  util::Table analytic{{"X_control", "X_decision", "S_inf", "loss vs ideal"}};
  model::Params base;
  base.xTask = 0.17;
  base.xPrtr = 0.17;
  base.hitRatio = 0.0;
  const double ideal = model::asymptoticSpeedup(base);
  for (const double xc : {0.0, 0.001, 0.01, 0.05}) {
    for (const double xd : {0.0, 0.001, 0.01, 0.05}) {
      model::Params p = base;
      p.xControl = xc;
      p.xDecision = xd;
      const double s = model::asymptoticSpeedup(p);
      analytic.row()
          .cell(util::formatDouble(xc, 3))
          .cell(util::formatDouble(xd, 3))
          .cell(util::formatDouble(s, 4))
          .cell(util::formatDouble((1.0 - s / ideal) * 100.0, 3) + "%");
    }
  }
  analytic.print(std::cout);

  // Simulated sweep of the transfer-of-control time.
  std::cout << "\n=== Ablation A2 (simulated): speedup vs T_control, "
               "estimated basis, X_task ~ 0.17 ===\n\n";
  const auto registry = tasks::makePaperFunctions();
  util::Table simulated{{"T_control", "S (simulated)", "S (model)"}};
  for (const std::int64_t controlUs : {0, 10, 100, 1000, 5000}) {
    runtime::ScenarioOptions so;
    so.basis = model::ConfigTimeBasis::kEstimated;
    so.forceMiss = true;
    so.tControl = util::Time::microseconds(controlUs);
    const auto workload =
        tasks::makeRoundRobinWorkload(registry, 80, util::Bytes{1'100'000});
    const auto result = runtime::runScenario(registry, workload, so);
    simulated.row()
        .cell(so.tControl.toString())
        .cell(util::formatDouble(result.speedup, 4))
        .cell(util::formatDouble(result.modelSpeedup, 4));
  }
  simulated.print(std::cout);
  std::cout << "\nBoth overheads only hurt: the ideal Figure-5 curves are "
               "upper bounds.\n";
  breport.table("analytic_overheads", analytic);
  breport.table("simulated_tcontrol", simulated);
  return breport.finish();
}
