// Micro-benchmarks (google-benchmark): throughput of the load-bearing
// substrate pieces -- the DES kernel, bitstream build/parse, image kernels,
// and a full PRTR scenario end to end.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bitstream/builder.hpp"
#include "bitstream/parser.hpp"
#include "fabric/floorplan.hpp"
#include "runtime/scenario.hpp"
#include "sim/simulator.hpp"
#include "tasks/kernels.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

sim::Process pingPong(sim::Simulator& sim, std::int64_t hops) {
  for (std::int64_t i = 0; i < hops; ++i) {
    co_await sim.delay(util::Time::nanoseconds(1));
  }
}

void BM_SimKernelEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(pingPong(sim, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimKernelEvents)->Arg(1'000)->Arg(100'000);

void BM_BitstreamBuildPartial(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};
  for (auto _ : state) {
    const auto stream = builder.buildModulePartial(plan.prr(0), 7);
    benchmark::DoNotOptimize(stream.size());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(
          plan.prr(0).partialBitstreamBytes(plan.device()).count()));
}
BENCHMARK(BM_BitstreamBuildPartial);

void BM_BitstreamParsePartial(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};
  const auto stream = builder.buildModulePartial(plan.prr(0), 7);
  for (auto _ : state) {
    const auto parsed = bitstream::parse(stream, plan.device());
    benchmark::DoNotOptimize(parsed.writes.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size().count()));
}
BENCHMARK(BM_BitstreamParsePartial);

void BM_MedianFilter(benchmark::State& state) {
  util::Rng rng{5};
  const tasks::Image img = tasks::makeNoiseImage(256, 256, rng);
  for (auto _ : state) {
    const auto out = tasks::kernels::medianFilter3x3(img);
    benchmark::DoNotOptimize(out.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.pixelCount()));
}
BENCHMARK(BM_MedianFilter);

void BM_SobelFilter(benchmark::State& state) {
  util::Rng rng{5};
  const tasks::Image img = tasks::makeNoiseImage(256, 256, rng);
  for (auto _ : state) {
    const auto out = tasks::kernels::sobelFilter(img);
    benchmark::DoNotOptimize(out.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.pixelCount()));
}
BENCHMARK(BM_SobelFilter);

void BM_PrtrScenarioEndToEnd(benchmark::State& state) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload = tasks::makeRoundRobinWorkload(
      registry, static_cast<std::size_t>(state.range(0)),
      util::Bytes{1'000'000});
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  for (auto _ : state) {
    const auto report = runtime::runScenario(registry, workload, so).prtr;
    benchmark::DoNotOptimize(report.total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrtrScenarioEndToEnd)->Arg(16)->Arg(64);

}  // namespace

// google-benchmark has its own flag vocabulary; parse the shared
// bench::Options surface first, translate `--json <path>` into
// --benchmark_format/--benchmark_out, and forward only what the shared
// parser did not recognise, so every bench binary shares one CLI surface.
int main(int argc, char** argv) {
  const auto options = bench::Options::parse("bench_micro", argc, argv);
  if (options.helpRequestedAndHandled(
          "  (unrecognised arguments are forwarded to google-benchmark)")) {
    return 0;
  }
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  if (options.jsonRequested()) {
    args.emplace_back("--benchmark_format=console");
    args.emplace_back("--benchmark_out=" + options.jsonPath());
    args.emplace_back("--benchmark_out_format=json");
  }
  for (const std::string& arg : options.rest()) args.push_back(arg);
  std::vector<char*> rawArgs;
  rawArgs.reserve(args.size());
  for (auto& a : args) rawArgs.push_back(a.data());
  int rawArgc = static_cast<int>(rawArgs.size());
  benchmark::Initialize(&rawArgc, rawArgs.data());
  if (benchmark::ReportUnrecognizedArguments(rawArgc, rawArgs.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
