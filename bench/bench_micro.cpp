// Micro-benchmarks (google-benchmark): throughput of the load-bearing
// substrate pieces -- the DES kernel, bitstream build/parse, image kernels,
// and a full PRTR scenario end to end.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bitstream/builder.hpp"
#include "bitstream/parser.hpp"
#include "fabric/floorplan.hpp"
#include "obs/metrics.hpp"
#include "runtime/scenario.hpp"
#include "sim/simulator.hpp"
#include "tasks/kernels.hpp"
#include "tasks/workload.hpp"

namespace {

using namespace prtr;

sim::Process pingPong(sim::Simulator& sim, std::int64_t hops) {
  for (std::int64_t i = 0; i < hops; ++i) {
    co_await sim.delay(util::Time::nanoseconds(1));
  }
}

void BM_SimKernelEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(pingPong(sim, state.range(0)));
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimKernelEvents)->Arg(1'000)->Arg(100'000);

void BM_BitstreamBuildPartial(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};
  for (auto _ : state) {
    const auto stream = builder.buildModulePartial(plan.prr(0), 7);
    benchmark::DoNotOptimize(stream.size());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(
          plan.prr(0).partialBitstreamBytes(plan.device()).count()));
}
BENCHMARK(BM_BitstreamBuildPartial);

void BM_BitstreamParsePartial(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const bitstream::Builder builder{plan.device()};
  const auto stream = builder.buildModulePartial(plan.prr(0), 7);
  for (auto _ : state) {
    const auto parsed = bitstream::parse(stream, plan.device());
    benchmark::DoNotOptimize(parsed.writes.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size().count()));
}
BENCHMARK(BM_BitstreamParsePartial);

void BM_MedianFilter(benchmark::State& state) {
  util::Rng rng{5};
  const tasks::Image img = tasks::makeNoiseImage(256, 256, rng);
  for (auto _ : state) {
    const auto out = tasks::kernels::medianFilter3x3(img);
    benchmark::DoNotOptimize(out.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.pixelCount()));
}
BENCHMARK(BM_MedianFilter);

void BM_SobelFilter(benchmark::State& state) {
  util::Rng rng{5};
  const tasks::Image img = tasks::makeNoiseImage(256, 256, rng);
  for (auto _ : state) {
    const auto out = tasks::kernels::sobelFilter(img);
    benchmark::DoNotOptimize(out.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(img.pixelCount()));
}
BENCHMARK(BM_SobelFilter);

// ---- Metrics registry hot path: interned ids vs the deprecated string
// shims. The id path is the contract the sweeps rely on (a bounds check
// plus one increment); CI asserts the by-name/by-id time ratio is >= 5x.

void BM_MetricsAddById(benchmark::State& state) {
  obs::MetricTable& t = obs::MetricTable::global();
  const std::array<obs::CounterId, 4> ids{
      t.counter("micro.metrics.a"), t.counter("micro.metrics.b"),
      t.counter("micro.metrics.c"), t.counter("micro.metrics.d")};
  obs::Registry reg;
  std::size_t i = 0;
  for (auto _ : state) {
    reg.add(ids[i & 3]);
    ++i;
  }
  benchmark::DoNotOptimize(reg.snapshot().counterOr("micro.metrics.a"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsAddById);

/// The by-name baseline the interned-id gate compares against: re-intern
/// on every record, paying the MetricTable lock + hash probe the id path
/// skips. (The string Registry::add shim that used to package this pattern
/// is gone; this spells it out.)
void BM_MetricsAddByName(benchmark::State& state) {
  static constexpr std::array<std::string_view, 4> kNames{
      "micro.metrics.a", "micro.metrics.b", "micro.metrics.c",
      "micro.metrics.d"};
  obs::Registry reg;
  std::size_t i = 0;
  for (auto _ : state) {
    reg.add(obs::MetricTable::global().counter(kNames[i & 3]));
    ++i;
  }
  benchmark::DoNotOptimize(reg.snapshot().counterOr("micro.metrics.a"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsAddByName);

void BM_MetricsObserveById(benchmark::State& state) {
  const obs::HistogramId id =
      obs::MetricTable::global().histogram("micro.metrics.lat_ps");
  obs::Registry reg;
  std::int64_t v = 1;
  for (auto _ : state) {
    reg.observe(id, v);
    v = (v * 33) % 100'000 + 1;
  }
  benchmark::DoNotOptimize(reg.snapshot().histograms.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsObserveById);

void BM_MetricsObserveByName(benchmark::State& state) {
  obs::Registry reg;
  std::int64_t v = 1;
  for (auto _ : state) {
    reg.observe(obs::MetricTable::global().histogram("micro.metrics.lat_ps"),
                v);
    v = (v * 33) % 100'000 + 1;
  }
  benchmark::DoNotOptimize(reg.snapshot().histograms.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsObserveByName);

/// One synthetic sweep-point snapshot (~40 counters + 2 histograms), the
/// shape runScenario absorbs per Fig-9 point.
obs::MetricsSnapshot microPointSnapshot() {
  obs::MetricTable& t = obs::MetricTable::global();
  obs::Registry reg;
  for (int c = 0; c < 40; ++c) {
    reg.add(t.counter("micro.sweep.counter_" + std::to_string(c)),
            static_cast<std::uint64_t>(c) * 17 + 1);
  }
  reg.observe(t.histogram("micro.sweep.lat_ps"), 1'234);
  reg.observe(t.histogram("micro.sweep.stall_ps"), 56'789);
  return reg.takeSnapshot();
}

/// Sharded vs single-registry sweep merge: Arg(0) is the shard width.
/// Width 1 is the old single-sink shape (every absorb hits one registry);
/// width 8 spreads the same 64 point-absorbs over 8 shards and pays one
/// ordered tree reduction at the end.
void BM_MetricsSweepMerge(benchmark::State& state) {
  const obs::MetricsSnapshot point = microPointSnapshot();
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    obs::ShardedRegistry sharded{width};
    for (std::size_t p = 0; p < 64; ++p) {
      sharded.shard(p % width).absorbAdditive(point);
    }
    benchmark::DoNotOptimize(sharded.takeMerged().counters.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MetricsSweepMerge)->Arg(1)->Arg(8);

void BM_PrtrScenarioEndToEnd(benchmark::State& state) {
  const auto registry = tasks::makePaperFunctions();
  const auto workload = tasks::makeRoundRobinWorkload(
      registry, static_cast<std::size_t>(state.range(0)),
      util::Bytes{1'000'000});
  runtime::ScenarioOptions so;
  so.forceMiss = true;
  so.sides = runtime::ScenarioSides::kPrtrOnly;
  for (auto _ : state) {
    const auto report = runtime::runScenario(registry, workload, so).prtr;
    benchmark::DoNotOptimize(report.total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrtrScenarioEndToEnd)->Arg(16)->Arg(64);

}  // namespace

// google-benchmark has its own flag vocabulary; parse the shared
// bench::Options surface first, translate `--json <path>` into
// --benchmark_format/--benchmark_out, and forward only what the shared
// parser did not recognise, so every bench binary shares one CLI surface.
int main(int argc, char** argv) {
  const auto options = bench::Options::parse("bench_micro", argc, argv);
  if (options.helpRequestedAndHandled(
          "  (unrecognised arguments are forwarded to google-benchmark)")) {
    return 0;
  }
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  if (options.jsonRequested()) {
    args.emplace_back("--benchmark_format=console");
    args.emplace_back("--benchmark_out=" + options.jsonPath());
    args.emplace_back("--benchmark_out_format=json");
  }
  for (const std::string& arg : options.rest()) args.push_back(arg);
  std::vector<char*> rawArgs;
  rawArgs.reserve(args.size());
  for (auto& a : args) rawArgs.push_back(a.data());
  int rawArgc = static_cast<int>(rawArgs.size());
  benchmark::Initialize(&rawArgc, rawArgs.data());
  if (benchmark::ReportUnrecognizedArguments(rawArgc, rawArgs.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
