// Reproduces Figure 9(a): PRTR speedup vs task time requirement using the
// ESTIMATED configuration times (T_FRTR = 36.09 ms, dual-PRR T_PRTR =
// 6.12 ms, X_PRTR = 0.17), on the simulated Cray XD1 with H = 0 and
// T_control = 10 us. Peak expectation: "the PRTR can not exceed 7 times
// the performance of FRTR" (paper section 5).
#include <fstream>
#include <iostream>

#include "analysis/figures.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "model/bounds.hpp"
#include "obs/bench_io.hpp"
#include "obs/trace_export.hpp"
#include "prof/profiler.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport report{"fig9a", argc, argv};
  analysis::Fig9Options opts;
  opts.basis = model::ConfigTimeBasis::kEstimated;
  opts.points = 21;
  opts.xTaskLo = 1e-3;
  opts.xTaskHi = 50.0;
  opts.nCalls = 400;
  opts.threads = report.threads();
  opts.artifacts = &exec::ArtifactCache::global();

  prof::Profiler profiler;
  obs::ChromeTrace trace;
  if (report.profileRequested()) {
    opts.profiler = &profiler;
    exec::Pool::global().setProfiler(&profiler);
    exec::ArtifactCache::global().setProfiler(&profiler);
  }
  if (report.traceRequested()) opts.trace = &trace;

  std::cout << "=== Figure 9(a): speedup vs X_task, estimated configuration "
               "times (dual PRR, H=0) ===\n\n";
  const auto points = analysis::makeFig9(opts);
  std::cout << analysis::fig9Plot(points, "Fig 9(a), estimated basis") << '\n';
  analysis::fig9Table(points).print(std::cout);

  double best = 0.0;
  for (const auto& p : points) best = std::max(best, p.simSpeedup);
  const model::Peak peak = model::peakSpeedup(0.0, 6.12 / 36.09);
  std::cout << "\nPeak simulated speedup: " << best
            << "  (paper: cannot exceed ~7x; eq.7 peak = " << peak.speedup
            << " at X_task = " << peak.xTask << ")\n";
  std::cout << "Task-dominant cap: every X_task >= 1 point stays below 2x.\n";
  report.table("fig9a", analysis::fig9Table(points));
  report.scalar("peak_sim_speedup", best);
  report.scalar("peak_model_speedup", peak.speedup);
  report.metrics(exec::Pool::global().metricsSnapshot());
  report.metrics(exec::ArtifactCache::global().metricsSnapshot());

  if (report.traceRequested()) trace.writeFile(report.tracePath());
  if (report.profileRequested()) {
    exec::Pool::global().setProfiler(nullptr);
    exec::ArtifactCache::global().setProfiler(nullptr);
    std::ofstream out{report.profilePath()};
    util::require(out.good(), "bench_fig9a: cannot open " +
                                  report.profilePath() + " for writing");
    out << profiler.snapshot().toJson() << '\n';
  }
  return report.finish();
}
