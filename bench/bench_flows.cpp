// Reproduces the section 2.2 flow comparison: a module-based flow needs n
// fixed-size bitstreams per region, a difference-based flow needs n(n-1)
// variable-size bitstreams covering every module-to-module transition.
#include <iostream>

#include "bitstream/library.hpp"
#include "obs/bench_io.hpp"
#include "bitstream/relocate.hpp"
#include "fabric/floorplan.hpp"
#include "tasks/hwfunction.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"flows", argc, argv};
  const auto registry = tasks::makeExtendedFunctions();
  const fabric::Floorplan plan = fabric::makeDualPrrLayout();
  const auto specs =
      registry.moduleSpecs(plan.prr(0).resources(plan.device()));

  util::Table table{{"modules n", "module-based streams", "module-based total",
                     "diff-based streams", "diff total", "diff min..max"}};
  for (std::size_t n = 2; n <= registry.size(); n += 2) {
    std::vector<bitstream::Library::ModuleSpec> subset(specs.begin(),
                                                       specs.begin() + static_cast<std::ptrdiff_t>(n));
    bitstream::Library lib{plan, subset};
    const auto moduleStats = lib.buildModuleFlow();
    const auto diffStats = lib.buildDifferenceFlow();
    table.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{moduleStats.streamCount})
        .cell(moduleStats.totalBytes.toString())
        .cell(std::uint64_t{diffStats.streamCount})
        .cell(diffStats.totalBytes.toString())
        .cell(diffStats.minBytes.toString() + " .. " +
              diffStats.maxBytes.toString());
  }

  std::cout << "=== Section 2.2: module-based vs difference-based partial "
               "bitstream flows (2 PRRs) ===\n\n";
  table.print(std::cout);
  std::cout << "\nModule-based: n fixed-size streams per region "
               "(n*prrCount total).\n"
               "Difference-based: n(n-1) variable-size streams per region -- "
               "the development-cost explosion the paper warns about in "
               "section 5.\n";

  // Relocation (ref [24]) on the quad-PRR layout: the four regions share
  // one column signature, so one stream per module suffices.
  const fabric::Floorplan quad = fabric::makeQuadPrrLayout();
  const util::Bytes streamBytes =
      quad.prr(0).partialBitstreamBytes(quad.device());
  std::cout << "\n=== Relocation (quad-PRR layout, compatible regions) ===\n";
  util::Table reloc{{"modules n", "per-(module,PRR) storage",
                     "relocatable storage", "saving"}};
  for (std::size_t n = 2; n <= registry.size(); n += 2) {
    const auto savings = bitstream::relocationSavings(streamBytes, n, 4);
    reloc.row()
        .cell(std::uint64_t{n})
        .cell(savings.withoutRelocation.toString())
        .cell(savings.withRelocation.toString())
        .cell(util::formatDouble(savings.ratio(), 3) + "x");
  }
  reloc.print(std::cout);
  std::cout << "Note: the paper's own dual-PRR layout has *mirrored* edge "
               "regions, so relocation is illegal there -- verified by the "
               "column-signature check.\n";
  breport.table("flow_comparison", table);
  breport.table("relocation_savings", reloc);
  return breport.finish();
}
