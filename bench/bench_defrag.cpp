// Extension bench: dynamic region allocation with defragmentation
// (ref [24]). Small modules churn on the XC2VP50's 34-column CLB stretch;
// every 25th step a large (16-column) module asks for space. External
// fragmentation is what kills those large requests, and defragmentation is
// what rescues them -- at the price of relocation (partial reconfig) time.
#include <iostream>

#include "config/port.hpp"
#include "fabric/allocator.hpp"
#include "obs/bench_io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace prtr;
  obs::BenchReport breport{"defrag", argc, argv};
  const fabric::Device device = fabric::makeXc2vp50();
  const config::Port selectMap = config::makeSelectMap();

  std::cout << "=== Defragmentation ablation: small-module churn + periodic "
               "16-column requests ===\n\n";
  util::Table table{{"policy", "defrag", "large asks", "large failures",
                     "small failures", "moves", "move cost",
                     "mean fragmentation"}};

  for (const auto policy :
       {fabric::FitPolicy::kFirstFit, fabric::FitPolicy::kBestFit}) {
    for (const bool defragBeforeLarge : {false, true}) {
      fabric::ColumnAllocator alloc{device, 16, 34};
      util::Rng rng{9000};
      std::vector<std::uint64_t> ids;
      std::size_t largeAsks = 0;
      std::size_t largeFailures = 0;
      std::size_t smallFailures = 0;
      std::size_t moveCount = 0;
      util::Time moveTime;
      double fragSum = 0.0;
      const int steps = 5000;
      for (int step = 0; step < steps; ++step) {
        if (step % 25 == 24) {
          // The large tenant arrives. Optionally compact first.
          if (defragBeforeLarge) {
            for (const fabric::Move& move : alloc.defragment()) {
              ++moveCount;
              moveTime += selectMap.transferTime(alloc.moveCost(move));
            }
          }
          ++largeAsks;
          if (const auto got = alloc.allocate(16, policy, "large")) {
            alloc.release(got->id);  // it checks in, runs, checks out
          } else {
            ++largeFailures;
          }
        } else if (!ids.empty() && rng.chance(0.52)) {
          const std::size_t pick = rng.below(ids.size());
          alloc.release(ids[pick]);
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          const auto width = static_cast<std::size_t>(rng.range(2, 6));
          if (const auto got = alloc.allocate(width, policy, "m")) {
            ids.push_back(got->id);
          } else {
            ++smallFailures;
          }
        }
        fragSum += alloc.fragmentation();
      }
      table.row()
          .cell(toString(policy))
          .cell(defragBeforeLarge ? "before large asks" : "never")
          .cell(std::uint64_t{largeAsks})
          .cell(std::uint64_t{largeFailures})
          .cell(std::uint64_t{smallFailures})
          .cell(std::uint64_t{moveCount})
          .cell(moveTime.toString())
          .cell(util::formatDouble(fragSum / steps, 4));
    }
  }
  table.print(std::cout);
  std::cout << "\nWithout compaction the 16-column tenant starves behind "
               "fragmented free space; defragmenting on demand rescues it "
               "for a bounded relocation budget (each move = one partial "
               "reconfiguration of the module's width).\n";
  breport.table("defrag", table);
  return breport.finish();
}
