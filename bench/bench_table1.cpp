// Reproduces Table 1 of the paper: "Hardware functions and their resource
// requirements" on the XC2VP50, with utilization percentages against the
// usable device fabric.
#include <iostream>

#include "analysis/figures.hpp"
#include "obs/bench_io.hpp"

int main(int argc, char** argv) {
  prtr::obs::BenchReport report{"table1", argc, argv};
  std::cout << "=== Table 1: Hardware functions and their resource "
               "requirements (XC2VP50) ===\n\n";
  const prtr::util::Table table = prtr::analysis::makeTable1();
  table.print(std::cout);
  std::cout << "\nPaper values: Static 3372/5503/25 @200, PR ctrl 418/432/8 "
               "@66, Median 3141/3270 @200,\n"
               "              Sobel 1159/1060 @200, Smoothing 2053/1601 @200 "
               "-- reproduced exactly (percentages vs 47,232 LUT/FF, 232 "
               "BRAM).\n";
  report.table("table1", table);
  return report.finish();
}
