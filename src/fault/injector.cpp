#include "fault/injector.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "bitstream/parser.hpp"
#include "util/error.hpp"

namespace prtr::fault {

namespace {

constexpr std::size_t idx(FaultKind kind) noexcept {
  return static_cast<std::size_t>(kind);
}

}  // namespace

Injector::Injector(const Plan& plan) : plan_(plan), rng_(plan.seed) {
  util::require(plan.linkStallRate >= 0.0 && plan.linkStallRate <= 1.0 &&
                    plan.wordFlipRate >= 0.0 && plan.wordFlipRate <= 1.0 &&
                    plan.transferTimeoutRate >= 0.0 &&
                    plan.transferTimeoutRate <= 1.0 &&
                    plan.icapAbortRate >= 0.0 && plan.icapAbortRate <= 1.0 &&
                    plan.apiRejectRate >= 0.0 && plan.apiRejectRate <= 1.0,
                "Injector: fault rates must lie in [0, 1]");
  util::require(plan.arrival != Arrival::kFixedPeriod || plan.fixedPeriod > 0,
                "Injector: fixed-schedule arrival needs a positive period");
}

std::uint64_t Injector::totalInjected() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

bool Injector::due(double rate, std::uint64_t& counter) {
  if (rate <= 0.0) return false;
  if (plan_.arrival == Arrival::kFixedPeriod) {
    return ++counter % plan_.fixedPeriod == 0;
  }
  return rng_.chance(rate);
}

std::uint64_t Injector::poisson(double mean) {
  // Knuth's multiplication method, split so exp(-mean) never underflows.
  std::uint64_t total = 0;
  while (mean > 0.0) {
    const double step = std::min(mean, 30.0);
    mean -= step;
    const double limit = std::exp(-step);
    double product = rng_.uniform();
    while (product > limit) {
      ++total;
      product *= rng_.uniform();
    }
  }
  return total;
}

void Injector::attach(sim::SimplexLink& link) {
  if (plan_.linkStallRate <= 0.0) return;
  link.setFaultHook([this](const sim::SimplexLink&, util::Bytes)
                        -> std::optional<sim::TransferFault> {
    if (!due(plan_.linkStallRate, stallCounter_)) return std::nullopt;
    ++injected_[idx(FaultKind::kLinkStall)];
    sim::TransferFault fault;
    fault.stall = plan_.stallDuration;
    return fault;
  });
}

void Injector::corruptWrites(config::ConfigMemory& memory,
                             const bitstream::ParsedStream& parsed,
                             const std::vector<std::uint32_t>* frames) {
  if (plan_.wordFlipRate <= 0.0) return;
  // Collect the writes this operation actually touched (`frames` is sorted
  // by the repair path; null means the whole stream).
  std::vector<const bitstream::FrameWrite*> touched;
  touched.reserve(parsed.writes.size());
  std::uint64_t payloadBytes = 0;
  for (const auto& write : parsed.writes) {
    if (frames != nullptr &&
        !std::binary_search(frames->begin(), frames->end(), write.frame)) {
      continue;
    }
    touched.push_back(&write);
    payloadBytes += write.payload.size();
  }
  if (touched.empty()) return;
  const double words = static_cast<double>(payloadBytes) / 4.0;
  std::uint64_t flips = 0;
  if (plan_.arrival == Arrival::kFixedPeriod) {
    flips = due(plan_.wordFlipRate, flipCounter_) ? 1 : 0;
  } else {
    flips = poisson(plan_.wordFlipRate * words);
  }
  for (std::uint64_t i = 0; i < flips; ++i) {
    const auto& write = *touched[rng_.below(touched.size())];
    const auto offset =
        static_cast<std::uint32_t>(rng_.below(write.payload.size()));
    const auto mask = static_cast<std::uint8_t>(1u << rng_.below(8));
    memory.injectUpset(write.frame, offset, mask);
    ++injected_[idx(FaultKind::kWordFlip)];
  }
}

void Injector::attach(config::IcapController& icap) {
  if (plan_.transferTimeoutRate > 0.0 || plan_.icapAbortRate > 0.0) {
    icap.setFaultHook([this](const bitstream::Bitstream&)
                          -> std::optional<config::IcapFault> {
      if (due(plan_.transferTimeoutRate, timeoutCounter_)) {
        ++injected_[idx(FaultKind::kTransferTimeout)];
        config::IcapFault fault;
        fault.completedFraction = rng_.uniform(0.05, 0.95);
        fault.abort = std::make_exception_ptr(util::FaultError{
            "injected fault: host->ICAP transfer timed out mid-stream"});
        return fault;
      }
      if (due(plan_.icapAbortRate, abortCounter_)) {
        ++injected_[idx(FaultKind::kIcapAbort)];
        config::IcapFault fault;
        fault.completedFraction = rng_.uniform(0.05, 0.95);
        fault.abort = std::make_exception_ptr(
            util::FaultError{"injected fault: ICAP aborted the load"});
        return fault;
      }
      return std::nullopt;
    });
  }
  if (plan_.wordFlipRate > 0.0) {
    util::require(icap.memory().readbackEnabled(),
                  "Injector: word flips need readback-enabled memory "
                  "(enable before attaching)");
    icap.setWriteFaultHook([this, &icap](const bitstream::ParsedStream& parsed,
                                         const std::vector<std::uint32_t>*
                                             frames) {
      corruptWrites(icap.memory(), parsed, frames);
    });
  }
}

void Injector::attach(config::VendorApi& api) {
  if (plan_.apiRejectRate <= 0.0) return;
  api.setFaultHook([this](const bitstream::Bitstream&) {
    if (!due(plan_.apiRejectRate, rejectCounter_)) return false;
    ++injected_[idx(FaultKind::kApiReject)];
    return true;
  });
}

}  // namespace prtr::fault
