#include "fault/fault.hpp"

namespace prtr::fault {

const char* toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkStall: return "link-stall";
    case FaultKind::kWordFlip: return "word-flip";
    case FaultKind::kTransferTimeout: return "transfer-timeout";
    case FaultKind::kIcapAbort: return "icap-abort";
    case FaultKind::kApiReject: return "api-reject";
  }
  return "?";
}

const char* metricSuffix(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkStall: return "link_stall";
    case FaultKind::kWordFlip: return "word_flip";
    case FaultKind::kTransferTimeout: return "transfer_timeout";
    case FaultKind::kIcapAbort: return "icap_abort";
    case FaultKind::kApiReject: return "api_reject";
  }
  return "?";
}

const char* toString(Arrival arrival) noexcept {
  switch (arrival) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kFixedPeriod: return "fixed";
  }
  return "?";
}

}  // namespace prtr::fault
