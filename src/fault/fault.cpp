#include "fault/fault.hpp"

namespace prtr::fault {

const char* toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkStall: return "link-stall";
    case FaultKind::kWordFlip: return "word-flip";
    case FaultKind::kTransferTimeout: return "transfer-timeout";
    case FaultKind::kIcapAbort: return "icap-abort";
    case FaultKind::kApiReject: return "api-reject";
  }
  return "?";
}

const char* metricSuffix(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkStall: return "link_stall";
    case FaultKind::kWordFlip: return "word_flip";
    case FaultKind::kTransferTimeout: return "transfer_timeout";
    case FaultKind::kIcapAbort: return "icap_abort";
    case FaultKind::kApiReject: return "api_reject";
  }
  return "?";
}

const char* toString(Arrival arrival) noexcept {
  switch (arrival) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kFixedPeriod: return "fixed";
  }
  return "?";
}

Plan Plan::forNode(std::uint64_t node) const noexcept {
  Plan derived = *this;
  if (node != 0) {
    // splitmix64 finalizer over (seed, node): statistically independent
    // streams for nearby node indices, and stable across platforms.
    std::uint64_t z = seed + node * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    derived.seed = z ^ (z >> 31);
  }
  return derived;
}

}  // namespace prtr::fault
