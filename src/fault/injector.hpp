#pragma once
/// \file injector.hpp
/// Attaches a fault::Plan to the simulation via the fault hooks exposed by
/// sim::SimplexLink, config::IcapController and config::VendorApi.
///
/// One Injector instance serves one node (one Simulator); all fault
/// decisions consume its single util::Rng in simulation event order, which
/// is what makes chaos runs reproducible regardless of how many scenarios
/// the exec pool runs concurrently. The injector must outlive the objects
/// it is attached to no later than their last use (xd1::Node owns it).

#include <array>
#include <cstdint>

#include "config/icap_controller.hpp"
#include "config/vendor_api.hpp"
#include "fault/fault.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"

namespace prtr::fault {

/// Seed-driven fault source; install with the attach() overloads.
class Injector {
 public:
  explicit Injector(const Plan& plan);

  /// Installs the link-stall decorator (no-op when the stall rate is 0).
  void attach(sim::SimplexLink& link);
  /// Installs the ICAP decorators: transfer timeouts / aborts ahead of the
  /// pipeline, word flips on everything the port writes. The controller's
  /// ConfigMemory must have readback enabled when word flips are on.
  void attach(config::IcapController& icap);
  /// Installs the transient-rejection decorator on the vendor API.
  void attach(config::VendorApi& api);

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }

  /// Faults injected so far, per kind / total.
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const noexcept {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t totalInjected() const noexcept;

 private:
  /// Arrival-model gate for one eligible event of a kind with probability
  /// `rate`; `counter` feeds the fixed schedule.
  [[nodiscard]] bool due(double rate, std::uint64_t& counter);
  /// Poisson-distributed count with the given mean (deterministic, uses
  /// the plan RNG).
  [[nodiscard]] std::uint64_t poisson(double mean);
  /// Flips bits in the frames just written (`frames` null = whole stream).
  void corruptWrites(config::ConfigMemory& memory,
                     const bitstream::ParsedStream& parsed,
                     const std::vector<std::uint32_t>* frames);

  Plan plan_;
  util::Rng rng_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
  std::uint64_t stallCounter_ = 0;
  std::uint64_t timeoutCounter_ = 0;
  std::uint64_t abortCounter_ = 0;
  std::uint64_t flipCounter_ = 0;
  std::uint64_t rejectCounter_ = 0;
};

}  // namespace prtr::fault
