#pragma once
/// \file fault.hpp
/// Deterministic fault-injection plans for the XD1 configuration path.
///
/// The paper's measurements (SelectMap/ICAP transfers over the RapidArray
/// link) are exactly where real HPRC deployments see transient faults; the
/// model in Eqs. 6-7 assumes they never happen. A fault::Plan describes, per
/// node, which fault kinds are injected and at what rate; fault::Injector
/// (injector.hpp) attaches the plan to the simulation's fault hooks. All
/// randomness comes from one seeded util::Rng drawn in simulation event
/// order, so every run is reproducible byte-for-byte at any thread count
/// through the exec pool (each scenario side owns its own Simulator, Node
/// and Injector; nothing is shared across threads).

#include <cstddef>
#include <cstdint>

#include "util/units.hpp"

namespace prtr::fault {

/// The injectable fault taxonomy (see src/fault/README.md).
enum class FaultKind : std::uint8_t {
  kLinkStall,        ///< link transfer held extra time (congestion/retrain)
  kWordFlip,         ///< configuration word corrupted in flight (SEU-like)
  kTransferTimeout,  ///< host->ICAP pipeline times out mid-stream
  kIcapAbort,        ///< ICAP aborts the load (sync-word loss)
  kApiReject,        ///< vendor API fails an admitted load transiently
};

inline constexpr std::size_t kFaultKindCount = 5;

[[nodiscard]] const char* toString(FaultKind kind) noexcept;

/// Suffix used for the fault.injected.<suffix> obs metric of `kind`.
[[nodiscard]] const char* metricSuffix(FaultKind kind) noexcept;

/// Arrival model for fault events.
enum class Arrival : std::uint8_t {
  kPoisson,      ///< independent per-event draws (rates are probabilities)
  kFixedPeriod,  ///< deterministic schedule: every Nth eligible event faults
};

[[nodiscard]] const char* toString(Arrival arrival) noexcept;

/// A seed-driven description of what goes wrong and how often. All rates
/// default to zero: the default plan injects nothing and installs no hooks.
struct Plan {
  std::uint64_t seed = 0x5EEDu;
  Arrival arrival = Arrival::kPoisson;
  /// kFixedPeriod: every `fixedPeriod`-th eligible event faults.
  std::uint64_t fixedPeriod = 2;

  double linkStallRate = 0.0;  ///< probability per link transfer
  util::Time stallDuration = util::Time::microseconds(100);
  double wordFlipRate = 0.0;         ///< probability per 32-bit word written
  double transferTimeoutRate = 0.0;  ///< probability per ICAP load
  double icapAbortRate = 0.0;        ///< probability per ICAP load
  double apiRejectRate = 0.0;        ///< probability per vendor-API load

  /// True when any fault kind can fire.
  [[nodiscard]] bool active() const noexcept {
    return linkStallRate > 0.0 || wordFlipRate > 0.0 ||
           transferTimeoutRate > 0.0 || icapAbortRate > 0.0 ||
           apiRejectRate > 0.0;
  }

  /// The same plan re-seeded for one node of a multi-node deployment
  /// (chassis blade, fleet blade): rates are shared, but each node draws
  /// from its own independent RNG stream, so changing one node's stream
  /// (or adding nodes) never perturbs another node's injection trace.
  /// node 0 keeps the plan's own seed, preserving single-node traces.
  [[nodiscard]] Plan forNode(std::uint64_t node) const noexcept;
};

}  // namespace prtr::fault
