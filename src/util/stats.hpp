#pragma once
/// \file stats.hpp
/// Streaming statistics and fixed-bin histograms for experiment reporting.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prtr::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel sweep reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bin and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double binLow(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Compact one-line-per-bin ASCII rendering.
  [[nodiscard]] std::string toString() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Exact quantile of a sample vector (copies and sorts; for small samples).
[[nodiscard]] double exactQuantile(std::vector<double> samples, double q);

/// Relative error |a-b| / max(|b|, eps); used by model-vs-simulation checks.
[[nodiscard]] double relativeError(double a, double b) noexcept;

}  // namespace prtr::util
