#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace prtr::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  std::size_t idx = 0;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    const double frac = (x - lo_) / (hi_ - lo_);
    idx = std::min(counts_.size() - 1,
                   static_cast<std::size_t>(frac * static_cast<double>(counts_.size())));
  }
  ++counts_[idx];
}

double Histogram::binLow(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return binLow(i) + width / 2.0;
  }
  return hi_;
}

std::string Histogram::toString() const {
  std::string out;
  const std::uint64_t peak = *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char line[96];
    const int bars =
        peak == 0 ? 0
                  : static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof line, "%12.4g | %-40.*s %llu\n", binLow(i), bars,
                  "########################################",
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

double exactQuantile(std::vector<double> samples, double q) {
  require(!samples.empty(), "exactQuantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "exactQuantile: q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double relativeError(double a, double b) noexcept {
  const double scale = std::max(std::abs(b), 1e-300);
  return std::abs(a - b) / scale;
}

}  // namespace prtr::util
