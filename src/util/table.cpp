#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace prtr::util {

std::string formatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  require(!rows_.empty(), "Table: call row() before cell()");
  require(rows_.back().size() < header_.size(), "Table: too many cells in row");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(formatDouble(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const { os << toString(); }

std::string Table::toString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "| " : " | ");
      os << text << std::string(width[c] - text.size(), ' ');
    }
    os << " |\n";
  };
  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emitRow(r);
  return os.str();
}

namespace {

std::string csvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::toCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csvEscape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::writeCsv(const std::string& path) const {
  std::ofstream file{path};
  if (!file) throw Error{"Table: cannot open " + path + " for writing"};
  file << toCsv();
}

}  // namespace prtr::util
