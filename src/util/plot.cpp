#include "util/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string_view>

#include "util/error.hpp"
#include "util/table.hpp"

namespace prtr::util {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

double axisTransform(double v, bool useLog) noexcept {
  return useLog ? std::log10(v) : v;
}

}  // namespace

std::string renderAsciiPlot(const std::vector<Series>& series,
                            const PlotOptions& options) {
  require(!series.empty(), "renderAsciiPlot: no series");
  require(options.width >= 10 && options.height >= 4,
          "renderAsciiPlot: plot area too small");

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    require(s.x.size() == s.y.size(), "renderAsciiPlot: x/y size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options.logX && s.x[i] <= 0.0) continue;
      if (options.logY && s.y[i] <= 0.0) continue;
      const double tx = axisTransform(s.x[i], options.logX);
      const double ty = axisTransform(s.y[i], options.logY);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  require(std::isfinite(xmin) && std::isfinite(ymin),
          "renderAsciiPlot: no plottable points");
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const auto w = static_cast<std::size_t>(options.width);
  const auto h = static_cast<std::size_t>(options.height);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (options.logX && s.x[i] <= 0.0) continue;
      if (options.logY && s.y[i] <= 0.0) continue;
      const double tx = axisTransform(s.x[i], options.logX);
      const double ty = axisTransform(s.y[i], options.logY);
      const double fx = (tx - xmin) / (xmax - xmin);
      const double fy = (ty - ymin) / (ymax - ymin);
      const auto cx = std::min(w - 1, static_cast<std::size_t>(fx * static_cast<double>(w - 1) + 0.5));
      const auto cy = std::min(h - 1, static_cast<std::size_t>(fy * static_cast<double>(h - 1) + 0.5));
      grid[h - 1 - cy][cx] = glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  auto axisValue = [](double t, bool useLog) {
    return useLog ? std::pow(10.0, t) : t;
  };
  char label[32];
  for (std::size_t r = 0; r < h; ++r) {
    if (r == 0) {
      std::snprintf(label, sizeof label, "%10.3g", axisValue(ymax, options.logY));
      os << label;
    } else if (r == h - 1) {
      std::snprintf(label, sizeof label, "%10.3g", axisValue(ymin, options.logY));
      os << label;
    } else {
      os << std::string(10, ' ');
    }
    os << " |" << grid[r] << "|\n";
  }
  os << std::string(11, ' ') << '+' << std::string(w, '-') << "+\n";
  std::snprintf(label, sizeof label, "%-12.3g", axisValue(xmin, options.logX));
  os << std::string(12, ' ') << label;
  os << std::string(w > 36 ? w - 36 : 1, ' ');
  std::snprintf(label, sizeof label, "%12.3g", axisValue(xmax, options.logX));
  os << label << '\n';
  os << "  x: " << options.xLabel << (options.logX ? " (log)" : "")
     << "    y: " << options.yLabel << (options.logY ? " (log)" : "") << '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  [" << kGlyphs[si % sizeof kGlyphs] << "] " << series[si].name << '\n';
  }
  return os.str();
}

std::string renderHeatmap(const std::vector<std::vector<double>>& rows,
                          const HeatmapOptions& options) {
  require(!rows.empty() && !rows.front().empty(), "renderHeatmap: empty grid");
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kRampSize = sizeof kRamp - 1;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& row : rows) {
    require(row.size() == rows.front().size(),
            "renderHeatmap: ragged grid");
    for (double v : row) {
      const double t = options.logScale ? std::log10(std::max(v, 1e-300)) : v;
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (const auto& row : rows) {
    os << '|';
    for (double v : row) {
      const double t = options.logScale ? std::log10(std::max(v, 1e-300)) : v;
      const double frac = (t - lo) / (hi - lo);
      const auto idx = std::min(
          kRampSize - 1, static_cast<std::size_t>(frac * static_cast<double>(kRampSize)));
      os << kRamp[idx];
    }
    os << "|\n";
  }
  os << "x: " << options.xLabel << "   y: " << options.yLabel << "   scale "
     << (options.logScale ? "log10 " : "") << '[' << formatDouble(lo, 3) << ", "
     << formatDouble(hi, 3) << "] over ' ";
  os << std::string_view{kRamp + 1, kRampSize - 1} << "'\n";
  return os.str();
}

}  // namespace prtr::util
