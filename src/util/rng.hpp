#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// All stochastic components (workload generators, synthetic frame payloads,
/// random cache policies) draw from this generator so that every experiment
/// is bit-reproducible across platforms, unlike std::default_random_engine.

#include <cstdint>
#include <limits>

namespace prtr::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  constexpr explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& lane : state_) lane = splitmix64(x);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses rejection-free Lemire reduction bias
  /// acceptable for simulation workloads (n << 2^64).
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : (*this)() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish exponential variate with the given mean (> 0).
  double exponential(double mean) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace prtr::util
