#pragma once
/// \file units.hpp
/// Strongly typed physical quantities used throughout the library.
///
/// Simulated time is kept as an integer number of picoseconds so that
/// event ordering in the discrete-event kernel is exact and platform
/// independent; analytic-model code converts to double seconds at the edge.

#include <cmath>
#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace prtr::util {

/// Simulated time point / duration with picosecond resolution.
///
/// The range of int64 picoseconds is roughly +/- 106 days, far beyond any
/// workload this library simulates (the longest paper experiment is seconds).
class Time {
 public:
  constexpr Time() noexcept = default;

  [[nodiscard]] static constexpr Time picoseconds(std::int64_t ps) noexcept {
    return Time{ps};
  }
  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) noexcept {
    return Time{ns * 1'000};
  }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) noexcept {
    return Time{us * 1'000'000};
  }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) noexcept {
    return Time{ms * 1'000'000'000};
  }
  /// Converts from floating-point seconds, rounding to the nearest picosecond.
  [[nodiscard]] static Time seconds(double s) noexcept {
    return Time{static_cast<std::int64_t>(std::llround(s * 1e12))};
  }
  [[nodiscard]] static constexpr Time zero() noexcept { return Time{0}; }
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ps() const noexcept { return ps_; }
  [[nodiscard]] constexpr double toSeconds() const noexcept {
    return static_cast<double>(ps_) * 1e-12;
  }
  [[nodiscard]] constexpr double toMilliseconds() const noexcept {
    return static_cast<double>(ps_) * 1e-9;
  }
  [[nodiscard]] constexpr double toMicroseconds() const noexcept {
    return static_cast<double>(ps_) * 1e-6;
  }

  constexpr Time& operator+=(Time rhs) noexcept { ps_ += rhs.ps_; return *this; }
  constexpr Time& operator-=(Time rhs) noexcept { ps_ -= rhs.ps_; return *this; }

  friend constexpr Time operator+(Time a, Time b) noexcept { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) noexcept { return Time{a.ps_ - b.ps_}; }
  template <std::integral I>
  friend constexpr Time operator*(Time a, I k) noexcept {
    return Time{a.ps_ * static_cast<std::int64_t>(k)};
  }
  template <std::integral I>
  friend constexpr Time operator*(I k, Time a) noexcept {
    return a * k;
  }
  friend Time operator*(Time a, double k) noexcept {
    return Time{static_cast<std::int64_t>(std::llround(static_cast<double>(a.ps_) * k))};
  }
  friend constexpr double operator/(Time a, Time b) noexcept {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }
  friend constexpr auto operator<=>(Time, Time) noexcept = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "36.09 ms".
  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit Time(std::int64_t ps) noexcept : ps_(ps) {}
  std::int64_t ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

/// A byte count (sizes of bitstreams, transfers, images).
class Bytes {
 public:
  constexpr Bytes() noexcept = default;
  constexpr explicit Bytes(std::uint64_t n) noexcept : n_(n) {}

  [[nodiscard]] static constexpr Bytes kibi(std::uint64_t k) noexcept { return Bytes{k * 1024}; }
  [[nodiscard]] static constexpr Bytes mebi(std::uint64_t m) noexcept { return Bytes{m * 1024 * 1024}; }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] constexpr double toMegabytes() const noexcept {
    return static_cast<double>(n_) * 1e-6;
  }

  constexpr Bytes& operator+=(Bytes rhs) noexcept { n_ += rhs.n_; return *this; }
  friend constexpr Bytes operator+(Bytes a, Bytes b) noexcept { return Bytes{a.n_ + b.n_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) noexcept { return Bytes{a.n_ - b.n_}; }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) noexcept { return Bytes{a.n_ * k}; }
  friend constexpr auto operator<=>(Bytes, Bytes) noexcept = default;

  [[nodiscard]] std::string toString() const;

 private:
  std::uint64_t n_ = 0;
};

std::ostream& operator<<(std::ostream& os, Bytes b);

/// Data transfer rate in bytes per second.
class DataRate {
 public:
  constexpr DataRate() noexcept = default;

  [[nodiscard]] static constexpr DataRate bytesPerSecond(double bps) noexcept {
    return DataRate{bps};
  }
  [[nodiscard]] static constexpr DataRate megabytesPerSecond(double mbps) noexcept {
    return DataRate{mbps * 1e6};
  }
  [[nodiscard]] static constexpr DataRate gigabytesPerSecond(double gbps) noexcept {
    return DataRate{gbps * 1e9};
  }

  [[nodiscard]] constexpr double bytesPerSecond() const noexcept { return bps_; }
  [[nodiscard]] constexpr double toMegabytesPerSecond() const noexcept { return bps_ * 1e-6; }

  /// Time to move `size` bytes at this rate (rounded to picoseconds).
  [[nodiscard]] Time transferTime(Bytes size) const noexcept {
    return Time::seconds(static_cast<double>(size.count()) / bps_);
  }

  /// Rate scaled by an efficiency factor in (0, 1].
  [[nodiscard]] constexpr DataRate scaled(double efficiency) const noexcept {
    return DataRate{bps_ * efficiency};
  }

  friend constexpr auto operator<=>(DataRate, DataRate) noexcept = default;

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit DataRate(double bps) noexcept : bps_(bps) {}
  double bps_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, DataRate r);

/// A clock frequency; used for FPGA fabric clocks and configuration ports.
class Frequency {
 public:
  constexpr Frequency() noexcept = default;

  [[nodiscard]] static constexpr Frequency hertz(double hz) noexcept { return Frequency{hz}; }
  [[nodiscard]] static constexpr Frequency megahertz(double mhz) noexcept {
    return Frequency{mhz * 1e6};
  }

  [[nodiscard]] constexpr double hertz() const noexcept { return hz_; }
  [[nodiscard]] constexpr double toMegahertz() const noexcept { return hz_ * 1e-6; }

  /// Duration of one clock period.
  [[nodiscard]] Time period() const noexcept { return Time::seconds(1.0 / hz_); }
  /// Duration of `n` clock cycles.
  [[nodiscard]] Time cycles(std::uint64_t n) const noexcept {
    return Time::seconds(static_cast<double>(n) / hz_);
  }

  friend constexpr auto operator<=>(Frequency, Frequency) noexcept = default;

  [[nodiscard]] std::string toString() const;

 private:
  constexpr explicit Frequency(double hz) noexcept : hz_(hz) {}
  double hz_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, Frequency f);

}  // namespace prtr::util
