#include "util/rng.hpp"

#include <cmath>

namespace prtr::util {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; uniform() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace prtr::util
