#include "util/deprecation.hpp"

#include <mutex>
#include <set>
#include <string>

#include "util/log.hpp"

namespace prtr::util::detail {

void warnDeprecatedOnce(const char* shim, const char* replacement,
                        const std::source_location& where) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::string site = std::string(where.file_name()) + ":" +
                           std::to_string(where.line()) + ":" + shim;
  {
    const std::lock_guard<std::mutex> lock{mutex};
    if (!warned.insert(site).second) return;
  }
  util::logWarn(shim, " is deprecated (called from ", where.file_name(), ":",
                where.line(), "); use ", replacement, " instead");
}

}  // namespace prtr::util::detail
