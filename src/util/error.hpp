#pragma once
/// \file error.hpp
/// Exception hierarchy for the prtr library.
///
/// Per the project guidelines, failures to perform a required task are
/// signalled with exceptions; recoverable protocol-level outcomes (e.g. a
/// vendor API rejecting a partial bitstream) are modelled as status values
/// at the call site and only become exceptions when the caller demands
/// success.

#include <stdexcept>
#include <string>

namespace prtr::util {

/// Base class for all prtr errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An argument or model parameter outside its documented domain.
class DomainError : public Error {
 public:
  using Error::Error;
};

/// A bitstream failed structural validation (bad magic, CRC, addresses).
class BitstreamError : public Error {
 public:
  using Error::Error;
};

/// A configuration operation was rejected or failed.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// A floorplan or placement constraint was violated.
class PlacementError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation in the simulation kernel.
class SimulationError : public Error {
 public:
  using Error::Error;
};

/// A transient, injected hardware or transport fault (see src/fault). The
/// recovery runtime in config::Manager absorbs these via retry/backoff and
/// the degradation ladder; without a recovery policy they surface to the
/// caller like any other error.
class FaultError : public Error {
 public:
  using Error::Error;
};

/// Throws DomainError with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw DomainError{message};
}

}  // namespace prtr::util
