#pragma once
/// \file table.hpp
/// Aligned text tables and CSV emission for benchmark/report output.

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace prtr::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a consistent precision so reproduced paper tables line up.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 4);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& rowAt(std::size_t i) const {
    return rows_.at(i);
  }

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string toString() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string toCsv() const;
  void writeCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` significant digits.
[[nodiscard]] std::string formatDouble(double value, int precision = 4);

}  // namespace prtr::util
