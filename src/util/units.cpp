#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace prtr::util {
namespace {

std::string formatWithUnit(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.4g %s", value, unit);
  return std::string{buf.data()};
}

}  // namespace

std::string Time::toString() const {
  const double s = toSeconds();
  const double mag = std::abs(s);
  if (mag >= 1.0) return formatWithUnit(s, "s");
  if (mag >= 1e-3) return formatWithUnit(s * 1e3, "ms");
  if (mag >= 1e-6) return formatWithUnit(s * 1e6, "us");
  if (mag >= 1e-9) return formatWithUnit(s * 1e9, "ns");
  return formatWithUnit(s * 1e12, "ps");
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.toString(); }

std::string Bytes::toString() const {
  const auto n = static_cast<double>(n_);
  if (n >= 1e9) return formatWithUnit(n * 1e-9, "GB");
  if (n >= 1e6) return formatWithUnit(n * 1e-6, "MB");
  if (n >= 1e3) return formatWithUnit(n * 1e-3, "kB");
  return formatWithUnit(n, "B");
}

std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.toString(); }

std::string DataRate::toString() const {
  if (bps_ >= 1e9) return formatWithUnit(bps_ * 1e-9, "GB/s");
  return formatWithUnit(bps_ * 1e-6, "MB/s");
}

std::ostream& operator<<(std::ostream& os, DataRate r) { return os << r.toString(); }

std::string Frequency::toString() const { return formatWithUnit(hz_ * 1e-6, "MHz"); }

std::ostream& operator<<(std::ostream& os, Frequency f) { return os << f.toString(); }

}  // namespace prtr::util
