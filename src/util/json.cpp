#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace prtr::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string formatNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips any double; shorten when fewer digits suffice so the
  // common cases (integers, one-decimal ratios) stay readable and stable.
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

Writer& Writer::beginObject() {
  separate();
  *os_ << '{';
  hasElement_.push_back(false);
  return *this;
}

Writer& Writer::endObject() {
  hasElement_.pop_back();
  *os_ << '}';
  return *this;
}

Writer& Writer::beginArray() {
  separate();
  *os_ << '[';
  hasElement_.push_back(false);
  return *this;
}

Writer& Writer::endArray() {
  hasElement_.pop_back();
  *os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view name) {
  separate();
  *os_ << '"' << escape(name) << "\":";
  afterKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view text) {
  separate();
  *os_ << '"' << escape(text) << '"';
  return *this;
}

Writer& Writer::value(double number) {
  separate();
  *os_ << formatNumber(number);
  return *this;
}

Writer& Writer::value(std::uint64_t number) {
  separate();
  *os_ << number;
  return *this;
}

Writer& Writer::value(std::int64_t number) {
  separate();
  *os_ << number;
  return *this;
}

Writer& Writer::value(bool flag) {
  separate();
  *os_ << (flag ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  separate();
  *os_ << "null";
  return *this;
}

Writer& Writer::raw(std::string_view text) {
  separate();
  *os_ << text;
  return *this;
}

void Writer::separate() {
  if (afterKey_) {
    // The value right after a key is glued to it; the comma (if any) was
    // written before the key itself.
    afterKey_ = false;
    return;
  }
  if (!hasElement_.empty()) {
    if (hasElement_.back()) *os_ << ',';
    hasElement_.back() = true;
  }
}

}  // namespace prtr::util::json
