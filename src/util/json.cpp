#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace prtr::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string formatNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // %.17g round-trips any double; shorten when fewer digits suffice so the
  // common cases (integers, one-decimal ratios) stay readable and stable.
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

Writer& Writer::beginObject() {
  separate();
  *os_ << '{';
  hasElement_.push_back(false);
  return *this;
}

Writer& Writer::endObject() {
  hasElement_.pop_back();
  *os_ << '}';
  return *this;
}

Writer& Writer::beginArray() {
  separate();
  *os_ << '[';
  hasElement_.push_back(false);
  return *this;
}

Writer& Writer::endArray() {
  hasElement_.pop_back();
  *os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view name) {
  separate();
  *os_ << '"' << escape(name) << "\":";
  afterKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view text) {
  separate();
  *os_ << '"' << escape(text) << '"';
  return *this;
}

Writer& Writer::value(double number) {
  separate();
  *os_ << formatNumber(number);
  return *this;
}

Writer& Writer::value(std::uint64_t number) {
  separate();
  *os_ << number;
  return *this;
}

Writer& Writer::value(std::int64_t number) {
  separate();
  *os_ << number;
  return *this;
}

Writer& Writer::value(bool flag) {
  separate();
  *os_ << (flag ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  separate();
  *os_ << "null";
  return *this;
}

Writer& Writer::raw(std::string_view text) {
  separate();
  *os_ << text;
  return *this;
}

void Writer::separate() {
  if (afterKey_) {
    // The value right after a key is glued to it; the comma (if any) was
    // written before the key itself.
    afterKey_ = false;
    return;
  }
  if (!hasElement_.empty()) {
    if (hasElement_.back()) *os_ << ',';
    hasElement_.back() = true;
  }
}

/// Recursive-descent parser over the full JSON grammar. Kept private to the
/// translation unit; Value::parse is the entry point.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value value = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw DomainError{"json: " + what + " at offset " +
                      std::to_string(pos_)};
  }

  void skipWhitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parseValue(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWhitespace();
    const char c = peek();
    Value value;
    switch (c) {
      case '{': parseObject(value, depth); break;
      case '[': parseArray(value, depth); break;
      case '"':
        value.kind_ = Value::Kind::kString;
        value.string_ = parseString();
        break;
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        value.kind_ = Value::Kind::kBool;
        value.bool_ = true;
        break;
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        value.kind_ = Value::Kind::kBool;
        value.bool_ = false;
        break;
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        value.kind_ = Value::Kind::kNull;
        break;
      default:
        value.kind_ = Value::Kind::kNumber;
        value.number_ = parseNumber();
        break;
    }
    return value;
  }

  void parseObject(Value& value, std::size_t depth) {
    value.kind_ = Value::Kind::kObject;
    expect('{');
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  void parseArray(Value& value, std::size_t depth) {
    value.kind_ = Value::Kind::kArray;
    expect('[');
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      value.array_.push_back(parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': appendCodepoint(out); break;
        default: fail("unknown escape");
      }
    }
  }

  std::uint32_t parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void appendCodepoint(std::string& out) {
    std::uint32_t code = parseHex4();
    // Surrogate pair: a high surrogate must be followed by \uDC00..\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("lone high surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("lone low surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    const std::string token{text_.substr(start, pos_ - start)};
    return std::strtod(token.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser{text}.document(); }

namespace {

[[noreturn]] void kindMismatch(const char* wanted) {
  throw DomainError{std::string{"json: value is not "} + wanted};
}

}  // namespace

bool Value::asBool() const {
  if (kind_ != Kind::kBool) kindMismatch("a bool");
  return bool_;
}

double Value::asNumber() const {
  if (kind_ != Kind::kNumber) kindMismatch("a number");
  return number_;
}

const std::string& Value::asString() const {
  if (kind_ != Kind::kString) kindMismatch("a string");
  return string_;
}

const std::vector<Value>& Value::asArray() const {
  if (kind_ != Kind::kArray) kindMismatch("an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::asObject() const {
  if (kind_ != Kind::kObject) kindMismatch("an object");
  return members_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw DomainError{"json: missing object member \"" + std::string{key} +
                      "\""};
  }
  return *value;
}

}  // namespace prtr::util::json
