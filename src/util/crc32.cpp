#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace prtr::util {
namespace {

/// Slicing-by-8 tables: table[0] is the classic byte table; table[k] maps a
/// byte processed k positions earlier in an 8-byte block. Values are
/// identical to the byte-at-a-time loop for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> makeTables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr auto kTables = makeTables();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = crc_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint64_t block;
      std::memcpy(&block, p, 8);
      block ^= crc;
      crc = kTables[7][block & 0xFFu] ^ kTables[6][(block >> 8) & 0xFFu] ^
            kTables[5][(block >> 16) & 0xFFu] ^
            kTables[4][(block >> 24) & 0xFFu] ^
            kTables[3][(block >> 32) & 0xFFu] ^
            kTables[2][(block >> 40) & 0xFFu] ^
            kTables[1][(block >> 48) & 0xFFu] ^ kTables[0][block >> 56];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  crc_ = crc;
}

}  // namespace prtr::util
