#include "util/crc32.hpp"

#include <array>

namespace prtr::util {
namespace {

constexpr std::array<std::uint32_t, 256> makeTable() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = makeTable();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  for (const std::uint8_t byte : data) {
    crc_ = kTable[(crc_ ^ byte) & 0xFFu] ^ (crc_ >> 8);
  }
}

}  // namespace prtr::util
