#pragma once
/// \file plot.hpp
/// Terminal line plots used by the figure-reproduction benches so that the
/// shape of each paper figure is visible without external tooling.

#include <string>
#include <vector>

namespace prtr::util {

/// One named data series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Axis scaling options for AsciiPlot.
struct PlotOptions {
  int width = 100;      ///< character columns of the plotting area
  int height = 28;      ///< character rows of the plotting area
  bool logX = false;    ///< log10 x axis (all x must be > 0)
  bool logY = false;    ///< log10 y axis (all y must be > 0)
  std::string xLabel = "x";
  std::string yLabel = "y";
  std::string title;
};

/// Renders up to 8 series as a character-grid scatter/line plot.
/// Each series uses a distinct glyph; a legend maps glyphs to names.
[[nodiscard]] std::string renderAsciiPlot(const std::vector<Series>& series,
                                          const PlotOptions& options);

/// Options for renderHeatmap.
struct HeatmapOptions {
  std::string title;
  std::string xLabel = "x";
  std::string yLabel = "y";
  bool logScale = false;  ///< map log10(value) to the glyph ramp
};

/// Renders a dense 2D grid as a character heatmap (rows[0] is the top
/// row). Values map linearly (or log10) onto the ramp " .:-=+*#%@".
[[nodiscard]] std::string renderHeatmap(
    const std::vector<std::vector<double>>& rows, const HeatmapOptions& options);

}  // namespace prtr::util
