#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial) used to protect synthetic bitstreams,
/// mirroring the CRC words embedded in real Xilinx configuration streams.

#include <cstddef>
#include <cstdint>
#include <span>

namespace prtr::util {

/// Incremental CRC-32 computation.
class Crc32 {
 public:
  /// Feeds `data` into the running checksum.
  void update(std::span<const std::uint8_t> data) noexcept;

  /// Final checksum value for everything fed so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~crc_; }

  /// One-shot convenience.
  [[nodiscard]] static std::uint32_t of(std::span<const std::uint8_t> data) noexcept {
    Crc32 c;
    c.update(data);
    return c.value();
  }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

}  // namespace prtr::util
