#pragma once
/// \file log.hpp
/// Minimal leveled logger. Quiet by default so test and bench output stays
/// clean; raise the level when debugging simulator schedules.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace prtr::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.
class Log {
 public:
  static void setLevel(LogLevel level) noexcept { threshold() = level; }
  [[nodiscard]] static LogLevel level() noexcept { return threshold(); }

  /// Emits one line if `level` passes the threshold. Thread-safe.
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel& threshold() noexcept {
    static LogLevel value = LogLevel::kWarn;
    return value;
  }
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(Args&&... args) {
  if (Log::level() <= LogLevel::kDebug)
    Log::write(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logInfo(Args&&... args) {
  if (Log::level() <= LogLevel::kInfo)
    Log::write(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void logWarn(Args&&... args) {
  if (Log::level() <= LogLevel::kWarn)
    Log::write(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

}  // namespace prtr::util
