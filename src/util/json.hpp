#pragma once
/// \file json.hpp
/// Minimal JSON emission shared by every subsystem that writes
/// machine-readable output: the analyze diagnostics sink, the obs metrics
/// snapshots and Chrome-trace exporter, and the bench --json documents.
/// Emission only — the repo never parses JSON, so there is no reader here.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace prtr::util::json {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
[[nodiscard]] std::string escape(std::string_view text);

/// Formats a double the way JSON expects: finite shortest-round-trip
/// representation; NaN/Inf (not representable in JSON) become null.
[[nodiscard]] std::string formatNumber(double value);

/// Streaming minified-JSON writer with automatic comma placement. Usage:
///
///   Writer w{os};
///   w.beginObject();
///   w.key("calls").value(std::uint64_t{42});
///   w.key("tables").beginArray();
///   w.value("t2");
///   w.endArray();
///   w.endObject();
///
/// The writer does not validate overall document shape beyond matching
/// begin/end nesting; callers are expected to emit well-formed sequences.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}

  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Emits `"name":` inside an object; the next value belongs to it.
  Writer& key(std::string_view name);

  Writer& value(std::string_view text);
  Writer& value(const char* text) { return value(std::string_view{text}); }
  Writer& value(double number);
  Writer& value(std::uint64_t number);
  Writer& value(std::int64_t number);
  Writer& value(int number) { return value(static_cast<std::int64_t>(number)); }
  Writer& value(bool flag);
  Writer& null();

  /// Emits pre-rendered JSON verbatim (e.g. a number formatted elsewhere).
  Writer& raw(std::string_view text);

 private:
  /// Writes the separating comma when a value follows a sibling value.
  void separate();

  std::ostream* os_;
  /// One entry per open container: true once a first element was written.
  std::vector<bool> hasElement_;
  /// True directly after key() — the next value completes the member.
  bool afterKey_ = false;
};

}  // namespace prtr::util::json
