#pragma once
/// \file json.hpp
/// Minimal JSON support shared by every subsystem that emits or ingests
/// machine-readable output: the analyze diagnostics sink, the obs metrics
/// snapshots and Chrome-trace exporter, the bench --json documents, and the
/// prtr-report regression harness (the one consumer that reads JSON back —
/// see Value::parse).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prtr::util::json {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
[[nodiscard]] std::string escape(std::string_view text);

/// Formats a double the way JSON expects: finite shortest-round-trip
/// representation; NaN/Inf (not representable in JSON) become null.
[[nodiscard]] std::string formatNumber(double value);

/// Streaming minified-JSON writer with automatic comma placement. Usage:
///
///   Writer w{os};
///   w.beginObject();
///   w.key("calls").value(std::uint64_t{42});
///   w.key("tables").beginArray();
///   w.value("t2");
///   w.endArray();
///   w.endObject();
///
/// The writer does not validate overall document shape beyond matching
/// begin/end nesting; callers are expected to emit well-formed sequences.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}

  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Emits `"name":` inside an object; the next value belongs to it.
  Writer& key(std::string_view name);

  Writer& value(std::string_view text);
  Writer& value(const char* text) { return value(std::string_view{text}); }
  Writer& value(double number);
  Writer& value(std::uint64_t number);
  Writer& value(std::int64_t number);
  Writer& value(int number) { return value(static_cast<std::int64_t>(number)); }
  Writer& value(bool flag);
  Writer& null();

  /// Emits pre-rendered JSON verbatim (e.g. a number formatted elsewhere).
  Writer& raw(std::string_view text);

 private:
  /// Writes the separating comma when a value follows a sibling value.
  void separate();

  std::ostream* os_;
  /// One entry per open container: true once a first element was written.
  std::vector<bool> hasElement_;
  /// True directly after key() — the next value completes the member.
  bool afterKey_ = false;
};

/// Parsed JSON value. Objects keep their members in document order (the
/// documents this library writes are already deterministically ordered, so
/// preserving order makes round-trips and diffs stable); lookup by key is
/// linear, which is fine at bench-report scale.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Strict parse of one JSON document (trailing garbage rejected).
  /// Throws DomainError on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool isNull() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isObject() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool isArray() const noexcept { return kind_ == Kind::kArray; }

  /// Typed accessors; each throws DomainError when the kind mismatches.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<Value>& asArray() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& asObject()
      const;

  /// Object member under `key`, or nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Object member under `key`; throws DomainError when absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace prtr::util::json
