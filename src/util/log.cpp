#include "util/log.hpp"

namespace prtr::util {
namespace {

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  if (level < threshold()) return;
  const std::scoped_lock lock{sinkMutex()};
  std::clog << "[prtr:" << levelName(level) << "] " << message << '\n';
}

}  // namespace prtr::util
