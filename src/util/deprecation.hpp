#pragma once
/// \file deprecation.hpp
/// Shared warn-once machinery for deprecated API shims.
///
/// Shims kept for source compatibility call warnDeprecatedOnce with the
/// caller's source_location; the first call from each distinct call site
/// logs one migration hint and later calls from the same site are free.
/// This is the PR 4 shim pattern, hoisted into util so every layer's
/// deprecated surface reports the same way.

#include <source_location>

namespace prtr::util::detail {

/// Logs "<shim> is deprecated (called from file:line); use <replacement>"
/// once per distinct (file, line, shim) triple. Thread-safe.
void warnDeprecatedOnce(const char* shim, const char* replacement,
                        const std::source_location& where);

}  // namespace prtr::util::detail
