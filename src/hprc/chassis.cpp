#include "hprc/chassis.hpp"

#include <algorithm>
#include <sstream>

#include "exec/pool.hpp"
#include "prof/profiler.hpp"
#include "util/error.hpp"

namespace prtr::hprc {

const char* toString(Partition partition) noexcept {
  switch (partition) {
    case Partition::kBlock: return "block";
    case Partition::kRoundRobin: return "round-robin";
  }
  return "?";
}

double ChassisReport::balance() const noexcept {
  if (blades.empty() || makespan == util::Time::zero()) return 0.0;
  const double avg =
      totalBladeTime.toSeconds() / static_cast<double>(blades.size());
  return avg / makespan.toSeconds();
}

std::string ChassisReport::toString() const {
  std::ostringstream os;
  os << "chassis: " << blades.size() << " blades, makespan "
     << makespan.toString() << ", balance " << balance() << ", "
     << configurations << " reconfigurations\n";
  for (std::size_t i = 0; i < blades.size(); ++i) {
    os << "  blade" << i << ": " << blades[i].calls << " calls, "
       << blades[i].total.toString() << ", H=" << blades[i].hitRatio() << '\n';
  }
  return os.str();
}

std::vector<tasks::Workload> partitionWorkload(const tasks::Workload& workload,
                                               std::size_t blades,
                                               Partition partition) {
  util::require(blades >= 1, "partitionWorkload: need at least one blade");
  std::vector<tasks::Workload> shares(blades);
  for (std::size_t b = 0; b < blades; ++b) {
    shares[b].name = workload.name + "/blade" + std::to_string(b);
  }
  if (partition == Partition::kRoundRobin) {
    for (std::size_t i = 0; i < workload.calls.size(); ++i) {
      shares[i % blades].calls.push_back(workload.calls[i]);
    }
  } else {
    const std::size_t per = (workload.calls.size() + blades - 1) / blades;
    for (std::size_t b = 0; b < blades; ++b) {
      const std::size_t begin = std::min(b * per, workload.calls.size());
      const std::size_t end = std::min(begin + per, workload.calls.size());
      shares[b].calls.assign(workload.calls.begin() + static_cast<std::ptrdiff_t>(begin),
                             workload.calls.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return shares;
}

runtime::ScenarioOptions bladeScenarioOptions(
    const runtime::ScenarioOptions& scenario, std::uint64_t blade) {
  runtime::ScenarioOptions bladeOptions = scenario;
  bladeOptions.sides = runtime::ScenarioSides::kPrtrOnly;
  bladeOptions.hooks = obs::Hooks{};
  bladeOptions.hooks.profiler = scenario.hooks.profiler;
  bladeOptions.faults = scenario.faults.forNode(blade);
  return bladeOptions;
}

ChassisReport runChassis(const tasks::FunctionRegistry& registry,
                         const tasks::Workload& workload,
                         const ChassisOptions& options) {
  util::require(options.blades >= 1 && options.blades <= 6,
                "runChassis: an XD1 chassis holds 1..6 blades");
  const auto shares =
      partitionWorkload(workload, options.blades, options.partition);

  const prof::Scope runScope{options.scenario.hooks.profiler, "chassis.run"};

  ChassisReport report;
  std::vector<std::size_t> bladeIndices(shares.size());
  for (std::size_t b = 0; b < bladeIndices.size(); ++b) bladeIndices[b] = b;
  report.blades = exec::parallelMap(
      bladeIndices,
      [&](const std::size_t blade) {
        const runtime::ScenarioOptions bladeOptions =
            bladeScenarioOptions(options.scenario, blade);
        const prof::Scope bladeScope{bladeOptions.hooks.profiler,
                                     "chassis.blade"};
        if (shares[blade].calls.empty()) return runtime::ExecutionReport{};
        return runtime::runScenario(registry, shares[blade], bladeOptions).prtr;
      },
      exec::ForOptions{.threads = options.threads});

  // Per-blade leaves fold in an ordered tree reduction. Every blade's names
  // are unique under its "bladeN." prefix, so the reduction is byte-equal to
  // the old left-to-right merge while moving (never re-keying) every node
  // past the leaf level.
  std::vector<obs::MetricsSnapshot> leaves;
  leaves.reserve(report.blades.size());
  for (std::size_t b = 0; b < report.blades.size(); ++b) {
    const auto& blade = report.blades[b];
    report.makespan = std::max(report.makespan, blade.total);
    report.totalBladeTime += blade.total;
    report.configurations += blade.configurations;
    obs::MetricsSnapshot leaf;
    leaf.merge(blade.metrics, "blade" + std::to_string(b) + ".");
    leaves.push_back(std::move(leaf));
  }
  report.metrics = obs::reduceSnapshots(std::move(leaves));
  report.metrics.counters["chassis.blades"] = report.blades.size();
  report.metrics.counters["chassis.configurations"] = report.configurations;
  report.metrics.counters["chassis.makespan_ps"] =
      static_cast<std::uint64_t>(report.makespan.ps());
  report.metrics.counters["chassis.total_blade_ps"] =
      static_cast<std::uint64_t>(report.totalBladeTime.ps());
  report.metrics.gauges["chassis.balance"] = report.balance();
  if (options.scenario.hooks.metrics) {
    options.scenario.hooks.metrics->absorb(report.metrics);
  }
  if (options.scenario.hooks.shardedMetrics) {
    options.scenario.hooks.shardedMetrics->local().absorbAdditive(
        report.metrics);
  }
  return report;
}

}  // namespace prtr::hprc
