#pragma once
/// \file chassis.hpp
/// Multi-blade HPRC: a Cray XD1 chassis holds up to six compute blades
/// (paper section 4), each with its own FPGA, links, and configuration
/// machinery. The chassis model partitions a workload across blades and
/// runs each blade's share on an independent simulator — embarrassingly
/// parallel across host threads, which is also how the sweep harness uses
/// it. This realizes the paper's claim that the approach "can be applied
/// to any of the available HPRC systems" at system scale.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scenario.hpp"
#include "tasks/workload.hpp"

namespace prtr::hprc {

/// How the chassis splits one workload across blades.
enum class Partition : std::uint8_t {
  kBlock,       ///< contiguous chunks (preserves locality within a blade)
  kRoundRobin,  ///< call i goes to blade i % n (destroys locality)
};

[[nodiscard]] const char* toString(Partition partition) noexcept;

/// Aggregate result of a chassis run.
struct ChassisReport {
  std::vector<runtime::ExecutionReport> blades;
  util::Time makespan;         ///< slowest blade (chassis completion time)
  util::Time totalBladeTime;   ///< sum over blades (resource usage)
  std::uint64_t configurations = 0;
  /// Per-blade metrics merged under `bladeN.` prefixes plus chassis.*
  /// aggregates (makespan, total blade time, balance).
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::size_t bladeCount() const noexcept { return blades.size(); }
  /// Load balance: average blade time / makespan (1 = perfectly balanced).
  [[nodiscard]] double balance() const noexcept;
  [[nodiscard]] std::string toString() const;
};

/// Chassis configuration.
struct ChassisOptions {
  std::size_t blades = 6;  ///< the XD1 chassis maximum
  Partition partition = Partition::kBlock;
  runtime::ScenarioOptions scenario{};
  std::size_t threads = 0;  ///< host threads for the blade sims (0 = auto)
};

/// Splits `workload` per the partitioning strategy.
[[nodiscard]] std::vector<tasks::Workload> partitionWorkload(
    const tasks::Workload& workload, std::size_t blades, Partition partition);

/// One blade's ScenarioOptions: a hook-free, PRTR-only copy of `scenario`
/// so no caller-owned timeline/registry is shared across blade threads (the
/// profiler survives — it aggregates under its own lock). Fault plans are
/// re-seeded per blade via fault::Plan::forNode, so multi-blade chaos runs
/// draw independent injection streams per node. Shared by runChassis and
/// the fleet layer's blade calibration.
[[nodiscard]] runtime::ScenarioOptions bladeScenarioOptions(
    const runtime::ScenarioOptions& scenario, std::uint64_t blade);

/// Runs `workload` across the chassis under PRTR and returns the aggregate.
[[nodiscard]] ChassisReport runChassis(const tasks::FunctionRegistry& registry,
                                       const tasks::Workload& workload,
                                       const ChassisOptions& options);

}  // namespace prtr::hprc
