#pragma once
/// \file device.hpp
/// Device catalog. The primary part is the XC2VP50 found on the Cray XD1
/// application accelerator; its geometry is calibrated so that bitstream
/// sizes reproduce the paper's Table 2 (full: 2,381,764 B exactly; the PRR
/// partial sizes within 0.06%).

#include <memory>
#include <string>
#include <vector>

#include "fabric/geometry.hpp"
#include "util/units.hpp"

namespace prtr::fabric {

/// An FPGA device: geometry plus usable-fabric bookkeeping.
class Device {
 public:
  Device(DeviceGeometry geometry, ResourceVec usable, std::string notes);

  [[nodiscard]] const DeviceGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const std::string& name() const noexcept { return geometry_.name(); }

  /// Fabric available to user logic (hard-core area already subtracted;
  /// paper section 4.2: "the two PowerPC hard cores occupy a fair amount of
  /// the FPGA fabric resources").
  [[nodiscard]] const ResourceVec& usableResources() const noexcept { return usable_; }

  [[nodiscard]] const std::string& notes() const noexcept { return notes_; }

 private:
  DeviceGeometry geometry_;
  ResourceVec usable_;
  std::string notes_;
};

/// Xilinx Virtex-II Pro XC2VP50 (the Cray XD1 AAP device).
[[nodiscard]] Device makeXc2vp50();

/// Xilinx Virtex-II Pro XC2VP30 (smaller sibling, for scaling studies).
[[nodiscard]] Device makeXc2vp30();

/// Virtex-II Pro family extremes (device-size scaling studies).
[[nodiscard]] Device makeXc2vp20();
[[nodiscard]] Device makeXc2vp70();
[[nodiscard]] Device makeXc2vp100();

/// Xilinx Virtex-4 LX60/LX100 (newer family; faster ICAP, what-if studies).
[[nodiscard]] Device makeXc4vlx60();
[[nodiscard]] Device makeXc4vlx100();

/// Xilinx Virtex-5 LX110 (32-bit ICAP at 100 MHz).
[[nodiscard]] Device makeXc5vlx110();

/// Looks a device up by name (see deviceCatalog() for the names).
[[nodiscard]] Device makeDevice(const std::string& name);

/// Every part the catalog knows, smallest to largest per family.
[[nodiscard]] std::vector<std::string> deviceCatalog();

}  // namespace prtr::fabric
