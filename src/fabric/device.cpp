#include "fabric/device.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::fabric {
namespace {

// Per-column frame counts in the Virtex-II style (CLB column: 22 frames,
// BRAM content+interconnect: 64+22, IOB: 4, GCLK: 4). The PPC region is
// modelled as one 20-frame column so the full-device frame count lands on
// the calibration target.
constexpr std::uint32_t kClbFrames = 22;
constexpr std::uint32_t kBramPairFrames = 86;
constexpr std::uint32_t kIobFrames = 4;
constexpr std::uint32_t kGclkFrames = 4;
constexpr std::uint32_t kPpcFrames = 20;

// XC2VP50 fabric: 88 CLB rows; a CLB column holds 88 CLBs x 4 slices x
// 2 LUTs/FFs = 704 each. A BRAM column holds 29 BRAM18 + 29 MULT18
// (8 columns -> 232 of each, the documented XC2VP50 totals).
constexpr ResourceVec kClbColumn{704, 704, 0, 0, 0};
constexpr ResourceVec kBramColumn{0, 0, 29, 29, 0};
// The two PPC405 hard cores displace fabric worth 1344 LUT/FF pairs, which
// brings the usable LUT total from 69*704 = 48,576 down to the documented
// 47,232.
constexpr std::uint32_t kPpcFabricPenalty = 1344;

void appendColumns(std::vector<ColumnSpec>& cols, ColumnKind kind,
                   std::uint32_t frames, ResourceVec res, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) cols.push_back(ColumnSpec{kind, frames, res});
}

}  // namespace

Device::Device(DeviceGeometry geometry, ResourceVec usable, std::string notes)
    : geometry_(std::move(geometry)), usable_(usable), notes_(std::move(notes)) {}

Device makeXc2vp50() {
  // Column order (left to right), chosen so that the layouts used by the
  // paper exist as contiguous column ranges:
  //   [0..15]   IOB,IOB + 13 CLB + BRAM            -> dual-PRR region A (380 frames)
  //   [16..50]  34 CLB + BRAM                      -> single-PRR region (834 frames)
  //   [51..64]  (2 CLB + BRAM) x4 + 1 CLB + BRAM   -> centre fabric
  //   [65..66]  PPC, GCLK
  //   [67..82]  BRAM + 13 CLB + IOB,IOB            -> dual-PRR region B (380 frames)
  std::vector<ColumnSpec> cols;
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, kClbColumn, 13);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, kBramColumn, 1);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, kClbColumn, 34);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, kBramColumn, 1);
  for (int group = 0; group < 4; ++group) {
    appendColumns(cols, ColumnKind::kClb, kClbFrames, kClbColumn, 2);
    appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, kBramColumn, 1);
  }
  appendColumns(cols, ColumnKind::kClb, kClbFrames, kClbColumn, 1);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, kBramColumn, 1);
  appendColumns(cols, ColumnKind::kPpc, kPpcFrames, ResourceVec{0, 0, 0, 0, 2}, 1);
  appendColumns(cols, ColumnKind::kGclk, kGclkFrames, {}, 1);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, kBramColumn, 1);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, kClbColumn, 13);
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);

  DeviceGeometry geometry{"xc2vp50", 88, std::move(cols), DeviceGeometry::Encoding{}};

  ResourceVec usable{};
  for (const ColumnSpec& c : geometry.columns()) usable += c.resources;
  usable.luts -= kPpcFabricPenalty;
  usable.ffs -= kPpcFabricPenalty;

  return Device{std::move(geometry), usable,
                "Virtex-II Pro XC2VP50-7 as on the Cray XD1 AAP; geometry "
                "calibrated to the paper's Table 2 bitstream sizes"};
}

namespace {

/// Generic Virtex-II-Pro-style part: symmetric layout with `clbCols` CLB
/// columns split around a PPC/GCLK centre and `bramCols` BRAM pairs.
Device makeV2ProLike(const std::string& name, std::uint32_t rows,
                     std::size_t clbCols, std::size_t bramCols,
                     std::uint32_t bramPerColumn, std::uint32_t ppcCount,
                     std::uint32_t ppcPenalty, const std::string& notes) {
  const auto lutsPerColumn = rows * 4 * 2;
  const ResourceVec clbColumn{lutsPerColumn, lutsPerColumn, 0, 0, 0};
  const ResourceVec bramColumn{0, 0, bramPerColumn, bramPerColumn, 0};

  std::vector<ColumnSpec> cols;
  const std::size_t halfClb = clbCols / 2;
  const std::size_t halfBram = bramCols / 2;
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, clbColumn, halfClb);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, bramColumn,
                halfBram);
  if (ppcCount > 0) {
    appendColumns(cols, ColumnKind::kPpc, kPpcFrames,
                  ResourceVec{0, 0, 0, 0, ppcCount}, 1);
  }
  appendColumns(cols, ColumnKind::kGclk, kGclkFrames, {}, 1);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, bramColumn,
                bramCols - halfBram);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, clbColumn,
                clbCols - halfClb);
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);

  DeviceGeometry geometry{name, rows, std::move(cols),
                          DeviceGeometry::Encoding{}};
  ResourceVec usable{};
  for (const ColumnSpec& c : geometry.columns()) usable += c.resources;
  usable.luts -= ppcPenalty;
  usable.ffs -= ppcPenalty;
  return Device{std::move(geometry), usable, notes};
}

/// Generic Virtex-4/5-style part: short frames, no hard PPC by default.
Device makeV4V5Like(const std::string& name, std::uint32_t rows,
                    std::size_t clbCols, std::size_t bramCols,
                    const ResourceVec& clbColumn, const ResourceVec& bramColumn,
                    const DeviceGeometry::Encoding& enc,
                    const std::string& notes) {
  std::vector<ColumnSpec> cols;
  appendColumns(cols, ColumnKind::kIob, 30, {}, 3);
  appendColumns(cols, ColumnKind::kClb, 132, clbColumn, clbCols);
  appendColumns(cols, ColumnKind::kBramPair, 148, bramColumn, bramCols);
  appendColumns(cols, ColumnKind::kGclk, 24, {}, 1);
  DeviceGeometry geometry{name, rows, std::move(cols), enc};
  ResourceVec usable{};
  for (const ColumnSpec& c : geometry.columns()) usable += c.resources;
  return Device{std::move(geometry), usable, notes};
}

}  // namespace

Device makeXc2vp20() {
  return makeV2ProLike("xc2vp20", 56, 46, 5, 18, 2, 1088,
                       "Virtex-II Pro XC2VP20 (family scaling)");
}

Device makeXc2vp70() {
  return makeV2ProLike("xc2vp70", 104, 82, 10, 33, 2, 1600,
                       "Virtex-II Pro XC2VP70 (family scaling)");
}

Device makeXc2vp100() {
  return makeV2ProLike("xc2vp100", 120, 94, 12, 37, 2, 1856,
                       "Virtex-II Pro XC2VP100 (family scaling)");
}

Device makeXc2vp30() {
  std::vector<ColumnSpec> cols;
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, {560, 560, 0, 0, 0}, 23);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, {0, 0, 23, 23, 0}, 3);
  appendColumns(cols, ColumnKind::kPpc, kPpcFrames, ResourceVec{0, 0, 0, 0, 2}, 1);
  appendColumns(cols, ColumnKind::kGclk, kGclkFrames, {}, 1);
  appendColumns(cols, ColumnKind::kClb, kClbFrames, {560, 560, 0, 0, 0}, 23);
  appendColumns(cols, ColumnKind::kBramPair, kBramPairFrames, {0, 0, 23, 23, 0}, 3);
  appendColumns(cols, ColumnKind::kIob, kIobFrames, {}, 2);
  DeviceGeometry geometry{"xc2vp30", 80, std::move(cols), DeviceGeometry::Encoding{}};
  ResourceVec usable{};
  for (const ColumnSpec& c : geometry.columns()) usable += c.resources;
  usable.luts -= 1088;
  usable.ffs -= 1088;
  return Device{std::move(geometry), usable, "Virtex-II Pro XC2VP30"};
}

Device makeXc4vlx60() {
  // Virtex-4 frames are shorter (41 words) but more numerous; the encoding
  // reflects that, and the part has no PPC hard cores.
  DeviceGeometry::Encoding enc;
  enc.frameBytes = 164;
  enc.fullOverheadBytes = 1312;
  enc.partialOverheadBytes = 96;
  enc.frameAddressBytes = 4;
  std::vector<ColumnSpec> cols;
  appendColumns(cols, ColumnKind::kIob, 30, {}, 3);
  appendColumns(cols, ColumnKind::kClb, 132, {464, 464, 0, 0, 0}, 52);
  appendColumns(cols, ColumnKind::kBramPair, 148, {0, 0, 20, 16, 0}, 8);
  appendColumns(cols, ColumnKind::kGclk, 24, {}, 1);
  DeviceGeometry geometry{"xc4vlx60", 128, std::move(cols), enc};
  ResourceVec usable{};
  for (const ColumnSpec& c : geometry.columns()) usable += c.resources;
  return Device{std::move(geometry), usable, "Virtex-4 LX60 (what-if studies)"};
}

Device makeXc4vlx100() {
  DeviceGeometry::Encoding enc;
  enc.frameBytes = 164;
  enc.fullOverheadBytes = 1312;
  enc.partialOverheadBytes = 96;
  enc.frameAddressBytes = 4;
  return makeV4V5Like("xc4vlx100", 160, 88, 12, {556, 556, 0, 0, 0},
                      {0, 0, 20, 16, 0}, enc, "Virtex-4 LX100");
}

Device makeXc5vlx110() {
  // Virtex-5: 36-kbit BRAMs (counted as 2x 18k here), 6-input LUTs modelled
  // as equivalent 4-LUT capacity, 32-bit ICAP at 100 MHz.
  DeviceGeometry::Encoding enc;
  enc.frameBytes = 164;
  enc.fullOverheadBytes = 1536;
  enc.partialOverheadBytes = 112;
  enc.frameAddressBytes = 4;
  return makeV4V5Like("xc5vlx110", 160, 108, 10, {640, 640, 0, 0, 0},
                      {0, 0, 26, 13, 0}, enc, "Virtex-5 LX110");
}

Device makeDevice(const std::string& name) {
  if (name == "xc2vp20") return makeXc2vp20();
  if (name == "xc2vp30") return makeXc2vp30();
  if (name == "xc2vp50") return makeXc2vp50();
  if (name == "xc2vp70") return makeXc2vp70();
  if (name == "xc2vp100") return makeXc2vp100();
  if (name == "xc4vlx60") return makeXc4vlx60();
  if (name == "xc4vlx100") return makeXc4vlx100();
  if (name == "xc5vlx110") return makeXc5vlx110();
  throw util::DomainError{"makeDevice: unknown device '" + name + "'"};
}

std::vector<std::string> deviceCatalog() {
  return {"xc2vp20",  "xc2vp30",   "xc2vp50",  "xc2vp70",
          "xc2vp100", "xc4vlx60",  "xc4vlx100", "xc5vlx110"};
}

}  // namespace prtr::fabric
