#pragma once
/// \file region.hpp
/// Rectangular reconfiguration regions. Because Virtex-II frames span whole
/// device columns (paper section 4.2: "a frame includes a whole column of
/// logic resources"), a region is a contiguous run of configuration columns
/// spanning the full device height.

#include <string>

#include "fabric/device.hpp"
#include "fabric/geometry.hpp"

namespace prtr::fabric {

/// Role of a region within a floorplan.
enum class RegionRole : std::uint8_t {
  kStatic,  ///< fixed logic: interface services, PR controller, FIFOs
  kPrr,     ///< partially reconfigurable region
};

/// A column-aligned region of one device.
class Region {
 public:
  Region(std::string name, RegionRole role, std::size_t firstColumn,
         std::size_t columnCount);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] RegionRole role() const noexcept { return role_; }
  [[nodiscard]] std::size_t firstColumn() const noexcept { return firstColumn_; }
  [[nodiscard]] std::size_t columnCount() const noexcept { return columnCount_; }
  [[nodiscard]] std::size_t endColumn() const noexcept {
    return firstColumn_ + columnCount_;
  }

  [[nodiscard]] bool overlaps(const Region& other) const noexcept {
    return firstColumn_ < other.endColumn() && other.firstColumn_ < endColumn();
  }

  /// Frames configured when this region is (re)loaded.
  [[nodiscard]] FrameRange frames(const Device& device) const {
    return device.geometry().columnRangeFrames(firstColumn_, columnCount_);
  }

  /// User fabric available inside the region.
  [[nodiscard]] ResourceVec resources(const Device& device) const {
    return device.geometry().columnRangeResources(firstColumn_, columnCount_);
  }

  /// Module-based partial bitstream size for this region (fixed for every
  /// module targeting the region; paper section 2.2).
  [[nodiscard]] util::Bytes partialBitstreamBytes(const Device& device) const {
    return device.geometry().partialBitstreamBytes(frames(device).count);
  }

 private:
  std::string name_;
  RegionRole role_;
  std::size_t firstColumn_;
  std::size_t columnCount_;
};

/// A fixed routing bridge crossing a PRR boundary (pairs of LUTs, one on
/// each side; paper section 2.2 "bus macro"). Bus macros pin the interface
/// so re-implementing a module cannot move the crossing routes.
struct BusMacro {
  enum class Direction : std::uint8_t { kLeftToRight, kRightToLeft };
  std::string prrName;     ///< PRR whose boundary this macro crosses
  Direction direction = Direction::kLeftToRight;
  std::uint32_t widthBits = 8;  ///< signals carried
  std::size_t boundaryColumn = 0;  ///< column index of the crossing

  /// Fabric cost: one LUT per bit on each side of the boundary.
  [[nodiscard]] ResourceVec resourceCost() const noexcept {
    return ResourceVec{widthBits * 2, 0, 0, 0, 0};
  }
};

}  // namespace prtr::fabric
