#include "fabric/floorplan.hpp"

#include <algorithm>

#include "analyze/checks_floorplan.hpp"
#include "util/error.hpp"

namespace prtr::fabric {

Floorplan::Floorplan(Device device, std::vector<Region> prrs,
                     std::vector<BusMacro> busMacros)
    : device_(std::move(device)),
      prrs_(std::move(prrs)),
      busMacros_(std::move(busMacros)) {
  validate();
}

void Floorplan::validate() const {
  // Single source of truth for the floorplan rules: the analyze checkers.
  // Error-severity diagnostics become the constructor's PlacementError;
  // warnings (FP007..FP009) are advisory and only surface through lint.
  analyze::DiagnosticSink sink;
  analyze::checkFloorplan(device_, prrs_, busMacros_, sink);
  if (sink.hasErrors()) {
    throw util::PlacementError{"Floorplan: " + sink.firstError().format()};
  }
}

const Region& Floorplan::prrByName(const std::string& name) const {
  const auto it = std::find_if(prrs_.begin(), prrs_.end(),
                               [&](const Region& r) { return r.name() == name; });
  util::require(it != prrs_.end(), "Floorplan: no PRR named '" + name + "'");
  return *it;
}

ResourceVec Floorplan::staticResources() const {
  ResourceVec total = device_.usableResources();
  for (const Region& prr : prrs_) total = total - prr.resources(device_);
  for (const BusMacro& macro : busMacros_) total = total - macro.resourceCost();
  return total;
}

std::uint32_t Floorplan::staticFrames() const {
  std::uint32_t inPrrs = 0;
  for (const Region& prr : prrs_) inPrrs += prr.frames(device_).count;
  return device_.geometry().totalFrames() - inPrrs;
}

bool Floorplan::frameInPrr(std::size_t index, std::uint32_t frame) const {
  return prrs_.at(index).frames(device_).contains(frame);
}

std::string Floorplan::columnMap() const {
  std::string map(device_.geometry().columnCount(), '.');
  for (std::size_t i = 0; i < prrs_.size(); ++i) {
    const char mark = static_cast<char>('A' + (i % 26));
    for (std::size_t c = prrs_[i].firstColumn(); c < prrs_[i].endColumn(); ++c) {
      map[c] = mark;
    }
  }
  return map;
}

namespace {

std::vector<BusMacro> macrosFor(const Region& prr, std::uint32_t pairs) {
  // Each PRR gets `pairs` 8-bit macros in each direction, pinned to the
  // boundary column nearer the device centre.
  const std::size_t boundary =
      prr.firstColumn() == 0 ? prr.endColumn() : prr.firstColumn();
  std::vector<BusMacro> macros;
  macros.reserve(static_cast<std::size_t>(pairs) * 2);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    macros.emplace_back(prr.name(), BusMacro::Direction::kLeftToRight, 8,
                        boundary);
    macros.emplace_back(prr.name(), BusMacro::Direction::kRightToLeft, 8,
                        boundary);
  }
  return macros;
}

}  // namespace

Floorplan makeSinglePrrLayout(Device device) {
  util::require(device.name() == "xc2vp50",
                "makeSinglePrrLayout: calibrated for the xc2vp50 only");
  Region prr{"PRR0", RegionRole::kPrr, 16, 35};  // 34 CLB + 1 BRAM = 834 frames
  auto macros = macrosFor(prr, 4);
  return Floorplan{std::move(device), {std::move(prr)}, std::move(macros)};
}

Floorplan makeDualPrrLayout(Device device) {
  util::require(device.name() == "xc2vp50",
                "makeDualPrrLayout: calibrated for the xc2vp50 only");
  Region prrA{"PRR0", RegionRole::kPrr, 0, 16};   // 2 IOB + 13 CLB + BRAM = 380
  Region prrB{"PRR1", RegionRole::kPrr, 67, 16};  // BRAM + 13 CLB + 2 IOB = 380
  std::vector<BusMacro> macros = macrosFor(prrA, 4);
  auto macrosB = macrosFor(prrB, 4);
  macros.insert(macros.end(), macrosB.begin(), macrosB.end());
  return Floorplan{std::move(device), {std::move(prrA), std::move(prrB)},
                   std::move(macros)};
}

Floorplan makeQuadPrrLayout(Device device) {
  util::require(device.name() == "xc2vp50",
                "makeQuadPrrLayout: calibrated for the xc2vp50 only");
  // Four CLB-only regions: the left and right 13-column blocks plus two
  // 13-column slices of the central 34-CLB stretch. 286 frames each.
  std::vector<Region> prrs;
  prrs.emplace_back("PRR0", RegionRole::kPrr, 2, 13);
  prrs.emplace_back("PRR1", RegionRole::kPrr, 16, 13);
  prrs.emplace_back("PRR2", RegionRole::kPrr, 30, 13);
  prrs.emplace_back("PRR3", RegionRole::kPrr, 68, 13);
  std::vector<BusMacro> macros;
  for (const Region& prr : prrs) {
    auto m = macrosFor(prr, 4);
    macros.insert(macros.end(), m.begin(), m.end());
  }
  return Floorplan{std::move(device), std::move(prrs), std::move(macros)};
}

Floorplan makeSinglePrrLayout() { return makeSinglePrrLayout(makeXc2vp50()); }
Floorplan makeDualPrrLayout() { return makeDualPrrLayout(makeXc2vp50()); }
Floorplan makeQuadPrrLayout() { return makeQuadPrrLayout(makeXc2vp50()); }

}  // namespace prtr::fabric
