#include "fabric/geometry.hpp"

#include "util/error.hpp"

namespace prtr::fabric {

const char* toString(ColumnKind kind) noexcept {
  switch (kind) {
    case ColumnKind::kClb: return "CLB";
    case ColumnKind::kBramPair: return "BRAM";
    case ColumnKind::kIob: return "IOB";
    case ColumnKind::kGclk: return "GCLK";
    case ColumnKind::kPpc: return "PPC";
  }
  return "?";
}

DeviceGeometry::DeviceGeometry(std::string name, std::uint32_t rows,
                               std::vector<ColumnSpec> columns, Encoding encoding)
    : name_(std::move(name)),
      rows_(rows),
      columns_(std::move(columns)),
      encoding_(encoding) {
  util::require(rows_ > 0, "DeviceGeometry: rows must be positive");
  util::require(!columns_.empty(), "DeviceGeometry: no columns");
  util::require(encoding_.frameBytes > 0, "DeviceGeometry: zero frame size");
  frameStart_.reserve(columns_.size() + 1);
  std::uint32_t acc = 0;
  for (const ColumnSpec& col : columns_) {
    util::require(col.frames > 0, "DeviceGeometry: column with zero frames");
    frameStart_.push_back(acc);
    acc += col.frames;
  }
  frameStart_.push_back(acc);
  totalFrames_ = acc;
}

FrameRange DeviceGeometry::columnFrames(std::size_t index) const {
  util::require(index < columns_.size(), "DeviceGeometry: column out of range");
  return FrameRange{frameStart_[index], columns_[index].frames};
}

FrameRange DeviceGeometry::columnRangeFrames(std::size_t firstColumn,
                                             std::size_t columnCount) const {
  util::require(firstColumn + columnCount <= columns_.size(),
                "DeviceGeometry: column range out of bounds");
  util::require(columnCount > 0, "DeviceGeometry: empty column range");
  return FrameRange{frameStart_[firstColumn],
                    frameStart_[firstColumn + columnCount] - frameStart_[firstColumn]};
}

ResourceVec DeviceGeometry::columnRangeResources(std::size_t firstColumn,
                                                 std::size_t columnCount) const {
  util::require(firstColumn + columnCount <= columns_.size(),
                "DeviceGeometry: column range out of bounds");
  ResourceVec total{};
  for (std::size_t c = firstColumn; c < firstColumn + columnCount; ++c) {
    total += columns_[c].resources;
  }
  return total;
}

std::uint32_t DeviceGeometry::countKind(std::size_t firstColumn,
                                        std::size_t columnCount,
                                        ColumnKind kind) const {
  util::require(firstColumn + columnCount <= columns_.size(),
                "DeviceGeometry: column range out of bounds");
  std::uint32_t n = 0;
  for (std::size_t c = firstColumn; c < firstColumn + columnCount; ++c) {
    if (columns_[c].kind == kind) ++n;
  }
  return n;
}

util::Bytes DeviceGeometry::fullBitstreamBytes() const noexcept {
  return util::Bytes{static_cast<std::uint64_t>(encoding_.fullOverheadBytes) +
                     static_cast<std::uint64_t>(totalFrames_) * encoding_.frameBytes};
}

util::Bytes DeviceGeometry::partialBitstreamBytes(std::uint32_t frames) const noexcept {
  return util::Bytes{
      static_cast<std::uint64_t>(encoding_.partialOverheadBytes) +
      static_cast<std::uint64_t>(frames) *
          (encoding_.frameBytes + encoding_.frameAddressBytes)};
}

}  // namespace prtr::fabric
