#pragma once
/// \file floorplan.hpp
/// A floorplan assigns every device column to the static region or to one of
/// the partially reconfigurable regions (PRRs), and records the bus macros
/// bridging each PRR boundary. Factory functions build the two layouts used
/// in the paper's experiments (Figure 8): single PRR and dual PRR.

#include <cstddef>
#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "fabric/region.hpp"

namespace prtr::fabric {

/// Validated floorplan over one device.
class Floorplan {
 public:
  /// Builds and validates. Throws PlacementError when PRRs overlap each
  /// other, fall outside the device, or claim the PPC/GCLK columns.
  Floorplan(Device device, std::vector<Region> prrs, std::vector<BusMacro> busMacros);

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] const std::vector<Region>& prrs() const noexcept { return prrs_; }
  [[nodiscard]] const std::vector<BusMacro>& busMacros() const noexcept {
    return busMacros_;
  }

  [[nodiscard]] std::size_t prrCount() const noexcept { return prrs_.size(); }
  [[nodiscard]] const Region& prr(std::size_t index) const { return prrs_.at(index); }
  [[nodiscard]] const Region& prrByName(const std::string& name) const;

  /// Fabric left to the static design (device usable minus all PRRs minus
  /// bus-macro overhead).
  [[nodiscard]] ResourceVec staticResources() const;

  /// Frames belonging to no PRR (configured only by a full bitstream).
  [[nodiscard]] std::uint32_t staticFrames() const;

  /// True when `frame` lies inside PRR `index`.
  [[nodiscard]] bool frameInPrr(std::size_t index, std::uint32_t frame) const;

  /// Human-readable column map (one char per column), e.g. for logs:
  /// "AAAAAAAAAAAAAAAA...........BBBB".
  [[nodiscard]] std::string columnMap() const;

 private:
  void validate() const;

  Device device_;
  std::vector<Region> prrs_;
  std::vector<BusMacro> busMacros_;
};

/// Paper Figure 8 layouts on the XC2VP50.
/// Single PRR: one 34-CLB + 1-BRAM region (834 frames, ~887.4 kB partial);
/// all four memory banks available to the PRR.
[[nodiscard]] Floorplan makeSinglePrrLayout(Device device);

/// Dual PRR: two 380-frame edge regions (~404.4 kB partial each); two
/// memory banks per PRR.
[[nodiscard]] Floorplan makeDualPrrLayout(Device device);

/// Hypothetical finer-grained layout (beyond the paper's experiments, for
/// the granularity and cache-policy ablations): four 13-CLB-column PRRs of
/// 286 frames each, one memory bank per PRR.
[[nodiscard]] Floorplan makeQuadPrrLayout(Device device);

/// Convenience overloads on the default XD1 device (XC2VP50).
[[nodiscard]] Floorplan makeSinglePrrLayout();
[[nodiscard]] Floorplan makeDualPrrLayout();
[[nodiscard]] Floorplan makeQuadPrrLayout();

}  // namespace prtr::fabric
