#pragma once
/// \file allocator.hpp
/// Dynamic region allocation with defragmentation — the substrate behind
/// the paper's reference [24] ("... Partial Reconfigurable Coprocessor
/// with Relocation and Defragmentation"). Instead of fixed PRRs, a managed
/// stretch of device columns is allocated to variable-width modules at run
/// time. External fragmentation accumulates as modules come and go; the
/// defragmenter compacts live modules to one end (each move costing one
/// partial reconfiguration of the module's width, performed via the
/// relocation engine's column-signature rules).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "fabric/region.hpp"

namespace prtr::fabric {

/// Placement heuristics for allocate().
enum class FitPolicy : std::uint8_t { kFirstFit, kBestFit, kWorstFit };

[[nodiscard]] const char* toString(FitPolicy policy) noexcept;

/// A live allocation inside the managed range.
struct Allocation {
  std::uint64_t id = 0;
  std::string name;
  std::size_t firstColumn = 0;
  std::size_t width = 0;

  [[nodiscard]] std::size_t endColumn() const noexcept {
    return firstColumn + width;
  }
  [[nodiscard]] Region region() const {
    return Region{name, RegionRole::kPrr, firstColumn, width};
  }
};

/// One relocation step produced by defragment().
struct Move {
  std::uint64_t id = 0;
  std::size_t fromColumn = 0;
  std::size_t toColumn = 0;
  std::size_t width = 0;
};

/// First-fit/best-fit/worst-fit contiguous column allocator.
class ColumnAllocator {
 public:
  /// Manages the half-open column range [firstColumn, firstColumn+count)
  /// of `device`. The device reference must outlive the allocator.
  ColumnAllocator(const Device& device, std::size_t firstColumn,
                  std::size_t columnCount);

  /// Allocates `width` contiguous columns; nullopt when no hole fits.
  [[nodiscard]] std::optional<Allocation> allocate(std::size_t width,
                                                   FitPolicy policy,
                                                   std::string name);

  /// Releases a live allocation. Throws DomainError for unknown ids.
  void release(std::uint64_t id);

  [[nodiscard]] std::size_t managedColumns() const noexcept { return count_; }
  [[nodiscard]] std::size_t freeColumns() const noexcept;
  [[nodiscard]] std::size_t largestFreeBlock() const noexcept;

  /// External fragmentation: 1 - largestFreeBlock/freeColumns (0 when all
  /// free space is contiguous or there is no free space).
  [[nodiscard]] double fragmentation() const noexcept;

  [[nodiscard]] const std::map<std::uint64_t, Allocation>& allocations()
      const noexcept {
    return live_;
  }

  /// Compacts live allocations towards the low end. Only moves between
  /// column-signature-compatible locations are planned (a CLB-only
  /// managed range is always compatible). Returns the executed moves in
  /// order; the allocator state reflects them.
  [[nodiscard]] std::vector<Move> defragment();

  /// Reconfiguration bytes one move costs (a module-based partial stream
  /// of the allocation's width at its destination).
  [[nodiscard]] util::Bytes moveCost(const Move& move) const;

 private:
  [[nodiscard]] bool rangeFree(std::size_t first, std::size_t width) const;
  [[nodiscard]] bool signaturesMatch(std::size_t fromColumn,
                                     std::size_t toColumn,
                                     std::size_t width) const;
  void occupy(const Allocation& allocation, bool value);

  const Device* device_;
  std::size_t first_;
  std::size_t count_;
  std::vector<bool> used_;  ///< per managed column
  std::map<std::uint64_t, Allocation> live_;
  std::uint64_t nextId_ = 1;
};

}  // namespace prtr::fabric
