#include "fabric/resources.hpp"

#include <algorithm>
#include <cstdio>

namespace prtr::fabric {

double ResourceVec::utilization(ResourceVec used) const noexcept {
  double worst = 0.0;
  auto consider = [&worst](std::uint32_t demand, std::uint32_t capacity) {
    if (capacity == 0) {
      if (demand > 0) worst = std::max(worst, 1e9);  // infeasible marker
      return;
    }
    worst = std::max(worst, static_cast<double>(demand) / static_cast<double>(capacity));
  };
  consider(used.luts, luts);
  consider(used.ffs, ffs);
  consider(used.bram18, bram18);
  consider(used.mult18, mult18);
  consider(used.ppc, ppc);
  return worst;
}

std::string ResourceVec::toString() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "{luts=%u, ffs=%u, bram=%u, mult=%u, ppc=%u}",
                luts, ffs, bram18, mult18, ppc);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const ResourceVec& r) {
  return os << r.toString();
}

}  // namespace prtr::fabric
