#include "fabric/allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::fabric {

const char* toString(FitPolicy policy) noexcept {
  switch (policy) {
    case FitPolicy::kFirstFit: return "first-fit";
    case FitPolicy::kBestFit: return "best-fit";
    case FitPolicy::kWorstFit: return "worst-fit";
  }
  return "?";
}

ColumnAllocator::ColumnAllocator(const Device& device, std::size_t firstColumn,
                                 std::size_t columnCount)
    : device_(&device),
      first_(firstColumn),
      count_(columnCount),
      used_(columnCount, false) {
  util::require(columnCount > 0, "ColumnAllocator: empty managed range");
  util::require(firstColumn + columnCount <= device.geometry().columnCount(),
                "ColumnAllocator: managed range outside the device");
}

bool ColumnAllocator::rangeFree(std::size_t first, std::size_t width) const {
  if (first < first_ || first + width > first_ + count_) return false;
  for (std::size_t c = first; c < first + width; ++c) {
    if (used_[c - first_]) return false;
  }
  return true;
}

void ColumnAllocator::occupy(const Allocation& allocation, bool value) {
  for (std::size_t c = allocation.firstColumn; c < allocation.endColumn(); ++c) {
    used_[c - first_] = value;
  }
}

std::optional<Allocation> ColumnAllocator::allocate(std::size_t width,
                                                    FitPolicy policy,
                                                    std::string name) {
  util::require(width > 0, "ColumnAllocator: zero-width allocation");

  // Enumerate maximal free holes as (start, length).
  std::optional<std::size_t> chosen;
  std::size_t chosenLength = 0;
  std::size_t c = 0;
  while (c < count_) {
    if (used_[c]) {
      ++c;
      continue;
    }
    std::size_t length = 0;
    while (c + length < count_ && !used_[c + length]) ++length;
    if (length >= width) {
      const bool better = !chosen ||
                          (policy == FitPolicy::kBestFit && length < chosenLength) ||
                          (policy == FitPolicy::kWorstFit && length > chosenLength);
      if (policy == FitPolicy::kFirstFit) {
        if (!chosen) {
          chosen = c;
          chosenLength = length;
        }
      } else if (better) {
        chosen = c;
        chosenLength = length;
      }
    }
    c += length;
  }
  if (!chosen) return std::nullopt;

  Allocation allocation;
  allocation.id = nextId_++;
  allocation.name = std::move(name);
  allocation.firstColumn = first_ + *chosen;
  allocation.width = width;
  occupy(allocation, true);
  live_.emplace(allocation.id, allocation);
  return allocation;
}

void ColumnAllocator::release(std::uint64_t id) {
  const auto it = live_.find(id);
  util::require(it != live_.end(), "ColumnAllocator: unknown allocation id");
  occupy(it->second, false);
  live_.erase(it);
}

std::size_t ColumnAllocator::freeColumns() const noexcept {
  return static_cast<std::size_t>(
      std::count(used_.begin(), used_.end(), false));
}

std::size_t ColumnAllocator::largestFreeBlock() const noexcept {
  std::size_t best = 0;
  std::size_t run = 0;
  for (const bool used : used_) {
    run = used ? 0 : run + 1;
    best = std::max(best, run);
  }
  return best;
}

double ColumnAllocator::fragmentation() const noexcept {
  const std::size_t free = freeColumns();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largestFreeBlock()) /
                   static_cast<double>(free);
}

bool ColumnAllocator::signaturesMatch(std::size_t fromColumn,
                                      std::size_t toColumn,
                                      std::size_t width) const {
  const auto columns = device_->geometry().columns();
  for (std::size_t i = 0; i < width; ++i) {
    if (columns[fromColumn + i].kind != columns[toColumn + i].kind) {
      return false;
    }
  }
  return true;
}

std::vector<Move> ColumnAllocator::defragment() {
  // Process live allocations left to right, sliding each as far left as
  // the write pointer and its column signature allow.
  std::vector<Allocation*> order;
  order.reserve(live_.size());
  for (auto& [id, allocation] : live_) order.push_back(&allocation);
  std::sort(order.begin(), order.end(), [](const Allocation* a, const Allocation* b) {
    return a->firstColumn < b->firstColumn;
  });

  std::vector<Move> moves;
  std::size_t writePointer = first_;
  for (Allocation* allocation : order) {
    if (allocation->firstColumn > writePointer &&
        signaturesMatch(allocation->firstColumn, writePointer,
                        allocation->width)) {
      Move move;
      move.id = allocation->id;
      move.fromColumn = allocation->firstColumn;
      move.toColumn = writePointer;
      move.width = allocation->width;

      occupy(*allocation, false);
      allocation->firstColumn = writePointer;
      occupy(*allocation, true);
      moves.push_back(move);
    }
    writePointer = allocation->endColumn();
  }
  return moves;
}

util::Bytes ColumnAllocator::moveCost(const Move& move) const {
  const fabric::FrameRange frames =
      device_->geometry().columnRangeFrames(move.toColumn, move.width);
  return device_->geometry().partialBitstreamBytes(frames.count);
}

}  // namespace prtr::fabric
