#pragma once
/// \file resources.hpp
/// FPGA fabric resource accounting (LUTs, flip-flops, BRAM, multipliers,
/// hard processor cores), used for Table 1 of the paper and for placement
/// feasibility checks when mapping hardware functions onto PRRs.

#include <cstdint>
#include <ostream>
#include <string>

namespace prtr::fabric {

/// A vector of fabric resource quantities.
struct ResourceVec {
  std::uint32_t luts = 0;     ///< 4-input look-up tables
  std::uint32_t ffs = 0;      ///< flip-flops
  std::uint32_t bram18 = 0;   ///< 18-kbit block RAMs
  std::uint32_t mult18 = 0;   ///< 18x18 multipliers
  std::uint32_t ppc = 0;      ///< PowerPC hard cores

  friend constexpr ResourceVec operator+(ResourceVec a, ResourceVec b) noexcept {
    return {a.luts + b.luts, a.ffs + b.ffs, a.bram18 + b.bram18,
            a.mult18 + b.mult18, a.ppc + b.ppc};
  }
  constexpr ResourceVec& operator+=(ResourceVec b) noexcept {
    *this = *this + b;
    return *this;
  }
  /// Saturating subtraction (never wraps below zero).
  friend constexpr ResourceVec operator-(ResourceVec a, ResourceVec b) noexcept {
    auto sub = [](std::uint32_t x, std::uint32_t y) { return x > y ? x - y : 0u; };
    return {sub(a.luts, b.luts), sub(a.ffs, b.ffs), sub(a.bram18, b.bram18),
            sub(a.mult18, b.mult18), sub(a.ppc, b.ppc)};
  }
  friend constexpr bool operator==(ResourceVec, ResourceVec) noexcept = default;

  /// True when `need` fits within this vector, component-wise.
  [[nodiscard]] constexpr bool fits(ResourceVec need) const noexcept {
    return need.luts <= luts && need.ffs <= ffs && need.bram18 <= bram18 &&
           need.mult18 <= mult18 && need.ppc <= ppc;
  }

  [[nodiscard]] constexpr bool isZero() const noexcept {
    return *this == ResourceVec{};
  }

  /// Largest component-wise utilization fraction of `used` against this
  /// capacity; components with zero capacity and zero demand are skipped.
  [[nodiscard]] double utilization(ResourceVec used) const noexcept;

  [[nodiscard]] std::string toString() const;
};

std::ostream& operator<<(std::ostream& os, const ResourceVec& r);

}  // namespace prtr::fabric
