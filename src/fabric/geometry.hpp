#pragma once
/// \file geometry.hpp
/// Column/frame configuration-memory geometry in the style of the Xilinx
/// Virtex-II family: the configuration memory is organized as columns, each
/// containing a column-kind-dependent number of frames, and the frame is the
/// smallest addressable (re)configuration unit (paper section 2.2).
///
/// Bitstream sizes are a pure function of this geometry, so the device
/// catalog (device.hpp) calibrates it to reproduce the sizes of the paper's
/// Table 2. See DESIGN.md "Calibration constants".

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "util/units.hpp"

namespace prtr::fabric {

/// Kinds of configuration columns (Virtex-II style).
enum class ColumnKind : std::uint8_t {
  kClb,               ///< CLB logic column
  kBramPair,          ///< BRAM content + its interconnect column
  kIob,               ///< I/O block column
  kGclk,              ///< global clock column
  kPpc,               ///< hard PowerPC region (configured but not user fabric)
};

[[nodiscard]] const char* toString(ColumnKind kind) noexcept;

/// Per-kind frame counts and fabric resources.
struct ColumnSpec {
  ColumnKind kind = ColumnKind::kClb;
  std::uint32_t frames = 0;      ///< frames in this column
  ResourceVec resources{};       ///< user fabric contributed by this column
};

/// Frame index range [first, first+count) in global frame numbering.
struct FrameRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;

  [[nodiscard]] constexpr std::uint32_t end() const noexcept { return first + count; }
  [[nodiscard]] constexpr bool contains(std::uint32_t frame) const noexcept {
    return frame >= first && frame < end();
  }
  [[nodiscard]] constexpr bool overlaps(FrameRange other) const noexcept {
    return first < other.end() && other.first < end();
  }
  friend constexpr bool operator==(FrameRange, FrameRange) noexcept = default;
};

/// Immutable configuration-memory geometry of one device.
class DeviceGeometry {
 public:
  /// Byte-size constants of the on-disk/wire bitstream encoding (format.hpp).
  struct Encoding {
    std::uint32_t frameBytes = 1060;        ///< payload bytes per frame
    std::uint32_t fullOverheadBytes = 1004; ///< full-stream header+commands+CRC
    std::uint32_t partialOverheadBytes = 68;///< partial-stream header+CRC
    std::uint32_t frameAddressBytes = 4;    ///< per-frame address word (partial)
  };

  DeviceGeometry(std::string name, std::uint32_t rows,
                 std::vector<ColumnSpec> columns, Encoding encoding);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::span<const ColumnSpec> columns() const noexcept { return columns_; }
  [[nodiscard]] const Encoding& encoding() const noexcept { return encoding_; }

  [[nodiscard]] std::size_t columnCount() const noexcept { return columns_.size(); }
  [[nodiscard]] std::uint32_t totalFrames() const noexcept { return totalFrames_; }

  /// Frames contributed by column `index`.
  [[nodiscard]] FrameRange columnFrames(std::size_t index) const;

  /// Frames covered by the half-open column range [firstColumn, firstColumn+n).
  [[nodiscard]] FrameRange columnRangeFrames(std::size_t firstColumn,
                                             std::size_t columnCount) const;

  /// Fabric resources in a column range.
  [[nodiscard]] ResourceVec columnRangeResources(std::size_t firstColumn,
                                                 std::size_t columnCount) const;

  /// Count of columns of `kind` in a column range.
  [[nodiscard]] std::uint32_t countKind(std::size_t firstColumn,
                                        std::size_t columnCount,
                                        ColumnKind kind) const;

  /// Byte size of a full-device configuration bitstream.
  [[nodiscard]] util::Bytes fullBitstreamBytes() const noexcept;

  /// Byte size of a module-based partial bitstream covering `frames` frames
  /// (includes per-frame addressing; paper section 2.2: fixed size for all
  /// modules of a region).
  [[nodiscard]] util::Bytes partialBitstreamBytes(std::uint32_t frames) const noexcept;

 private:
  std::string name_;
  std::uint32_t rows_;
  std::vector<ColumnSpec> columns_;
  Encoding encoding_;
  std::vector<std::uint32_t> frameStart_;  ///< prefix sums per column
  std::uint32_t totalFrames_ = 0;
};

}  // namespace prtr::fabric
