#include "fabric/region.hpp"

#include "util/error.hpp"

namespace prtr::fabric {

Region::Region(std::string name, RegionRole role, std::size_t firstColumn,
               std::size_t columnCount)
    : name_(std::move(name)),
      role_(role),
      firstColumn_(firstColumn),
      columnCount_(columnCount) {
  util::require(!name_.empty(), "Region: name must not be empty");
  util::require(columnCount_ > 0, "Region: must span at least one column");
}

}  // namespace prtr::fabric
