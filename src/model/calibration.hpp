#pragma once
/// \file calibration.hpp
/// The bridge between the simulated Cray XD1 platform and the analytical
/// model: computes the configuration times of Table 2 (estimated = raw
/// SelectMap throughput; measured = vendor-API / ICAP-controller paths) and
/// task time requirements, and assembles AbsoluteParams from them.

#include <vector>

#include "model/params.hpp"
#include "tasks/hwfunction.hpp"
#include "xd1/node.hpp"

namespace prtr::model {

/// Which Table 2 column to base configuration times on.
enum class ConfigTimeBasis : std::uint8_t {
  kEstimated,  ///< bitstream size / 66 MB/s (best case, Fig. 9a)
  kMeasured,   ///< vendor-API full path + ICAP partial path (Fig. 9b)
};

[[nodiscard]] const char* toString(ConfigTimeBasis basis) noexcept;

/// Configuration times of one floorplan (one row pair of Table 2).
struct ConfigTimes {
  util::Bytes fullBytes;
  util::Bytes partialBytes;   ///< per PRR (module-based flow: fixed)
  util::Time fullEstimated;   ///< fullBytes / SelectMap raw
  util::Time fullMeasured;    ///< vendor API path
  util::Time partialEstimated;///< partialBytes / SelectMap raw
  util::Time partialMeasured; ///< ICAP controller path

  [[nodiscard]] util::Time full(ConfigTimeBasis basis) const noexcept {
    return basis == ConfigTimeBasis::kEstimated ? fullEstimated : fullMeasured;
  }
  [[nodiscard]] util::Time partial(ConfigTimeBasis basis) const noexcept {
    return basis == ConfigTimeBasis::kEstimated ? partialEstimated
                                                : partialMeasured;
  }
  /// Normalized partial configuration time X_PRTR for the chosen basis.
  [[nodiscard]] double xPrtr(ConfigTimeBasis basis) const noexcept {
    return partial(basis).toSeconds() / full(basis).toSeconds();
  }
};

/// Computes Table 2 quantities for `node`'s floorplan.
[[nodiscard]] ConfigTimes configTimes(const xd1::Node& node);

/// Task time requirement of `fn` on `node` for `input` bytes: data-in +
/// compute + data-out, serialized (the model folds any I/O/compute overlap
/// into T_task; paper section 3.1).
[[nodiscard]] util::Time taskTime(const xd1::Node& node,
                                  const tasks::HwFunction& fn,
                                  util::Bytes input);

/// Input size whose task time equals `target` for `fn` on `node` (inverse
/// of taskTime; exact because taskTime is linear in bytes).
[[nodiscard]] util::Bytes bytesForTaskTime(const xd1::Node& node,
                                           const tasks::HwFunction& fn,
                                           util::Time target);

/// Assembles model parameters for a homogeneous workload of `nCalls` calls
/// of `fn` on `input` bytes, with the given caching behaviour.
[[nodiscard]] AbsoluteParams absoluteParams(const xd1::Node& node,
                                            const tasks::HwFunction& fn,
                                            util::Bytes input,
                                            std::uint64_t nCalls,
                                            ConfigTimeBasis basis,
                                            double hitRatio,
                                            util::Time tDecision,
                                            util::Time tControl);

}  // namespace prtr::model
