#pragma once
/// \file model.hpp
/// The paper's analytical execution model, equations (1) through (7).
///
/// FRTR baseline (every call pays a full configuration), eq. (1)/(2):
///     X_total^FRTR = n_calls * (1 + X_control + X_task)
///
/// PRTR (initial full configuration; missed calls pay a partial
/// configuration that overlaps the previous task's execution; hit calls pay
/// none), eq. (3)-(5) with M = n_config/n_calls and H = 1 - M:
///     X_total^PRTR = 1 + X_decision + n_calls * ( X_control
///                    + M * max(X_task + X_decision, X_PRTR)
///                    + H * (X_task + X_decision) )
///
/// Speedup, eq. (6):  S = X_total^FRTR / X_total^PRTR
/// Asymptote (n_calls -> inf), eq. (7):
///     S_inf = (1 + X_control + X_task)
///           / ( X_control + M * max(X_task + X_decision, X_PRTR)
///               + H * (X_task + X_decision) )

#include "model/params.hpp"
#include "util/units.hpp"

namespace prtr::model {

/// Normalized FRTR total execution time, eq. (2).
[[nodiscard]] double frtrTotalNormalized(const Params& p);

/// Normalized PRTR total execution time, eq. (5).
[[nodiscard]] double prtrTotalNormalized(const Params& p);

/// Finite-call speedup of PRTR over FRTR, eq. (6).
[[nodiscard]] double speedup(const Params& p);

/// Asymptotic speedup as n_calls -> infinity, eq. (7).
[[nodiscard]] double asymptoticSpeedup(const Params& p);

/// Absolute total times (seconds domain), eq. (1)/(3): the normalized
/// totals scaled back by tFrtr.
[[nodiscard]] util::Time frtrTotalTime(const AbsoluteParams& p);
[[nodiscard]] util::Time prtrTotalTime(const AbsoluteParams& p);

/// Per-call expected PRTR cost (normalized): the bracketed per-call term of
/// eq. (5). Useful for validating the simulator call-by-call.
[[nodiscard]] double prtrPerCallNormalized(const Params& p);

}  // namespace prtr::model
