#include "model/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "model/model.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace prtr::model {

const char* toString(Regime regime) noexcept {
  switch (regime) {
    case Regime::kConfigDominant: return "config-dominant (X_task <= X_PRTR)";
    case Regime::kMidRange: return "mid-range (X_PRTR < X_task < 1)";
    case Regime::kTaskDominant: return "task-dominant (X_task >= 1)";
  }
  return "?";
}

Regime classifyRegime(double xTask, double xPrtr) {
  util::require(xTask > 0.0 && xPrtr > 0.0 && xPrtr <= 1.0,
                "classifyRegime: invalid sizes");
  if (xTask >= 1.0) return Regime::kTaskDominant;
  if (xTask > xPrtr) return Regime::kMidRange;
  return Regime::kConfigDominant;
}

double upperBoundForTask(double xTask) {
  util::require(xTask > 0.0, "upperBoundForTask: xTask must be positive");
  return (1.0 + xTask) / xTask;
}

double idealAsymptote(double xTask, double xPrtr, double hitRatio) {
  Params p;
  p.xTask = xTask;
  p.xPrtr = xPrtr;
  p.hitRatio = hitRatio;
  p.xControl = 0.0;
  p.xDecision = 0.0;
  return asymptoticSpeedup(p);
}

Peak peakSpeedup(double hitRatio, double xPrtr) {
  util::require(hitRatio >= 0.0 && hitRatio <= 1.0,
                "peakSpeedup: hit ratio outside [0,1]");
  util::require(xPrtr > 0.0 && xPrtr <= 1.0, "peakSpeedup: invalid xPrtr");
  const double miss = 1.0 - hitRatio;
  if (miss == 0.0) {
    // Every call hits: S_inf = (1 + X_task)/X_task, unbounded as X_task -> 0.
    return Peak{0.0, std::numeric_limits<double>::infinity(), true};
  }
  const double atMatch = (1.0 + xPrtr) / xPrtr;  // value at X_task = X_PRTR
  // Below the match point S = (1+X)/(M*X_PRTR + H*X); its slope has the
  // sign of M*X_PRTR - H.
  if (miss * xPrtr >= hitRatio) {
    return Peak{xPrtr, atMatch, false};
  }
  // Supremum approached as X_task -> 0: 1 / (M * X_PRTR).
  return Peak{0.0, 1.0 / (miss * xPrtr), false};
}

bool prtrBeneficial(const Params& p) { return asymptoticSpeedup(p) > 1.0; }

double requiredHitRatio(double xTask, double xPrtr, double target) {
  util::require(target > 0.0, "requiredHitRatio: target must be positive");
  util::require(xTask > 0.0 && xPrtr > 0.0 && xPrtr <= 1.0,
                "requiredHitRatio: invalid sizes");
  if (xTask >= xPrtr) {
    // H has no effect: max(X_task, X_PRTR) = X_task for misses too.
    return upperBoundForTask(xTask) >= target ? 0.0 : 2.0;
  }
  // Solve (1+Xt) / (Xp - H(Xp - Xt)) = target for H.
  const double h = (xPrtr - (1.0 + xTask) / target) / (xPrtr - xTask);
  return std::max(0.0, h);
}

double crossoverTaskSize(double h1, double xPrtr1, double h2, double xPrtr2,
                         double lo, double hi) {
  util::require(lo > 0.0 && hi > lo, "crossoverTaskSize: invalid bracket");
  auto diff = [&](double x) {
    return idealAsymptote(x, xPrtr1, h1) - idealAsymptote(x, xPrtr2, h2);
  };
  double flo = diff(lo);
  const double fhi = diff(hi);
  util::require(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
                "crossoverTaskSize: no sign change on the bracket");
  double a = lo;
  double b = hi;
  for (int iter = 0; iter < 200 && (b - a) / a > 1e-12; ++iter) {
    const double mid = std::sqrt(a * b);  // geometric: X_task spans decades
    if ((diff(mid) < 0.0) == (flo < 0.0)) {
      a = mid;
      flo = diff(mid);
    } else {
      b = mid;
    }
  }
  return std::sqrt(a * b);
}

std::string describeBounds(const Params& p) {
  p.validate();
  std::ostringstream os;
  const Regime regime = classifyRegime(p.xTask, p.xPrtr);
  const double sInf = asymptoticSpeedup(p);
  os << "Regime: " << toString(regime) << "\n";
  os << "S_inf(eq.7) = " << sInf << " at H = " << p.hitRatio << "\n";
  os << "Universal bound over H (ideal overheads): (1+X_task)/X_task = "
     << upperBoundForTask(p.xTask) << "\n";
  if (regime == Regime::kTaskDominant) {
    os << "Task-dominant: PRTR cannot exceed 2x FRTR no matter how good the "
          "pre-fetching is (paper section 3.1).\n";
  }
  const Peak peak = peakSpeedup(p.hitRatio, p.xPrtr);
  if (peak.unbounded) {
    os << "Perfect pre-fetching: speedup grows without bound as X_task -> 0.\n";
  } else {
    os << "Best achievable at this H: " << peak.speedup
       << (peak.xTask > 0.0
               ? " at X_task = X_PRTR = " + util::formatDouble(peak.xTask)
               : " approached as X_task -> 0")
       << " (fine-grained partitions should match the task time, section 5).\n";
  }
  os << (prtrBeneficial(p) ? "PRTR is beneficial here."
                           : "PRTR does not pay off here.");
  os << "\n";
  return os.str();
}

}  // namespace prtr::model
