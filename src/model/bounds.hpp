#pragma once
/// \file bounds.hpp
/// Performance-bound analysis derived from equation (7) — the paper's
/// headline results (Figure 5 and section 5):
///
///  * For X_task >= 1, S_inf = 1 + 1/X_task <= 2 regardless of the
///    pre-fetching quality ("can not exceed twice that of FRTR").
///  * For H ~ 0 the asymptote peaks exactly at X_task = X_PRTR with value
///    (1 + X_PRTR)/X_PRTR ("partitions must be so fine grained to match
///    the task time requirements").
///  * For H ~ 1 the asymptote is (1 + X_task)/X_task, monotonically
///    decreasing in the task time requirement.
///
/// All bound helpers assume the ideal-overhead setting of Figure 5
/// (X_control = X_decision = 0) unless a full Params is supplied.

#include <string>

#include "model/params.hpp"

namespace prtr::model {

/// Operating regimes of Figure 5.
enum class Regime : std::uint8_t {
  kConfigDominant,  ///< 0 < X_task <= X_PRTR: partial config dominates
  kMidRange,        ///< X_PRTR < X_task < 1: pre-fetch quality matters most
  kTaskDominant,    ///< X_task >= 1: task execution dominates, S_inf <= 2
};

[[nodiscard]] const char* toString(Regime regime) noexcept;

[[nodiscard]] Regime classifyRegime(double xTask, double xPrtr);

/// Universal upper bound on S_inf over all H in [0,1] for a given task
/// size (X_control = X_decision = 0): (1 + X_task) / X_task.
[[nodiscard]] double upperBoundForTask(double xTask);

/// S_inf at the ideal-overhead setting for explicit (xTask, xPrtr, H).
[[nodiscard]] double idealAsymptote(double xTask, double xPrtr, double hitRatio);

/// Location and value of the S_inf peak over X_task for fixed (H, X_PRTR),
/// still at ideal overheads. For H = 0 the peak is at X_task = X_PRTR with
/// value (1 + X_PRTR)/X_PRTR; for H towards 1 the curve grows without bound
/// as X_task -> 0 (hits cost nothing but the task itself).
struct Peak {
  double xTask = 0.0;      ///< argmax (0 means "at the X_task -> 0 limit")
  double speedup = 0.0;    ///< sup value (may be +inf for H = 1)
  bool unbounded = false;  ///< true when the sup is only approached
};
[[nodiscard]] Peak peakSpeedup(double hitRatio, double xPrtr);

/// True when PRTR beats FRTR asymptotically for these parameters.
[[nodiscard]] bool prtrBeneficial(const Params& p);

/// Smallest hit ratio for which S_inf >= `target` at the given task/config
/// sizes (ideal overheads); returns > 1 when unattainable with any H.
[[nodiscard]] double requiredHitRatio(double xTask, double xPrtr, double target);

/// X_task at which two ideal-overhead asymptote curves (different
/// (H, X_PRTR) configurations) cross, found by bisection on [lo, hi].
/// Throws DomainError when no sign change exists on the bracket.
[[nodiscard]] double crossoverTaskSize(double h1, double xPrtr1, double h2,
                                       double xPrtr2, double lo, double hi);

/// One-paragraph textual bound report for a parameter set (used by the
/// bounds_explorer example).
[[nodiscard]] std::string describeBounds(const Params& p);

}  // namespace prtr::model
