#include "model/insights.hpp"

#include <algorithm>
#include <cmath>

#include "model/model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::model {

std::optional<std::uint64_t> breakEvenCalls(const Params& p) {
  p.validate();
  // FRTR(n) = n*(1+Xc+Xt); PRTR(n) = 1+Xd + n*perCall.
  const double perCallFrtr = 1.0 + p.xControl + p.xTask;
  const double perCallPrtr = prtrPerCallNormalized(p);
  const double gainPerCall = perCallFrtr - perCallPrtr;
  if (gainPerCall <= 0.0) return std::nullopt;
  const double n = (1.0 + p.xDecision) / gainPerCall;
  return static_cast<std::uint64_t>(std::floor(n)) + 1;
}

void MixedParams::validate() const {
  util::require(nCalls >= 1, "MixedParams: nCalls must be at least 1");
  util::require(xPrtr > 0.0 && xPrtr <= 1.0, "MixedParams: xPrtr in (0,1]");
  util::require(xControl >= 0.0 && xDecision >= 0.0,
                "MixedParams: overheads must be non-negative");
  util::require(!classes.empty(), "MixedParams: need at least one class");
  for (const TaskClass& c : classes) {
    util::require(c.weight > 0.0, "MixedParams: class weight must be positive");
    util::require(c.xTask > 0.0, "MixedParams: class xTask must be positive");
    util::require(c.hitRatio >= 0.0 && c.hitRatio <= 1.0,
                  "MixedParams: class hit ratio in [0,1]");
  }
}

namespace {

double totalWeight(const MixedParams& p) {
  double w = 0.0;
  for (const TaskClass& c : p.classes) w += c.weight;
  return w;
}

/// Weighted per-call FRTR cost: sum w_i (1 + Xc + Xt_i).
double mixedFrtrPerCall(const MixedParams& p) {
  const double w = totalWeight(p);
  double acc = 0.0;
  for (const TaskClass& c : p.classes) {
    acc += c.weight / w * (1.0 + p.xControl + c.xTask);
  }
  return acc;
}

/// Weighted per-call PRTR cost (the bracket of eq. 5 per class).
double mixedPrtrPerCall(const MixedParams& p) {
  const double w = totalWeight(p);
  double acc = 0.0;
  for (const TaskClass& c : p.classes) {
    const double missed = std::max(c.xTask + p.xDecision, p.xPrtr);
    const double hit = c.xTask + p.xDecision;
    acc += c.weight / w *
           (p.xControl + (1.0 - c.hitRatio) * missed + c.hitRatio * hit);
  }
  return acc;
}

}  // namespace

double mixedFrtrTotalNormalized(const MixedParams& p) {
  p.validate();
  return static_cast<double>(p.nCalls) * mixedFrtrPerCall(p);
}

double mixedPrtrTotalNormalized(const MixedParams& p) {
  p.validate();
  return 1.0 + p.xDecision + static_cast<double>(p.nCalls) * mixedPrtrPerCall(p);
}

double mixedSpeedup(const MixedParams& p) {
  return mixedFrtrTotalNormalized(p) / mixedPrtrTotalNormalized(p);
}

double mixedAsymptoticSpeedup(const MixedParams& p) {
  p.validate();
  return mixedFrtrPerCall(p) / mixedPrtrPerCall(p);
}

SensitivityResult sensitivity(const Params& base, const Perturbation& sigma,
                              std::size_t samples, std::uint64_t seed) {
  base.validate();
  util::require(samples >= 2, "sensitivity: need at least two samples");
  util::Rng rng{seed};
  // Box-Muller standard normals from the deterministic generator.
  auto gaussian = [&rng] {
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  };

  SensitivityResult result;
  std::vector<double> values;
  values.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    Params p = base;
    p.xTask = std::max(1e-12, base.xTask * (1.0 + sigma.xTask * gaussian()));
    p.xPrtr = std::clamp(base.xPrtr * (1.0 + sigma.xPrtr * gaussian()), 1e-12,
                         1.0);
    p.xControl = std::max(0.0, base.xControl * (1.0 + sigma.xControl * gaussian()));
    p.xDecision =
        std::max(0.0, base.xDecision * (1.0 + sigma.xDecision * gaussian()));
    p.hitRatio = std::clamp(base.hitRatio + sigma.hitRatio * gaussian(), 0.0, 1.0);
    const double s = asymptoticSpeedup(p);
    result.speedup.add(s);
    values.push_back(s);
  }
  result.p05 = util::exactQuantile(values, 0.05);
  result.p50 = util::exactQuantile(values, 0.50);
  result.p95 = util::exactQuantile(values, 0.95);
  return result;
}

}  // namespace prtr::model
