#include "model/calibration.hpp"

#include <cmath>

#include "config/port.hpp"
#include "util/error.hpp"

namespace prtr::model {

const char* toString(ConfigTimeBasis basis) noexcept {
  switch (basis) {
    case ConfigTimeBasis::kEstimated: return "estimated";
    case ConfigTimeBasis::kMeasured: return "measured";
  }
  return "?";
}

ConfigTimes configTimes(const xd1::Node& node) {
  const auto& floorplan = node.floorplan();
  const auto& device = floorplan.device();
  const config::Port selectMap = config::makeSelectMap();

  ConfigTimes times;
  times.fullBytes = device.geometry().fullBitstreamBytes();
  times.partialBytes = floorplan.prr(0).partialBitstreamBytes(device);
  times.fullEstimated = selectMap.transferTime(times.fullBytes);
  times.partialEstimated = selectMap.transferTime(times.partialBytes);

  // Measured paths: the vendor-API driver for the full stream; the ICAP
  // drain FSM for partials (the host->BRAM transfer overlaps the drain and
  // is ~70x faster, so the drain dominates).
  times.fullMeasured = node.vendorApi().loadTime(times.fullBytes);
  times.partialMeasured = node.icap().drainTime(times.partialBytes);
  return times;
}

util::Time taskTime(const xd1::Node& node, const tasks::HwFunction& fn,
                    util::Bytes input) {
  const util::Time in = node.linkIn().occupancy(input);
  const util::Time compute = fn.computeTime(input);
  const util::Time out = node.linkOut().occupancy(fn.outputBytes(input));
  return in + compute + out;
}

util::Bytes bytesForTaskTime(const xd1::Node& node, const tasks::HwFunction& fn,
                             util::Time target) {
  // taskTime(b) = latIn + latOut + b * perByte, with
  // perByte = 1/rateIn + cycles/f + outRatio/rateOut.
  const double fixed =
      node.linkIn().latency().toSeconds() + node.linkOut().latency().toSeconds();
  const double perByte =
      1.0 / node.linkIn().rate().bytesPerSecond() +
      fn.cyclesPerPixel / fn.fabricClock.hertz() +
      fn.outputBytesPerInputByte / node.linkOut().rate().bytesPerSecond();
  const double seconds = target.toSeconds() - fixed;
  util::require(seconds > 0.0,
                "bytesForTaskTime: target below the fixed link latency");
  return util::Bytes{static_cast<std::uint64_t>(std::llround(seconds / perByte))};
}

AbsoluteParams absoluteParams(const xd1::Node& node, const tasks::HwFunction& fn,
                              util::Bytes input, std::uint64_t nCalls,
                              ConfigTimeBasis basis, double hitRatio,
                              util::Time tDecision, util::Time tControl) {
  const ConfigTimes times = configTimes(node);
  AbsoluteParams p;
  p.nCalls = nCalls;
  p.tFrtr = times.full(basis);
  p.tPrtr = times.partial(basis);
  p.tTask = taskTime(node, fn, input);
  p.tControl = tControl;
  p.tDecision = tDecision;
  p.hitRatio = hitRatio;
  return p;
}

}  // namespace prtr::model
