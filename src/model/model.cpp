#include "model/model.hpp"

#include <algorithm>

namespace prtr::model {

double frtrTotalNormalized(const Params& p) {
  p.validate();
  return static_cast<double>(p.nCalls) * (1.0 + p.xControl + p.xTask);
}

double prtrPerCallNormalized(const Params& p) {
  const double missed = std::max(p.xTask + p.xDecision, p.xPrtr);
  const double hit = p.xTask + p.xDecision;
  return p.xControl + p.missRatio() * missed + p.hitRatio * hit;
}

double prtrTotalNormalized(const Params& p) {
  p.validate();
  return 1.0 + p.xDecision +
         static_cast<double>(p.nCalls) * prtrPerCallNormalized(p);
}

double speedup(const Params& p) {
  return frtrTotalNormalized(p) / prtrTotalNormalized(p);
}

double asymptoticSpeedup(const Params& p) {
  p.validate();
  return (1.0 + p.xControl + p.xTask) / prtrPerCallNormalized(p);
}

util::Time frtrTotalTime(const AbsoluteParams& p) {
  return util::Time::seconds(frtrTotalNormalized(p.normalized()) *
                             p.tFrtr.toSeconds());
}

util::Time prtrTotalTime(const AbsoluteParams& p) {
  return util::Time::seconds(prtrTotalNormalized(p.normalized()) *
                             p.tFrtr.toSeconds());
}

}  // namespace prtr::model
