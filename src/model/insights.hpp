#pragma once
/// \file insights.hpp
/// Second-order analyses on top of the core model:
///
///  * break-even call count — how many calls amortize PRTR's leading full
///    configuration (the "1 + X_decision" of eq. 5);
///  * heterogeneous workload mixes — eq. (5)/(6) generalized from a single
///    average task to weighted task classes (the paper folds everything
///    into one average T_task; the class-weighted form is exact for mixes
///    and validated against the simulator);
///  * Monte-Carlo sensitivity — how parameter uncertainty propagates to
///    the speedup (error bars for Figure-9-style plots).

#include <cstdint>
#include <optional>
#include <vector>

#include "model/params.hpp"
#include "util/stats.hpp"

namespace prtr::model {

/// Smallest call count for which PRTR's total beats FRTR's, or nullopt
/// when PRTR never catches up (per-call PRTR cost >= per-call FRTR cost).
[[nodiscard]] std::optional<std::uint64_t> breakEvenCalls(const Params& p);

/// One task class of a heterogeneous mix.
struct TaskClass {
  double weight = 1.0;    ///< fraction of calls (> 0; normalized internally)
  double xTask = 1.0;     ///< normalized task time of this class
  double hitRatio = 0.0;  ///< class-specific hit ratio
};

/// Shared parameters of a mixed workload (per-class values live in the
/// TaskClass entries).
struct MixedParams {
  std::uint64_t nCalls = 1;
  double xPrtr = 0.1;
  double xControl = 0.0;
  double xDecision = 0.0;
  std::vector<TaskClass> classes;

  void validate() const;
};

/// Class-weighted totals and speedups (exact generalizations of eq. 2/5/6/7).
[[nodiscard]] double mixedFrtrTotalNormalized(const MixedParams& p);
[[nodiscard]] double mixedPrtrTotalNormalized(const MixedParams& p);
[[nodiscard]] double mixedSpeedup(const MixedParams& p);
[[nodiscard]] double mixedAsymptoticSpeedup(const MixedParams& p);

/// Relative (one-sigma, Gaussian) uncertainty on each parameter for the
/// sensitivity analysis; zero entries stay fixed.
struct Perturbation {
  double xTask = 0.0;
  double xPrtr = 0.0;
  double xControl = 0.0;
  double xDecision = 0.0;
  double hitRatio = 0.0;  ///< absolute sigma (H lives in [0,1])
};

/// Distribution summary of the asymptotic speedup under perturbation.
struct SensitivityResult {
  util::RunningStats speedup;
  double p05 = 0.0;  ///< 5th percentile
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Samples eq. (7) `samples` times with Gaussian-perturbed parameters
/// (clamped to their domains). Deterministic for a given seed.
[[nodiscard]] SensitivityResult sensitivity(const Params& base,
                                            const Perturbation& sigma,
                                            std::size_t samples,
                                            std::uint64_t seed);

}  // namespace prtr::model
