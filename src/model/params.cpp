#include "model/params.hpp"

#include "analyze/checks_model.hpp"
#include "util/error.hpp"

namespace prtr::model {

void Params::validate() const {
  // Single source of truth for the parameter domains: the analyze checkers
  // (codes MD001..MD006). Warning-severity findings (e.g. MD007, provable
  // unprofitability) are advisory and only surface through lint.
  analyze::DiagnosticSink sink;
  analyze::checkParams(*this, sink);
  if (sink.hasErrors()) {
    throw util::DomainError{"Params: " + sink.firstError().format()};
  }
}

Params AbsoluteParams::normalized() const {
  util::require(tFrtr > util::Time::zero(),
                "AbsoluteParams: tFrtr must be positive");
  const double denom = tFrtr.toSeconds();
  Params p;
  p.nCalls = nCalls;
  p.xTask = tTask.toSeconds() / denom;
  p.xPrtr = tPrtr.toSeconds() / denom;
  p.xControl = tControl.toSeconds() / denom;
  p.xDecision = tDecision.toSeconds() / denom;
  p.hitRatio = hitRatio;
  p.validate();
  return p;
}

}  // namespace prtr::model
