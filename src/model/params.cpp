#include "model/params.hpp"

#include "util/error.hpp"

namespace prtr::model {

void Params::validate() const {
  util::require(nCalls >= 1, "Params: nCalls must be at least 1");
  util::require(xTask > 0.0, "Params: xTask must be positive");
  util::require(xPrtr > 0.0 && xPrtr <= 1.0,
                "Params: xPrtr must be in (0, 1] (a partial configuration "
                "cannot exceed the full configuration)");
  util::require(xControl >= 0.0, "Params: xControl must be non-negative");
  util::require(xDecision >= 0.0, "Params: xDecision must be non-negative");
  util::require(hitRatio >= 0.0 && hitRatio <= 1.0,
                "Params: hitRatio must be in [0, 1]");
}

Params AbsoluteParams::normalized() const {
  util::require(tFrtr > util::Time::zero(),
                "AbsoluteParams: tFrtr must be positive");
  const double denom = tFrtr.toSeconds();
  Params p;
  p.nCalls = nCalls;
  p.xTask = tTask.toSeconds() / denom;
  p.xPrtr = tPrtr.toSeconds() / denom;
  p.xControl = tControl.toSeconds() / denom;
  p.xDecision = tDecision.toSeconds() / denom;
  p.hitRatio = hitRatio;
  p.validate();
  return p;
}

}  // namespace prtr::model
