#pragma once
/// \file params.hpp
/// Parameters of the paper's analytical execution model (section 3.1).
/// Every time quantity is normalized by the full configuration time T_FRTR,
/// written X_y = T_y / T_FRTR as in equation (2).

#include <cstdint>

#include "util/units.hpp"

namespace prtr::model {

/// Normalized model parameters.
struct Params {
  std::uint64_t nCalls = 1;  ///< total number of function (task) calls
  double xTask = 1.0;        ///< X_task  = T_task / T_FRTR (> 0)
  double xPrtr = 0.1;        ///< X_PRTR  = T_PRTR / T_FRTR, in (0, 1]
  double xControl = 0.0;     ///< X_control  = T_control / T_FRTR (>= 0)
  double xDecision = 0.0;    ///< X_decision = T_decision / T_FRTR (>= 0)
  double hitRatio = 0.0;     ///< H in [0, 1]; the paper's experiment: H = 0

  [[nodiscard]] double missRatio() const noexcept { return 1.0 - hitRatio; }

  /// Throws DomainError when a parameter is outside its documented domain.
  void validate() const;
};

/// Absolute (seconds-domain) quantities, converted to Params by dividing
/// through by tFrtr. This is the bridge from platform measurements
/// (Table 2) to the model.
struct AbsoluteParams {
  std::uint64_t nCalls = 1;
  util::Time tFrtr;      ///< full configuration time
  util::Time tPrtr;      ///< average partial configuration time
  util::Time tTask;      ///< average task time requirement
  util::Time tControl;   ///< average transfer-of-control time
  util::Time tDecision;  ///< average pre-fetch decision latency
  double hitRatio = 0.0;

  [[nodiscard]] Params normalized() const;
};

}  // namespace prtr::model
