#pragma once
/// \file timeseries.hpp
/// Windowed-over-sim-time series for the fleet: per-window latency
/// histograms plus throughput / shed / retry / breaker counters, and the
/// multi-window SLO burn-rate evaluation over them.
///
/// Windows are indexed by simulated time (`atPs / windowPs`) and grown
/// densely, so folding the per-cell series in cell order is element-wise
/// and deterministic at any --threads — the same ordered-reduction
/// contract the metric registry snapshots follow.
///
/// The SLO gate is the classic multi-window burn-rate alert: with
/// objective `o`, a window's burn rate is `badFraction / (1 - o)` (burn 1
/// means exactly consuming error budget at the rate that exhausts it at
/// the objective horizon). A breach requires the fast window (short,
/// catches cliffs) and the slow window (long, suppresses blips) to exceed
/// their thresholds simultaneously.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace prtr::obs {

/// SLO objective + burn-rate windows, parsed from a `.fleet` spec.
struct SloSpec {
  bool enabled = false;
  /// Fraction of completed-or-shed requests that must be good (completed
  /// within the latency target), e.g. 0.999.
  double objective = 0.999;
  /// Latency target; 0 derives the fleet's admission deadline
  /// (sloFactor x mean service time).
  std::int64_t latencyTargetPs = 0;
  /// Width of one series window in simulated picoseconds (default 50 ms).
  std::int64_t windowPs = 50'000'000'000;
  /// Burn-rate windows, in units of `windowPs`.
  std::uint32_t fastWindows = 3;
  std::uint32_t slowWindows = 12;
  /// Burn-rate thresholds (the canonical page-worthy pair).
  double fastBurn = 14.0;
  double slowBurn = 6.0;
};

/// Windowed counters + latency histogram over simulated time.
class TimeSeries {
 public:
  struct Window {
    std::uint64_t good = 0;  ///< completed within the latency target
    std::uint64_t bad = 0;   ///< completed late, failed, or shed
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t retries = 0;
    std::uint64_t breakerOpens = 0;
    HistogramSummary latency;
  };

  explicit TimeSeries(std::int64_t windowPs = 50'000'000'000) noexcept
      : windowPs_(windowPs > 0 ? windowPs : 1) {}

  [[nodiscard]] std::int64_t windowPs() const noexcept { return windowPs_; }
  [[nodiscard]] const std::vector<Window>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }

  /// The window containing `atPs`, growing the series densely.
  [[nodiscard]] Window& at(std::int64_t atPs);

  /// Element-wise accumulation of another series (same window width).
  void fold(const TimeSeries& other);

  [[nodiscard]] std::uint64_t totalGood() const noexcept;
  [[nodiscard]] std::uint64_t totalBad() const noexcept;

  /// Renders the series as Chrome-trace counter tracks ("<prefix>.x"):
  /// throughput, shed, failed, retries, breaker.opens, and bad_fraction,
  /// one sample per window at the window's start time.
  [[nodiscard]] std::vector<CounterTrack> counterTracks(
      const std::string& prefix) const;

 private:
  std::int64_t windowPs_;
  std::vector<Window> windows_;
};

/// Verdict of evaluateSlo.
struct SloResult {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  double goodFraction = 1.0;   ///< 1.0 when no traffic
  double fastBurnMax = 0.0;    ///< max trailing-fast-window burn rate
  double slowBurnMax = 0.0;    ///< max trailing-slow-window burn rate
  std::uint64_t breachWindows = 0;  ///< windows where both thresholds trip
  bool pass = true;            ///< breachWindows == 0
};

/// Multi-window burn-rate evaluation of `series` against `spec`.
[[nodiscard]] SloResult evaluateSlo(const TimeSeries& series,
                                    const SloSpec& spec);

}  // namespace prtr::obs
