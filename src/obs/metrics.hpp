#pragma once
/// \file metrics.hpp
/// Metrics registry for the simulator and runtime: counters, gauges, and
/// histograms under stable hierarchical dotted names ("icap.bytes_written",
/// "cache.lru.hits", "executor.prtr.stall_ps"). Subsystems record into a
/// Registry; a MetricsSnapshot freezes its state for reports, diffs between
/// two points in a run, and JSON emission. Everything here is deterministic:
/// snapshots hold sorted maps, so two bit-identical runs produce equal
/// snapshots (a property the test suite asserts).

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace prtr::obs {

/// Summary statistics of one histogram series. Values are recorded as
/// int64 (times in picoseconds, sizes in bytes) so sums stay exact. Besides
/// the exact count/sum/min/max, the summary keeps log2-magnitude bucket
/// counts so p50/p95/p99 can be estimated deterministically from recorded
/// bounds alone — two bit-identical runs produce identical estimates, and
/// merge/diff stay exact (buckets add and subtract elementwise).
struct HistogramSummary {
  /// Bucket b holds values whose magnitude has bit-width b (bucket 0 is
  /// exactly zero; negative values clamp into bucket 0). 64-bit values need
  /// bit-widths 0..64.
  static constexpr std::size_t kBucketCount = 65;

  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;
  std::array<std::uint64_t, kBucketCount> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Bucket index of one observation (see kBucketCount).
  [[nodiscard]] static std::size_t bucketIndex(std::int64_t value) noexcept;

  /// Deterministic quantile estimate for q in [0, 1]: linear interpolation
  /// inside the log2 bucket holding the q-th observation, clamped to the
  /// exact [min, max] bounds. Returns 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  friend bool operator==(const HistogramSummary&,
                         const HistogramSummary&) = default;
};

/// Frozen metric state: what a Registry held at snapshot() time, or what a
/// subsystem assembled directly. Ordered maps make rendering stable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value under `name`, or `fallback` when absent.
  [[nodiscard]] std::uint64_t counterOr(std::string_view name,
                                        std::uint64_t fallback = 0) const;

  /// Gauge value under `name`, or nullopt when absent.
  [[nodiscard]] std::optional<double> gauge(std::string_view name) const;

  /// Folds `other` into this snapshot, prefixing every incoming name with
  /// `prefix` ("prtr." turns "icap.loads" into "prtr.icap.loads").
  /// Counters and histogram summaries add; gauges overwrite.
  void merge(const MetricsSnapshot& other, const std::string& prefix = {});

  /// Counter/histogram deltas since `earlier` (this - earlier); gauges keep
  /// their current values. Names absent from `earlier` count from zero.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// "name value" per line, counters then gauges then histograms.
  [[nodiscard]] std::string toString() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void writeJson(util::json::Writer& w) const;
  [[nodiscard]] std::string toJson() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Mutable metric store. Not thread-safe — like the simulator, one registry
/// per thread; parallel sweeps merge snapshots afterwards.
class Registry {
 public:
  /// Adds `delta` to the counter under `name` (created at zero).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets the gauge under `name`.
  void set(std::string_view name, double value);

  /// Records one histogram observation under `name`.
  void observe(std::string_view name, std::int64_t value);

  /// Folds a finished snapshot into this registry (prefixing as in
  /// MetricsSnapshot::merge). This is how per-run snapshots reach a
  /// caller-provided hooks sink.
  void absorb(const MetricsSnapshot& snapshot, const std::string& prefix = {});

  [[nodiscard]] MetricsSnapshot snapshot() const { return state_; }
  [[nodiscard]] bool empty() const noexcept { return state_.empty(); }
  void clear() { state_ = MetricsSnapshot{}; }

 private:
  MetricsSnapshot state_;
};

}  // namespace prtr::obs
