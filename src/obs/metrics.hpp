#pragma once
/// \file metrics.hpp
/// Metrics for the simulator and runtime: counters, gauges, and histograms
/// under stable hierarchical dotted names ("icap.bytes_written",
/// "cache.lru.hits", "executor.prtr.stall_ps").
///
/// The hot path is interned, mirroring the sim kernel's SymbolTable/LaneId
/// design (PR 7): a process-wide MetricTable interns each dotted name once
/// into a dense kind-typed id (CounterId / GaugeId / HistogramId), and a
/// Registry is nothing but flat vectors of cache-line-aligned slots indexed
/// by those ids — `add(CounterId)` is a bounds check plus one increment, no
/// string construction, no map walk. Strings materialize only at the
/// snapshot/JSON boundary, where a MetricsSnapshot freezes the registry
/// state into the same sorted maps (and byte-identical JSON) as always.
///
/// Parallel sweeps record through a ShardedRegistry: one Registry per pool
/// worker (slot 0 for non-pool threads), located through a thread-slot
/// provider the exec layer registers, and merged at the barrier by a
/// deterministic ordered tree reduction — byte-equal output at any width.
///
/// The old string_view record calls survive as once-per-call-site warning
/// deprecated shims (the PR 7 Timeline::record pattern); new code interns
/// once at init and records by id.

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace prtr::obs {

/// Summary statistics of one histogram series. Values are recorded as
/// int64 (times in picoseconds, sizes in bytes) so sums stay exact. Besides
/// the exact count/sum/min/max, the summary keeps log2-magnitude bucket
/// counts so p50/p95/p99 can be estimated deterministically from recorded
/// bounds alone — two bit-identical runs produce identical estimates, and
/// merge/diff stay exact (buckets add and subtract elementwise).
struct HistogramSummary {
  /// Bucket b holds values whose magnitude has bit-width b (bucket 0 is
  /// exactly zero; negative values clamp into bucket 0). 64-bit values need
  /// bit-widths 0..64.
  static constexpr std::size_t kBucketCount = 65;

  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< meaningful only when count > 0
  std::int64_t max = 0;
  std::array<std::uint64_t, kBucketCount> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Bucket index of one observation (see kBucketCount).
  [[nodiscard]] static std::size_t bucketIndex(std::int64_t value) noexcept;

  /// Deterministic quantile estimate for q in [0, 1]: linear interpolation
  /// inside the log2 bucket holding the q-th observation, clamped to the
  /// exact [min, max] bounds. Returns 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Folds `from` into this summary (count/sum/buckets add, bounds widen).
  void fold(const HistogramSummary& from) noexcept;

  friend bool operator==(const HistogramSummary&,
                         const HistogramSummary&) = default;
};

/// Dense id of an interned counter name. Each metric kind has its own id
/// space (a counter and a gauge may share a dotted name without colliding),
/// so ids are kind-typed the way LaneId/LabelId are lane/label-typed.
struct CounterId {
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFF;
  std::uint32_t value = kInvalid;
  [[nodiscard]] bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] std::size_t index() const noexcept { return value; }
  friend bool operator==(CounterId, CounterId) = default;
};

/// Dense id of an interned gauge name.
struct GaugeId {
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFF;
  std::uint32_t value = kInvalid;
  [[nodiscard]] bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] std::size_t index() const noexcept { return value; }
  friend bool operator==(GaugeId, GaugeId) = default;
};

/// Dense id of an interned histogram name.
struct HistogramId {
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFF;
  std::uint32_t value = kInvalid;
  [[nodiscard]] bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] std::size_t index() const noexcept { return value; }
  friend bool operator==(HistogramId, HistogramId) = default;
};

/// Process-wide intern table mapping dotted metric names to dense ids,
/// one id space per metric kind. Interning is thread-safe (shared_mutex;
/// lookups of already-interned names take the reader lock) and ids are
/// stable for the life of the process, so subsystems intern once at init —
/// typically into a function-local static id bundle — and record by id
/// forever after. Names live in deques, so the references `counterName`
/// et al. return stay valid across later interning.
class MetricTable {
 public:
  /// The table every Registry in the process records against.
  [[nodiscard]] static MetricTable& global();

  /// Interns `name` as a counter (idempotent: same name, same id).
  [[nodiscard]] CounterId counter(std::string_view name);
  /// Interns `name` as a gauge.
  [[nodiscard]] GaugeId gauge(std::string_view name);
  /// Interns `name` as a histogram.
  [[nodiscard]] HistogramId histogram(std::string_view name);

  /// Id of an already-interned name, or an invalid id when never interned.
  [[nodiscard]] CounterId findCounter(std::string_view name) const;
  [[nodiscard]] GaugeId findGauge(std::string_view name) const;
  [[nodiscard]] HistogramId findHistogram(std::string_view name) const;

  /// Dotted name of an interned id. The id must be valid for this table.
  [[nodiscard]] const std::string& counterName(CounterId id) const;
  [[nodiscard]] const std::string& gaugeName(GaugeId id) const;
  [[nodiscard]] const std::string& histogramName(HistogramId id) const;

  [[nodiscard]] std::size_t counterCount() const;
  [[nodiscard]] std::size_t gaugeCount() const;
  [[nodiscard]] std::size_t histogramCount() const;

 private:
  struct Pool;
  MetricTable();
  ~MetricTable();
  MetricTable(const MetricTable&) = delete;
  MetricTable& operator=(const MetricTable&) = delete;

  mutable std::shared_mutex mutex_;
  std::unique_ptr<Pool> counters_;
  std::unique_ptr<Pool> gauges_;
  std::unique_ptr<Pool> histograms_;
};

/// Frozen metric state: what a Registry held at snapshot() time, or what a
/// subsystem assembled directly. Ordered maps make rendering stable; the
/// transparent comparator lets lookups and merges probe with string_views
/// without constructing keys.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSummary, std::less<>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value under `name`, or `fallback` when absent.
  [[nodiscard]] std::uint64_t counterOr(std::string_view name,
                                        std::uint64_t fallback = 0) const;

  /// Gauge value under `name`, or nullopt when absent.
  [[nodiscard]] std::optional<double> gauge(std::string_view name) const;

  /// Folds `other` into this snapshot, prefixing every incoming name with
  /// `prefix` ("prtr." turns "icap.loads" into "prtr.icap.loads").
  /// Counters and histogram summaries add; gauges overwrite. One scratch
  /// key string is reused across the whole fold — no per-metric prefix
  /// reallocation.
  void merge(const MetricsSnapshot& other, const std::string& prefix = {});

  /// Move-merge for temporaries (reports absorbing per-run snapshots, the
  /// shard tree reduction): with an empty prefix the maps are spliced via
  /// node extraction — and moved wholesale into an empty snapshot — so no
  /// key string is ever copied.
  void merge(MetricsSnapshot&& other, const std::string& prefix = {});

  /// Counter/histogram deltas since `earlier` (this - earlier); gauges keep
  /// their current values. Names absent from `earlier` count from zero.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

  /// "name value" per line, counters then gauges then histograms.
  [[nodiscard]] std::string toString() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void writeJson(util::json::Writer& w) const;
  [[nodiscard]] std::string toJson() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// One counter slot, alone on its cache line so per-worker registries never
/// false-share and the hot increment touches exactly one line.
struct alignas(64) CounterSlot {
  std::uint64_t value = 0;
  /// Distinguishes "never recorded" from "recorded zero": only touched
  /// slots materialize in snapshots, so interning a name process-wide does
  /// not make it appear in every registry's output.
  bool touched = false;
};
static_assert(sizeof(CounterSlot) == 64 && alignof(CounterSlot) == 64);

/// One gauge slot (same layout discipline as CounterSlot).
struct alignas(64) GaugeSlot {
  double value = 0.0;
  bool touched = false;
};
static_assert(sizeof(GaugeSlot) == 64 && alignof(GaugeSlot) == 64);

/// One histogram slot. The summary is larger than a line, so the slot is
/// padded to a whole number of cache lines to keep neighbors independent.
struct alignas(64) HistogramSlot {
  HistogramSummary summary;
  bool touched = false;
};
static_assert(alignof(HistogramSlot) == 64 && sizeof(HistogramSlot) % 64 == 0);

/// Mutable metric store, indexed by MetricTable ids: three flat vectors of
/// cache-line-aligned slots. Not thread-safe — one registry per thread (see
/// ShardedRegistry); parallel sweeps merge snapshots afterwards.
class Registry {
 public:
  /// Adds `delta` to the counter under `id` (created at zero).
  void add(CounterId id, std::uint64_t delta = 1) {
    if (id.index() >= counters_.size()) growCounters(id);
    CounterSlot& slot = counters_[id.index()];
    touchedCounters_ += !slot.touched;
    slot.touched = true;
    slot.value += delta;
  }

  /// Sets the gauge under `id`.
  void set(GaugeId id, double value) {
    if (id.index() >= gauges_.size()) growGauges(id);
    GaugeSlot& slot = gauges_[id.index()];
    touchedGauges_ += !slot.touched;
    slot.touched = true;
    slot.value = value;
  }

  /// Records one histogram observation under `id`.
  void observe(HistogramId id, std::int64_t value) {
    if (id.index() >= histograms_.size()) growHistograms(id);
    HistogramSlot& slot = histograms_[id.index()];
    touchedHistograms_ += !slot.touched;
    slot.touched = true;
    HistogramSummary& h = slot.summary;
    if (h.count == 0) {
      h.min = value;
      h.max = value;
    } else {
      h.min = std::min(h.min, value);
      h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
    ++h.buckets[HistogramSummary::bucketIndex(value)];
  }

  // The PR 4/7 string shims (add/set/observe by name) are gone: intern
  // once via MetricTable and record by id. obs_metrics_test.cpp pins the
  // removal with a negative-compile check.

  /// Folds a finished snapshot into this registry (prefixing as in
  /// MetricsSnapshot::merge). This is how per-run snapshots reach a
  /// caller-provided hooks sink. Interns at the boundary; not deprecated —
  /// snapshots are the string domain.
  void absorb(const MetricsSnapshot& snapshot, const std::string& prefix = {});

  /// Like absorb, but folds only the additive series (counters and
  /// histograms), skipping gauges. Shards absorb per-point snapshots with
  /// this: which shard a sweep point lands on is schedule-dependent, and
  /// additive series merge to the same total regardless — the property that
  /// keeps sharded output byte-identical at any width.
  void absorbAdditive(const MetricsSnapshot& snapshot,
                      const std::string& prefix = {});

  /// Materializes names and builds the sorted snapshot (the only point
  /// where this registry's metrics exist as strings).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// snapshot(), then resets every slot — the vectors keep their capacity,
  /// so a reused registry records the next run without reallocating.
  [[nodiscard]] MetricsSnapshot takeSnapshot();

  [[nodiscard]] bool empty() const noexcept {
    return touchedCounters_ == 0 && touchedGauges_ == 0 &&
           touchedHistograms_ == 0;
  }
  void clear();

 private:
  void growCounters(CounterId id);
  void growGauges(GaugeId id);
  void growHistograms(HistogramId id);

  std::vector<CounterSlot> counters_;
  std::vector<GaugeSlot> gauges_;
  std::vector<HistogramSlot> histograms_;
  std::size_t touchedCounters_ = 0;
  std::size_t touchedGauges_ = 0;
  std::size_t touchedHistograms_ = 0;
};

/// Thread-slot provider: maps the calling thread to a stable small shard
/// index. The exec layer registers one that returns workerIndex + 1 on pool
/// worker threads and 0 elsewhere, so a sweep's recording threads never
/// share a shard. Unregistered, every thread maps to slot 0.
using ThreadSlotFn = std::size_t (*)() noexcept;
void setThreadSlotProvider(ThreadSlotFn fn) noexcept;
[[nodiscard]] std::size_t currentThreadSlot() noexcept;

/// A bank of per-thread Registry shards for contention-free parallel
/// recording. `local()` resolves the calling thread's shard through the
/// thread-slot provider; shards grow on demand (under a writer lock, with
/// stable addresses) and are merged at the barrier by an ordered pairwise
/// tree reduction over shard index — a fixed fold shape, so the merged
/// snapshot is byte-identical no matter how many threads recorded or how
/// work was scheduled across them, provided recording is additive (see
/// Registry::absorbAdditive).
class ShardedRegistry {
 public:
  explicit ShardedRegistry(std::size_t shards = 1);

  /// The calling thread's shard (provider slot; grows the bank on demand).
  [[nodiscard]] Registry& local();

  /// Shard by explicit index (grows the bank on demand).
  [[nodiscard]] Registry& shard(std::size_t index);

  [[nodiscard]] std::size_t shardCount() const;
  [[nodiscard]] bool empty() const;
  void clear();

  /// Tree-reduction of every shard's snapshot, in shard order.
  [[nodiscard]] MetricsSnapshot mergedSnapshot() const;

  /// mergedSnapshot() via takeSnapshot(): shards are reset, capacity kept.
  [[nodiscard]] MetricsSnapshot takeMerged();

 private:
  Registry& shardLocked(std::size_t index);

  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Registry>> shards_;
};

/// Ordered pairwise tree reduction over `leaves` (index order, moving every
/// merge). The fold shape depends only on leaves.size(), so the result is
/// deterministic; for additive series it equals the left-to-right fold.
[[nodiscard]] MetricsSnapshot reduceSnapshots(
    std::vector<MetricsSnapshot> leaves);

}  // namespace prtr::obs
