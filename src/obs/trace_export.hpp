#pragma once
/// \file trace_export.hpp
/// Chrome trace_event / Perfetto export of sim::Timeline spans. Each added
/// timeline becomes one "process" in the trace, its lanes become threads,
/// and every span is emitted as a complete ("X") event, so a scenario's
/// Gantt opens directly in chrome://tracing or ui.perfetto.dev. Counter
/// tracks (sampled gauges such as link occupancy or ICAP busy-fraction)
/// attach to a process and are emitted as "C" events, rendering as
/// utilization curves above the span lanes.
///
/// Timestamps: the trace_event format counts microseconds; simulated time
/// is integer picoseconds. Values are rendered as exact decimal fractions
/// (ps / 1e6, up to six fractional digits), so the export is deterministic
/// and lossless — no floating-point formatting is involved.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace prtr::obs {

/// One sampled point of a counter track, in simulated picoseconds.
struct CounterSample {
  std::int64_t at_ps = 0;
  double value = 0.0;
};

/// One named utilization/occupancy curve ("link.in.occupancy", "icap.busy").
struct CounterTrack {
  std::string name;
  std::vector<CounterSample> samples;
};

/// Collects timelines and writes one Chrome-trace JSON document.
class ChromeTrace {
 public:
  /// Adds every span of `timeline` under a process named `processName`.
  /// Lanes map to thread ids in first-seen order; span order is preserved.
  void add(const std::string& processName, const sim::Timeline& timeline);

  /// Attaches counter tracks to the process named `processName` (sharing its
  /// pid so the curves render above that process's lanes). When no process
  /// with that name exists yet, a counter-only process is created.
  void addCounters(const std::string& processName,
                   std::vector<CounterTrack> tracks);

  [[nodiscard]] bool empty() const noexcept { return processes_.empty(); }
  [[nodiscard]] std::size_t processCount() const noexcept {
    return processes_.size();
  }

  /// Writes {"traceEvents":[...]} — metadata first (process/thread names
  /// plus explicit sort indexes in insertion order, so Perfetto lane order
  /// is stable across loads), then span events, then counter samples.
  void write(std::ostream& os) const;
  [[nodiscard]] std::string toJson() const;

  /// write() to `path`; throws util::Error when the file cannot be opened.
  void writeFile(const std::string& path) const;

 private:
  struct Process {
    std::string name;
    std::vector<std::string> lanes;        ///< tid = index, first-seen order
    std::vector<sim::NamedSpan> spans;
    std::vector<std::size_t> spanLane;     ///< lane index per span
    std::vector<CounterTrack> counters;
  };

  std::vector<Process> processes_;
};

/// Exact "<µs>.<frac>" rendering of a picosecond count (trailing zeros
/// trimmed; whole microseconds render without a fraction). Exposed for the
/// golden-file test.
[[nodiscard]] std::string microsecondsFromPicoseconds(std::int64_t ps);

}  // namespace prtr::obs
