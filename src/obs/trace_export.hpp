#pragma once
/// \file trace_export.hpp
/// Chrome trace_event / Perfetto export of sim::Timeline spans. Each added
/// timeline becomes one "process" in the trace, its lanes become threads,
/// and every span is emitted as a complete ("X") event, so a scenario's
/// Gantt opens directly in chrome://tracing or ui.perfetto.dev. Counter
/// tracks (sampled gauges such as link occupancy or ICAP busy-fraction)
/// attach to a process and are emitted as "C" events, rendering as
/// utilization curves above the span lanes.
///
/// Timestamps: the trace_event format counts microseconds; simulated time
/// is integer picoseconds. Values are rendered as exact decimal fractions
/// (ps / 1e6, up to six fractional digits), so the export is deterministic
/// and lossless — no floating-point formatting is involved.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace prtr::obs {

/// One sampled point of a counter track, in simulated picoseconds.
struct CounterSample {
  std::int64_t at_ps = 0;
  double value = 0.0;
};

/// One named utilization/occupancy curve ("link.in.occupancy", "icap.busy").
struct CounterTrack {
  std::string name;
  std::vector<CounterSample> samples;
};

/// One instant ("i") event on a lane — a zero-duration annotation such as
/// "breaker:open" or "hedge:win".
struct TraceInstant {
  std::string lane;
  std::string label;
  std::int64_t atPs = 0;
};

/// One half of a flow arrow ("s"/"f" event pair). Events sharing an id form
/// one arrow; `begin` distinguishes the start from the finish.
struct TraceFlow {
  std::string lane;
  std::string label;
  std::string id;
  std::int64_t atPs = 0;
  bool begin = true;
};

/// A pre-grouped process: lane order is declared up front and every span
/// names its lane, so ingestion is a hash lookup per span instead of the
/// O(lanes) scan add() performs — the difference matters when a fleet trace
/// carries thousands of request lanes.
struct ProcessTrace {
  std::string name;
  std::vector<std::string> lanes;  ///< declared order; tid = index + 1
  std::vector<sim::NamedSpan> spans;
  std::vector<TraceInstant> instants;
  std::vector<TraceFlow> flows;
};

/// Collects timelines and writes one Chrome-trace JSON document.
class ChromeTrace {
 public:
  /// Adds every span of `timeline` under a process named `processName`.
  /// Lanes map to thread ids in first-seen order; span order is preserved.
  void add(const std::string& processName, const sim::Timeline& timeline);

  /// Adds a pre-grouped process (lanes declared up front; spans, instants
  /// and flows name their lanes). Lanes not declared are appended in
  /// first-seen order.
  void addProcess(ProcessTrace process);

  /// Attaches counter tracks to the process named `processName` (sharing its
  /// pid so the curves render above that process's lanes). When no process
  /// with that name exists yet, a counter-only process is created.
  void addCounters(const std::string& processName,
                   std::vector<CounterTrack> tracks);

  [[nodiscard]] bool empty() const noexcept { return processes_.empty(); }
  [[nodiscard]] std::size_t processCount() const noexcept {
    return processes_.size();
  }

  /// Writes {"traceEvents":[...]} — metadata first (process/thread names
  /// plus explicit sort indexes in insertion order, so Perfetto lane order
  /// is stable across loads), then span events, then instants, then flow
  /// arrows, then counter samples.
  void write(std::ostream& os) const;
  [[nodiscard]] std::string toJson() const;

  /// write() to `path`; throws util::Error when the file cannot be opened.
  void writeFile(const std::string& path) const;

 private:
  struct Process {
    std::string name;
    std::vector<std::string> lanes;        ///< tid = index, first-seen order
    std::vector<sim::NamedSpan> spans;
    std::vector<std::size_t> spanLane;     ///< lane index per span
    std::vector<TraceInstant> instants;
    std::vector<std::size_t> instantLane;  ///< lane index per instant
    std::vector<TraceFlow> flows;
    std::vector<std::size_t> flowLane;     ///< lane index per flow event
    std::vector<CounterTrack> counters;
  };

  std::vector<Process> processes_;
};

/// Exact "<µs>.<frac>" rendering of a picosecond count (trailing zeros
/// trimmed; whole microseconds render without a fraction). Exposed for the
/// golden-file test.
[[nodiscard]] std::string microsecondsFromPicoseconds(std::int64_t ps);

}  // namespace prtr::obs
