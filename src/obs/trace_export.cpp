#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/json.hpp"

namespace prtr::obs {

std::string microsecondsFromPicoseconds(std::int64_t ps) {
  const bool negative = ps < 0;
  const std::uint64_t magnitude =
      negative ? 0ULL - static_cast<std::uint64_t>(ps)
               : static_cast<std::uint64_t>(ps);
  const std::uint64_t whole = magnitude / 1'000'000ULL;
  std::uint64_t frac = magnitude % 1'000'000ULL;
  std::string out = negative ? "-" : "";
  out += std::to_string(whole);
  if (frac != 0) {
    char digits[7];
    for (int i = 5; i >= 0; --i) {
      digits[i] = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    digits[6] = '\0';
    std::string fracText{digits};
    while (fracText.back() == '0') fracText.pop_back();
    out += '.';
    out += fracText;
  }
  return out;
}

void ChromeTrace::add(const std::string& processName,
                      const sim::Timeline& timeline) {
  Process proc;
  proc.name = processName;
  proc.spans = timeline.materialize();
  proc.spanLane.reserve(proc.spans.size());
  for (const sim::NamedSpan& span : proc.spans) {
    const auto it = std::find(proc.lanes.begin(), proc.lanes.end(), span.lane);
    if (it == proc.lanes.end()) {
      proc.spanLane.push_back(proc.lanes.size());
      proc.lanes.push_back(span.lane);
    } else {
      proc.spanLane.push_back(
          static_cast<std::size_t>(it - proc.lanes.begin()));
    }
  }
  processes_.push_back(std::move(proc));
}

void ChromeTrace::addProcess(ProcessTrace process) {
  Process proc;
  proc.name = std::move(process.name);
  proc.lanes = std::move(process.lanes);
  std::unordered_map<std::string, std::size_t> laneIndex;
  laneIndex.reserve(proc.lanes.size());
  for (std::size_t t = 0; t < proc.lanes.size(); ++t) {
    laneIndex.emplace(proc.lanes[t], t);
  }
  const auto resolve = [&](const std::string& lane) {
    const auto it = laneIndex.find(lane);
    if (it != laneIndex.end()) return it->second;
    const std::size_t idx = proc.lanes.size();
    proc.lanes.push_back(lane);
    laneIndex.emplace(lane, idx);
    return idx;
  };
  proc.spans = std::move(process.spans);
  proc.spanLane.reserve(proc.spans.size());
  for (const sim::NamedSpan& span : proc.spans) {
    proc.spanLane.push_back(resolve(span.lane));
  }
  proc.instants = std::move(process.instants);
  proc.instantLane.reserve(proc.instants.size());
  for (const TraceInstant& instant : proc.instants) {
    proc.instantLane.push_back(resolve(instant.lane));
  }
  proc.flows = std::move(process.flows);
  proc.flowLane.reserve(proc.flows.size());
  for (const TraceFlow& flow : proc.flows) {
    proc.flowLane.push_back(resolve(flow.lane));
  }
  processes_.push_back(std::move(proc));
}

void ChromeTrace::addCounters(const std::string& processName,
                              std::vector<CounterTrack> tracks) {
  for (Process& proc : processes_) {
    if (proc.name == processName) {
      for (CounterTrack& track : tracks) {
        proc.counters.push_back(std::move(track));
      }
      return;
    }
  }
  Process proc;
  proc.name = processName;
  proc.counters = std::move(tracks);
  processes_.push_back(std::move(proc));
}

void ChromeTrace::write(std::ostream& os) const {
  util::json::Writer w{os};
  w.beginObject();
  w.key("traceEvents").beginArray();
  // Metadata first: names and explicit sort indexes for every process and
  // lane-thread, in insertion order, so viewers keep the recorded order
  // instead of sorting lanes by first-event timestamp.
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    const Process& proc = processes_[p];
    w.beginObject();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(p + 1));
    w.key("tid").value(std::uint64_t{0});
    w.key("args").beginObject().key("name").value(proc.name).endObject();
    w.endObject();
    w.beginObject();
    w.key("name").value("process_sort_index");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(p + 1));
    w.key("tid").value(std::uint64_t{0});
    w.key("args")
        .beginObject()
        .key("sort_index")
        .value(static_cast<std::uint64_t>(p + 1))
        .endObject();
    w.endObject();
    for (std::size_t t = 0; t < proc.lanes.size(); ++t) {
      w.beginObject();
      w.key("name").value("thread_name");
      w.key("ph").value("M");
      w.key("pid").value(static_cast<std::uint64_t>(p + 1));
      w.key("tid").value(static_cast<std::uint64_t>(t + 1));
      w.key("args").beginObject().key("name").value(proc.lanes[t]).endObject();
      w.endObject();
      w.beginObject();
      w.key("name").value("thread_sort_index");
      w.key("ph").value("M");
      w.key("pid").value(static_cast<std::uint64_t>(p + 1));
      w.key("tid").value(static_cast<std::uint64_t>(t + 1));
      w.key("args")
          .beginObject()
          .key("sort_index")
          .value(static_cast<std::uint64_t>(t + 1))
          .endObject();
      w.endObject();
    }
  }
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    const Process& proc = processes_[p];
    for (std::size_t i = 0; i < proc.spans.size(); ++i) {
      const sim::NamedSpan& span = proc.spans[i];
      w.beginObject();
      w.key("name").value(span.label);
      w.key("cat").value(span.lane);
      w.key("ph").value("X");
      w.key("pid").value(static_cast<std::uint64_t>(p + 1));
      w.key("tid").value(static_cast<std::uint64_t>(proc.spanLane[i] + 1));
      w.key("ts").raw(microsecondsFromPicoseconds(span.start.ps()));
      w.key("dur").raw(microsecondsFromPicoseconds((span.end - span.start).ps()));
      w.endObject();
    }
  }
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    const Process& proc = processes_[p];
    for (std::size_t i = 0; i < proc.instants.size(); ++i) {
      const TraceInstant& instant = proc.instants[i];
      w.beginObject();
      w.key("name").value(instant.label);
      w.key("cat").value(proc.lanes[proc.instantLane[i]]);
      w.key("ph").value("i");
      w.key("s").value("t");
      w.key("pid").value(static_cast<std::uint64_t>(p + 1));
      w.key("tid").value(static_cast<std::uint64_t>(proc.instantLane[i] + 1));
      w.key("ts").raw(microsecondsFromPicoseconds(instant.atPs));
      w.endObject();
    }
  }
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    const Process& proc = processes_[p];
    for (std::size_t i = 0; i < proc.flows.size(); ++i) {
      const TraceFlow& flow = proc.flows[i];
      w.beginObject();
      w.key("name").value(flow.label);
      w.key("cat").value("flow");
      w.key("ph").value(flow.begin ? "s" : "f");
      if (!flow.begin) w.key("bp").value("e");
      w.key("id").value(flow.id);
      w.key("pid").value(static_cast<std::uint64_t>(p + 1));
      w.key("tid").value(static_cast<std::uint64_t>(proc.flowLane[i] + 1));
      w.key("ts").raw(microsecondsFromPicoseconds(flow.atPs));
      w.endObject();
    }
  }
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    const Process& proc = processes_[p];
    for (const CounterTrack& track : proc.counters) {
      for (const CounterSample& sample : track.samples) {
        w.beginObject();
        w.key("name").value(track.name);
        w.key("ph").value("C");
        w.key("pid").value(static_cast<std::uint64_t>(p + 1));
        w.key("ts").raw(microsecondsFromPicoseconds(sample.at_ps));
        w.key("args")
            .beginObject()
            .key("value")
            .value(sample.value)
            .endObject();
        w.endObject();
      }
    }
  }
  w.endArray();
  w.key("displayTimeUnit").value("ms");
  w.endObject();
}

std::string ChromeTrace::toJson() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void ChromeTrace::writeFile(const std::string& path) const {
  std::ofstream file{path};
  if (!file) throw util::Error{"ChromeTrace: cannot open " + path + " for writing"};
  write(file);
}

}  // namespace prtr::obs
