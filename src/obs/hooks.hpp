#pragma once
/// \file hooks.hpp
/// Uniform observability attachment point. Every run entry point that used
/// to take ad-hoc `sim::Timeline*` parameters (scenario, hw/sw, multitask,
/// chassis) now takes one Hooks struct: optional Gantt timelines, an
/// optional metrics sink that receives the run's MetricsSnapshot, and an
/// optional Chrome-trace collector that receives the recorded timelines.
/// All pointers are non-owning and may be null (null = feature off).

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/trace.hpp"

namespace prtr::prof {
class Profiler;  // host-side wall-clock profiler (prtr::prof layers above obs)
}  // namespace prtr::prof

namespace prtr::obs {

struct Hooks {
  /// Primary execution timeline — the PRTR side of a two-sided scenario,
  /// or the single timeline of one-sided runs (hw/sw, chassis blades).
  sim::Timeline* timeline = nullptr;
  /// Baseline (FRTR) timeline; recorded only by two-sided scenario runs.
  sim::Timeline* frtrTimeline = nullptr;
  /// Receives the run's merged MetricsSnapshot via Registry::absorb.
  Registry* metrics = nullptr;
  /// Per-worker metric shards: runs absorb their additive series (counters,
  /// histograms) into the calling thread's shard contention-free, and the
  /// sweep merges every shard at the barrier with a deterministic tree
  /// reduction (ShardedRegistry::takeMerged). Unlike `metrics`, safe to
  /// share across parallel sweep points at any --threads width.
  ShardedRegistry* shardedMetrics = nullptr;
  /// Receives the run's timelines as trace processes. When set while the
  /// timeline pointers above are null, the run records into internal
  /// timelines so the trace is still populated.
  ChromeTrace* trace = nullptr;
  /// Host-side wall-clock profiler (prof::Profiler). Run entry points open
  /// prof::Scope timers against it; null keeps profiling zero-overhead.
  prof::Profiler* profiler = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return timeline != nullptr || frtrTimeline != nullptr ||
           metrics != nullptr || shardedMetrics != nullptr ||
           trace != nullptr || profiler != nullptr;
  }
};

}  // namespace prtr::obs
