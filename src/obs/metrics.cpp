#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace prtr::obs {
namespace {

void foldHistogram(HistogramSummary& into, const HistogramSummary& from) {
  into.fold(from);
}

std::size_t defaultThreadSlot() noexcept { return 0; }

std::atomic<ThreadSlotFn> gThreadSlot{&defaultThreadSlot};

}  // namespace

void HistogramSummary::fold(const HistogramSummary& from) noexcept {
  if (from.count == 0) return;
  if (count == 0) {
    *this = from;
    return;
  }
  count += from.count;
  sum += from.sum;
  min = std::min(min, from.min);
  max = std::max(max, from.max);
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    buckets[b] += from.buckets[b];
  }
}

std::size_t HistogramSummary::bucketIndex(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(value)));
}

double HistogramSummary::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation, 1-based (nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // Bucket b spans [2^(b-1), 2^b - 1] (bucket 0 is exactly zero).
    // Interpolate by the rank's position inside the bucket, then clamp to
    // the exact recorded bounds.
    double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    const double position =
        static_cast<double>(rank - seen - 1) /
        static_cast<double>(buckets[b]);
    double estimate = lo + (hi - lo) * position;
    estimate = std::clamp(estimate, static_cast<double>(min),
                          static_cast<double>(max));
    return estimate;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// MetricTable

/// One kind's intern pool: names in a deque (stable references across
/// growth) indexed by a transparent-hash map, the SymbolTable layout.
struct MetricTable::Pool {
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::deque<std::string> names;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> index;

  std::uint32_t intern(std::string_view name) {
    if (const auto it = index.find(name); it != index.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(names.size());
    names.emplace_back(name);
    index.emplace(names.back(), id);
    return id;
  }

  [[nodiscard]] std::uint32_t find(std::string_view name) const noexcept {
    const auto it = index.find(name);
    return it != index.end() ? it->second : 0xFFFF'FFFF;
  }
};

MetricTable::MetricTable()
    : counters_(std::make_unique<Pool>()),
      gauges_(std::make_unique<Pool>()),
      histograms_(std::make_unique<Pool>()) {}

MetricTable::~MetricTable() = default;

MetricTable& MetricTable::global() {
  // Leaked on purpose: registries snapshot during static destruction in
  // some tests, and ids must outlive every Registry.
  static MetricTable* table = new MetricTable;
  return *table;
}

CounterId MetricTable::counter(std::string_view name) {
  {
    std::shared_lock lock{mutex_};
    if (const std::uint32_t id = counters_->find(name); id != 0xFFFF'FFFF) {
      return CounterId{id};
    }
  }
  std::unique_lock lock{mutex_};
  return CounterId{counters_->intern(name)};
}

GaugeId MetricTable::gauge(std::string_view name) {
  {
    std::shared_lock lock{mutex_};
    if (const std::uint32_t id = gauges_->find(name); id != 0xFFFF'FFFF) {
      return GaugeId{id};
    }
  }
  std::unique_lock lock{mutex_};
  return GaugeId{gauges_->intern(name)};
}

HistogramId MetricTable::histogram(std::string_view name) {
  {
    std::shared_lock lock{mutex_};
    if (const std::uint32_t id = histograms_->find(name); id != 0xFFFF'FFFF) {
      return HistogramId{id};
    }
  }
  std::unique_lock lock{mutex_};
  return HistogramId{histograms_->intern(name)};
}

CounterId MetricTable::findCounter(std::string_view name) const {
  std::shared_lock lock{mutex_};
  return CounterId{counters_->find(name)};
}

GaugeId MetricTable::findGauge(std::string_view name) const {
  std::shared_lock lock{mutex_};
  return GaugeId{gauges_->find(name)};
}

HistogramId MetricTable::findHistogram(std::string_view name) const {
  std::shared_lock lock{mutex_};
  return HistogramId{histograms_->find(name)};
}

const std::string& MetricTable::counterName(CounterId id) const {
  std::shared_lock lock{mutex_};
  return counters_->names[id.index()];
}

const std::string& MetricTable::gaugeName(GaugeId id) const {
  std::shared_lock lock{mutex_};
  return gauges_->names[id.index()];
}

const std::string& MetricTable::histogramName(HistogramId id) const {
  std::shared_lock lock{mutex_};
  return histograms_->names[id.index()];
}

std::size_t MetricTable::counterCount() const {
  std::shared_lock lock{mutex_};
  return counters_->names.size();
}

std::size_t MetricTable::gaugeCount() const {
  std::shared_lock lock{mutex_};
  return gauges_->names.size();
}

std::size_t MetricTable::histogramCount() const {
  std::shared_lock lock{mutex_};
  return histograms_->names.size();
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

std::uint64_t MetricsSnapshot::counterOr(std::string_view name,
                                         std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : fallback;
}

std::optional<double> MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(name);
  return it != gauges.end() ? std::optional<double>{it->second} : std::nullopt;
}

namespace {

/// Reusable prefixed-key scratch: one string whose prefix is written once,
/// with each metric's name appended and truncated in turn.
class PrefixedKey {
 public:
  explicit PrefixedKey(const std::string& prefix) : scratch_{prefix} {}

  std::string_view operator()(const std::string& name) {
    scratch_.resize(prefixLength_);
    scratch_ += name;
    return scratch_;
  }

 private:
  std::string scratch_;
  std::size_t prefixLength_ = scratch_.size();
};

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other,
                            const std::string& prefix) {
  PrefixedKey key{prefix};
  for (const auto& [name, value] : other.counters) {
    const std::string_view k = key(name);
    if (const auto it = counters.find(k); it != counters.end()) {
      it->second += value;
    } else {
      counters.emplace(k, value);
    }
  }
  for (const auto& [name, value] : other.gauges) {
    const std::string_view k = key(name);
    if (const auto it = gauges.find(k); it != gauges.end()) {
      it->second = value;
    } else {
      gauges.emplace(k, value);
    }
  }
  for (const auto& [name, value] : other.histograms) {
    const std::string_view k = key(name);
    if (const auto it = histograms.find(k); it != histograms.end()) {
      foldHistogram(it->second, value);
    } else {
      histograms.emplace(k, value);
    }
  }
}

void MetricsSnapshot::merge(MetricsSnapshot&& other,
                            const std::string& prefix) {
  if (!prefix.empty()) {
    // Prefixing rewrites every key anyway; histogram payloads still move.
    PrefixedKey key{prefix};
    for (const auto& [name, value] : other.counters) {
      const std::string_view k = key(name);
      if (const auto it = counters.find(k); it != counters.end()) {
        it->second += value;
      } else {
        counters.emplace(k, value);
      }
    }
    for (const auto& [name, value] : other.gauges) {
      const std::string_view k = key(name);
      if (const auto it = gauges.find(k); it != gauges.end()) {
        it->second = value;
      } else {
        gauges.emplace(k, value);
      }
    }
    for (auto& [name, value] : other.histograms) {
      const std::string_view k = key(name);
      if (const auto it = histograms.find(k); it != histograms.end()) {
        foldHistogram(it->second, value);
      } else {
        histograms.emplace(k, std::move(value));
      }
    }
    other = MetricsSnapshot{};
    return;
  }
  if (empty()) {
    *this = std::move(other);
    other = MetricsSnapshot{};
    return;
  }
  // Splice nodes: keys (and histogram payloads) move, never reallocate.
  while (!other.counters.empty()) {
    auto node = other.counters.extract(other.counters.begin());
    if (const auto it = counters.find(node.key()); it != counters.end()) {
      it->second += node.mapped();
    } else {
      counters.insert(std::move(node));
    }
  }
  while (!other.gauges.empty()) {
    auto node = other.gauges.extract(other.gauges.begin());
    if (const auto it = gauges.find(node.key()); it != gauges.end()) {
      it->second = node.mapped();
    } else {
      gauges.insert(std::move(node));
    }
  }
  while (!other.histograms.empty()) {
    auto node = other.histograms.extract(other.histograms.begin());
    if (const auto it = histograms.find(node.key()); it != histograms.end()) {
      foldHistogram(it->second, node.mapped());
    } else {
      histograms.insert(std::move(node));
    }
  }
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    out.counters[name] = value - earlier.counterOr(name);
  }
  out.gauges = gauges;
  for (const auto& [name, value] : histograms) {
    HistogramSummary delta = value;
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      delta.count -= it->second.count;
      delta.sum -= it->second.sum;
      for (std::size_t b = 0; b < HistogramSummary::kBucketCount; ++b) {
        delta.buckets[b] -= it->second.buckets[b];
      }
      // min/max are not invertible over a window; keep the later values.
    }
    out.histograms[name] = delta;
  }
  return out;
}

std::string MetricsSnapshot::toString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) os << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges) {
    os << name << ' ' << util::json::formatNumber(value) << '\n';
  }
  for (const auto& [name, value] : histograms) {
    os << name << " count=" << value.count << " sum=" << value.sum
       << " min=" << value.min << " max=" << value.max
       << " p50=" << util::json::formatNumber(value.p50())
       << " p95=" << util::json::formatNumber(value.p95()) << '\n';
  }
  return os.str();
}

void MetricsSnapshot::writeJson(util::json::Writer& w) const {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, value] : histograms) {
    w.key(name).beginObject();
    w.key("count").value(value.count);
    w.key("sum").value(value.sum);
    w.key("min").value(value.min);
    w.key("max").value(value.max);
    w.key("p50").value(value.p50());
    w.key("p95").value(value.p95());
    w.key("p99").value(value.p99());
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

std::string MetricsSnapshot::toJson() const {
  std::ostringstream os;
  util::json::Writer w{os};
  writeJson(w);
  return os.str();
}

// ---------------------------------------------------------------------------
// Registry

void Registry::growCounters(CounterId id) {
  counters_.resize(id.index() + 1);
}

void Registry::growGauges(GaugeId id) { gauges_.resize(id.index() + 1); }

void Registry::growHistograms(HistogramId id) {
  histograms_.resize(id.index() + 1);
}

void Registry::absorb(const MetricsSnapshot& snapshot,
                      const std::string& prefix) {
  MetricTable& table = MetricTable::global();
  PrefixedKey key{prefix};
  for (const auto& [name, value] : snapshot.counters) {
    add(table.counter(key(name)), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    set(table.gauge(key(name)), value);
  }
  for (const auto& [name, value] : snapshot.histograms) {
    const HistogramId id = table.histogram(key(name));
    if (id.index() >= histograms_.size()) growHistograms(id);
    HistogramSlot& slot = histograms_[id.index()];
    touchedHistograms_ += !slot.touched;
    slot.touched = true;
    foldHistogram(slot.summary, value);
  }
}

void Registry::absorbAdditive(const MetricsSnapshot& snapshot,
                              const std::string& prefix) {
  MetricTable& table = MetricTable::global();
  PrefixedKey key{prefix};
  for (const auto& [name, value] : snapshot.counters) {
    add(table.counter(key(name)), value);
  }
  for (const auto& [name, value] : snapshot.histograms) {
    const HistogramId id = table.histogram(key(name));
    if (id.index() >= histograms_.size()) growHistograms(id);
    HistogramSlot& slot = histograms_[id.index()];
    touchedHistograms_ += !slot.touched;
    slot.touched = true;
    foldHistogram(slot.summary, value);
  }
}

MetricsSnapshot Registry::snapshot() const {
  const MetricTable& table = MetricTable::global();
  MetricsSnapshot out;
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    if (!counters_[i].touched) continue;
    out.counters.emplace(table.counterName(CounterId{i}), counters_[i].value);
  }
  for (std::uint32_t i = 0; i < gauges_.size(); ++i) {
    if (!gauges_[i].touched) continue;
    out.gauges.emplace(table.gaugeName(GaugeId{i}), gauges_[i].value);
  }
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (!histograms_[i].touched) continue;
    out.histograms.emplace(table.histogramName(HistogramId{i}),
                           histograms_[i].summary);
  }
  return out;
}

MetricsSnapshot Registry::takeSnapshot() {
  MetricsSnapshot out = snapshot();
  clear();
  return out;
}

void Registry::clear() {
  for (CounterSlot& slot : counters_) slot = CounterSlot{};
  for (GaugeSlot& slot : gauges_) slot = GaugeSlot{};
  for (HistogramSlot& slot : histograms_) slot = HistogramSlot{};
  touchedCounters_ = 0;
  touchedGauges_ = 0;
  touchedHistograms_ = 0;
}

// ---------------------------------------------------------------------------
// ShardedRegistry

void setThreadSlotProvider(ThreadSlotFn fn) noexcept {
  gThreadSlot.store(fn != nullptr ? fn : &defaultThreadSlot,
                    std::memory_order_release);
}

std::size_t currentThreadSlot() noexcept {
  return gThreadSlot.load(std::memory_order_acquire)();
}

ShardedRegistry::ShardedRegistry(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<Registry>());
  }
}

Registry& ShardedRegistry::local() { return shard(currentThreadSlot()); }

Registry& ShardedRegistry::shard(std::size_t index) {
  {
    std::shared_lock lock{mutex_};
    if (index < shards_.size()) return *shards_[index];
  }
  std::unique_lock lock{mutex_};
  while (shards_.size() <= index) {
    shards_.push_back(std::make_unique<Registry>());
  }
  return *shards_[index];
}

std::size_t ShardedRegistry::shardCount() const {
  std::shared_lock lock{mutex_};
  return shards_.size();
}

bool ShardedRegistry::empty() const {
  std::shared_lock lock{mutex_};
  for (const auto& shard : shards_) {
    if (!shard->empty()) return false;
  }
  return true;
}

void ShardedRegistry::clear() {
  std::unique_lock lock{mutex_};
  for (const auto& shard : shards_) shard->clear();
}

MetricsSnapshot ShardedRegistry::mergedSnapshot() const {
  std::vector<MetricsSnapshot> leaves;
  {
    std::shared_lock lock{mutex_};
    leaves.reserve(shards_.size());
    for (const auto& shard : shards_) leaves.push_back(shard->snapshot());
  }
  return reduceSnapshots(std::move(leaves));
}

MetricsSnapshot ShardedRegistry::takeMerged() {
  std::vector<MetricsSnapshot> leaves;
  {
    std::unique_lock lock{mutex_};
    leaves.reserve(shards_.size());
    for (const auto& shard : shards_) leaves.push_back(shard->takeSnapshot());
  }
  return reduceSnapshots(std::move(leaves));
}

MetricsSnapshot reduceSnapshots(std::vector<MetricsSnapshot> leaves) {
  if (leaves.empty()) return MetricsSnapshot{};
  // Pairwise rounds: (0,1) (2,3) ... then (0,2) (4,6) ... — the shape is a
  // pure function of leaves.size(), and every merge moves its right operand.
  for (std::size_t step = 1; step < leaves.size(); step *= 2) {
    for (std::size_t i = 0; i + step < leaves.size(); i += 2 * step) {
      leaves[i].merge(std::move(leaves[i + step]));
    }
  }
  return std::move(leaves.front());
}

}  // namespace prtr::obs
