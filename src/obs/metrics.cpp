#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace prtr::obs {
namespace {

void foldHistogram(HistogramSummary& into, const HistogramSummary& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into = from;
    return;
  }
  into.count += from.count;
  into.sum += from.sum;
  into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  for (std::size_t b = 0; b < HistogramSummary::kBucketCount; ++b) {
    into.buckets[b] += from.buckets[b];
  }
}

}  // namespace

std::size_t HistogramSummary::bucketIndex(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(value)));
}

double HistogramSummary::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation, 1-based (nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // Bucket b spans [2^(b-1), 2^b - 1] (bucket 0 is exactly zero).
    // Interpolate by the rank's position inside the bucket, then clamp to
    // the exact recorded bounds.
    double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    const double position =
        static_cast<double>(rank - seen - 1) /
        static_cast<double>(buckets[b]);
    double estimate = lo + (hi - lo) * position;
    estimate = std::clamp(estimate, static_cast<double>(min),
                          static_cast<double>(max));
    return estimate;
  }
  return static_cast<double>(max);
}

std::uint64_t MetricsSnapshot::counterOr(std::string_view name,
                                         std::uint64_t fallback) const {
  const auto it = counters.find(std::string{name});
  return it != counters.end() ? it->second : fallback;
}

std::optional<double> MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string{name});
  return it != gauges.end() ? std::optional<double>{it->second} : std::nullopt;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other,
                            const std::string& prefix) {
  for (const auto& [name, value] : other.counters) {
    counters[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[prefix + name] = value;
  }
  for (const auto& [name, value] : other.histograms) {
    foldHistogram(histograms[prefix + name], value);
  }
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    out.counters[name] = value - earlier.counterOr(name);
  }
  out.gauges = gauges;
  for (const auto& [name, value] : histograms) {
    HistogramSummary delta = value;
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      delta.count -= it->second.count;
      delta.sum -= it->second.sum;
      for (std::size_t b = 0; b < HistogramSummary::kBucketCount; ++b) {
        delta.buckets[b] -= it->second.buckets[b];
      }
      // min/max are not invertible over a window; keep the later values.
    }
    out.histograms[name] = delta;
  }
  return out;
}

std::string MetricsSnapshot::toString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) os << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges) {
    os << name << ' ' << util::json::formatNumber(value) << '\n';
  }
  for (const auto& [name, value] : histograms) {
    os << name << " count=" << value.count << " sum=" << value.sum
       << " min=" << value.min << " max=" << value.max
       << " p50=" << util::json::formatNumber(value.p50())
       << " p95=" << util::json::formatNumber(value.p95()) << '\n';
  }
  return os.str();
}

void MetricsSnapshot::writeJson(util::json::Writer& w) const {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, value] : histograms) {
    w.key(name).beginObject();
    w.key("count").value(value.count);
    w.key("sum").value(value.sum);
    w.key("min").value(value.min);
    w.key("max").value(value.max);
    w.key("p50").value(value.p50());
    w.key("p95").value(value.p95());
    w.key("p99").value(value.p99());
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

std::string MetricsSnapshot::toJson() const {
  std::ostringstream os;
  util::json::Writer w{os};
  writeJson(w);
  return os.str();
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  state_.counters[std::string{name}] += delta;
}

void Registry::set(std::string_view name, double value) {
  state_.gauges[std::string{name}] = value;
}

void Registry::observe(std::string_view name, std::int64_t value) {
  HistogramSummary& h = state_.histograms[std::string{name}];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[HistogramSummary::bucketIndex(value)];
}

void Registry::absorb(const MetricsSnapshot& snapshot,
                      const std::string& prefix) {
  state_.merge(snapshot, prefix);
}

}  // namespace prtr::obs
