#pragma once
/// \file bench_io.hpp
/// Machine-readable output for the bench/ binaries. Every bench constructs
/// a BenchReport from argv, registers the tables and key scalars it prints,
/// and returns finish() from main. With `--json <path>` on the command line
/// the run additionally emits one JSON document:
///
///   {"bench":"table2","scalars":{...},"notes":{...},
///    "tables":{"name":{"header":[...],"rows":[[...],...]}},
///    "metrics":{"counters":{...},...}}
///
/// so the CI smoke job and future perf-trajectory tooling consume the same
/// numbers the human-readable tables show. Flag parsing is delegated to the
/// shared bench::Options vocabulary (`--json/--trace/--profile/--threads/
/// --seed/--help`), so every bench binary answers `--help` with the same
/// usage block.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/options.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace prtr::obs {

class BenchReport {
 public:
  /// Parses the shared bench::Options flags from argv; other arguments are
  /// ignored (benches are otherwise argument-free). Throws
  /// util::DomainError when a flag is missing its value or malformed.
  /// `--help` prints the uniform usage block and exits the process with
  /// status 0, so plain benches support it without touching their mains.
  BenchReport(std::string name, int argc, const char* const* argv);

  [[nodiscard]] bool jsonRequested() const noexcept {
    return options_.jsonRequested();
  }
  [[nodiscard]] bool traceRequested() const noexcept {
    return options_.traceRequested();
  }
  [[nodiscard]] bool profileRequested() const noexcept {
    return options_.profileRequested();
  }
  [[nodiscard]] const std::string& jsonPath() const noexcept {
    return options_.jsonPath();
  }
  [[nodiscard]] const std::string& tracePath() const noexcept {
    return options_.tracePath();
  }
  [[nodiscard]] const std::string& profilePath() const noexcept {
    return options_.profilePath();
  }

  /// Worker-thread count for the bench's parallel sweeps: the `--threads`
  /// value, defaulting to the hardware concurrency. Always >= 1; recorded
  /// as the "threads" scalar in the JSON document.
  [[nodiscard]] std::size_t threads() const noexcept {
    return options_.threads();
  }

  /// The bench's RNG seed: the `--seed` value when given, else `fallback`.
  /// Benches with a published reference seed pass it here so default runs
  /// stay byte-reproducible.
  [[nodiscard]] std::uint64_t seedOr(std::uint64_t fallback) const noexcept {
    return options_.seedOr(fallback);
  }

  /// The full parsed vocabulary, for benches that also need rest().
  [[nodiscard]] const bench::Options& options() const noexcept {
    return options_;
  }

  /// Registers a key scalar (measured speedup, model error, ...).
  void scalar(const std::string& name, double value);
  void scalar(const std::string& name, std::uint64_t value);

  /// Registers a free-form string fact (device name, layout, ...).
  void note(const std::string& name, const std::string& text);

  /// Registers a rendered table under `name` (copied).
  void table(const std::string& name, const util::Table& table);

  /// Registers the run's metrics snapshot (merged into any prior one).
  void metrics(const MetricsSnapshot& snapshot);
  /// Move overload for temporaries (Pool::metricsSnapshot(), takeMerged()):
  /// splices the maps instead of copying every key.
  void metrics(MetricsSnapshot&& snapshot);

  /// Writes the JSON document when --json was requested. Returns the
  /// process exit code for main (0; file errors propagate as exceptions).
  [[nodiscard]] int finish() const;

 private:
  std::string name_;
  bench::Options options_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, util::Table>> tables_;
  MetricsSnapshot metrics_;
};

}  // namespace prtr::obs
