#pragma once
/// \file bench_io.hpp
/// Machine-readable output for the bench/ binaries. Every bench constructs
/// a BenchReport from argv, registers the tables and key scalars it prints,
/// and returns finish() from main. With `--json <path>` on the command line
/// the run additionally emits one JSON document:
///
///   {"bench":"table2","scalars":{...},"notes":{...},
///    "tables":{"name":{"header":[...],"rows":[[...],...]}},
///    "metrics":{"counters":{...},...}}
///
/// so the CI smoke job and future perf-trajectory tooling consume the same
/// numbers the human-readable tables show. `--trace <path>` is parsed here
/// too for the benches that export Chrome traces (bench_profiles).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace prtr::obs {

class BenchReport {
 public:
  /// Parses `--json <path>`, `--trace <path>`, `--profile <path>` and
  /// `--threads <n>` from argv; other arguments are ignored (benches are
  /// otherwise argument-free). Throws util::DomainError when a flag is
  /// missing its value or `--threads` is not a positive integer.
  BenchReport(std::string name, int argc, const char* const* argv);

  [[nodiscard]] bool jsonRequested() const noexcept {
    return !jsonPath_.empty();
  }
  [[nodiscard]] bool traceRequested() const noexcept {
    return !tracePath_.empty();
  }
  [[nodiscard]] bool profileRequested() const noexcept {
    return !profilePath_.empty();
  }
  [[nodiscard]] const std::string& jsonPath() const noexcept { return jsonPath_; }
  [[nodiscard]] const std::string& tracePath() const noexcept {
    return tracePath_;
  }
  [[nodiscard]] const std::string& profilePath() const noexcept {
    return profilePath_;
  }

  /// Worker-thread count for the bench's parallel sweeps: the `--threads`
  /// value, defaulting to the hardware concurrency. Always >= 1; recorded
  /// as the "threads" scalar in the JSON document.
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Registers a key scalar (measured speedup, model error, ...).
  void scalar(const std::string& name, double value);
  void scalar(const std::string& name, std::uint64_t value);

  /// Registers a free-form string fact (device name, layout, ...).
  void note(const std::string& name, const std::string& text);

  /// Registers a rendered table under `name` (copied).
  void table(const std::string& name, const util::Table& table);

  /// Registers the run's metrics snapshot (merged into any prior one).
  void metrics(const MetricsSnapshot& snapshot);

  /// Writes the JSON document when --json was requested. Returns the
  /// process exit code for main (0; file errors propagate as exceptions).
  [[nodiscard]] int finish() const;

 private:
  std::string name_;
  std::string jsonPath_;
  std::string tracePath_;
  std::string profilePath_;
  std::size_t threads_ = 1;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, util::Table>> tables_;
  MetricsSnapshot metrics_;
};

}  // namespace prtr::obs
