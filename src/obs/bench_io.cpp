#include "obs/bench_io.hpp"

#include <cstdlib>
#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace prtr::obs {

BenchReport::BenchReport(std::string name, int argc, const char* const* argv)
    : name_(std::move(name)),
      options_(bench::Options::parse(name_, argc, argv)) {
  // Uniform --help across every bench binary: print the shared usage block
  // and stop before the bench does any work.
  if (options_.helpRequestedAndHandled()) std::exit(0);
}

void BenchReport::scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

void BenchReport::scalar(const std::string& name, std::uint64_t value) {
  scalars_.emplace_back(name, static_cast<double>(value));
}

void BenchReport::note(const std::string& name, const std::string& text) {
  notes_.emplace_back(name, text);
}

void BenchReport::table(const std::string& name, const util::Table& table) {
  tables_.emplace_back(name, table);
}

void BenchReport::metrics(const MetricsSnapshot& snapshot) {
  metrics_.merge(snapshot);
}

void BenchReport::metrics(MetricsSnapshot&& snapshot) {
  metrics_.merge(std::move(snapshot));
}

int BenchReport::finish() const {
  if (!jsonRequested()) return 0;
  std::ofstream file{jsonPath()};
  if (!file) {
    throw util::Error{"BenchReport: cannot open " + jsonPath() +
                      " for writing"};
  }
  util::json::Writer w{file};
  w.beginObject();
  w.key("bench").value(name_);
  w.key("scalars").beginObject();
  w.key("threads").value(static_cast<double>(options_.threads()));
  for (const auto& [name, value] : scalars_) w.key(name).value(value);
  w.endObject();
  w.key("notes").beginObject();
  for (const auto& [name, text] : notes_) w.key(name).value(text);
  w.endObject();
  w.key("tables").beginObject();
  for (const auto& [name, table] : tables_) {
    w.key(name).beginObject();
    w.key("header").beginArray();
    for (const std::string& cell : table.header()) w.value(cell);
    w.endArray();
    w.key("rows").beginArray();
    for (std::size_t r = 0; r < table.rowCount(); ++r) {
      w.beginArray();
      for (const std::string& cell : table.rowAt(r)) w.value(cell);
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.key("metrics");
  metrics_.writeJson(w);
  w.endObject();
  file << '\n';
  return 0;
}

}  // namespace prtr::obs
