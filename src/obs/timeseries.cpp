#include "obs/timeseries.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::obs {

TimeSeries::Window& TimeSeries::at(std::int64_t atPs) {
  const std::int64_t clamped = std::max<std::int64_t>(atPs, 0);
  const std::size_t idx = static_cast<std::size_t>(clamped / windowPs_);
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  return windows_[idx];
}

void TimeSeries::fold(const TimeSeries& other) {
  util::require(windowPs_ == other.windowPs_,
                "TimeSeries::fold: window widths differ");
  if (other.windows_.size() > windows_.size()) {
    windows_.resize(other.windows_.size());
  }
  for (std::size_t i = 0; i < other.windows_.size(); ++i) {
    Window& into = windows_[i];
    const Window& from = other.windows_[i];
    into.good += from.good;
    into.bad += from.bad;
    into.completed += from.completed;
    into.failed += from.failed;
    into.shed += from.shed;
    into.retries += from.retries;
    into.breakerOpens += from.breakerOpens;
    into.latency.fold(from.latency);
  }
}

std::uint64_t TimeSeries::totalGood() const noexcept {
  std::uint64_t total = 0;
  for (const Window& w : windows_) total += w.good;
  return total;
}

std::uint64_t TimeSeries::totalBad() const noexcept {
  std::uint64_t total = 0;
  for (const Window& w : windows_) total += w.bad;
  return total;
}

std::vector<CounterTrack> TimeSeries::counterTracks(
    const std::string& prefix) const {
  CounterTrack throughput{prefix + ".throughput", {}};
  CounterTrack shed{prefix + ".shed", {}};
  CounterTrack failed{prefix + ".failed", {}};
  CounterTrack retries{prefix + ".retries", {}};
  CounterTrack breakerOpens{prefix + ".breaker.opens", {}};
  CounterTrack badFraction{prefix + ".bad_fraction", {}};
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    const std::int64_t atPs = static_cast<std::int64_t>(i) * windowPs_;
    throughput.samples.push_back({atPs, static_cast<double>(w.completed)});
    shed.samples.push_back({atPs, static_cast<double>(w.shed)});
    failed.samples.push_back({atPs, static_cast<double>(w.failed)});
    retries.samples.push_back({atPs, static_cast<double>(w.retries)});
    breakerOpens.samples.push_back({atPs, static_cast<double>(w.breakerOpens)});
    const std::uint64_t decided = w.good + w.bad;
    badFraction.samples.push_back(
        {atPs, decided == 0
                   ? 0.0
                   : static_cast<double>(w.bad) / static_cast<double>(decided)});
  }
  return {std::move(throughput), std::move(shed),     std::move(failed),
          std::move(retries),    std::move(breakerOpens),
          std::move(badFraction)};
}

SloResult evaluateSlo(const TimeSeries& series, const SloSpec& spec) {
  SloResult out;
  out.good = series.totalGood();
  out.bad = series.totalBad();
  const std::uint64_t decided = out.good + out.bad;
  if (decided > 0) {
    out.goodFraction =
        static_cast<double>(out.good) / static_cast<double>(decided);
  }
  const double budget = 1.0 - spec.objective;
  if (budget <= 0.0 || series.windows().empty()) {
    out.pass = true;
    return out;
  }
  // Prefix sums so each trailing-window burn is O(1).
  const std::vector<TimeSeries::Window>& windows = series.windows();
  std::vector<std::uint64_t> goodSum(windows.size() + 1, 0);
  std::vector<std::uint64_t> badSum(windows.size() + 1, 0);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    goodSum[i + 1] = goodSum[i] + windows[i].good;
    badSum[i + 1] = badSum[i] + windows[i].bad;
  }
  const auto burnOver = [&](std::size_t end, std::uint32_t count) {
    const std::size_t from = end >= count ? end - count : 0;
    const std::uint64_t g = goodSum[end] - goodSum[from];
    const std::uint64_t b = badSum[end] - badSum[from];
    if (g + b == 0) return 0.0;
    const double fraction =
        static_cast<double>(b) / static_cast<double>(g + b);
    return fraction / budget;
  };
  for (std::size_t end = 1; end <= windows.size(); ++end) {
    const double fast = burnOver(end, spec.fastWindows);
    const double slow = burnOver(end, spec.slowWindows);
    out.fastBurnMax = std::max(out.fastBurnMax, fast);
    out.slowBurnMax = std::max(out.slowBurnMax, slow);
    if (fast > spec.fastBurn && slow > spec.slowBurn) ++out.breachWindows;
  }
  out.pass = out.breachWindows == 0;
  return out;
}

}  // namespace prtr::obs
