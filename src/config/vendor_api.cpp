#include "config/vendor_api.hpp"

#include "bitstream/parser.hpp"

namespace prtr::config {

const char* toString(ApiStatus status) noexcept {
  switch (status) {
    case ApiStatus::kOk: return "ok";
    case ApiStatus::kRejectedSize: return "rejected(size)";
    case ApiStatus::kRejectedDone: return "rejected(done)";
    case ApiStatus::kTransientFault: return "transient-fault";
  }
  return "?";
}

ApiStatus VendorApi::check(const bitstream::Bitstream& stream) const {
  if (modifiedLoader_) return ApiStatus::kOk;
  const util::Bytes fullSize = memory_->device().geometry().fullBitstreamBytes();
  if (stream.size() != fullSize) return ApiStatus::kRejectedSize;
  // A full-size stream pushed at an already-configured device: the driver
  // first resets the array, so DONE behaves as expected -> accepted. A
  // partial stream can never reach this point (size check fires first),
  // but guard anyway: DONE stays high during a partial load.
  if (stream.isPartial() && memory_->done()) return ApiStatus::kRejectedDone;
  return ApiStatus::kOk;
}

sim::Process VendorApi::load(const bitstream::Bitstream& stream,
                             ApiStatus& status) {
  status = check(stream);
  if (status != ApiStatus::kOk) {
    // The driver still burns its setup time before failing the checks.
    ++rejects_;
    co_await sim_->delay(timing_.fixedOverhead);
    co_return;
  }
  if (faultHook_ && faultHook_(stream)) {
    // An injected transient driver fault: the call fails after the setup
    // overhead, like a stock rejection, but is retryable.
    status = ApiStatus::kTransientFault;
    ++transientFaults_;
    co_await sim_->delay(timing_.fixedOverhead);
    co_return;
  }
  co_await sim_->delay(loadTime(stream.size()));
  const auto& parsed = memory_->parsedFor(stream);
  if (stream.isPartial()) {
    memory_->applyPartial(parsed);
  } else {
    memory_->applyFull(parsed);
  }
  ++loads_;
  bytesWritten_ += stream.size().count();
}

}  // namespace prtr::config
