#pragma once
/// \file memory.hpp
/// Configuration-memory state of one FPGA: which module owns each frame and
/// the DONE pin. Partial streams may only be applied while the device is
/// operating (dynamic/active partial reconfiguration, paper section 2.2);
/// a full stream resets the whole array.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "bitstream/parser.hpp"
#include "fabric/device.hpp"

namespace prtr::config {

/// Tracks frame ownership and the DONE signal.
class ConfigMemory {
 public:
  explicit ConfigMemory(const fabric::Device& device);

  [[nodiscard]] const fabric::Device& device() const noexcept { return *device_; }

  /// DONE pin: asserted once the device has been fully configured.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Owner (moduleId) of `frame`; 0 before any configuration.
  [[nodiscard]] std::uint64_t frameOwner(std::uint32_t frame) const;

  /// Number of frames written since power-up.
  [[nodiscard]] std::uint64_t framesWritten() const noexcept { return framesWritten_; }

  /// Applies a parsed full stream: every frame rewritten, DONE asserted.
  void applyFull(const bitstream::ParsedStream& stream);

  /// Applies a parsed partial stream. Throws ConfigError when DONE is low
  /// (the device must be operating for dynamic partial reconfiguration).
  void applyPartial(const bitstream::ParsedStream& stream);

  /// Power-cycle: clears all state.
  void reset() noexcept;

  // ---- readback support (configuration scrubbing, SEU repair) ----------

  /// Enables frame-payload retention. Costs totalFrames x frameBytes of
  /// host memory per device, so it is opt-in; must be called before the
  /// streams whose content should be readable are applied.
  void enableReadback();
  [[nodiscard]] bool readbackEnabled() const noexcept { return !image_.empty(); }

  /// Copy of the current configuration content of `frame`.
  /// Requires enableReadback() beforehand.
  [[nodiscard]] std::span<const std::uint8_t> frameContent(
      std::uint32_t frame) const;

  /// Flips `mask` bits of byte `offset` within `frame` — a single-event
  /// upset (SEU) injection for scrubbing studies. Does not change the
  /// frame's owner bookkeeping (the upset is silent, as in hardware).
  void injectUpset(std::uint32_t frame, std::uint32_t offset,
                   std::uint8_t mask);

  [[nodiscard]] std::uint64_t upsetsInjected() const noexcept {
    return upsets_;
  }

  /// Rewrites the listed frames with their golden payloads from `stream`
  /// (which must contain a write for each of them) — the frame-granular
  /// repair primitive of the recovery runtime. Requires enableReadback().
  /// Returns the number of frames actually rewritten.
  std::uint64_t repairFrames(const bitstream::ParsedStream& stream,
                             const std::vector<std::uint32_t>& frames);

  /// Parses `stream` once and caches the result by identity, so repeated
  /// loads of the same library stream do not re-walk megabytes of CRC.
  /// The stream must outlive this ConfigMemory (the bitstream::Library
  /// used by the runtime guarantees that).
  [[nodiscard]] const bitstream::ParsedStream& parsedFor(
      const bitstream::Bitstream& stream);

 private:
  void retainPayloads(const bitstream::ParsedStream& stream);

  const fabric::Device* device_;
  std::vector<std::uint64_t> frameOwner_;
  bool done_ = false;
  std::uint64_t framesWritten_ = 0;
  std::uint64_t upsets_ = 0;
  std::vector<std::uint8_t> image_;  ///< empty unless readback is enabled
  std::map<const bitstream::Bitstream*, bitstream::ParsedStream> parseCache_;
};

}  // namespace prtr::config
