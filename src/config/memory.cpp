#include "config/memory.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::config {

ConfigMemory::ConfigMemory(const fabric::Device& device)
    : device_(&device), frameOwner_(device.geometry().totalFrames(), 0) {}

std::uint64_t ConfigMemory::frameOwner(std::uint32_t frame) const {
  util::require(frame < frameOwner_.size(), "ConfigMemory: frame out of range");
  return frameOwner_[frame];
}

void ConfigMemory::retainPayloads(const bitstream::ParsedStream& stream) {
  if (image_.empty()) return;
  const std::uint32_t frameBytes = device_->geometry().encoding().frameBytes;
  for (const auto& write : stream.writes) {
    std::copy(write.payload.begin(), write.payload.end(),
              image_.begin() + static_cast<std::ptrdiff_t>(
                                   std::uint64_t{write.frame} * frameBytes));
  }
}

void ConfigMemory::applyFull(const bitstream::ParsedStream& stream) {
  if (stream.header.type != bitstream::StreamType::kFull) {
    throw util::ConfigError{"ConfigMemory: applyFull needs a full stream"};
  }
  for (const auto& write : stream.writes) {
    frameOwner_.at(write.frame) = stream.header.moduleId;
  }
  retainPayloads(stream);
  framesWritten_ += stream.writes.size();
  done_ = true;
}

void ConfigMemory::applyPartial(const bitstream::ParsedStream& stream) {
  if (stream.header.type != bitstream::StreamType::kPartial) {
    throw util::ConfigError{"ConfigMemory: applyPartial needs a partial stream"};
  }
  if (!done_) {
    throw util::ConfigError{
        "ConfigMemory: dynamic partial reconfiguration requires an operating "
        "(fully configured) device"};
  }
  for (const auto& write : stream.writes) {
    frameOwner_.at(write.frame) = stream.header.moduleId;
  }
  retainPayloads(stream);
  framesWritten_ += stream.writes.size();
}

void ConfigMemory::enableReadback() {
  if (!image_.empty()) return;
  image_.assign(std::uint64_t{device_->geometry().totalFrames()} *
                    device_->geometry().encoding().frameBytes,
                0);
}

std::span<const std::uint8_t> ConfigMemory::frameContent(
    std::uint32_t frame) const {
  util::require(!image_.empty(),
                "ConfigMemory: enableReadback() before reading content");
  util::require(frame < frameOwner_.size(), "ConfigMemory: frame out of range");
  const std::uint32_t frameBytes = device_->geometry().encoding().frameBytes;
  return std::span{image_.data() + std::uint64_t{frame} * frameBytes,
                   frameBytes};
}

void ConfigMemory::injectUpset(std::uint32_t frame, std::uint32_t offset,
                               std::uint8_t mask) {
  util::require(!image_.empty(),
                "ConfigMemory: enableReadback() before injecting upsets");
  util::require(frame < frameOwner_.size(), "ConfigMemory: frame out of range");
  const std::uint32_t frameBytes = device_->geometry().encoding().frameBytes;
  util::require(offset < frameBytes, "ConfigMemory: offset out of range");
  util::require(mask != 0, "ConfigMemory: empty upset mask");
  image_[std::uint64_t{frame} * frameBytes + offset] ^= mask;
  ++upsets_;
}

std::uint64_t ConfigMemory::repairFrames(
    const bitstream::ParsedStream& stream,
    const std::vector<std::uint32_t>& frames) {
  util::require(!image_.empty(),
                "ConfigMemory: enableReadback() before repairing frames");
  if (frames.empty()) return 0;
  std::vector<std::uint32_t> wanted = frames;
  std::sort(wanted.begin(), wanted.end());
  const std::uint32_t frameBytes = device_->geometry().encoding().frameBytes;
  std::uint64_t repaired = 0;
  for (const auto& write : stream.writes) {
    if (!std::binary_search(wanted.begin(), wanted.end(), write.frame)) {
      continue;
    }
    std::copy(write.payload.begin(), write.payload.end(),
              image_.begin() + static_cast<std::ptrdiff_t>(
                                   std::uint64_t{write.frame} * frameBytes));
    ++repaired;
  }
  framesWritten_ += repaired;
  return repaired;
}

void ConfigMemory::reset() noexcept {
  frameOwner_.assign(frameOwner_.size(), 0);
  done_ = false;
  framesWritten_ = 0;
  upsets_ = 0;
  if (!image_.empty()) image_.assign(image_.size(), 0);
  parseCache_.clear();
}

const bitstream::ParsedStream& ConfigMemory::parsedFor(
    const bitstream::Bitstream& stream) {
  const auto it = parseCache_.find(&stream);
  if (it != parseCache_.end()) return it->second;
  return parseCache_.emplace(&stream, bitstream::parse(stream, *device_))
      .first->second;
}

}  // namespace prtr::config
