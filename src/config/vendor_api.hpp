#pragma once
/// \file vendor_api.hpp
/// Emulation of the closed-source vendor configuration API on the Cray XD1
/// (the `fpga_load`-style call of paper section 4.1). The stock API:
///
///  * rejects any stream whose size differs from the full bitstream size
///    ("a simple check on the size of the bitstream"), and
///  * rejects loads when the DONE signal does not behave as expected for a
///    full configuration — which is always the case for partial streams,
///    because the device is already configured and DONE stays asserted.
///
/// Hence partial reconfiguration is *not natively supported*; the paper's
/// work-around is the ICAP controller (icap_controller.hpp). A "modified
/// loader" mode removes both checks, modelling the hypothetical vendor fix.
///
/// Timing calibration (DESIGN.md): the measured full configuration takes
/// 1678.04 ms for 2,381,764 bytes — a fixed 12 ms software overhead plus
/// 699.5 ns/byte of driver-mediated writes, far from the 66 MB/s the raw
/// SelectMap port could sustain.

#include <cstdint>
#include <functional>
#include <utility>

#include "bitstream/format.hpp"
#include "config/memory.hpp"
#include "config/port.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace prtr::config {

/// Result codes returned by the emulated API.
enum class ApiStatus : std::uint8_t {
  kOk,
  kRejectedSize,    ///< bitstream size != full bitstream size
  kRejectedDone,    ///< DONE signal check failed (already-configured device)
  kTransientFault,  ///< injected driver-level fault (see src/fault)
};

[[nodiscard]] const char* toString(ApiStatus status) noexcept;

/// Consulted once per admitted load; returning true makes the driver fail
/// the load with kTransientFault after burning its fixed overhead.
using ApiFaultHook = std::function<bool(const bitstream::Bitstream&)>;

/// Timing of the driver path.
struct ApiTiming {
  util::Time fixedOverhead = util::Time::microseconds(12'000);
  util::Time perByte = util::Time::picoseconds(699'500);  // 699.5 ns/byte
};

/// The emulated vendor configuration function.
class VendorApi {
 public:
  VendorApi(sim::Simulator& sim, ConfigMemory& memory, ApiTiming timing = {},
            bool modifiedLoader = false)
      : sim_(&sim), memory_(&memory), timing_(timing),
        modifiedLoader_(modifiedLoader) {}

  /// The stock API's admission checks, without side effects.
  [[nodiscard]] ApiStatus check(const bitstream::Bitstream& stream) const;

  /// Wall-clock cost of a successful load of `size` bytes.
  [[nodiscard]] util::Time loadTime(util::Bytes size) const noexcept {
    return timing_.fixedOverhead + timing_.perByte * static_cast<std::int64_t>(
                                                         size.count());
  }

  /// Coroutine: runs the checks, then (if admitted) spends loadTime() and
  /// applies the stream. The outcome is written to `*status`; rejected
  /// streams cost only the fixed overhead and change nothing.
  [[nodiscard]] sim::Process load(const bitstream::Bitstream& stream,
                                  ApiStatus& status);

  [[nodiscard]] bool modifiedLoader() const noexcept { return modifiedLoader_; }
  [[nodiscard]] const ApiTiming& timing() const noexcept { return timing_; }
  [[nodiscard]] std::uint64_t loadsPerformed() const noexcept { return loads_; }
  /// Total bytes of successfully loaded streams.
  [[nodiscard]] std::uint64_t bytesWritten() const noexcept {
    return bytesWritten_;
  }
  /// Loads the stock admission checks turned away.
  [[nodiscard]] std::uint64_t rejectedLoads() const noexcept { return rejects_; }
  /// Loads failed by an injected transient driver fault.
  [[nodiscard]] std::uint64_t transientFaults() const noexcept {
    return transientFaults_;
  }

  /// Installs (or clears, with nullptr) the transient-fault hook.
  void setFaultHook(ApiFaultHook hook) { faultHook_ = std::move(hook); }

 private:
  sim::Simulator* sim_;
  ConfigMemory* memory_;
  ApiTiming timing_;
  bool modifiedLoader_;
  ApiFaultHook faultHook_{};
  std::uint64_t loads_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t transientFaults_ = 0;
};

}  // namespace prtr::config
