#pragma once
/// \file icap_controller.hpp
/// The work-around that enables PRTR on the Cray XD1 (paper section 4.1,
/// Figure 7): a control circuit in the static region that receives partial
/// bitstreams from the host over the (shared) HyperTransport input channel,
/// buffers them in BRAM, and feeds the ICAP port.
///
/// Timing model: the host pushes chunk-sized pieces over the input link
/// into a bounded BRAM buffer; an FSM drains the buffer into ICAP at
/// (wordBytes) bytes per (icapCyclesPerWord + fsmOverheadCyclesPerWord)
/// clock cycles. With the calibrated 9 overhead cycles per 32-bit word the
/// effective throughput is 66 MHz * 4/13 B/cycle = 20.31 MB/s, matching the
/// paper's measured 43.48 ms / 19.77 ms partial configuration times.

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "bitstream/format.hpp"
#include "config/memory.hpp"
#include "config/port.hpp"
#include "fabric/resources.hpp"
#include "sim/channel.hpp"
#include "sim/link.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace prtr::config {

/// Tunable controller parameters (defaults = Cray XD1 calibration).
struct IcapTiming {
  std::uint32_t wordBytes = 4;              ///< FSM word size
  std::uint32_t icapCyclesPerWord = 4;      ///< 8-bit port: 4 cycles/word
  std::uint32_t fsmOverheadCyclesPerWord = 9;  ///< BRAM read + handshake FSM
  util::Bytes chunkBytes = util::Bytes::kibi(2);  ///< host transfer granule
  std::size_t bufferChunks = 8;             ///< BRAM buffer: 8 x 2 KiB = 16 KiB
  /// Multi-frame-write compression (compress.hpp): identical frame
  /// payloads stream once; repeated frames cost an address word only.
  /// Off by default — the paper's controller writes every frame.
  bool multiFrameWrite = false;
};

/// Fault imposed on a single ICAP load by an attached hook (see src/fault):
/// the pipeline streams only `completedFraction` of the wire bytes, the load
/// is not applied, and `abort` is rethrown from load().
struct IcapFault {
  double completedFraction = 0.0;  ///< clamped to [0, 1]
  std::exception_ptr abort{};
};

/// Consulted once per load, before the pipeline starts. Returning nullopt
/// leaves the load untouched.
using IcapFaultHook =
    std::function<std::optional<IcapFault>(const bitstream::Bitstream&)>;

/// Invoked after a stream (or, on frame-granular repairs, a frame subset of
/// it — `frames` null means "the whole stream") has been applied, so a fault
/// layer can corrupt the words that were just written.
using IcapWriteFaultHook =
    std::function<void(const bitstream::ParsedStream& stream,
                       const std::vector<std::uint32_t>* frames)>;

/// The reconfiguration control unit.
class IcapController {
 public:
  IcapController(sim::Simulator& sim, ConfigMemory& memory,
                 sim::SimplexLink& hostInputLink, Port port = makeIcapV2(),
                 IcapTiming timing = {});

  /// Coroutine: streams `stream` through the buffer pipeline into ICAP and
  /// applies it to configuration memory. Loads serialize on the single
  /// ICAP port. Throws ConfigError for full streams (ICAP on an operating
  /// device is for partials) and BitstreamError for invalid streams.
  [[nodiscard]] sim::Process load(const bitstream::Bitstream& stream);

  /// FSM drain time for `size` buffered bytes.
  [[nodiscard]] util::Time drainTime(util::Bytes size) const noexcept;

  /// Steady-state effective throughput of the drain FSM.
  [[nodiscard]] util::DataRate effectiveThroughput() const noexcept;

  /// Fabric cost of the controller: the paper's Table 1 "PR Controller"
  /// row (418 LUTs, 432 FFs, 8 BRAMs, 66 MHz).
  [[nodiscard]] static fabric::ResourceVec resourceFootprint() noexcept {
    return fabric::ResourceVec{418, 432, 8, 0, 0};
  }
  [[nodiscard]] static util::Frequency fabricClock() noexcept {
    return util::Frequency::megahertz(66);
  }

  [[nodiscard]] const Port& port() const noexcept { return port_; }
  [[nodiscard]] const IcapTiming& timing() const noexcept { return timing_; }
  [[nodiscard]] std::uint64_t loadsPerformed() const noexcept { return loads_; }
  /// Total bytes streamed into the ICAP port (wire bytes, MFW-aware).
  [[nodiscard]] std::uint64_t bytesWritten() const noexcept {
    return bytesWritten_;
  }
  /// Accumulated time loads spent queued on the busy ICAP port.
  [[nodiscard]] util::Time contentionTime() const noexcept {
    return contention_;
  }

  /// Bytes that must cross the host link / drain into ICAP for `stream`
  /// under the configured mode (raw size, or the MFW wire size).
  [[nodiscard]] util::Bytes wireBytes(const bitstream::Bitstream& stream);

  /// Installs (or clears, with nullptr) the per-load fault hook.
  void setFaultHook(IcapFaultHook hook) { faultHook_ = std::move(hook); }
  /// Installs (or clears) the post-apply write-fault hook.
  void setWriteFaultHook(IcapWriteFaultHook hook) {
    writeFaultHook_ = std::move(hook);
  }
  /// Runs the write-fault hook over `frames` of `stream` — used by the
  /// recovery runtime so frame-granular repairs are as fallible as the
  /// original writes.
  void applyWriteFaults(const bitstream::ParsedStream& stream,
                        const std::vector<std::uint32_t>& frames) {
    if (writeFaultHook_) writeFaultHook_(stream, &frames);
  }

  /// Loads aborted mid-stream by an injected fault.
  [[nodiscard]] std::uint64_t abortedLoads() const noexcept {
    return abortedLoads_;
  }

  /// The configuration memory this controller writes into.
  [[nodiscard]] ConfigMemory& memory() noexcept { return *memory_; }

 private:
  [[nodiscard]] sim::Process produce(util::Bytes total,
                                     sim::Channel<std::uint64_t>& buffer,
                                     sim::WaitGroup& wg);
  [[nodiscard]] sim::Process drain(util::Bytes total,
                                   sim::Channel<std::uint64_t>& buffer,
                                   sim::WaitGroup& wg);

  sim::Simulator* sim_;
  ConfigMemory* memory_;
  sim::SimplexLink* hostLink_;
  Port port_;
  IcapTiming timing_;
  sim::Semaphore icapBusy_;
  IcapFaultHook faultHook_{};
  IcapWriteFaultHook writeFaultHook_{};
  std::uint64_t loads_ = 0;
  std::uint64_t abortedLoads_ = 0;
  std::uint64_t bytesWritten_ = 0;
  util::Time contention_;
  std::map<const bitstream::Bitstream*, util::Bytes> wireBytesCache_;
};

}  // namespace prtr::config
