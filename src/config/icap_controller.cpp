#include "config/icap_controller.hpp"

#include <algorithm>

#include "bitstream/compress.hpp"
#include "bitstream/parser.hpp"
#include "util/error.hpp"

namespace prtr::config {

IcapController::IcapController(sim::Simulator& sim, ConfigMemory& memory,
                               sim::SimplexLink& hostInputLink, Port port,
                               IcapTiming timing)
    : sim_(&sim),
      memory_(&memory),
      hostLink_(&hostInputLink),
      port_(std::move(port)),
      timing_(timing),
      icapBusy_(sim, 1) {
  util::require(port_.internal(), "IcapController: needs an internal port");
  util::require(timing_.wordBytes > 0 && timing_.chunkBytes.count() > 0 &&
                    timing_.bufferChunks > 0,
                "IcapController: invalid timing parameters");
}

util::Time IcapController::drainTime(util::Bytes size) const noexcept {
  const std::uint64_t words =
      (size.count() + timing_.wordBytes - 1) / timing_.wordBytes;
  const std::uint64_t cycles =
      words * (timing_.icapCyclesPerWord + timing_.fsmOverheadCyclesPerWord);
  return port_.clock().cycles(cycles);
}

util::DataRate IcapController::effectiveThroughput() const noexcept {
  const double bytesPerCycle =
      static_cast<double>(timing_.wordBytes) /
      static_cast<double>(timing_.icapCyclesPerWord +
                          timing_.fsmOverheadCyclesPerWord);
  return util::DataRate::bytesPerSecond(port_.clock().hertz() * bytesPerCycle);
}

sim::Process IcapController::produce(util::Bytes total,
                                     sim::Channel<std::uint64_t>& buffer,
                                     sim::WaitGroup& wg) {
  std::uint64_t remaining = total.count();
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(remaining, timing_.chunkBytes.count());
    co_await hostLink_->transfer(util::Bytes{chunk});
    co_await buffer.put(chunk);
    remaining -= chunk;
  }
  wg.done();
}

sim::Process IcapController::drain(util::Bytes total,
                                   sim::Channel<std::uint64_t>& buffer,
                                   sim::WaitGroup& wg) {
  std::uint64_t remaining = total.count();
  while (remaining > 0) {
    const std::uint64_t chunk = co_await buffer.get();
    co_await sim_->delay(drainTime(util::Bytes{chunk}));
    remaining -= chunk;
  }
  wg.done();
}

util::Bytes IcapController::wireBytes(const bitstream::Bitstream& stream) {
  if (!timing_.multiFrameWrite) return stream.size();
  const auto it = wireBytesCache_.find(&stream);
  if (it != wireBytesCache_.end()) return it->second;
  const bitstream::MfwPlan plan =
      bitstream::planMfw(stream, memory_->device());
  return wireBytesCache_.emplace(&stream, plan.wireBytes).first->second;
}

sim::Process IcapController::load(const bitstream::Bitstream& stream) {
  if (!stream.isPartial()) {
    throw util::ConfigError{
        "IcapController: full streams must go through the external port"};
  }
  // Validate before touching the hardware; an invalid stream fails fast.
  const auto& parsed = memory_->parsedFor(stream);
  const util::Bytes bytes = wireBytes(stream);

  // A fault decision is drawn up front (deterministic: one draw per load in
  // event order), but takes effect mid-pipeline: the producer/drain children
  // only ever see the truncated byte count, so they never throw from a
  // detached coroutine.
  std::optional<IcapFault> fault;
  if (faultHook_) fault = faultHook_(stream);
  util::Bytes wire = bytes;
  if (fault && fault->abort) {
    const double fraction = std::clamp(fault->completedFraction, 0.0, 1.0);
    wire = util::Bytes{std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(fraction *
                                      static_cast<double>(bytes.count())))};
  }

  const util::Time queued = sim_->now();
  co_await icapBusy_.acquire();
  contention_ += sim_->now() - queued;
  sim::ScopedPermit permit{icapBusy_};

  sim::Channel<std::uint64_t> buffer{*sim_, timing_.bufferChunks};
  sim::WaitGroup wg{*sim_};
  wg.add(2);
  sim_->spawn(produce(wire, buffer, wg));
  sim_->spawn(drain(wire, buffer, wg));
  co_await wg.wait();

  if (fault && fault->abort) {
    // The truncated stream never reaches configuration memory.
    bytesWritten_ += wire.count();
    ++abortedLoads_;
    std::rethrow_exception(fault->abort);
  }

  memory_->applyPartial(parsed);
  ++loads_;
  bytesWritten_ += bytes.count();
  if (writeFaultHook_) writeFaultHook_(parsed, nullptr);
}

}  // namespace prtr::config
