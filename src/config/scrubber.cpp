#include "config/scrubber.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::config {

std::vector<std::uint32_t> verifyRegion(ConfigMemory& memory,
                                        const bitstream::Bitstream& golden) {
  util::require(memory.readbackEnabled(),
                "verifyRegion: enable readback on the configuration memory");
  const auto& parsed = memory.parsedFor(golden);
  std::vector<std::uint32_t> corrupted;
  for (const bitstream::FrameWrite& write : parsed.writes) {
    const auto current = memory.frameContent(write.frame);
    if (!std::equal(current.begin(), current.end(), write.payload.begin())) {
      corrupted.push_back(write.frame);
    }
  }
  return corrupted;
}

Scrubber::Scrubber(sim::Simulator& sim, ConfigMemory& memory,
                   IcapController& icap, const fabric::Device& device,
                   const bitstream::Bitstream& golden, util::Time period)
    : sim_(&sim),
      memory_(&memory),
      icap_(&icap),
      device_(&device),
      golden_(&golden),
      period_(period) {
  util::require(period > util::Time::zero(), "Scrubber: period must be positive");
  util::require(golden.isPartial(), "Scrubber: golden stream must be partial");
}

sim::Process Scrubber::run(std::uint64_t passes) {
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    co_await sim_->delay(period_);
    ++stats_.scrubPasses;

    // Readback: the region's frames stream out of the port at the same
    // effective rate writes stream in.
    const util::Bytes readBytes = golden_->size();
    const util::Time readStart = sim_->now();
    co_await sim_->delay(icap_->drainTime(readBytes));
    stats_.readbackTime += sim_->now() - readStart;
    stats_.framesChecked += golden_->header().frameCount;

    const auto corrupted = verifyRegion(*memory_, *golden_);
    if (!corrupted.empty()) {
      stats_.upsetsDetected += corrupted.size();
      // Blind-window model: without injection timestamps the best estimate
      // of exposure is half a scrub period per detected upset.
      stats_.approxExposure +=
          period_ * (0.5 * static_cast<double>(corrupted.size()));
      // Repair: reload the golden stream (module-based partial; frame-
      // granular repair would be cheaper but the full-region reload is
      // what the paper's controller can do).
      const util::Time repairStart = sim_->now();
      co_await icap_->load(*golden_);
      stats_.repairTime += sim_->now() - repairStart;
      ++stats_.repairs;
      if (injector_ != nullptr) {
        // The injector knows when each pending upset actually landed, so
        // report the true injection->repair latency alongside the model.
        for (const std::uint32_t frame : corrupted) {
          if (const auto injected = injector_->injectionTime(frame)) {
            stats_.observedExposure += sim_->now() - *injected;
            ++stats_.observedUpsets;
            injector_->acknowledgeRepair(frame);
          }
        }
      }
    }
  }
}

UpsetInjector::UpsetInjector(sim::Simulator& sim, ConfigMemory& memory,
                             fabric::FrameRange range,
                             util::Time meanInterArrival, std::uint64_t seed)
    : sim_(&sim),
      memory_(&memory),
      range_(range),
      meanInterArrival_(meanInterArrival),
      rng_(seed) {
  util::require(range.count > 0, "UpsetInjector: empty frame range");
  util::require(meanInterArrival > util::Time::zero(),
                "UpsetInjector: mean inter-arrival must be positive");
}

sim::Process UpsetInjector::run(util::Time horizon) {
  const std::uint32_t frameBytes =
      memory_->device().geometry().encoding().frameBytes;
  for (;;) {
    const util::Time wait =
        util::Time::seconds(rng_.exponential(meanInterArrival_.toSeconds()));
    if (sim_->now() + wait > horizon) co_return;
    co_await sim_->delay(wait);
    const auto frame = static_cast<std::uint32_t>(
        range_.first + rng_.below(range_.count));
    const auto offset = static_cast<std::uint32_t>(rng_.below(frameBytes));
    const auto bit = static_cast<std::uint8_t>(1u << rng_.below(8));
    memory_->injectUpset(frame, offset, bit);
    ++injected_;
    pending_.emplace(frame, sim_->now());  // keeps the earliest pending hit
  }
}

std::optional<util::Time> UpsetInjector::injectionTime(
    std::uint32_t frame) const {
  const auto it = pending_.find(frame);
  if (it == pending_.end()) return std::nullopt;
  return it->second;
}

void UpsetInjector::acknowledgeRepair(std::uint32_t frame) noexcept {
  pending_.erase(frame);
}

}  // namespace prtr::config
