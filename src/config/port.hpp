#pragma once
/// \file port.hpp
/// FPGA configuration interfaces. Xilinx parts expose JTAG (serial) and
/// SelectMap (8-bit parallel) externally; Virtex-II-Pro-and-later parts add
/// the Internal Configuration Access Port (ICAP), an internal copy of the
/// parallel interface used for self-reconfiguration (paper section 4.1).
/// Only SelectMap/JTAG/ICAP support partial reconfiguration.

#include <string>

#include "util/units.hpp"

namespace prtr::config {

/// Port families.
enum class PortKind : std::uint8_t { kJtag, kSelectMap, kIcap };

[[nodiscard]] const char* toString(PortKind kind) noexcept;

/// Static description of one configuration interface.
class Port {
 public:
  Port(PortKind kind, std::string name, std::uint32_t widthBits,
       util::Frequency clock, bool internal, bool supportsPartial);

  [[nodiscard]] PortKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t widthBits() const noexcept { return widthBits_; }
  [[nodiscard]] util::Frequency clock() const noexcept { return clock_; }
  /// True for ICAP: reachable only from inside the fabric.
  [[nodiscard]] bool internal() const noexcept { return internal_; }
  [[nodiscard]] bool supportsPartial() const noexcept { return supportsPartial_; }

  /// Peak throughput: width/8 bytes per clock.
  [[nodiscard]] util::DataRate rawThroughput() const noexcept {
    return util::DataRate::bytesPerSecond(clock_.hertz() *
                                          static_cast<double>(widthBits_) / 8.0);
  }

  /// Best-case (estimated) time to push `size` bytes through the port.
  /// This is the "Estimated" column of the paper's Table 2.
  [[nodiscard]] util::Time transferTime(util::Bytes size) const noexcept {
    return rawThroughput().transferTime(size);
  }

 private:
  PortKind kind_;
  std::string name_;
  std::uint32_t widthBits_;
  util::Frequency clock_;
  bool internal_;
  bool supportsPartial_;
};

/// The external 8-bit parallel port, 66 MHz on Virtex-II Pro (66 MB/s).
[[nodiscard]] Port makeSelectMap();

/// The serial JTAG port (33 MHz, 1 bit).
[[nodiscard]] Port makeJtag();

/// The internal parallel port: 8-bit at 66 MHz on Virtex-II Pro.
[[nodiscard]] Port makeIcapV2();

/// Virtex-4 ICAP: 32-bit at 100 MHz (for what-if studies).
[[nodiscard]] Port makeIcapV4();

}  // namespace prtr::config
