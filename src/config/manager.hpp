#pragma once
/// \file manager.hpp
/// Configuration manager: tracks which module is loaded in each PRR and
/// routes load requests to the right mechanism — the vendor API for full
/// streams, the ICAP controller for partial streams.

#include <cstdint>
#include <optional>
#include <vector>

#include "bitstream/library.hpp"
#include "config/icap_controller.hpp"
#include "config/recovery.hpp"
#include "config/vendor_api.hpp"
#include "fabric/floorplan.hpp"
#include "sim/symbols.hpp"

namespace prtr::sim {
class Timeline;
}  // namespace prtr::sim

namespace prtr::config {

/// Per-PRR loaded-module bookkeeping plus load routing.
class Manager {
 public:
  Manager(sim::Simulator& sim, const fabric::Floorplan& floorplan,
          VendorApi& api, IcapController& icap);

  /// Coroutine: full configuration through the vendor API. Resets PRR
  /// bookkeeping (every region now holds the initial design). Throws
  /// ConfigError when the API rejects the stream.
  [[nodiscard]] sim::Process fullConfigure(const bitstream::Bitstream& stream);

  /// Coroutine: loads `module`'s stream into PRR `prrIndex` via ICAP.
  [[nodiscard]] sim::Process loadModule(std::size_t prrIndex,
                                        bitstream::ModuleId module,
                                        const bitstream::Bitstream& stream);

  /// Module currently loaded in PRR `prrIndex` (nullopt = baseline/initial).
  [[nodiscard]] std::optional<bitstream::ModuleId> loadedModule(
      std::size_t prrIndex) const;

  /// PRR currently holding `module`, if any.
  [[nodiscard]] std::optional<std::size_t> findModule(
      bitstream::ModuleId module) const;

  /// True while a partial load into `prrIndex` is in flight; logic in that
  /// region must not be used (only *other* regions keep running — that is
  /// the point of PRTR).
  [[nodiscard]] bool reconfiguring(std::size_t prrIndex) const;

  [[nodiscard]] std::uint64_t fullConfigCount() const noexcept { return nFull_; }
  [[nodiscard]] std::uint64_t partialConfigCount() const noexcept {
    return nPartial_;
  }
  [[nodiscard]] const fabric::Floorplan& floorplan() const noexcept {
    return *floorplan_;
  }

  // ---- fault recovery (recovery.hpp, src/fault) ------------------------

  void setRecoveryPolicy(const RecoveryPolicy& policy) noexcept {
    recovery_ = policy;
  }
  [[nodiscard]] const RecoveryPolicy& recoveryPolicy() const noexcept {
    return recovery_;
  }
  [[nodiscard]] const RecoveryStats& recoveryStats() const noexcept {
    return recoveryStats_;
  }
  /// Optional timeline receiving "recovery" lane spans (backoff / verify /
  /// repair intervals). Null disables tracing.
  void setRecoveryTimeline(sim::Timeline* timeline);

  /// Coroutine: fullConfigure with bounded retry/backoff over injected
  /// transient faults. With recovery disabled, identical to fullConfigure.
  [[nodiscard]] sim::Process fullConfigureRecovering(
      const bitstream::Bitstream& stream);

  /// Coroutine: loads `module` into PRR `prrIndex` under the recovery
  /// policy — retry with exponential backoff per ladder rung, post-load
  /// readback-verify with frame-granular repair, and rung escalation
  /// (difference partial -> module partial -> full-PRR reload -> full
  /// device). Lands on some rung (recorded in recoveryStats) or throws
  /// util::FaultError once the ladder is exhausted. With recovery disabled,
  /// identical to loadModule on the module-based stream.
  [[nodiscard]] sim::Process loadModuleRecovering(std::size_t prrIndex,
                                                  bitstream::ModuleId module,
                                                  const RecoveryStreams& streams);

 private:
  [[nodiscard]] sim::Process verifyAndRepair(const bitstream::Bitstream& stream,
                                             bool& ok);
  [[nodiscard]] bool shouldVerify(std::uint64_t upsetsBefore) const;
  void recordRecoverySpan(const char* label, char glyph, util::Time start);

  sim::Simulator* sim_;
  const fabric::Floorplan* floorplan_;
  VendorApi* api_;
  IcapController* icap_;
  std::vector<std::optional<bitstream::ModuleId>> loaded_;
  std::vector<bool> busy_;
  std::uint64_t nFull_ = 0;
  std::uint64_t nPartial_ = 0;
  RecoveryPolicy recovery_{};
  RecoveryStats recoveryStats_{};
  sim::Timeline* recoveryTimeline_ = nullptr;
  sim::LaneId recoveryLane_{};
};

}  // namespace prtr::config
