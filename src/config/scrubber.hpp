#pragma once
/// \file scrubber.hpp
/// Configuration readback and SEU scrubbing — the reliability application
/// of partial reconfiguration. Radiation-induced single-event upsets (SEUs)
/// silently flip configuration bits; a scrubber periodically reads regions
/// back through the configuration port, compares them against their golden
/// streams, and repairs corrupted frames with a partial reconfiguration.
/// Readback and repair both cost configuration-port time, so scrubbing is
/// one more consumer of the bandwidth the paper's model prices.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bitstream/format.hpp"
#include "config/icap_controller.hpp"
#include "config/memory.hpp"
#include "fabric/region.hpp"
#include "sim/process.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace prtr::config {

/// Frames of `region` whose current content differs from `golden`
/// (the stream that configured it). Requires readback-enabled memory.
[[nodiscard]] std::vector<std::uint32_t> verifyRegion(
    ConfigMemory& memory, const bitstream::Bitstream& golden);

/// Scrubbing statistics.
struct ScrubStats {
  std::uint64_t scrubPasses = 0;
  std::uint64_t framesChecked = 0;
  std::uint64_t upsetsDetected = 0;
  std::uint64_t repairs = 0;
  util::Time readbackTime;
  util::Time repairTime;
  /// Blind-window approximation of accumulated exposure: half a scrub
  /// period per detected upset (the expected wait when injection times are
  /// unknown). Always reported.
  util::Time approxExposure;
  /// Actual accumulated injection->repair latency, for the detected upsets
  /// whose injection timestamp an attached UpsetInjector recorded. Compare
  /// against approxExposure to judge the blind-window model.
  util::Time observedExposure;
  /// Detected corrupted frames with a known injection timestamp.
  std::uint64_t observedUpsets = 0;
  util::Time busyTime() const noexcept { return readbackTime + repairTime; }
};

class UpsetInjector;

/// Periodic scrubber over one region; runs as a simulator process.
class Scrubber {
 public:
  /// `golden` must outlive the scrubber and match `region`.
  Scrubber(sim::Simulator& sim, ConfigMemory& memory, IcapController& icap,
           const fabric::Device& device, const bitstream::Bitstream& golden,
           util::Time period);

  /// Coroutine: scrub every `period` for `passes` passes — read back the
  /// region (port time), compare, and repair via a partial reload when
  /// any frame is corrupted.
  [[nodiscard]] sim::Process run(std::uint64_t passes);

  /// Attaches the upset source so repairs can report the *actual*
  /// injection->repair latency (ScrubStats::observedExposure) instead of
  /// only the blind-window approximation. Null detaches.
  void observeInjector(UpsetInjector* injector) noexcept {
    injector_ = injector;
  }

  [[nodiscard]] const ScrubStats& stats() const noexcept { return stats_; }

 private:
  sim::Simulator* sim_;
  ConfigMemory* memory_;
  IcapController* icap_;
  const fabric::Device* device_;
  const bitstream::Bitstream* golden_;
  util::Time period_;
  UpsetInjector* injector_ = nullptr;
  ScrubStats stats_;
};

/// Poisson SEU injector over a frame range; runs as a simulator process.
class UpsetInjector {
 public:
  UpsetInjector(sim::Simulator& sim, ConfigMemory& memory,
                fabric::FrameRange range, util::Time meanInterArrival,
                std::uint64_t seed);

  /// Coroutine: injects upsets until `horizon` (absolute sim time).
  [[nodiscard]] sim::Process run(util::Time horizon);

  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

  /// Injection time of the earliest still-unrepaired upset in `frame`,
  /// if one was recorded.
  [[nodiscard]] std::optional<util::Time> injectionTime(
      std::uint32_t frame) const;

  /// Called by the scrubber once `frame` has been repaired; forgets the
  /// pending timestamp so the next upset starts a fresh window.
  void acknowledgeRepair(std::uint32_t frame) noexcept;

 private:
  sim::Simulator* sim_;
  ConfigMemory* memory_;
  fabric::FrameRange range_;
  util::Time meanInterArrival_;
  util::Rng rng_;
  std::uint64_t injected_ = 0;
  /// Earliest pending injection time per corrupted frame.
  std::map<std::uint32_t, util::Time> pending_;
};

}  // namespace prtr::config
