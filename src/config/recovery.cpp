#include "config/recovery.hpp"

namespace prtr::config {

const char* toString(VerifyMode mode) noexcept {
  switch (mode) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kOnFault: return "on-fault";
    case VerifyMode::kAlways: return "always";
  }
  return "?";
}

const char* toString(RecoveryRung rung) noexcept {
  switch (rung) {
    case RecoveryRung::kNone: return "none";
    case RecoveryRung::kDifferencePartial: return "difference-partial";
    case RecoveryRung::kModulePartial: return "module-partial";
    case RecoveryRung::kFullPrrReload: return "full-prr-reload";
    case RecoveryRung::kFullDevice: return "full-device";
  }
  return "?";
}

const char* metricSuffix(RecoveryRung rung) noexcept {
  switch (rung) {
    case RecoveryRung::kNone: return "none";
    case RecoveryRung::kDifferencePartial: return "difference";
    case RecoveryRung::kModulePartial: return "module";
    case RecoveryRung::kFullPrrReload: return "full_prr";
    case RecoveryRung::kFullDevice: return "full_device";
  }
  return "?";
}

}  // namespace prtr::config
