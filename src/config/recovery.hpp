#pragma once
/// \file recovery.hpp
/// Recovery policy for configuration loads under transient faults.
///
/// The paper's model (Eqs. 6-7) assumes every load succeeds; the fault layer
/// (src/fault) breaks that assumption deliberately. This header defines what
/// config::Manager does about it: post-load readback-verify (CRC over the
/// written frames), bounded retry with exponential backoff in *simulated*
/// time, and a graceful-degradation ladder that trades configuration cost for
/// certainty — difference-based partial, module-based partial, full-PRR
/// reload, and finally an FRTR-style full-device fallback. A recovering load
/// either lands on some rung or throws util::FaultError after the ladder is
/// exhausted; it never deadlocks and always reports where it landed.

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/units.hpp"

namespace prtr::bitstream {
class Bitstream;
}  // namespace prtr::bitstream

namespace prtr::config {

/// When a successful load is followed by a readback-verify pass.
enum class VerifyMode : std::uint8_t {
  kOff,      ///< never verify (trust the write)
  kOnFault,  ///< verify only when upsets were injected during the load window
  kAlways,   ///< verify every recovering load
};

[[nodiscard]] const char* toString(VerifyMode mode) noexcept;

/// Rungs of the degradation ladder, cheapest first. `kNone` means no
/// recovering load has completed yet.
enum class RecoveryRung : std::uint8_t {
  kNone = 0,
  kDifferencePartial,  ///< difference-based partial (smallest stream)
  kModulePartial,      ///< module-based partial (full PRR frame set)
  kFullPrrReload,      ///< occupancy-1.0 rewrite of every frame in the PRR
  kFullDevice,         ///< FRTR fallback: full configuration + module partial
};

inline constexpr std::size_t kRecoveryRungCount = 5;

[[nodiscard]] const char* toString(RecoveryRung rung) noexcept;

/// Suffix used for the recovery.landed.<suffix> obs metric of `rung`.
[[nodiscard]] const char* metricSuffix(RecoveryRung rung) noexcept;

/// Knobs consumed by config::Manager and the runtime executors.
struct RecoveryPolicy {
  bool enabled = false;
  /// Retries per rung beyond the first attempt (so maxRetries = 3 means at
  /// most 4 attempts on each rung before escalating).
  std::uint32_t maxRetries = 3;
  /// Frame-granular verify-repair rounds per attempt before the attempt is
  /// declared failed.
  std::uint32_t maxRepairRounds = 4;
  /// Backoff before retry k (1-based) is backoffBase * backoffFactor^(k-1),
  /// spent as simulated time.
  util::Time backoffBase = util::Time::microseconds(50);
  double backoffFactor = 2.0;
  VerifyMode verify = VerifyMode::kOnFault;
  /// When false, a load exhausts its retries on the entry rung and throws
  /// instead of escalating.
  bool ladder = true;
};

/// Aggregate recovery accounting, scraped into recovery.* metrics.
struct RecoveryStats {
  std::uint64_t requests = 0;        ///< recovering loads started
  std::uint64_t attempts = 0;        ///< individual load attempts
  std::uint64_t retries = 0;         ///< attempts beyond the first on a rung
  std::uint64_t faultsAbsorbed = 0;  ///< FaultErrors caught and retried
  std::uint64_t verifications = 0;
  std::uint64_t verifyFailures = 0;  ///< verify passes that found corruption
  std::uint64_t frameRepairs = 0;    ///< frames rewritten by repair rounds
  std::uint64_t escalations = 0;     ///< rung-to-rung ladder climbs
  std::uint64_t fullDeviceFallbacks = 0;
  /// Successful loads per rung, indexed by RecoveryRung.
  std::array<std::uint64_t, kRecoveryRungCount> landedOnRung{};
  /// Worst (heaviest) rung any request landed on.
  RecoveryRung degradedTo = RecoveryRung::kNone;
  util::Time backoffTime = util::Time::zero();
  util::Time verifyTime = util::Time::zero();
  util::Time repairTime = util::Time::zero();
};

/// The streams a recovering module load may fall back to. `modulePartial`
/// is mandatory; null entries are skipped when climbing the ladder.
struct RecoveryStreams {
  const bitstream::Bitstream* difference = nullptr;
  const bitstream::Bitstream* modulePartial = nullptr;
  const bitstream::Bitstream* fullPrr = nullptr;
  const bitstream::Bitstream* fullDevice = nullptr;
};

}  // namespace prtr::config
