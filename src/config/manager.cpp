#include "config/manager.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace prtr::config {

namespace {

const bitstream::Bitstream* streamForRung(const RecoveryStreams& streams,
                                          RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kDifferencePartial: return streams.difference;
    case RecoveryRung::kModulePartial: return streams.modulePartial;
    case RecoveryRung::kFullPrrReload: return streams.fullPrr;
    case RecoveryRung::kFullDevice: return streams.fullDevice;
    case RecoveryRung::kNone: return nullptr;
  }
  return nullptr;
}

/// Frames of `parsed` whose memory content no longer matches the golden
/// payload (CRC compare). `subset` (sorted) restricts the scan.
std::vector<std::uint32_t> corruptedFrames(
    ConfigMemory& memory, const bitstream::ParsedStream& parsed,
    const std::vector<std::uint32_t>* subset) {
  std::vector<std::uint32_t> bad;
  for (const auto& write : parsed.writes) {
    if (subset != nullptr &&
        !std::binary_search(subset->begin(), subset->end(), write.frame)) {
      continue;
    }
    if (util::Crc32::of(memory.frameContent(write.frame)) !=
        util::Crc32::of(write.payload)) {
      bad.push_back(write.frame);
    }
  }
  return bad;
}

}  // namespace

Manager::Manager(sim::Simulator& sim, const fabric::Floorplan& floorplan,
                 VendorApi& api, IcapController& icap)
    : sim_(&sim),
      floorplan_(&floorplan),
      api_(&api),
      icap_(&icap),
      loaded_(floorplan.prrCount()),
      busy_(floorplan.prrCount(), false) {}

sim::Process Manager::fullConfigure(const bitstream::Bitstream& stream) {
  ApiStatus status = ApiStatus::kOk;
  co_await api_->load(stream, status);
  if (status == ApiStatus::kTransientFault) {
    throw util::FaultError{"Manager: vendor API transient fault"};
  }
  if (status != ApiStatus::kOk) {
    throw util::ConfigError{std::string{"Manager: vendor API refused load: "} +
                            toString(status)};
  }
  loaded_.assign(loaded_.size(), std::nullopt);
  ++nFull_;
}

sim::Process Manager::loadModule(std::size_t prrIndex,
                                 bitstream::ModuleId module,
                                 const bitstream::Bitstream& stream) {
  util::require(prrIndex < loaded_.size(), "Manager: PRR index out of range");
  const fabric::FrameRange prrFrames =
      floorplan_->prr(prrIndex).frames(floorplan_->device());
  if (stream.header().firstFrame < prrFrames.first ||
      stream.header().firstFrame + stream.header().frameCount > prrFrames.end()) {
    throw util::ConfigError{
        "Manager: stream frames fall outside the target PRR"};
  }
  busy_[prrIndex] = true;
  loaded_[prrIndex] = std::nullopt;  // region contents undefined during load
  co_await icap_->load(stream);
  loaded_[prrIndex] = module;
  busy_[prrIndex] = false;
  ++nPartial_;
}

std::optional<bitstream::ModuleId> Manager::loadedModule(
    std::size_t prrIndex) const {
  util::require(prrIndex < loaded_.size(), "Manager: PRR index out of range");
  return loaded_[prrIndex];
}

std::optional<std::size_t> Manager::findModule(bitstream::ModuleId module) const {
  for (std::size_t i = 0; i < loaded_.size(); ++i) {
    if (loaded_[i] == module) return i;
  }
  return std::nullopt;
}

bool Manager::reconfiguring(std::size_t prrIndex) const {
  util::require(prrIndex < busy_.size(), "Manager: PRR index out of range");
  return busy_[prrIndex];
}

// ---- fault recovery ------------------------------------------------------

void Manager::setRecoveryTimeline(sim::Timeline* timeline) {
  recoveryTimeline_ = timeline;
  if (timeline != nullptr) recoveryLane_ = timeline->lane("recovery");
}

void Manager::recordRecoverySpan(const char* label, char glyph,
                                 util::Time start) {
  if (recoveryTimeline_ == nullptr) return;
  const util::Time end = sim_->now();
  if (end > start) {
    recoveryTimeline_->record(recoveryLane_, recoveryTimeline_->label(label),
                              glyph, start, end);
  }
}

bool Manager::shouldVerify(std::uint64_t upsetsBefore) const {
  if (!recovery_.enabled || !icap_->memory().readbackEnabled()) return false;
  switch (recovery_.verify) {
    case VerifyMode::kOff: return false;
    case VerifyMode::kAlways: return true;
    case VerifyMode::kOnFault:
      // Only pay for readback when something actually hit the device
      // during the load window — zero extra events on a healthy load.
      return icap_->memory().upsetsInjected() != upsetsBefore;
  }
  return false;
}

sim::Process Manager::verifyAndRepair(const bitstream::Bitstream& stream,
                                      bool& ok) {
  ConfigMemory& memory = icap_->memory();
  ++recoveryStats_.verifications;
  const auto& parsed = memory.parsedFor(stream);
  // Readback costs ICAP port time over the written region, like a scrub
  // pass (scrubber.hpp models the same drain rate).
  const util::Time verifyStart = sim_->now();
  co_await sim_->delay(icap_->drainTime(stream.size()));
  recoveryStats_.verifyTime += sim_->now() - verifyStart;
  recordRecoverySpan("verify", 'v', verifyStart);

  std::vector<std::uint32_t> bad = corruptedFrames(memory, parsed, nullptr);
  if (bad.empty()) {
    ok = true;
    co_return;
  }
  ++recoveryStats_.verifyFailures;
  const std::uint32_t frameBytes =
      memory.device().geometry().encoding().frameBytes;
  // Frame-granular repair: each round rewrites only the corrupted frames,
  // so the expected number of fresh flips shrinks geometrically and the
  // loop converges even at flip rates where whole-stream retries would not.
  for (std::uint32_t round = 0;
       round < recovery_.maxRepairRounds && !bad.empty(); ++round) {
    std::sort(bad.begin(), bad.end());
    const util::Bytes repairBytes{bad.size() * std::uint64_t{frameBytes}};
    const util::Time repairStart = sim_->now();
    co_await sim_->delay(icap_->drainTime(repairBytes));
    recoveryStats_.repairTime += sim_->now() - repairStart;
    recordRecoverySpan("repair", 'x', repairStart);
    recoveryStats_.frameRepairs += memory.repairFrames(parsed, bad);
    // Repairs ride the same fallible write path as the original load.
    icap_->applyWriteFaults(parsed, bad);
    const util::Time recheckStart = sim_->now();
    co_await sim_->delay(icap_->drainTime(repairBytes));
    recoveryStats_.verifyTime += sim_->now() - recheckStart;
    bad = corruptedFrames(memory, parsed, &bad);
  }
  ok = bad.empty();
}

sim::Process Manager::fullConfigureRecovering(
    const bitstream::Bitstream& stream) {
  if (!recovery_.enabled) {
    co_await fullConfigure(stream);
    co_return;
  }
  ++recoveryStats_.requests;
  for (std::uint32_t attempt = 0; attempt <= recovery_.maxRetries; ++attempt) {
    if (attempt > 0) {
      ++recoveryStats_.retries;
      const util::Time pause =
          recovery_.backoffBase *
          std::pow(recovery_.backoffFactor, static_cast<double>(attempt - 1));
      const util::Time t0 = sim_->now();
      co_await sim_->delay(pause);
      recoveryStats_.backoffTime += sim_->now() - t0;
      recordRecoverySpan("backoff", 'b', t0);
    }
    ++recoveryStats_.attempts;
    bool ok = true;
    try {
      co_await fullConfigure(stream);
    } catch (const util::FaultError&) {
      ok = false;
      ++recoveryStats_.faultsAbsorbed;
    }
    if (ok) co_return;
  }
  throw util::FaultError{"Manager: full configuration retries exhausted"};
}

sim::Process Manager::loadModuleRecovering(std::size_t prrIndex,
                                           bitstream::ModuleId module,
                                           const RecoveryStreams& streams) {
  util::require(streams.modulePartial != nullptr,
                "Manager: recovery needs at least the module-based stream");
  if (!recovery_.enabled) {
    co_await loadModule(prrIndex, module, *streams.modulePartial);
    co_return;
  }
  ++recoveryStats_.requests;
  const RecoveryRung entry = streams.difference != nullptr
                                 ? RecoveryRung::kDifferencePartial
                                 : RecoveryRung::kModulePartial;
  RecoveryRung rung = entry;
  for (;;) {
    const bitstream::Bitstream* stream = streamForRung(streams, rung);
    bool landed = false;
    if (stream != nullptr) {
      for (std::uint32_t attempt = 0;
           attempt <= recovery_.maxRetries && !landed; ++attempt) {
        if (attempt > 0) {
          ++recoveryStats_.retries;
          const util::Time pause =
              recovery_.backoffBase *
              std::pow(recovery_.backoffFactor,
                       static_cast<double>(attempt - 1));
          const util::Time t0 = sim_->now();
          co_await sim_->delay(pause);
          recoveryStats_.backoffTime += sim_->now() - t0;
          recordRecoverySpan("backoff", 'b', t0);
        }
        ++recoveryStats_.attempts;
        const std::uint64_t upsetsBefore = icap_->memory().upsetsInjected();
        bool ok = true;
        const bitstream::Bitstream* applied = stream;
        try {
          if (rung == RecoveryRung::kFullDevice) {
            co_await fullConfigure(*stream);
            ++recoveryStats_.fullDeviceFallbacks;
            // The fallback restores the baseline design; the requested
            // module still has to land in its PRR.
            applied = streams.modulePartial;
            co_await loadModule(prrIndex, module, *applied);
          } else {
            co_await loadModule(prrIndex, module, *stream);
          }
        } catch (const util::FaultError&) {
          ok = false;
          ++recoveryStats_.faultsAbsorbed;
        }
        if (ok && shouldVerify(upsetsBefore)) {
          co_await verifyAndRepair(*applied, ok);
        }
        landed = ok;
      }
    }
    if (landed) {
      ++recoveryStats_.landedOnRung[static_cast<std::size_t>(rung)];
      if (rung > recoveryStats_.degradedTo) recoveryStats_.degradedTo = rung;
      co_return;
    }
    // Rung unavailable or exhausted: climb the ladder.
    const bool rungTried = stream != nullptr;
    bool advanced = false;
    if (recovery_.ladder) {
      while (rung != RecoveryRung::kFullDevice) {
        rung = static_cast<RecoveryRung>(static_cast<std::uint8_t>(rung) + 1);
        if (streamForRung(streams, rung) != nullptr) {
          advanced = true;
          break;
        }
      }
    }
    if (!advanced) {
      throw util::FaultError{
          "Manager: recovery ladder exhausted loading module " +
          std::to_string(module) + " into PRR " + std::to_string(prrIndex)};
    }
    if (rungTried) ++recoveryStats_.escalations;
  }
}

}  // namespace prtr::config
