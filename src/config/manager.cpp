#include "config/manager.hpp"

#include "util/error.hpp"

namespace prtr::config {

Manager::Manager(sim::Simulator& sim, const fabric::Floorplan& floorplan,
                 VendorApi& api, IcapController& icap)
    : sim_(&sim),
      floorplan_(&floorplan),
      api_(&api),
      icap_(&icap),
      loaded_(floorplan.prrCount()),
      busy_(floorplan.prrCount(), false) {}

sim::Process Manager::fullConfigure(const bitstream::Bitstream& stream) {
  ApiStatus status = ApiStatus::kOk;
  co_await api_->load(stream, status);
  if (status != ApiStatus::kOk) {
    throw util::ConfigError{std::string{"Manager: vendor API refused load: "} +
                            toString(status)};
  }
  loaded_.assign(loaded_.size(), std::nullopt);
  ++nFull_;
}

sim::Process Manager::loadModule(std::size_t prrIndex,
                                 bitstream::ModuleId module,
                                 const bitstream::Bitstream& stream) {
  util::require(prrIndex < loaded_.size(), "Manager: PRR index out of range");
  const fabric::FrameRange prrFrames =
      floorplan_->prr(prrIndex).frames(floorplan_->device());
  if (stream.header().firstFrame < prrFrames.first ||
      stream.header().firstFrame + stream.header().frameCount > prrFrames.end()) {
    throw util::ConfigError{
        "Manager: stream frames fall outside the target PRR"};
  }
  busy_[prrIndex] = true;
  loaded_[prrIndex] = std::nullopt;  // region contents undefined during load
  co_await icap_->load(stream);
  loaded_[prrIndex] = module;
  busy_[prrIndex] = false;
  ++nPartial_;
}

std::optional<bitstream::ModuleId> Manager::loadedModule(
    std::size_t prrIndex) const {
  util::require(prrIndex < loaded_.size(), "Manager: PRR index out of range");
  return loaded_[prrIndex];
}

std::optional<std::size_t> Manager::findModule(bitstream::ModuleId module) const {
  for (std::size_t i = 0; i < loaded_.size(); ++i) {
    if (loaded_[i] == module) return i;
  }
  return std::nullopt;
}

bool Manager::reconfiguring(std::size_t prrIndex) const {
  util::require(prrIndex < busy_.size(), "Manager: PRR index out of range");
  return busy_[prrIndex];
}

}  // namespace prtr::config
