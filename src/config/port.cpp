#include "config/port.hpp"

#include "util/error.hpp"

namespace prtr::config {

const char* toString(PortKind kind) noexcept {
  switch (kind) {
    case PortKind::kJtag: return "JTAG";
    case PortKind::kSelectMap: return "SelectMap";
    case PortKind::kIcap: return "ICAP";
  }
  return "?";
}

Port::Port(PortKind kind, std::string name, std::uint32_t widthBits,
           util::Frequency clock, bool internal, bool supportsPartial)
    : kind_(kind),
      name_(std::move(name)),
      widthBits_(widthBits),
      clock_(clock),
      internal_(internal),
      supportsPartial_(supportsPartial) {
  util::require(widthBits_ == 1 || widthBits_ % 8 == 0,
                "Port: width must be serial or byte-aligned");
  util::require(clock_.hertz() > 0.0, "Port: clock must be positive");
}

Port makeSelectMap() {
  return Port{PortKind::kSelectMap, "SelectMap", 8,
              util::Frequency::megahertz(66), /*internal=*/false,
              /*supportsPartial=*/true};
}

Port makeJtag() {
  return Port{PortKind::kJtag, "JTAG", 1, util::Frequency::megahertz(33),
              /*internal=*/false, /*supportsPartial=*/true};
}

Port makeIcapV2() {
  return Port{PortKind::kIcap, "ICAP(V2P)", 8, util::Frequency::megahertz(66),
              /*internal=*/true, /*supportsPartial=*/true};
}

Port makeIcapV4() {
  return Port{PortKind::kIcap, "ICAP(V4)", 32, util::Frequency::megahertz(100),
              /*internal=*/true, /*supportsPartial=*/true};
}

}  // namespace prtr::config
