#pragma once
/// \file rtcore.hpp
/// Cray's interface services block ("RT core", paper section 4.2): manages
/// host communication and memory-bank access, and — together with the
/// per-bank FIFOs required by the partial-reconfiguration flow — makes up
/// the static region of Table 1 (3,372 LUTs / 5,503 FFs / 25 BRAMs @ 200 MHz).

#include "fabric/resources.hpp"
#include "util/units.hpp"

namespace prtr::xd1 {

/// Static-design resource constants (see Table 1 of the paper).
struct StaticDesign {
  /// The RT core proper (services block).
  [[nodiscard]] static fabric::ResourceVec rtCoreFootprint() noexcept {
    return fabric::ResourceVec{2596, 4639, 17, 0, 0};
  }
  /// One bank<->PRR FIFO (section 4.2: FIFOs decouple bus-macro placement
  /// and guarantee data availability). Four are instantiated.
  [[nodiscard]] static fabric::ResourceVec fifoFootprint() noexcept {
    return fabric::ResourceVec{194, 216, 2, 0, 0};
  }
  static constexpr int kFifoCount = 4;

  /// RT core + FIFOs = the paper's "Static Region" row.
  [[nodiscard]] static fabric::ResourceVec staticRegionFootprint() noexcept {
    fabric::ResourceVec total = rtCoreFootprint();
    for (int i = 0; i < kFifoCount; ++i) total += fifoFootprint();
    return total;
  }

  [[nodiscard]] static util::Frequency fabricClock() noexcept {
    return util::Frequency::megahertz(200);
  }
};

}  // namespace prtr::xd1
