#pragma once
/// \file memory_bank.hpp
/// QDR-II SRAM banks local to the XD1 application accelerator FPGA
/// (4 banks x 4 MB = the 16 MB quoted in paper section 4). QDR-II is
/// dual-ported: reads and writes proceed concurrently, each at full rate.

#include <string>

#include "sim/link.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace prtr::xd1 {

/// One QDR-II SRAM bank.
class QdrBank {
 public:
  QdrBank(sim::Simulator& sim, std::string name,
          util::Bytes capacity = util::Bytes::mebi(4),
          util::DataRate portRate = util::DataRate::gigabytesPerSecond(3.2))
      : capacity_(capacity),
        readPort_(sim, name + ".rd", portRate),
        writePort_(sim, name + ".wr", portRate),
        name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] util::Bytes capacity() const noexcept { return capacity_; }

  /// Coroutine: occupies the read port for size/rate.
  [[nodiscard]] sim::Process read(util::Bytes size) {
    return readPort_.transfer(size);
  }
  /// Coroutine: occupies the write port for size/rate.
  [[nodiscard]] sim::Process write(util::Bytes size) {
    return writePort_.transfer(size);
  }

  [[nodiscard]] util::Bytes bytesRead() const noexcept {
    return readPort_.totalBytes();
  }
  [[nodiscard]] util::Bytes bytesWritten() const noexcept {
    return writePort_.totalBytes();
  }

 private:
  util::Bytes capacity_;
  sim::SimplexLink readPort_;
  sim::SimplexLink writePort_;
  std::string name_;
};

}  // namespace prtr::xd1
