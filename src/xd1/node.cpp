#include "xd1/node.hpp"

#include "util/error.hpp"

namespace prtr::xd1 {

const char* toString(Layout layout) noexcept {
  switch (layout) {
    case Layout::kSinglePrr: return "single-PRR";
    case Layout::kDualPrr: return "dual-PRR";
    case Layout::kQuadPrr: return "quad-PRR";
  }
  return "?";
}

namespace {

fabric::Floorplan makeLayout(Layout layout, fabric::Device device) {
  switch (layout) {
    case Layout::kSinglePrr:
      return fabric::makeSinglePrrLayout(std::move(device));
    case Layout::kDualPrr:
      return fabric::makeDualPrrLayout(std::move(device));
    case Layout::kQuadPrr:
      return fabric::makeQuadPrrLayout(std::move(device));
  }
  throw util::DomainError{"Node: unknown layout"};
}

}  // namespace

Node::Node(sim::Simulator& sim, NodeConfig config)
    : sim_(&sim), config_(config) {
  util::require(config_.linkEfficiency > 0.0 && config_.linkEfficiency <= 1.0,
                "Node: link efficiency must be in (0, 1]");
  const auto buildPlan = [this] {
    return makeLayout(config_.layout, fabric::makeXc2vp50());
  };
  floorplan_ = config_.floorplanSource
                   ? config_.floorplanSource(config_.layout, buildPlan)
                   : std::make_shared<const fabric::Floorplan>(buildPlan());

  const util::DataRate payloadRate = ioBandwidth();
  linkIn_ = std::make_unique<sim::SimplexLink>(sim, "HT-in", payloadRate,
                                               config_.linkLatency);
  linkOut_ = std::make_unique<sim::SimplexLink>(sim, "HT-out", payloadRate,
                                                config_.linkLatency);

  memory_ = std::make_unique<config::ConfigMemory>(floorplan_->device());
  api_ = std::make_unique<config::VendorApi>(sim, *memory_, config_.apiTiming);
  icap_ = std::make_unique<config::IcapController>(
      sim, *memory_, *linkIn_, config::makeIcapV2(), config_.icapTiming);
  manager_ = std::make_unique<config::Manager>(sim, *floorplan_, *api_, *icap_);
  manager_->setRecoveryPolicy(config_.recovery);

  // Word flips and readback-verify both need the frame image retained.
  // Enabling readback changes memory cost only, never event timing, so the
  // healthy-path outputs stay bit-identical.
  if (config_.faults.wordFlipRate > 0.0 ||
      (config_.recovery.enabled &&
       config_.recovery.verify != config::VerifyMode::kOff)) {
    memory_->enableReadback();
  }
  if (config_.faults.active()) {
    injector_ = std::make_unique<fault::Injector>(config_.faults);
    injector_->attach(*linkIn_);
    injector_->attach(*linkOut_);
    injector_->attach(*icap_);
    injector_->attach(*api_);
  }

  for (int i = 0; i < 4; ++i) {
    banks_.push_back(std::make_unique<QdrBank>(sim, "bank" + std::to_string(i)));
  }
}

std::vector<std::size_t> Node::banksFor(std::size_t prrIndex) const {
  util::require(prrIndex < floorplan_->prrCount(), "Node: PRR index out of range");
  switch (config_.layout) {
    case Layout::kSinglePrr:
      return {0, 1, 2, 3};
    case Layout::kDualPrr:
      return prrIndex == 0 ? std::vector<std::size_t>{0, 1}
                           : std::vector<std::size_t>{2, 3};
    case Layout::kQuadPrr:
      return {prrIndex};
  }
  return {};
}

}  // namespace prtr::xd1
