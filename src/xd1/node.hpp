#pragma once
/// \file node.hpp
/// A Cray XD1 compute blade as seen by the reconfiguration runtime: Opteron
/// host, RapidArray interconnect (dual simplex channels), the application
/// accelerator FPGA (XC2VP50) with its four QDR-II banks, configuration
/// machinery (vendor API + ICAP controller), and a PRR floorplan.

#include <functional>
#include <memory>
#include <vector>

#include "config/manager.hpp"
#include "config/recovery.hpp"
#include "fabric/floorplan.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "xd1/memory_bank.hpp"
#include "xd1/rtcore.hpp"

namespace prtr::xd1 {

/// Which floorplan to instantiate: the paper's Figure-8 layouts (single /
/// dual PRR) or the hypothetical finer-grained quad-PRR layout used by the
/// granularity and cache-policy ablations.
enum class Layout : std::uint8_t { kSinglePrr, kDualPrr, kQuadPrr };

[[nodiscard]] const char* toString(Layout layout) noexcept;

/// Pluggable floorplan provider: given the layout and a builder for it,
/// returns a shared validated floorplan. Sweeps install a memoizing source
/// (exec::ArtifactCache) so the plan is built once per layout instead of
/// once per Node; unset, each Node builds and owns its plan privately.
using FloorplanSource = std::function<std::shared_ptr<const fabric::Floorplan>(
    Layout, const std::function<fabric::Floorplan()>&)>;

/// Tunable platform parameters; defaults reproduce the paper's Cray XD1.
struct NodeConfig {
  Layout layout = Layout::kDualPrr;
  /// RapidArray raw rate per direction (paper: 1.6 GB/s) and the payload
  /// efficiency that yields the quoted 1400 MB/s application bandwidth.
  util::DataRate linkRawRate = util::DataRate::gigabytesPerSecond(1.6);
  double linkEfficiency = 0.875;
  util::Time linkLatency = util::Time::nanoseconds(500);
  config::ApiTiming apiTiming{};
  config::IcapTiming icapTiming{};
  /// Optional memoizing floorplan provider (see FloorplanSource).
  FloorplanSource floorplanSource{};
  /// Fault-injection plan; the default (all rates zero) installs no hooks
  /// and changes nothing about the simulation.
  fault::Plan faults{};
  /// Recovery policy handed to the configuration manager.
  config::RecoveryPolicy recovery{};
};

/// The assembled blade. Owns every sub-component; non-movable (components
/// hold references to each other and to the simulator).
class Node {
 public:
  Node(sim::Simulator& sim, NodeConfig config = {});
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] const NodeConfig& config() const noexcept { return config_; }
  [[nodiscard]] const fabric::Floorplan& floorplan() const noexcept {
    return *floorplan_;
  }
  [[nodiscard]] const fabric::Device& device() const noexcept {
    return floorplan_->device();
  }

  /// Host -> FPGA payload channel (shared with partial-bitstream download).
  [[nodiscard]] sim::SimplexLink& linkIn() noexcept { return *linkIn_; }
  [[nodiscard]] const sim::SimplexLink& linkIn() const noexcept { return *linkIn_; }
  /// FPGA -> host payload channel.
  [[nodiscard]] sim::SimplexLink& linkOut() noexcept { return *linkOut_; }
  [[nodiscard]] const sim::SimplexLink& linkOut() const noexcept {
    return *linkOut_;
  }

  [[nodiscard]] config::ConfigMemory& configMemory() noexcept { return *memory_; }
  [[nodiscard]] config::VendorApi& vendorApi() noexcept { return *api_; }
  [[nodiscard]] const config::VendorApi& vendorApi() const noexcept {
    return *api_;
  }
  [[nodiscard]] config::IcapController& icap() noexcept { return *icap_; }
  [[nodiscard]] const config::IcapController& icap() const noexcept {
    return *icap_;
  }
  [[nodiscard]] config::Manager& manager() noexcept { return *manager_; }

  /// The node's fault injector, or null when the plan injects nothing.
  [[nodiscard]] const fault::Injector* injector() const noexcept {
    return injector_.get();
  }

  [[nodiscard]] std::size_t bankCount() const noexcept { return banks_.size(); }
  [[nodiscard]] QdrBank& bank(std::size_t index) { return *banks_.at(index); }

  /// Banks wired to PRR `prrIndex`: all four in the single-PRR layout, two
  /// per region in the dual-PRR layout (paper section 4.2).
  [[nodiscard]] std::vector<std::size_t> banksFor(std::size_t prrIndex) const;

  /// Effective host<->FPGA payload bandwidth (the paper's 1400 MB/s).
  [[nodiscard]] util::DataRate ioBandwidth() const noexcept {
    return config_.linkRawRate.scaled(config_.linkEfficiency);
  }

 private:
  sim::Simulator* sim_;
  NodeConfig config_;
  std::shared_ptr<const fabric::Floorplan> floorplan_;
  std::unique_ptr<sim::SimplexLink> linkIn_;
  std::unique_ptr<sim::SimplexLink> linkOut_;
  std::unique_ptr<config::ConfigMemory> memory_;
  std::unique_ptr<config::VendorApi> api_;
  std::unique_ptr<config::IcapController> icap_;
  std::unique_ptr<config::Manager> manager_;
  std::unique_ptr<fault::Injector> injector_;
  std::vector<std::unique_ptr<QdrBank>> banks_;
};

}  // namespace prtr::xd1
