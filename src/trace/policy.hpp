#pragma once
/// \file policy.hpp
/// Tail-based sampling policy for request-scoped fleet tracing.
///
/// Every request is recorded while in flight; at its terminal decision the
/// sampler keeps it or drops it. "Tail" requests — shed, failed,
/// deadline-missed, hedge-won, or slower than the cell-local slow
/// quantile — are always kept (they are the requests a trace exists to
/// explain). The rest are kept with probability `sampleRate` by hashing
/// the deterministic trace id, never by drawing from the simulation RNG,
/// so enabling tracing cannot perturb a single simulated byte and the
/// kept set is identical at any --threads.

#include <cstdint>

namespace prtr::trace {

struct TracePolicy {
  bool enabled = false;
  /// Keep probability for non-tail requests, in [0, 1]. Decided by hashing
  /// the trace id — no RNG stream is consumed.
  double sampleRate = 0.01;
  /// A completed request at or above this cell-local latency quantile
  /// counts as tail (always kept).
  double slowQuantile = 0.99;
  /// Completions a cell must observe before the slow quantile is trusted.
  std::uint64_t slowMinSamples = 1000;
  /// Cap on rate-sampled keeps per cell. Tail keeps are never capped —
  /// tail retention is 100% by construction.
  std::uint64_t maxSampledPerCell = 10000;
};

}  // namespace prtr::trace
