#pragma once
/// \file recorder.hpp
/// Per-cell request-trace recorder and the Perfetto exporter.
///
/// The fleet simulator drives one CellRecorder per cell from its event
/// loop: requests are tracked while in flight (bounded by the in-flight
/// population, not the request count) and either kept or discarded at
/// their terminal decision by the tail-based sampler (see policy.hpp).
/// Everything is keyed off simulated time and the deterministic trace id,
/// so the recorder is a pure observer: it consumes no RNG draws and the
/// simulated bytes are identical with tracing on or off.
///
/// exportFleetTrace renders the kept set through obs::ChromeTrace — one
/// process per cell, blade-mark lanes first, then one lane per kept
/// request in terminal-decision order, with retry/hedge flow arrows
/// synthesized from the attempt spans.

#include <cstdint>
#include <unordered_map>

#include "obs/trace_export.hpp"
#include "trace/policy.hpp"
#include "trace/request.hpp"

namespace prtr::trace {

class CellRecorder {
 public:
  CellRecorder(const TracePolicy& policy, std::uint64_t seed,
               std::size_t cellIndex);

  /// A fresh request exists; opens the live record (root span start).
  void onArrival(std::uint32_t req, std::int64_t nowPs);

  /// Terminal: shed at admission. `outcome` must be one of the kShed*.
  void onShed(std::uint32_t req, Outcome outcome, std::int64_t nowPs);

  /// A copy was dispatched (queued or started): opens attempt + queue.
  void onDispatch(std::uint32_t req, std::uint8_t attempt, bool hedge,
                  std::uint32_t blade, std::int64_t nowPs);

  /// Service begins; the completion time is already decided by the DES, so
  /// the whole service breakdown is recorded at once. Zero-length
  /// components (no stall, resident persona, faulted execute) are omitted.
  void onServiceStart(std::uint32_t req, std::uint8_t attempt,
                      std::uint32_t blade, std::int64_t startPs,
                      std::int64_t stallPs, std::int64_t reloadPs,
                      std::int64_t execPs, std::int64_t completionPs);

  /// A queued copy was discarded at dequeue (hedge loser).
  void onCancelled(std::uint32_t req, std::uint8_t attempt,
                   std::int64_t nowPs);

  void onRetryDenied(std::uint32_t req, std::int64_t nowPs);
  void onHedgeLaunch(std::uint32_t req, std::int64_t nowPs);

  /// Terminal: completed. `slowThresholdPs` < 0 means the slow quantile is
  /// not yet trusted; `deadlinePs` is the SLO latency target.
  void onDone(std::uint32_t req, bool hedgeWin, std::int64_t nowPs,
              std::int64_t slowThresholdPs, std::int64_t deadlinePs);

  /// Terminal: attempts exhausted or retry budget empty.
  void onFailed(std::uint32_t req, std::int64_t nowPs);

  /// Breaker / recovery-ladder transition on a blade lane.
  void bladeMark(std::uint32_t blade, BladeMarkKind kind, std::int64_t nowPs);

  /// Hands the kept set back and resets the recorder.
  [[nodiscard]] CellTrace take();

 private:
  RequestTrace& live(std::uint32_t req, std::int64_t nowPs);
  SpanRec* findSpan(RequestTrace& rt, SpanKind kind, std::uint8_t attempt);
  void finalize(std::uint32_t req, Outcome outcome, std::int64_t nowPs,
                KeepReason tailReason);

  TracePolicy policy_;
  std::uint64_t seed_ = 0;
  bool sampleAll_ = false;
  std::uint64_t sampleThreshold_ = 0;
  std::unordered_map<std::uint32_t, RequestTrace> live_;
  CellTrace out_;
};

/// Renders the kept traces into `chrome`: process "fleet/cell<i>" per
/// cell, "blade<k>" instant lanes first (blades with marks, in index
/// order), then "rq:<hex16>" lanes in kept order. Spans are emitted in
/// canonical order (start time, then longer-first, then kind) so lanes
/// are time-ordered and nest correctly in Perfetto.
void exportFleetTrace(const FleetTrace& fleet, obs::ChromeTrace& chrome);

}  // namespace prtr::trace
