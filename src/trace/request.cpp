#include "trace/request.hpp"

namespace prtr::trace {

const char* toString(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kInFlight: return "in-flight";
    case Outcome::kOk: return "ok";
    case Outcome::kFailed: return "failed";
    case Outcome::kShedBreaker: return "shed:breaker";
    case Outcome::kShedQueue: return "shed:queue";
    case Outcome::kShedDeadline: return "shed:deadline";
    case Outcome::kShedRateLimit: return "shed:ratelimit";
  }
  return "?";
}

const char* toString(KeepReason reason) noexcept {
  switch (reason) {
    case KeepReason::kNone: return "none";
    case KeepReason::kShed: return "shed";
    case KeepReason::kFailed: return "failed";
    case KeepReason::kDeadlineMiss: return "deadline-miss";
    case KeepReason::kHedgeWon: return "hedge-won";
    case KeepReason::kSlow: return "slow";
    case KeepReason::kSampled: return "sampled";
  }
  return "?";
}

const char* toString(MarkKind kind) noexcept {
  switch (kind) {
    case MarkKind::kShedBreaker: return "shed:breaker";
    case MarkKind::kShedQueue: return "shed:queue";
    case MarkKind::kShedDeadline: return "shed:deadline";
    case MarkKind::kShedRateLimit: return "shed:ratelimit";
    case MarkKind::kRetryDenied: return "retry:denied";
    case MarkKind::kHedgeLaunch: return "hedge:launch";
    case MarkKind::kHedgeWin: return "hedge:win";
    case MarkKind::kHedgeCancel: return "hedge:cancel";
  }
  return "?";
}

const char* toString(BladeMarkKind kind) noexcept {
  switch (kind) {
    case BladeMarkKind::kBreakerOpen: return "breaker:open";
    case BladeMarkKind::kBreakerHalfOpen: return "breaker:half-open";
    case BladeMarkKind::kBreakerClose: return "breaker:close";
    case BladeMarkKind::kLadderEscalate: return "ladder:escalate";
    case BladeMarkKind::kLadderDeescalate: return "ladder:deescalate";
  }
  return "?";
}

std::uint64_t FleetTrace::keptTotal() const noexcept {
  std::uint64_t total = 0;
  for (const CellTrace& cell : cells) total += cell.kept.size();
  return total;
}

std::uint64_t FleetTrace::tailEligibleTotal() const noexcept {
  std::uint64_t total = 0;
  for (const CellTrace& cell : cells) total += cell.tailEligible;
  return total;
}

std::uint64_t FleetTrace::keptTailTotal() const noexcept {
  std::uint64_t total = 0;
  for (const CellTrace& cell : cells) total += cell.keptTail;
  return total;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t requestTraceId(std::uint64_t seed, std::uint64_t cell,
                             std::uint64_t index) noexcept {
  const std::uint64_t id =
      mix64(mix64(seed ^ (0x9e3779b97f4a7c15ULL * (cell + 1))) ^ index);
  return id == 0 ? 1 : id;
}

std::string traceIdHex(std::uint64_t traceId) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[traceId & 0xF];
    traceId >>= 4;
  }
  return out;
}

std::string requestLaneName(std::uint64_t traceId) {
  return "rq:" + traceIdHex(traceId);
}

std::string spanLabel(const SpanRec& span, Outcome outcome) {
  switch (span.kind) {
    case SpanKind::kRequest:
      return std::string{"request "} + toString(outcome);
    case SpanKind::kAttempt: {
      std::string out = "attempt#" + std::to_string(span.attempt);
      if (span.hedge) out += ":hedge";
      return out;
    }
    case SpanKind::kQueue:
      return "queue#" + std::to_string(span.attempt);
    case SpanKind::kService:
      return "service#" + std::to_string(span.attempt) + "@b" +
             std::to_string(span.blade);
    case SpanKind::kStall:
      return "stall#" + std::to_string(span.attempt);
    case SpanKind::kReload:
      return "reload#" + std::to_string(span.attempt);
    case SpanKind::kExecute:
      return "execute#" + std::to_string(span.attempt);
  }
  return "?";
}

}  // namespace prtr::trace
