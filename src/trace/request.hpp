#pragma once
/// \file request.hpp
/// The request-trace data model: one causal span tree per fleet request,
/// addressed by a deterministic 64-bit trace id derived from (seed, cell,
/// per-cell request index) — never from wall clock — so two runs of the
/// same fleet produce byte-identical traces at any thread count.
///
/// Span taxonomy (also the label grammar the verify RQ rules parse back):
///
///   lane "rq:<hex16>"      one lane per kept request
///     request <outcome>    root span, arrival -> terminal decision
///     attempt#N[:hedge]    one per dispatch (fresh, retry, or hedge copy)
///     queue#N              enqueue -> service start of attempt N
///     service#N@bK         service occupancy on blade K
///     stall#N              link stall ahead of the persona load
///     reload#N             persona reconfiguration (calibrated configPs)
///     execute#N            fabric execution (calibrated exec slope)
///   instant marks          shed:<reason>, retry:denied, hedge:launch,
///                          hedge:win, hedge:cancel
///   lane "blade<K>"        breaker:open/half-open/close and
///                          ladder:escalate/deescalate instants
///
/// Flow events link attempt N to attempt N+1 ("retry") and the primary to
/// its hedge copy ("hedge"); they are synthesized at export from the
/// attempt spans, so the recorder never stores them.

#include <cstdint>
#include <string>
#include <vector>

namespace prtr::trace {

/// Terminal state of a request.
enum class Outcome : std::uint8_t {
  kInFlight,       ///< recording only; never exported
  kOk,
  kFailed,         ///< attempts exhausted or retry budget empty
  kShedBreaker,    ///< no breaker-eligible blade at admission
  kShedQueue,      ///< queue-depth bound
  kShedDeadline,   ///< estimated wait blew the SLO deadline
  kShedRateLimit,  ///< per-user token bucket empty
};

/// "ok", "failed", "shed:breaker", ... — the root-span outcome suffix.
[[nodiscard]] const char* toString(Outcome outcome) noexcept;

/// Why the sampler kept a request.
enum class KeepReason : std::uint8_t {
  kNone,          ///< not kept (or still in flight)
  kShed,
  kFailed,
  kDeadlineMiss,  ///< completed, but over the SLO latency target
  kHedgeWon,
  kSlow,          ///< at or above the cell-local slow quantile
  kSampled,       ///< hash-sampled from the non-tail population
};

[[nodiscard]] const char* toString(KeepReason reason) noexcept;
[[nodiscard]] constexpr bool isTail(KeepReason reason) noexcept {
  return reason != KeepReason::kNone && reason != KeepReason::kSampled;
}

/// Span kinds of the request lane, in nesting order.
enum class SpanKind : std::uint8_t {
  kRequest,
  kAttempt,
  kQueue,
  kService,
  kStall,
  kReload,
  kExecute,
};

/// One span of a request's tree. Times are simulated picoseconds.
struct SpanRec {
  SpanKind kind = SpanKind::kRequest;
  std::uint8_t attempt = 0;   ///< 1-based dispatch number; 0 for the root
  bool hedge = false;         ///< the attempt is the hedged copy
  std::int32_t blade = -1;    ///< service spans: blade index within the cell
  std::int64_t startPs = 0;
  std::int64_t endPs = 0;
};

/// Instant annotations on a request lane.
enum class MarkKind : std::uint8_t {
  kShedBreaker,
  kShedQueue,
  kShedDeadline,
  kShedRateLimit,
  kRetryDenied,
  kHedgeLaunch,
  kHedgeWin,
  kHedgeCancel,
};

[[nodiscard]] const char* toString(MarkKind kind) noexcept;

struct MarkRec {
  MarkKind kind = MarkKind::kHedgeLaunch;
  std::uint8_t attempt = 0;
  std::int64_t atPs = 0;
};

/// One request's recorded tree.
struct RequestTrace {
  std::uint64_t traceId = 0;
  std::uint32_t index = 0;  ///< per-cell request index the id derives from
  Outcome outcome = Outcome::kInFlight;
  KeepReason keep = KeepReason::kNone;
  std::int64_t arrivalPs = 0;
  std::int64_t endPs = 0;
  std::vector<SpanRec> spans;
  std::vector<MarkRec> marks;

  [[nodiscard]] std::int64_t latencyPs() const noexcept {
    return endPs - arrivalPs;
  }
};

/// Instant annotations on a blade lane (breaker and recovery ladder).
enum class BladeMarkKind : std::uint8_t {
  kBreakerOpen,
  kBreakerHalfOpen,
  kBreakerClose,
  kLadderEscalate,
  kLadderDeescalate,
};

[[nodiscard]] const char* toString(BladeMarkKind kind) noexcept;

struct BladeMark {
  std::uint32_t blade = 0;
  BladeMarkKind kind = BladeMarkKind::kBreakerOpen;
  std::int64_t atPs = 0;
};

/// Everything one cell's recorder hands back.
struct CellTrace {
  std::size_t cell = 0;
  std::vector<RequestTrace> kept;   ///< terminal-decision order
  std::vector<BladeMark> bladeMarks;
  std::uint64_t recorded = 0;       ///< requests that reached a terminal state
  std::uint64_t tailEligible = 0;   ///< requests qualifying as tail
  std::uint64_t keptTail = 0;       ///< tail requests kept (== tailEligible)
  std::uint64_t keptSampled = 0;    ///< hash-sampled keeps (capped)
  std::uint64_t droppedCap = 0;     ///< sampled keeps dropped by the cap
};

/// Per-cell traces in cell order.
struct FleetTrace {
  std::vector<CellTrace> cells;

  [[nodiscard]] std::uint64_t keptTotal() const noexcept;
  [[nodiscard]] std::uint64_t tailEligibleTotal() const noexcept;
  [[nodiscard]] std::uint64_t keptTailTotal() const noexcept;
};

/// Deterministic trace id: a splitmix64-style mix of (seed, cell, request
/// index). Never zero.
[[nodiscard]] std::uint64_t requestTraceId(std::uint64_t seed,
                                           std::uint64_t cell,
                                           std::uint64_t index) noexcept;

/// The avalanche mix the id and the sampler share (public for tests).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// 16 lowercase hex digits.
[[nodiscard]] std::string traceIdHex(std::uint64_t traceId);

/// "rq:<hex16>" — the request's lane name in the exported trace.
[[nodiscard]] std::string requestLaneName(std::uint64_t traceId);

/// The exported label of one span ("request ok", "attempt#2:hedge",
/// "service#1@b3", ...).
[[nodiscard]] std::string spanLabel(const SpanRec& span, Outcome outcome);

}  // namespace prtr::trace
