#include "trace/recorder.hpp"

#include <algorithm>

namespace prtr::trace {
namespace {

/// Salt separating the sampler's hash stream from the trace-id stream.
constexpr std::uint64_t kSampleSalt = 0x5ca1ab1e0ddba11ULL;

/// Canonical export order: start time, then longer spans first (parents
/// before children at equal starts), then nesting rank (the enum order).
bool spanBefore(const SpanRec& a, const SpanRec& b) noexcept {
  if (a.startPs != b.startPs) return a.startPs < b.startPs;
  const std::int64_t durA = a.endPs - a.startPs;
  const std::int64_t durB = b.endPs - b.startPs;
  if (durA != durB) return durA > durB;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

}  // namespace

CellRecorder::CellRecorder(const TracePolicy& policy, std::uint64_t seed,
                           std::size_t cellIndex)
    : policy_(policy), seed_(seed) {
  out_.cell = cellIndex;
  if (policy_.sampleRate >= 1.0) {
    sampleAll_ = true;
  } else if (policy_.sampleRate > 0.0) {
    // rate < 1 keeps the product below 2^64, so the cast is exact enough
    // and well-defined.
    sampleThreshold_ = static_cast<std::uint64_t>(
        policy_.sampleRate * 18446744073709551616.0);
  }
}

RequestTrace& CellRecorder::live(std::uint32_t req, std::int64_t nowPs) {
  RequestTrace& rt = live_[req];
  if (rt.traceId == 0) {
    rt.traceId = requestTraceId(seed_, out_.cell, req);
    rt.index = req;
    rt.arrivalPs = nowPs;
  }
  return rt;
}

SpanRec* CellRecorder::findSpan(RequestTrace& rt, SpanKind kind,
                                std::uint8_t attempt) {
  for (SpanRec& s : rt.spans) {
    if (s.kind == kind && s.attempt == attempt) return &s;
  }
  return nullptr;
}

void CellRecorder::onArrival(std::uint32_t req, std::int64_t nowPs) {
  live(req, nowPs);
}

void CellRecorder::onShed(std::uint32_t req, Outcome outcome,
                          std::int64_t nowPs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  MarkKind mark = MarkKind::kShedBreaker;
  switch (outcome) {
    case Outcome::kShedQueue: mark = MarkKind::kShedQueue; break;
    case Outcome::kShedDeadline: mark = MarkKind::kShedDeadline; break;
    case Outcome::kShedRateLimit: mark = MarkKind::kShedRateLimit; break;
    default: break;
  }
  it->second.marks.push_back(MarkRec{mark, 0, nowPs});
  finalize(req, outcome, nowPs, KeepReason::kShed);
}

void CellRecorder::onDispatch(std::uint32_t req, std::uint8_t attempt,
                              bool hedge, std::uint32_t blade,
                              std::int64_t nowPs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  // Open spans carry endPs = -1 until service start closes them (or the
  // terminal decision clips a losing hedge copy).
  it->second.spans.push_back(SpanRec{SpanKind::kAttempt, attempt, hedge,
                                     static_cast<std::int32_t>(blade), nowPs,
                                     -1});
  it->second.spans.push_back(
      SpanRec{SpanKind::kQueue, attempt, hedge, -1, nowPs, -1});
}

void CellRecorder::onServiceStart(std::uint32_t req, std::uint8_t attempt,
                                  std::uint32_t blade, std::int64_t startPs,
                                  std::int64_t stallPs, std::int64_t reloadPs,
                                  std::int64_t execPs,
                                  std::int64_t completionPs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  RequestTrace& rt = it->second;
  if (SpanRec* queue = findSpan(rt, SpanKind::kQueue, attempt)) {
    queue->endPs = startPs;
  }
  if (SpanRec* att = findSpan(rt, SpanKind::kAttempt, attempt)) {
    att->endPs = completionPs;
  }
  rt.spans.push_back(SpanRec{SpanKind::kService, attempt, false,
                             static_cast<std::int32_t>(blade), startPs,
                             completionPs});
  std::int64_t cursor = startPs;
  if (stallPs > 0) {
    rt.spans.push_back(SpanRec{SpanKind::kStall, attempt, false, -1, cursor,
                               cursor + stallPs});
    cursor += stallPs;
  }
  if (reloadPs > 0) {
    rt.spans.push_back(SpanRec{SpanKind::kReload, attempt, false, -1, cursor,
                               cursor + reloadPs});
    cursor += reloadPs;
  }
  if (execPs > 0) {
    rt.spans.push_back(SpanRec{SpanKind::kExecute, attempt, false, -1,
                               completionPs - execPs, completionPs});
  }
}

void CellRecorder::onCancelled(std::uint32_t req, std::uint8_t attempt,
                               std::int64_t nowPs) {
  // A copy is only discarded at dequeue after its request resolved, at
  // which point the trace is already finalized (the losing copy's spans
  // were clipped at the terminal decision). Kept for API completeness.
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  RequestTrace& rt = it->second;
  if (SpanRec* queue = findSpan(rt, SpanKind::kQueue, attempt)) {
    queue->endPs = nowPs;
  }
  if (SpanRec* att = findSpan(rt, SpanKind::kAttempt, attempt)) {
    att->endPs = nowPs;
  }
  rt.marks.push_back(MarkRec{MarkKind::kHedgeCancel, attempt, nowPs});
}

void CellRecorder::onRetryDenied(std::uint32_t req, std::int64_t nowPs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  it->second.marks.push_back(MarkRec{MarkKind::kRetryDenied, 0, nowPs});
}

void CellRecorder::onHedgeLaunch(std::uint32_t req, std::int64_t nowPs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  it->second.marks.push_back(MarkRec{MarkKind::kHedgeLaunch, 0, nowPs});
}

void CellRecorder::onDone(std::uint32_t req, bool hedgeWin, std::int64_t nowPs,
                          std::int64_t slowThresholdPs,
                          std::int64_t deadlinePs) {
  const auto it = live_.find(req);
  if (it == live_.end()) return;
  const std::int64_t latencyPs = nowPs - it->second.arrivalPs;
  if (hedgeWin) {
    it->second.marks.push_back(MarkRec{MarkKind::kHedgeWin, 0, nowPs});
  }
  KeepReason tail = KeepReason::kNone;
  if (deadlinePs > 0 && latencyPs > deadlinePs) {
    tail = KeepReason::kDeadlineMiss;
  } else if (hedgeWin) {
    tail = KeepReason::kHedgeWon;
  } else if (slowThresholdPs >= 0 && latencyPs >= slowThresholdPs) {
    tail = KeepReason::kSlow;
  }
  finalize(req, Outcome::kOk, nowPs, tail);
}

void CellRecorder::onFailed(std::uint32_t req, std::int64_t nowPs) {
  if (live_.find(req) == live_.end()) return;
  finalize(req, Outcome::kFailed, nowPs, KeepReason::kFailed);
}

void CellRecorder::bladeMark(std::uint32_t blade, BladeMarkKind kind,
                             std::int64_t nowPs) {
  out_.bladeMarks.push_back(BladeMark{blade, kind, nowPs});
}

void CellRecorder::finalize(std::uint32_t req, Outcome outcome,
                            std::int64_t nowPs, KeepReason tailReason) {
  const auto it = live_.find(req);
  RequestTrace rt = std::move(it->second);
  live_.erase(it);
  rt.outcome = outcome;
  rt.endPs = nowPs;
  // Clip copies still open at the terminal decision (a queued hedge loser:
  // it will be discarded at dequeue, costing the blade nothing further).
  std::int64_t resolvedPs = nowPs;
  for (SpanRec& s : rt.spans) {
    if (s.endPs < 0) {
      s.endPs = nowPs;
      if (s.kind == SpanKind::kAttempt) {
        rt.marks.push_back(MarkRec{MarkKind::kHedgeCancel, s.attempt, nowPs});
      }
    }
    resolvedPs = std::max(resolvedPs, s.endPs);
  }
  // The root spans the full resolution window: a losing hedge copy already
  // in service runs past the terminal decision, and no child span may
  // outlive its request (RQ001).
  rt.spans.push_back(SpanRec{SpanKind::kRequest, 0, false, -1, rt.arrivalPs,
                             resolvedPs});
  ++out_.recorded;
  if (tailReason != KeepReason::kNone) {
    ++out_.tailEligible;
    ++out_.keptTail;
    rt.keep = tailReason;
    out_.kept.push_back(std::move(rt));
    return;
  }
  const bool sampled =
      sampleAll_ || (sampleThreshold_ > 0 &&
                     mix64(rt.traceId ^ kSampleSalt) < sampleThreshold_);
  if (!sampled) return;
  if (out_.keptSampled >= policy_.maxSampledPerCell) {
    ++out_.droppedCap;
    return;
  }
  ++out_.keptSampled;
  rt.keep = KeepReason::kSampled;
  out_.kept.push_back(std::move(rt));
}

CellTrace CellRecorder::take() {
  live_.clear();
  CellTrace out = std::move(out_);
  out_ = CellTrace{};
  out_.cell = out.cell;
  return out;
}

void exportFleetTrace(const FleetTrace& fleet, obs::ChromeTrace& chrome) {
  for (const CellTrace& cell : fleet.cells) {
    obs::ProcessTrace proc;
    proc.name = "fleet/cell" + std::to_string(cell.cell);

    // Blade-mark lanes first, in blade order, so breaker/ladder context
    // sits above the request lanes.
    std::vector<std::uint32_t> bladesWithMarks;
    for (const BladeMark& mark : cell.bladeMarks) {
      bladesWithMarks.push_back(mark.blade);
    }
    std::sort(bladesWithMarks.begin(), bladesWithMarks.end());
    bladesWithMarks.erase(
        std::unique(bladesWithMarks.begin(), bladesWithMarks.end()),
        bladesWithMarks.end());
    for (const std::uint32_t blade : bladesWithMarks) {
      proc.lanes.push_back("blade" + std::to_string(blade));
    }
    for (const BladeMark& mark : cell.bladeMarks) {
      proc.instants.push_back(
          obs::TraceInstant{"blade" + std::to_string(mark.blade),
                            toString(mark.kind), mark.atPs});
    }

    for (const RequestTrace& rt : cell.kept) {
      const std::string lane = requestLaneName(rt.traceId);
      proc.lanes.push_back(lane);

      std::vector<SpanRec> spans = rt.spans;
      std::stable_sort(spans.begin(), spans.end(), spanBefore);
      for (const SpanRec& span : spans) {
        proc.spans.push_back(
            sim::NamedSpan{lane, spanLabel(span, rt.outcome), '#',
                           util::Time::picoseconds(span.startPs),
                           util::Time::picoseconds(span.endPs)});
      }
      for (const MarkRec& mark : rt.marks) {
        proc.instants.push_back(
            obs::TraceInstant{lane, toString(mark.kind), mark.atPs});
      }

      // Flow arrows: attempt N -> N+1. A hedge copy links from its launch;
      // a retry links from the end of the failed attempt.
      std::vector<const SpanRec*> attempts;
      for (const SpanRec& span : spans) {
        if (span.kind == SpanKind::kAttempt) attempts.push_back(&span);
      }
      std::sort(attempts.begin(), attempts.end(),
                [](const SpanRec* a, const SpanRec* b) {
                  return a->attempt < b->attempt;
                });
      for (std::size_t i = 1; i < attempts.size(); ++i) {
        const SpanRec& prev = *attempts[i - 1];
        const SpanRec& next = *attempts[i];
        const std::string id =
            traceIdHex(rt.traceId) + "." + std::to_string(next.attempt);
        const char* label = next.hedge ? "hedge" : "retry";
        const std::int64_t fromPs =
            next.hedge ? next.startPs : std::min(prev.endPs, next.startPs);
        proc.flows.push_back(obs::TraceFlow{lane, label, id, fromPs, true});
        proc.flows.push_back(
            obs::TraceFlow{lane, label, id, next.startPs, false});
      }
    }
    chrome.addProcess(std::move(proc));
  }
}

}  // namespace prtr::trace
