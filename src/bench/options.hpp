#pragma once
/// \file options.hpp
/// One command-line vocabulary for every bench binary and the prtrsim CLI.
///
/// Before this existed each `bench/bench_*.cpp` main re-parsed (or silently
/// ignored) its own `--json/--trace/--threads/--profile` flags and no two
/// binaries agreed on `--help`. Options is the single parser: it consumes
/// the shared flags, leaves everything it does not recognise in `rest` (so
/// wrappers like bench_micro can forward to google-benchmark and prtrsim
/// can layer its domain flags on top), and renders one uniform usage block.
///
/// The shared vocabulary:
///
///   --json <path>      write the machine-readable report/result JSON
///   --trace <path>     export a Chrome trace of the simulated run
///   --profile <path>   export a host-side prof::Profiler snapshot
///   --threads <n>      worker threads for parallel sweeps (default: hw)
///   --seed <n>         override the deterministic RNG seed
///   --help             print the usage block and exit 0
///
/// obs::BenchReport delegates here, so plain benches inherit the whole
/// surface by constructing a report from argv and nothing else.

#include <cstdint>
#include <string>
#include <vector>

namespace prtr::bench {

class Options {
 public:
  /// Parses the shared flags out of argv. `bench` names the binary in
  /// diagnostics and the usage block. Unrecognised arguments are kept, in
  /// order, in rest(). Throws util::DomainError when a flag is missing its
  /// value, `--threads` is not a positive integer, or `--seed` is not an
  /// unsigned integer.
  static Options parse(std::string bench, int argc, const char* const* argv);

  /// The uniform usage block: "usage:" line, the shared flags, then
  /// `extra` (one "  --flag ...  description" line per domain flag) when
  /// the caller layers its own vocabulary on top.
  static std::string usage(const std::string& bench,
                           const std::string& extra = {});

  [[nodiscard]] const std::string& bench() const noexcept { return bench_; }
  [[nodiscard]] const std::string& jsonPath() const noexcept { return json_; }
  [[nodiscard]] const std::string& tracePath() const noexcept { return trace_; }
  [[nodiscard]] const std::string& profilePath() const noexcept {
    return profile_;
  }
  [[nodiscard]] bool jsonRequested() const noexcept { return !json_.empty(); }
  [[nodiscard]] bool traceRequested() const noexcept { return !trace_.empty(); }
  [[nodiscard]] bool profileRequested() const noexcept {
    return !profile_.empty();
  }

  /// Worker threads: the `--threads` value, defaulting to the hardware
  /// concurrency. Always >= 1.
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// True when `--seed` appeared; seed() then holds its value. Benches
  /// with a fixed reference seed use seedOr(kDefault) so the published
  /// numbers stay reproducible unless the user asks otherwise.
  [[nodiscard]] bool seedSet() const noexcept { return seedSet_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t seedOr(std::uint64_t fallback) const noexcept {
    return seedSet_ ? seed_ : fallback;
  }

  /// True when `--help` appeared. The caller prints usage() (plus any
  /// domain flags) and exits 0; helpRequestedAndHandled() does exactly
  /// that for callers with no extra vocabulary.
  [[nodiscard]] bool helpRequested() const noexcept { return help_; }

  /// Prints usage() to stdout when --help was given. Returns true when it
  /// did (the caller returns 0 from main).
  [[nodiscard]] bool helpRequestedAndHandled(const std::string& extra = {}) const;

  /// Arguments parse() did not recognise, in their original order.
  [[nodiscard]] const std::vector<std::string>& rest() const noexcept {
    return rest_;
  }

 private:
  std::string bench_;
  std::string json_;
  std::string trace_;
  std::string profile_;
  std::size_t threads_ = 1;
  std::uint64_t seed_ = 0;
  bool seedSet_ = false;
  bool help_ = false;
  std::vector<std::string> rest_;
};

}  // namespace prtr::bench
