#include "bench/options.hpp"

#include <cstdlib>
#include <iostream>
#include <thread>

#include "util/error.hpp"

namespace prtr::bench {
namespace {

std::uint64_t parseUnsigned(const std::string& bench, const std::string& flag,
                            const char* text) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == nullptr || end == text || *end != '\0') {
    throw util::DomainError{bench + ": " + flag +
                            " requires an unsigned integer, got '" + text +
                            "'"};
  }
  return parsed;
}

}  // namespace

Options Options::parse(std::string bench, int argc,
                       const char* const* argv) {
  Options options;
  options.bench_ = std::move(bench);
  const unsigned hw = std::thread::hardware_concurrency();
  options.threads_ = hw == 0 ? 1 : hw;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      options.help_ = true;
    } else if (arg == "--json" || arg == "--trace" || arg == "--profile") {
      if (i + 1 >= argc) {
        throw util::DomainError{options.bench_ + ": " + arg +
                                " requires a path"};
      }
      (arg == "--json"    ? options.json_
       : arg == "--trace" ? options.trace_
                          : options.profile_) = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        throw util::DomainError{options.bench_ + ": --threads requires a count"};
      }
      const std::uint64_t parsed =
          parseUnsigned(options.bench_, arg, argv[++i]);
      if (parsed == 0) {
        throw util::DomainError{options.bench_ +
                                ": --threads requires a positive integer"};
      }
      options.threads_ = static_cast<std::size_t>(parsed);
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        throw util::DomainError{options.bench_ + ": --seed requires a value"};
      }
      options.seed_ = parseUnsigned(options.bench_, arg, argv[++i]);
      options.seedSet_ = true;
    } else {
      options.rest_.push_back(arg);
    }
  }
  return options;
}

std::string Options::usage(const std::string& bench,
                           const std::string& extra) {
  std::string text = "usage: " + bench + " [options]\n\n";
  text +=
      "  --json <path>      write the machine-readable report JSON\n"
      "  --trace <path>     export a Chrome trace of the simulated run\n"
      "  --profile <path>   export a host-side profiler snapshot\n"
      "  --threads <n>      worker threads for parallel sweeps (default: "
      "hardware)\n"
      "  --seed <n>         override the deterministic RNG seed\n"
      "  --help             print this message and exit\n";
  if (!extra.empty()) {
    text += "\n";
    text += extra;
    if (text.back() != '\n') text += '\n';
  }
  return text;
}

bool Options::helpRequestedAndHandled(const std::string& extra) const {
  if (!help_) return false;
  std::cout << usage(bench_, extra);
  return true;
}

}  // namespace prtr::bench
