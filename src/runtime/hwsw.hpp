#pragma once
/// \file hwsw.hpp
/// HW/SW codesign execution — the inclusion the paper explicitly deferred:
/// "Software tasks were excluded from our analysis and we preserve this
/// inclusion for future considerations" (section 6).
///
/// Every hardware function also has a software implementation running on
/// the blade's Opteron. A partitioning policy decides, call by call,
/// whether to run in fabric (paying reconfiguration when the module is not
/// resident) or in software (paying the slower per-byte rate but no
/// configuration). The interesting regime is exactly the paper's: when
/// configuration overhead dominates, software execution can win even
/// against a 7x-faster accelerator.

#include <cstdint>
#include <string>

#include "bitstream/library.hpp"
#include "obs/hooks.hpp"
#include "runtime/cache.hpp"
#include "runtime/lanes.hpp"
#include "runtime/report.hpp"
#include "tasks/workload.hpp"
#include "xd1/node.hpp"

namespace prtr::runtime {

/// Software-side execution model of one blade CPU (2.4 GHz Opteron).
struct CpuModel {
  util::Frequency clock = util::Frequency::megahertz(2400);
  /// Cycles per input byte for the image kernels in software. The paper's
  /// cited application studies report one-to-two-orders-of-magnitude HW
  /// speedups; 35 cycles/byte puts the fabric at ~42x the CPU's pixel rate.
  double cyclesPerByte = 35.0;

  [[nodiscard]] util::Time computeTime(util::Bytes input) const noexcept {
    return util::Time::seconds(static_cast<double>(input.count()) *
                               cyclesPerByte / clock.hertz());
  }
};

/// Call-by-call placement decision policies.
enum class Partitioning : std::uint8_t {
  kAlwaysHardware,  ///< the paper's setting: every task is a hardware task
  kAlwaysSoftware,  ///< pure-CPU baseline
  kStaticThreshold, ///< hardware only if the task beats SW even with a config
  kAdaptive,        ///< hardware if resident; else cheaper of (config+HW, SW)
};

[[nodiscard]] const char* toString(Partitioning policy) noexcept;

/// Options for the HW/SW executor.
struct HwSwOptions {
  Partitioning policy = Partitioning::kAdaptive;
  CpuModel cpu{};
  util::Time tControl = util::Time::microseconds(10);
  bool lookahead = true;  ///< overlap next hardware config with execution
  /// Observability: hooks.timeline records CPU/FPGA spans; hooks.metrics
  /// receives the run's snapshot.
  obs::Hooks hooks{};
};

/// Outcome of a HW/SW run: the base report plus the placement split.
struct HwSwReport {
  ExecutionReport base;
  std::uint64_t hardwareCalls = 0;
  std::uint64_t softwareCalls = 0;
  util::Time softwareTime;

  [[nodiscard]] double hardwareFraction() const noexcept {
    const std::uint64_t total = hardwareCalls + softwareCalls;
    return total ? static_cast<double>(hardwareCalls) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

/// Executes `workload` with HW/SW partitioning on a PRTR-managed node.
/// Hardware calls use the measured configuration paths (vendor API for the
/// initial full load, ICAP for partials); software calls run on the CPU
/// model and require no data movement over the accelerator link.
class HwSwExecutor {
 public:
  HwSwExecutor(xd1::Node& node, const tasks::FunctionRegistry& registry,
               bitstream::Library& library, ConfigCache& cache,
               HwSwOptions options);

  [[nodiscard]] HwSwReport run(const tasks::Workload& workload);

 private:
  [[nodiscard]] bool placeInHardware(const tasks::TaskCall& call) const;
  [[nodiscard]] util::Time hardwareCost(const tasks::TaskCall& call,
                                        bool resident) const;
  [[nodiscard]] util::Time softwareCost(const tasks::TaskCall& call) const;

  sim::Process execute(const tasks::Workload& workload);
  sim::Process fullLoad();
  sim::Process configureInto(std::size_t slot, const tasks::HwFunction& fn);

  xd1::Node* node_;
  const tasks::FunctionRegistry* registry_;
  bitstream::Library* library_;
  ConfigCache* cache_;
  HwSwOptions options_;
  TimelineRecorder trace_;
  HwSwReport report_;
};

}  // namespace prtr::runtime
