#include "runtime/multitask.hpp"

#include <optional>
#include <sstream>

#include "runtime/lanes.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::runtime {

std::string MultitaskReport::toString() const {
  std::ostringstream os;
  os << "multitask: " << calls << " calls, makespan " << makespan.toString()
     << ", H=" << hitRatio() << ", " << configurations << " configs\n";
  for (const AppStats& app : apps) {
    os << "  " << app.name << ": " << app.completed << " done, latency mean "
       << util::Time::seconds(app.latencySeconds.mean()).toString() << " (max "
       << util::Time::seconds(app.latencySeconds.max()).toString()
       << "), queueing mean "
       << util::Time::seconds(app.queueingSeconds.mean()).toString() << '\n';
  }
  return os.str();
}

namespace {

/// Shared scheduler state living for one runMultitask invocation.
class Scheduler {
 public:
  Scheduler(xd1::Node& node, const tasks::FunctionRegistry& registry,
            bitstream::Library& library, const MultitaskOptions& options,
            MultitaskReport& report)
      : node_(node),
        registry_(registry),
        library_(library),
        options_(options),
        report_(report),
        slots_(node.floorplan().prrCount()),
        trace_(options.hooks.timeline),
        slotFreed_(node.sim()),
        ready_(node.sim()),
        done_(node.sim()) {}

  /// Initial full configuration; apps hold their arrivals until it ends.
  sim::Process setup() {
    co_await node_.manager().fullConfigure(library_.full());
    isReady_ = true;
    ready_.notifyAll();
  }

  /// Paces one application's arrivals; each call runs as its own process.
  sim::Process runApp(const AppSpec& app, AppStats& stats, util::Rng rng) {
    while (!isReady_) co_await ready_.wait();
    for (const tasks::TaskCall& call : app.workload.calls) {
      co_await node_.sim().delay(
          util::Time::seconds(rng.exponential(app.meanInterArrival.toSeconds())));
      done_.add(1);
      node_.sim().spawn(handleCall(call, stats));
    }
  }

 private:
  struct Slot {
    bool busy = false;
    std::optional<bitstream::ModuleId> module;
    std::uint64_t lastUse = 0;
  };

  /// Grants a PRR for `fn`: a free slot already holding the module is a
  /// hit; otherwise the least-recently-used free slot is reconfigured.
  sim::Process handleCall(tasks::TaskCall call, AppStats& stats) {
    auto& sim = node_.sim();
    const tasks::HwFunction& fn = registry_.at(call.functionIndex);
    const util::Time arrival = sim.now();
    ++report_.calls;

    std::size_t slot = 0;
    bool hit = false;
    for (;;) {
      if (auto found = findSlot(fn.id, hit)) {
        slot = *found;
        break;
      }
      co_await slotFreed_.wait();
    }
    slots_[slot].busy = true;
    slots_[slot].lastUse = ++clock_;
    // Claim the region for the module immediately so that concurrent
    // arrivals for the same module wait for this slot instead of starting
    // a duplicate configuration elsewhere.
    slots_[slot].module = fn.id;
    const util::Time granted = sim.now();
    stats.queueingSeconds.add((granted - arrival).toSeconds());
    if (hit) ++report_.hits;

    if (!hit) {
      co_await node_.manager().loadModule(slot, fn.id,
                                          library_.modulePartial(slot, fn.id));
      ++report_.configurations;
    }

    co_await sim.delay(options_.tControl);
    co_await node_.linkIn().transfer(call.dataBytes);
    co_await sim.delay(fn.computeTime(call.dataBytes));
    co_await node_.linkOut().transfer(fn.outputBytes(call.dataBytes));

    slots_[slot].busy = false;
    if (trace_.enabled()) {
      trace_.record(trace_.prrLane(slot), trace_.label(fn.name),
                    hit ? '#' : 'c', granted, sim.now());
    }
    report_.prrBusyTotal += sim.now() - granted;
    stats.latencySeconds.add((sim.now() - arrival).toSeconds());
    ++stats.completed;
    slotFreed_.notifyAll();
    done_.done();
  }

  /// Slot selection with strict module affinity — a resident module has a
  /// single home region:
  ///  1. the module is resident and its slot is free -> hit;
  ///  2. the module is resident but its slot is busy -> wait for it
  ///     (cloning it elsewhere or evicting another app's module would
  ///     thrash the regions under open arrivals);
  ///  3. not resident: an empty free slot, else the LRU free slot;
  ///  4. nothing free -> wait.
  std::optional<std::size_t> findSlot(bitstream::ModuleId module, bool& hit) {
    hit = false;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].module == module) {
        if (!slots_[s].busy) {
          hit = true;
          return s;
        }
        return std::nullopt;  // affinity: wait for the module's home region
      }
    }
    std::optional<std::size_t> lru;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].busy) continue;
      if (!slots_[s].module.has_value()) return s;  // empty beats eviction
      if (!lru || slots_[s].lastUse < slots_[*lru].lastUse) lru = s;
    }
    return lru;
  }

  xd1::Node& node_;
  const tasks::FunctionRegistry& registry_;
  bitstream::Library& library_;
  const MultitaskOptions& options_;
  MultitaskReport& report_;
  std::vector<Slot> slots_;
  TimelineRecorder trace_;
  sim::Condition slotFreed_;
  sim::Condition ready_;
  sim::WaitGroup done_;
  bool isReady_ = false;
  std::uint64_t clock_ = 0;
};

}  // namespace

MultitaskReport runMultitask(const tasks::FunctionRegistry& registry,
                             const std::vector<AppSpec>& apps,
                             const MultitaskOptions& options) {
  util::require(!apps.empty(), "runMultitask: need at least one app");

  sim::Simulator sim;
  xd1::NodeConfig nodeConfig;
  nodeConfig.layout = options.layout;
  xd1::Node node{sim, nodeConfig};
  bitstream::Library library{
      node.floorplan(),
      registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};

  MultitaskReport report;
  report.apps.resize(apps.size());

  Scheduler scheduler{node, registry, library, options, report};
  sim.spawn(scheduler.setup());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    report.apps[a].name = apps[a].name;
    sim.spawn(scheduler.runApp(apps[a], report.apps[a],
                               util::Rng{options.seed + a * 7919}));
  }
  sim.run();
  report.makespan = sim.now();

  // Fixed scrape names interned once per process; the per-app names are
  // interned per distinct app name (idempotent, and the app set is tiny).
  struct Ids {
    obs::CounterId simEvents, simTimePs, icapLoads, icapBytes,
        icapContentionPs, apiLoads, apiBytes;
    obs::CounterId calls, hits, configurations, makespanPs, prrBusyPs;
    obs::GaugeId hitRatio;
  };
  static const Ids kIds = [] {
    obs::MetricTable& t = obs::MetricTable::global();
    return Ids{t.counter("sim.events_processed"),
               t.counter("sim.time_ps"),
               t.counter("config.icap.loads"),
               t.counter("config.icap.bytes_written"),
               t.counter("config.icap.contention_ps"),
               t.counter("config.vendor_api.loads"),
               t.counter("config.vendor_api.bytes_written"),
               t.counter("multitask.calls"),
               t.counter("multitask.hits"),
               t.counter("multitask.configurations"),
               t.counter("multitask.makespan_ps"),
               t.counter("multitask.prr_busy_ps"),
               t.gauge("multitask.hit_ratio")};
  }();

  obs::MetricTable& table = obs::MetricTable::global();
  obs::Registry reg;
  reg.add(kIds.simEvents, sim.eventsProcessed());
  reg.add(kIds.simTimePs, static_cast<std::uint64_t>(sim.now().ps()));
  reg.add(kIds.icapLoads, node.icap().loadsPerformed());
  reg.add(kIds.icapBytes, node.icap().bytesWritten());
  reg.add(kIds.icapContentionPs,
          static_cast<std::uint64_t>(node.icap().contentionTime().ps()));
  reg.add(kIds.apiLoads, node.vendorApi().loadsPerformed());
  reg.add(kIds.apiBytes, node.vendorApi().bytesWritten());
  reg.add(kIds.calls, report.calls);
  reg.add(kIds.hits, report.hits);
  reg.add(kIds.configurations, report.configurations);
  reg.add(kIds.makespanPs, static_cast<std::uint64_t>(report.makespan.ps()));
  reg.add(kIds.prrBusyPs,
          static_cast<std::uint64_t>(report.prrBusyTotal.ps()));
  reg.set(kIds.hitRatio, report.hitRatio());
  for (const AppStats& app : report.apps) {
    const std::string base = "multitask.app." + app.name;
    reg.add(table.counter(base + ".completed"), app.completed);
    reg.set(table.gauge(base + ".latency_mean_s"),
            app.latencySeconds.mean());
  }
  report.metrics = reg.takeSnapshot();
  if (options.hooks.metrics) options.hooks.metrics->absorb(report.metrics);
  if (options.hooks.trace && options.hooks.timeline &&
      !options.hooks.timeline->empty()) {
    options.hooks.trace->add("multitask", *options.hooks.timeline);
  }
  return report;
}

}  // namespace prtr::runtime
