#pragma once
/// \file prefetch.hpp
/// Configuration pre-fetching (paper refs [24-27] and section 3.1): a
/// prefetcher observes the call stream and predicts the next module so its
/// configuration can overlap the current task's execution. Each algorithm
/// is characterized by its decision latency (T_decision) and, empirically,
/// by the hit ratio H it achieves on a workload — exactly the two
/// parameters of the analytical model.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/builder.hpp"
#include "util/units.hpp"

namespace prtr::runtime {

using bitstream::ModuleId;

/// Prediction algorithms for configuration pre-fetching. The typed enum is
/// the API; `.scn` strings go through prefetcherKindFromString so unknown
/// names lint (MD012) instead of throwing from this layer.
enum class PrefetcherKind : std::uint8_t { kNone, kOracle, kMarkov,
                                           kAssociation };

/// Canonical lower-case name ("none", "oracle", "markov", "association").
[[nodiscard]] const char* toString(PrefetcherKind kind) noexcept;

/// Inverse of toString; nullopt for unknown names (never throws).
[[nodiscard]] std::optional<PrefetcherKind> prefetcherKindFromString(
    std::string_view name) noexcept;

/// Every kind, in declaration order.
[[nodiscard]] std::span<const PrefetcherKind> allPrefetcherKinds() noexcept;

/// Interface for configuration pre-fetching algorithms.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Algorithm decision latency (the model's T_decision).
  [[nodiscard]] virtual util::Time decisionLatency() const = 0;

  /// Observes that `module` was just called (training signal).
  virtual void observe(ModuleId module) = 0;

  /// Predicts the module of the *next* call, or nullopt for "no guess".
  [[nodiscard]] virtual std::optional<ModuleId> predictNext() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Never predicts: the paper's experimental setting ("our hypothetical
/// configuration pre-fetching always misses", H = 0, T_decision = 0).
class NonePrefetcher final : public Prefetcher {
 public:
  [[nodiscard]] util::Time decisionLatency() const override {
    return util::Time::zero();
  }
  void observe(ModuleId) override {}
  [[nodiscard]] std::optional<ModuleId> predictNext() override {
    return std::nullopt;
  }
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Knows the exact call sequence (upper bound on prediction quality).
class OraclePrefetcher final : public Prefetcher {
 public:
  OraclePrefetcher(std::vector<ModuleId> sequence, util::Time latency);

  [[nodiscard]] util::Time decisionLatency() const override { return latency_; }
  void observe(ModuleId module) override;
  [[nodiscard]] std::optional<ModuleId> predictNext() override;
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  std::vector<ModuleId> sequence_;
  std::size_t position_ = 0;
  util::Time latency_;
};

/// First-order Markov predictor: argmax transition frequency from the most
/// recently observed module.
class MarkovPrefetcher final : public Prefetcher {
 public:
  explicit MarkovPrefetcher(util::Time latency);

  [[nodiscard]] util::Time decisionLatency() const override { return latency_; }
  void observe(ModuleId module) override;
  [[nodiscard]] std::optional<ModuleId> predictNext() override;
  [[nodiscard]] std::string name() const override { return "markov"; }

 private:
  std::map<ModuleId, std::map<ModuleId, std::uint64_t>> transitions_;
  std::optional<ModuleId> last_;
  util::Time latency_;
};

/// Association-rule-mining style predictor (paper ref [26]): counts module
/// co-occurrence inside a sliding window and predicts the highest-count
/// partner of the current module.
class AssociationPrefetcher final : public Prefetcher {
 public:
  AssociationPrefetcher(std::size_t windowSize, util::Time latency);

  [[nodiscard]] util::Time decisionLatency() const override { return latency_; }
  void observe(ModuleId module) override;
  [[nodiscard]] std::optional<ModuleId> predictNext() override;
  [[nodiscard]] std::string name() const override { return "association"; }

 private:
  std::deque<ModuleId> window_;
  std::size_t windowSize_;
  std::map<std::pair<ModuleId, ModuleId>, std::uint64_t> pairCounts_;
  std::optional<ModuleId> last_;
  util::Time latency_;
};

/// Factory by kind. `sequence` feeds the oracle; `window` the association
/// miner.
[[nodiscard]] std::unique_ptr<Prefetcher> makePrefetcher(
    PrefetcherKind kind, util::Time latency,
    const std::vector<ModuleId>& sequence = {}, std::size_t window = 8);

/// Stringly-typed factory, kept for callers that predate PrefetcherKind.
/// Still throws DomainError for unknown names.
[[deprecated("use makePrefetcher(PrefetcherKind, ...) / prefetcherKindFromString")]]
[[nodiscard]] std::unique_ptr<Prefetcher> makePrefetcher(
    const std::string& kind, util::Time latency,
    const std::vector<ModuleId>& sequence = {}, std::size_t window = 8);

}  // namespace prtr::runtime
