#include "runtime/report.hpp"

#include <sstream>

#include "util/error.hpp"

namespace prtr::runtime {

std::string ExecutionReport::toString() const {
  std::ostringstream os;
  os << executor << " report: calls=" << calls
     << " configs=" << configurations << " H=" << hitRatio()
     << " total=" << total.toString() << "\n";
  os << "  initialConfig=" << initialConfig.toString()
     << " configStall=" << configStall.toString()
     << " decision=" << decisionTime.toString()
     << " control=" << controlTime.toString() << "\n";
  os << "  in=" << inputTime.toString() << " compute=" << computeTime.toString()
     << " out=" << outputTime.toString()
     << " configOverhead=" << configOverheadFraction() * 100.0 << "%";
  if (prefetchIssued > 0) {
    os << " prefetch=" << prefetchIssued << " (wrong " << prefetchWrong << ")";
  }
  os << "\n";
  return os.str();
}

double measuredSpeedup(const ExecutionReport& frtr, const ExecutionReport& prtr) {
  util::require(prtr.total > util::Time::zero(),
                "measuredSpeedup: PRTR total must be positive");
  return frtr.total / prtr.total;
}

}  // namespace prtr::runtime
