#include "runtime/executor.hpp"

#include <cctype>
#include <string>

#include "config/port.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace prtr::runtime {
namespace {

/// Estimated-basis configuration times go through the raw external port.
util::Time estimatedFullTime(const xd1::Node& node) {
  return config::makeSelectMap().transferTime(
      node.device().geometry().fullBitstreamBytes());
}

util::Time estimatedPartialTime(const xd1::Node& node, std::size_t prr) {
  return config::makeSelectMap().transferTime(
      node.floorplan().prr(prr).partialBitstreamBytes(node.device()));
}

std::uint64_t asCount(util::Time t) noexcept {
  return t.ps() > 0 ? static_cast<std::uint64_t>(t.ps()) : 0;
}

}  // namespace

void scrapeExecutionMetrics(ExecutionReport& report, xd1::Node& node,
                            const std::string& executorName,
                            const ConfigCache* cache) {
  obs::Registry reg;
  reg.add("sim.events_processed", node.sim().eventsProcessed());
  reg.add("sim.time_ps", asCount(node.sim().now()));
  reg.add("config.icap.loads", node.icap().loadsPerformed());
  reg.add("config.icap.bytes_written", node.icap().bytesWritten());
  reg.add("config.icap.contention_ps", asCount(node.icap().contentionTime()));
  reg.add("config.vendor_api.loads", node.vendorApi().loadsPerformed());
  reg.add("config.vendor_api.bytes_written", node.vendorApi().bytesWritten());
  reg.add("config.vendor_api.rejects", node.vendorApi().rejectedLoads());
  reg.add("config.full_configs", node.manager().fullConfigCount());
  reg.add("config.partial_configs", node.manager().partialConfigCount());

  // Fault/recovery gauges only appear when the fault layer is in play, so
  // healthy baselines keep their pre-existing snapshot byte-for-byte.
  if (node.injector() != nullptr) {
    const fault::Injector& injector = *node.injector();
    for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
      const auto kind = static_cast<fault::FaultKind>(k);
      reg.add(std::string("fault.injected.") + fault::metricSuffix(kind),
              injector.injected(kind));
    }
    reg.add("fault.injected.total", injector.totalInjected());
  }
  if (node.manager().recoveryPolicy().enabled) {
    const config::RecoveryStats& rs = node.manager().recoveryStats();
    reg.add("recovery.requests", rs.requests);
    reg.add("recovery.attempts", rs.attempts);
    reg.add("recovery.retries", rs.retries);
    reg.add("recovery.faults_absorbed", rs.faultsAbsorbed);
    reg.add("recovery.verifications", rs.verifications);
    reg.add("recovery.verify_failures", rs.verifyFailures);
    reg.add("recovery.frame_repairs", rs.frameRepairs);
    reg.add("recovery.escalations", rs.escalations);
    reg.add("recovery.full_device_fallbacks", rs.fullDeviceFallbacks);
    reg.add("recovery.degraded_to",
            static_cast<std::uint64_t>(rs.degradedTo));
    reg.add("recovery.backoff_ps", asCount(rs.backoffTime));
    reg.add("recovery.verify_ps", asCount(rs.verifyTime));
    reg.add("recovery.repair_ps", asCount(rs.repairTime));
  }

  if (cache != nullptr) {
    std::string policy = cache->policyName();
    for (char& c : policy) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const std::string base = "cache." + policy + ".";
    reg.add(base + "hits", cache->stats().hits);
    reg.add(base + "misses", cache->stats().misses);
    reg.add(base + "evictions", cache->stats().evictions);
  }

  const std::string ex = "executor." + executorName + ".";
  reg.add(ex + "calls", report.calls);
  reg.add(ex + "configurations", report.configurations);
  reg.add(ex + "prefetch_issued", report.prefetchIssued);
  reg.add(ex + "prefetch_wrong", report.prefetchWrong);
  reg.add(ex + "total_ps", asCount(report.total));
  reg.add(ex + "initial_config_ps", asCount(report.initialConfig));
  reg.add(ex + "stall_ps", asCount(report.configStall));
  reg.add(ex + "decision_ps", asCount(report.decisionTime));
  reg.add(ex + "control_ps", asCount(report.controlTime));
  reg.add(ex + "input_ps", asCount(report.inputTime));
  reg.add(ex + "compute_ps", asCount(report.computeTime));
  reg.add(ex + "output_ps", asCount(report.outputTime));
  report.metrics = reg.snapshot();
}

// ---------------------------------------------------------------- FRTR --

FrtrExecutor::FrtrExecutor(xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           bitstream::Library& library, ExecutorOptions options)
    : node_(&node),
      registry_(&registry),
      library_(&library),
      options_(options),
      trace_(options.timeline) {}

sim::Process FrtrExecutor::fullLoad() {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedFullTime(*node_));
  } else if (node_->manager().recoveryPolicy().enabled) {
    co_await node_->manager().fullConfigureRecovering(library_->full());
  } else {
    co_await node_->manager().fullConfigure(library_->full());
  }
  ++report_.configurations;
  report_.configStall += sim.now() - start;
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.fullConfig, 'F', start, sim.now());
  }
}

sim::Process FrtrExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  for (const tasks::TaskCall& call : workload.calls) {
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);
    // FRTR reloads the whole device for every task (Figure 3).
    co_await fullLoad();

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.inputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htIn, trace_.dataIn, '>', mark, sim.now());
    }

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.computeTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.fpga, trace_.label(fn.name), '#', mark, sim.now());
    }

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.outputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htOut, trace_.dataOut, '<', mark, sim.now());
    }

    ++report_.calls;
  }
}

ExecutionReport FrtrExecutor::run(const tasks::Workload& workload) {
  report_ = ExecutionReport{};
  report_.executor = "FRTR";
  node_->manager().setRecoveryTimeline(options_.timeline);
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.total = sim.now() - start;
  scrapeExecutionMetrics(report_, *node_, "frtr", nullptr);
  return report_;
}

// ---------------------------------------------------------------- PRTR --

PrtrExecutor::PrtrExecutor(xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           bitstream::Library& library, ConfigCache& cache,
                           Prefetcher& prefetcher, ExecutorOptions options)
    : node_(&node),
      registry_(&registry),
      library_(&library),
      cache_(&cache),
      prefetcher_(&prefetcher),
      options_(options),
      trace_(options.timeline) {
  util::require(cache.slotCount() == node.floorplan().prrCount(),
                "PrtrExecutor: cache slots must match the PRR count");
}

sim::Process PrtrExecutor::fullLoad() {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedFullTime(*node_));
  } else if (node_->manager().recoveryPolicy().enabled) {
    co_await node_->manager().fullConfigureRecovering(library_->full());
  } else {
    co_await node_->manager().fullConfigure(library_->full());
  }
  cache_->invalidateAll();
  report_.initialConfig += sim.now() - start;
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.initialFullConfig, 'F', start,
                  sim.now());
  }
}

sim::Process PrtrExecutor::partialLoad(std::size_t prr,
                                       const tasks::HwFunction& fn) {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedPartialTime(*node_, prr));
  } else if (node_->manager().recoveryPolicy().enabled) {
    // Entry rung is the module partial (same stream a non-recovering load
    // would transfer, so a fault-free run stays bit-identical); the ladder
    // rungs are only materialized when escalation is allowed at all.
    config::RecoveryStreams streams;
    streams.modulePartial = &library_->modulePartial(prr, fn.id);
    if (node_->manager().recoveryPolicy().ladder) {
      streams.fullPrr = &library_->prrReload(prr, fn.id);
      streams.fullDevice = &library_->full();
    }
    co_await node_->manager().loadModuleRecovering(prr, fn.id, streams);
  } else {
    co_await node_->manager().loadModule(prr, fn.id,
                                         library_->modulePartial(prr, fn.id));
  }
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.label("partial(" + fn.name + ")"), 'P',
                  start, sim.now());
  }
}

sim::Process PrtrExecutor::prepareProcess(std::size_t callIndex,
                                          ModuleId module) {
  auto& sim = node_->sim();
  Prep* prep = prep_.get();
  const util::Time decisionStart = sim.now();
  co_await sim.delay(prefetcher_->decisionLatency());
  report_.decisionTime += sim.now() - decisionStart;

  const bool resident = cache_->lookup(module).has_value();
  if (!options_.forceMiss && resident) {
    prep->finished = true;
    prep->done->notifyAll();
    co_return;
  }

  std::optional<std::size_t> slot;
  if (options_.forceMiss) {
    // Rotate over PRRs, skipping the one executing the current task.
    for (std::size_t attempt = 0; attempt < cache_->slotCount(); ++attempt) {
      const std::size_t candidate = roundRobinSlot_ % cache_->slotCount();
      roundRobinSlot_ = candidate + 1;
      if (candidate != executingPrr_) {
        slot = candidate;
        break;
      }
    }
  } else {
    slot = cache_->chooseSlot(module, executingPrr_);
  }
  if (!slot) {
    // No safe PRR (e.g. single-PRR layout while a task runs): fall back to
    // on-demand configuration when the call is admitted.
    prep->finished = true;
    prep->done->notifyAll();
    co_return;
  }

  prep->slot = slot;
  prep->configIssued = true;
  ++report_.prefetchIssued;
  co_await partialLoad(*slot, registry_->byId(module));
  cache_->install(*slot, module);
  prep->finished = true;
  prep->done->notifyAll();
  (void)callIndex;
}

void PrtrExecutor::startPrepare(std::size_t nextCallIndex,
                                const tasks::Workload& workload) {
  std::optional<ModuleId> predicted;
  switch (options_.prepare) {
    case PrepareSource::kNone:
      return;
    case PrepareSource::kQueue:
      predicted = registry_->at(workload.calls[nextCallIndex].functionIndex).id;
      break;
    case PrepareSource::kPrefetcher:
      predicted = prefetcher_->predictNext();
      break;
  }
  if (!predicted) return;
  prep_ = std::make_unique<Prep>();
  prep_->callIndex = nextCallIndex;
  prep_->module = *predicted;
  prep_->done = std::make_unique<sim::Condition>(node_->sim());
  node_->sim().spawn(prepareProcess(nextCallIndex, *predicted));
}

sim::Process PrtrExecutor::ensureResident(std::size_t callIndex,
                                          const tasks::HwFunction& fn) {
  auto& sim = node_->sim();

  bool satisfied = false;
  bool configured = false;
  if (prep_ && prep_->callIndex == callIndex) {
    // Wait for the in-flight preparation (even a wrong guess: it owns the
    // configuration port and possibly the slot we need).
    while (!prep_->finished) {
      const util::Time waitStart = sim.now();
      co_await prep_->done->wait();
      report_.configStall += sim.now() - waitStart;
    }
    if (prep_->module == fn.id) {
      satisfied = prep_->slot.has_value() ||
                  (!options_.forceMiss && cache_->lookup(fn.id).has_value());
      configured = prep_->configIssued;
    } else if (prep_->configIssued) {
      ++report_.prefetchWrong;
    }
    prep_.reset();
  }

  if (!satisfied) {
    // On-demand path: decision, then configure if (still) not resident.
    const util::Time decisionStart = sim.now();
    co_await sim.delay(prefetcher_->decisionLatency());
    report_.decisionTime += sim.now() - decisionStart;

    if (!options_.forceMiss && cache_->lookup(fn.id).has_value()) {
      satisfied = true;
    } else {
      std::optional<std::size_t> slot;
      if (options_.forceMiss) {
        slot = roundRobinSlot_ % cache_->slotCount();
        roundRobinSlot_ = *slot + 1;
      } else {
        slot = cache_->chooseSlot(fn.id, std::nullopt);
      }
      util::require(slot.has_value(),
                    "PrtrExecutor: no PRR available for on-demand load");
      const util::Time stallStart = sim.now();
      co_await partialLoad(*slot, fn);
      cache_->install(*slot, fn.id);
      report_.configStall += sim.now() - stallStart;
      configured = true;
    }
  }

  if (configured) ++report_.configurations;
  // Cache stats (hit ratio bookkeeping) track residency at admission.
  if (!options_.forceMiss) {
    (void)cache_->access(fn.id);
  }
}

sim::Process PrtrExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  co_await fullLoad();  // the leading "1" of equation (5)

  for (std::size_t i = 0; i < workload.calls.size(); ++i) {
    const tasks::TaskCall& call = workload.calls[i];
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);

    cache_->onCallBoundary(i);
    co_await ensureResident(i, fn);
    prefetcher_->observe(fn.id);
    // Slot contents are updated by install() in every mode, so the lookup
    // also resolves the executing PRR under forceMiss.
    executingPrr_ = cache_->lookup(fn.id);

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.inputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htIn, trace_.dataIn, '>', mark, sim.now());
    }

    // Input channel now free: overlap the next call's configuration with
    // the remainder of this task (paper section 4.1).
    if (i + 1 < workload.calls.size()) startPrepare(i + 1, workload);

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.computeTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.prrLane(executingPrr_.value_or(0)),
                    trace_.label(fn.name), '#', mark, sim.now());
    }

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.outputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htOut, trace_.dataOut, '<', mark, sim.now());
    }

    executingPrr_.reset();
    ++report_.calls;
  }
}

ExecutionReport PrtrExecutor::run(const tasks::Workload& workload) {
  report_ = ExecutionReport{};
  report_.executor = "PRTR";
  node_->manager().setRecoveryTimeline(options_.timeline);
  roundRobinSlot_ = 0;
  executingPrr_.reset();
  prep_.reset();
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.total = sim.now() - start;
  scrapeExecutionMetrics(report_, *node_, "prtr", cache_);
  return report_;
}

}  // namespace prtr::runtime
