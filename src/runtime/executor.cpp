#include "runtime/executor.hpp"

#include <array>
#include <cctype>
#include <mutex>
#include <string>
#include <unordered_map>

#include "config/port.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace prtr::runtime {
namespace {

/// Estimated-basis configuration times go through the raw external port.
util::Time estimatedFullTime(const xd1::Node& node) {
  return config::makeSelectMap().transferTime(
      node.device().geometry().fullBitstreamBytes());
}

util::Time estimatedPartialTime(const xd1::Node& node, std::size_t prr) {
  return config::makeSelectMap().transferTime(
      node.floorplan().prr(prr).partialBitstreamBytes(node.device()));
}

std::uint64_t asCount(util::Time t) noexcept {
  return t.ps() > 0 ? static_cast<std::uint64_t>(t.ps()) : 0;
}

/// Fixed scrape names, interned once per process (the scrape runs once per
/// executor per scenario — on a pool worker during chassis/sweep fan-out —
/// so the bundle is shared, not re-looked-up per run).
struct ScrapeIds {
  obs::CounterId simEvents, simTimePs;
  obs::CounterId icapLoads, icapBytes, icapContentionPs;
  obs::CounterId apiLoads, apiBytes, apiRejects;
  obs::CounterId fullConfigs, partialConfigs;
  std::array<obs::CounterId, fault::kFaultKindCount> faultInjected;
  obs::CounterId faultTotal;
  obs::CounterId recRequests, recAttempts, recRetries, recFaultsAbsorbed,
      recVerifications, recVerifyFailures, recFrameRepairs, recEscalations,
      recFullDeviceFallbacks, recDegradedTo, recBackoffPs, recVerifyPs,
      recRepairPs;
  std::array<obs::CounterId, config::kRecoveryRungCount> recLanded;
  obs::HistogramId recLadderDepth;
};

const ScrapeIds& scrapeIds() {
  static const ScrapeIds ids = [] {
    obs::MetricTable& t = obs::MetricTable::global();
    ScrapeIds out;
    out.simEvents = t.counter("sim.events_processed");
    out.simTimePs = t.counter("sim.time_ps");
    out.icapLoads = t.counter("config.icap.loads");
    out.icapBytes = t.counter("config.icap.bytes_written");
    out.icapContentionPs = t.counter("config.icap.contention_ps");
    out.apiLoads = t.counter("config.vendor_api.loads");
    out.apiBytes = t.counter("config.vendor_api.bytes_written");
    out.apiRejects = t.counter("config.vendor_api.rejects");
    out.fullConfigs = t.counter("config.full_configs");
    out.partialConfigs = t.counter("config.partial_configs");
    for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
      const auto kind = static_cast<fault::FaultKind>(k);
      out.faultInjected[k] = t.counter(std::string("fault.injected.") +
                                       fault::metricSuffix(kind));
    }
    out.faultTotal = t.counter("fault.injected.total");
    out.recRequests = t.counter("recovery.requests");
    out.recAttempts = t.counter("recovery.attempts");
    out.recRetries = t.counter("recovery.retries");
    out.recFaultsAbsorbed = t.counter("recovery.faults_absorbed");
    out.recVerifications = t.counter("recovery.verifications");
    out.recVerifyFailures = t.counter("recovery.verify_failures");
    out.recFrameRepairs = t.counter("recovery.frame_repairs");
    out.recEscalations = t.counter("recovery.escalations");
    out.recFullDeviceFallbacks = t.counter("recovery.full_device_fallbacks");
    out.recDegradedTo = t.counter("recovery.degraded_to");
    out.recBackoffPs = t.counter("recovery.backoff_ps");
    out.recVerifyPs = t.counter("recovery.verify_ps");
    out.recRepairPs = t.counter("recovery.repair_ps");
    for (std::size_t r = 0; r < config::kRecoveryRungCount; ++r) {
      const auto rung = static_cast<config::RecoveryRung>(r);
      out.recLanded[r] = t.counter(std::string("recovery.landed.") +
                                   config::metricSuffix(rung));
    }
    out.recLadderDepth = t.histogram("recovery.ladder_depth");
    return out;
  }();
  return ids;
}

/// Per-cache-policy counter bundle ("cache.lru.hits", ...), interned once
/// per distinct policy name.
struct CacheIds {
  obs::CounterId hits, misses, evictions;
};

const CacheIds& cacheIds(const std::string& policyName) {
  static std::mutex mutex;
  static std::unordered_map<std::string, CacheIds> byPolicy;
  std::scoped_lock lock{mutex};
  if (const auto it = byPolicy.find(policyName); it != byPolicy.end()) {
    return it->second;
  }
  std::string policy = policyName;
  for (char& c : policy) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  obs::MetricTable& t = obs::MetricTable::global();
  const std::string base = "cache." + policy + ".";
  return byPolicy
      .emplace(policyName, CacheIds{t.counter(base + "hits"),
                                    t.counter(base + "misses"),
                                    t.counter(base + "evictions")})
      .first->second;
}

/// Per-executor counter bundle ("executor.prtr.calls", ...), interned once
/// per distinct executor name ("frtr", "prtr", "hwsw", "dynamic").
struct ExecutorIds {
  obs::CounterId calls, configurations, prefetchIssued, prefetchWrong;
  obs::CounterId totalPs, initialConfigPs, stallPs, decisionPs, controlPs,
      inputPs, computePs, outputPs;
};

const ExecutorIds& executorIds(const std::string& executorName) {
  static std::mutex mutex;
  static std::unordered_map<std::string, ExecutorIds> byExecutor;
  std::scoped_lock lock{mutex};
  if (const auto it = byExecutor.find(executorName); it != byExecutor.end()) {
    return it->second;
  }
  obs::MetricTable& t = obs::MetricTable::global();
  const std::string ex = "executor." + executorName + ".";
  ExecutorIds ids;
  ids.calls = t.counter(ex + "calls");
  ids.configurations = t.counter(ex + "configurations");
  ids.prefetchIssued = t.counter(ex + "prefetch_issued");
  ids.prefetchWrong = t.counter(ex + "prefetch_wrong");
  ids.totalPs = t.counter(ex + "total_ps");
  ids.initialConfigPs = t.counter(ex + "initial_config_ps");
  ids.stallPs = t.counter(ex + "stall_ps");
  ids.decisionPs = t.counter(ex + "decision_ps");
  ids.controlPs = t.counter(ex + "control_ps");
  ids.inputPs = t.counter(ex + "input_ps");
  ids.computePs = t.counter(ex + "compute_ps");
  ids.outputPs = t.counter(ex + "output_ps");
  return byExecutor.emplace(executorName, ids).first->second;
}

}  // namespace

void scrapeExecutionMetrics(ExecutionReport& report, xd1::Node& node,
                            const std::string& executorName,
                            const ConfigCache* cache) {
  const ScrapeIds& m = scrapeIds();
  obs::Registry reg;
  reg.add(m.simEvents, node.sim().eventsProcessed());
  reg.add(m.simTimePs, asCount(node.sim().now()));
  reg.add(m.icapLoads, node.icap().loadsPerformed());
  reg.add(m.icapBytes, node.icap().bytesWritten());
  reg.add(m.icapContentionPs, asCount(node.icap().contentionTime()));
  reg.add(m.apiLoads, node.vendorApi().loadsPerformed());
  reg.add(m.apiBytes, node.vendorApi().bytesWritten());
  reg.add(m.apiRejects, node.vendorApi().rejectedLoads());
  reg.add(m.fullConfigs, node.manager().fullConfigCount());
  reg.add(m.partialConfigs, node.manager().partialConfigCount());

  // Fault/recovery counters only appear when the fault layer is in play, so
  // healthy baselines keep their pre-existing snapshot byte-for-byte.
  if (node.injector() != nullptr) {
    const fault::Injector& injector = *node.injector();
    for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
      reg.add(m.faultInjected[k],
              injector.injected(static_cast<fault::FaultKind>(k)));
    }
    reg.add(m.faultTotal, injector.totalInjected());
  }
  if (node.manager().recoveryPolicy().enabled) {
    const config::RecoveryStats& rs = node.manager().recoveryStats();
    reg.add(m.recRequests, rs.requests);
    reg.add(m.recAttempts, rs.attempts);
    reg.add(m.recRetries, rs.retries);
    reg.add(m.recFaultsAbsorbed, rs.faultsAbsorbed);
    reg.add(m.recVerifications, rs.verifications);
    reg.add(m.recVerifyFailures, rs.verifyFailures);
    reg.add(m.recFrameRepairs, rs.frameRepairs);
    reg.add(m.recEscalations, rs.escalations);
    reg.add(m.recFullDeviceFallbacks, rs.fullDeviceFallbacks);
    reg.add(m.recDegradedTo, static_cast<std::uint64_t>(rs.degradedTo));
    reg.add(m.recBackoffPs, asCount(rs.backoffTime));
    reg.add(m.recVerifyPs, asCount(rs.verifyTime));
    reg.add(m.recRepairPs, asCount(rs.repairTime));
    // Full ladder-depth distribution: one counter per rung, plus a histogram
    // whose observations are the rung indices every recovering load landed
    // on — so merged snapshots expose p50/p95 degradation depth, not just
    // the worst-rung scalar above.
    for (std::size_t r = 0; r < config::kRecoveryRungCount; ++r) {
      if (rs.landedOnRung[r] == 0) continue;
      reg.add(m.recLanded[r], rs.landedOnRung[r]);
      for (std::uint64_t n = 0; n < rs.landedOnRung[r]; ++n) {
        reg.observe(m.recLadderDepth, static_cast<std::int64_t>(r));
      }
    }
  }

  if (cache != nullptr) {
    const CacheIds& c = cacheIds(cache->policyName());
    reg.add(c.hits, cache->stats().hits);
    reg.add(c.misses, cache->stats().misses);
    reg.add(c.evictions, cache->stats().evictions);
  }

  const ExecutorIds& e = executorIds(executorName);
  reg.add(e.calls, report.calls);
  reg.add(e.configurations, report.configurations);
  reg.add(e.prefetchIssued, report.prefetchIssued);
  reg.add(e.prefetchWrong, report.prefetchWrong);
  reg.add(e.totalPs, asCount(report.total));
  reg.add(e.initialConfigPs, asCount(report.initialConfig));
  reg.add(e.stallPs, asCount(report.configStall));
  reg.add(e.decisionPs, asCount(report.decisionTime));
  reg.add(e.controlPs, asCount(report.controlTime));
  reg.add(e.inputPs, asCount(report.inputTime));
  reg.add(e.computePs, asCount(report.computeTime));
  reg.add(e.outputPs, asCount(report.outputTime));
  report.metrics = reg.takeSnapshot();
}

// ---------------------------------------------------------------- FRTR --

FrtrExecutor::FrtrExecutor(xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           bitstream::Library& library, ExecutorOptions options)
    : node_(&node),
      registry_(&registry),
      library_(&library),
      options_(options),
      trace_(options.timeline) {}

sim::Process FrtrExecutor::fullLoad() {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedFullTime(*node_));
  } else if (node_->manager().recoveryPolicy().enabled) {
    co_await node_->manager().fullConfigureRecovering(library_->full());
  } else {
    co_await node_->manager().fullConfigure(library_->full());
  }
  ++report_.configurations;
  report_.configStall += sim.now() - start;
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.fullConfig, 'F', start, sim.now());
  }
}

sim::Process FrtrExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  for (const tasks::TaskCall& call : workload.calls) {
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);
    // FRTR reloads the whole device for every task (Figure 3).
    co_await fullLoad();

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.inputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htIn, trace_.dataIn, '>', mark, sim.now());
    }

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.computeTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.fpga, trace_.label(fn.name), '#', mark, sim.now());
    }

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.outputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htOut, trace_.dataOut, '<', mark, sim.now());
    }

    ++report_.calls;
  }
}

ExecutionReport FrtrExecutor::run(const tasks::Workload& workload) {
  report_ = ExecutionReport{};
  report_.executor = "FRTR";
  node_->manager().setRecoveryTimeline(options_.timeline);
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.total = sim.now() - start;
  scrapeExecutionMetrics(report_, *node_, "frtr", nullptr);
  return report_;
}

// ---------------------------------------------------------------- PRTR --

PrtrExecutor::PrtrExecutor(xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           bitstream::Library& library, ConfigCache& cache,
                           Prefetcher& prefetcher, ExecutorOptions options)
    : node_(&node),
      registry_(&registry),
      library_(&library),
      cache_(&cache),
      prefetcher_(&prefetcher),
      options_(options),
      trace_(options.timeline) {
  util::require(cache.slotCount() == node.floorplan().prrCount(),
                "PrtrExecutor: cache slots must match the PRR count");
}

sim::Process PrtrExecutor::fullLoad() {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedFullTime(*node_));
  } else if (node_->manager().recoveryPolicy().enabled) {
    co_await node_->manager().fullConfigureRecovering(library_->full());
  } else {
    co_await node_->manager().fullConfigure(library_->full());
  }
  cache_->invalidateAll();
  report_.initialConfig += sim.now() - start;
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.initialFullConfig, 'F', start,
                  sim.now());
  }
}

sim::Process PrtrExecutor::partialLoad(std::size_t prr,
                                       const tasks::HwFunction& fn) {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (options_.basis == model::ConfigTimeBasis::kEstimated) {
    co_await sim.delay(estimatedPartialTime(*node_, prr));
  } else if (node_->manager().recoveryPolicy().enabled) {
    // Entry rung is the module partial (same stream a non-recovering load
    // would transfer, so a fault-free run stays bit-identical); the ladder
    // rungs are only materialized when escalation is allowed at all.
    config::RecoveryStreams streams;
    streams.modulePartial = &library_->modulePartial(prr, fn.id);
    if (node_->manager().recoveryPolicy().ladder) {
      streams.fullPrr = &library_->prrReload(prr, fn.id);
      streams.fullDevice = &library_->full();
    }
    co_await node_->manager().loadModuleRecovering(prr, fn.id, streams);
  } else {
    co_await node_->manager().loadModule(prr, fn.id,
                                         library_->modulePartial(prr, fn.id));
  }
  if (trace_.enabled()) {
    trace_.record(trace_.config, trace_.label("partial(" + fn.name + ")"), 'P',
                  start, sim.now());
  }
}

sim::Process PrtrExecutor::prepareProcess(std::size_t callIndex,
                                          ModuleId module) {
  auto& sim = node_->sim();
  Prep* prep = prep_.get();
  const util::Time decisionStart = sim.now();
  co_await sim.delay(prefetcher_->decisionLatency());
  report_.decisionTime += sim.now() - decisionStart;

  const bool resident = cache_->lookup(module).has_value();
  if (!options_.forceMiss && resident) {
    prep->finished = true;
    prep->done->notifyAll();
    co_return;
  }

  std::optional<std::size_t> slot;
  if (options_.forceMiss) {
    // Rotate over PRRs, skipping the one executing the current task.
    for (std::size_t attempt = 0; attempt < cache_->slotCount(); ++attempt) {
      const std::size_t candidate = roundRobinSlot_ % cache_->slotCount();
      roundRobinSlot_ = candidate + 1;
      if (candidate != executingPrr_) {
        slot = candidate;
        break;
      }
    }
  } else {
    slot = cache_->chooseSlot(module, executingPrr_);
  }
  if (!slot) {
    // No safe PRR (e.g. single-PRR layout while a task runs): fall back to
    // on-demand configuration when the call is admitted.
    prep->finished = true;
    prep->done->notifyAll();
    co_return;
  }

  prep->slot = slot;
  prep->configIssued = true;
  ++report_.prefetchIssued;
  co_await partialLoad(*slot, registry_->byId(module));
  cache_->install(*slot, module);
  prep->finished = true;
  prep->done->notifyAll();
  (void)callIndex;
}

void PrtrExecutor::startPrepare(std::size_t nextCallIndex,
                                const tasks::Workload& workload) {
  std::optional<ModuleId> predicted;
  switch (options_.prepare) {
    case PrepareSource::kNone:
      return;
    case PrepareSource::kQueue:
      predicted = registry_->at(workload.calls[nextCallIndex].functionIndex).id;
      break;
    case PrepareSource::kPrefetcher:
      predicted = prefetcher_->predictNext();
      break;
  }
  if (!predicted) return;
  prep_ = std::make_unique<Prep>();
  prep_->callIndex = nextCallIndex;
  prep_->module = *predicted;
  prep_->done = std::make_unique<sim::Condition>(node_->sim());
  node_->sim().spawn(prepareProcess(nextCallIndex, *predicted));
}

sim::Process PrtrExecutor::ensureResident(std::size_t callIndex,
                                          const tasks::HwFunction& fn) {
  auto& sim = node_->sim();

  bool satisfied = false;
  bool configured = false;
  if (prep_ && prep_->callIndex == callIndex) {
    // Wait for the in-flight preparation (even a wrong guess: it owns the
    // configuration port and possibly the slot we need).
    while (!prep_->finished) {
      const util::Time waitStart = sim.now();
      co_await prep_->done->wait();
      report_.configStall += sim.now() - waitStart;
    }
    if (prep_->module == fn.id) {
      satisfied = prep_->slot.has_value() ||
                  (!options_.forceMiss && cache_->lookup(fn.id).has_value());
      configured = prep_->configIssued;
    } else if (prep_->configIssued) {
      ++report_.prefetchWrong;
    }
    prep_.reset();
  }

  if (!satisfied) {
    // On-demand path: decision, then configure if (still) not resident.
    const util::Time decisionStart = sim.now();
    co_await sim.delay(prefetcher_->decisionLatency());
    report_.decisionTime += sim.now() - decisionStart;

    if (!options_.forceMiss && cache_->lookup(fn.id).has_value()) {
      satisfied = true;
    } else {
      std::optional<std::size_t> slot;
      if (options_.forceMiss) {
        slot = roundRobinSlot_ % cache_->slotCount();
        roundRobinSlot_ = *slot + 1;
      } else {
        slot = cache_->chooseSlot(fn.id, std::nullopt);
      }
      util::require(slot.has_value(),
                    "PrtrExecutor: no PRR available for on-demand load");
      const util::Time stallStart = sim.now();
      co_await partialLoad(*slot, fn);
      cache_->install(*slot, fn.id);
      report_.configStall += sim.now() - stallStart;
      configured = true;
    }
  }

  if (configured) ++report_.configurations;
  // Cache stats (hit ratio bookkeeping) track residency at admission.
  if (!options_.forceMiss) {
    (void)cache_->access(fn.id);
  }
}

sim::Process PrtrExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  co_await fullLoad();  // the leading "1" of equation (5)

  for (std::size_t i = 0; i < workload.calls.size(); ++i) {
    const tasks::TaskCall& call = workload.calls[i];
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);

    cache_->onCallBoundary(i);
    co_await ensureResident(i, fn);
    prefetcher_->observe(fn.id);
    // Slot contents are updated by install() in every mode, so the lookup
    // also resolves the executing PRR under forceMiss.
    executingPrr_ = cache_->lookup(fn.id);

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.inputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htIn, trace_.dataIn, '>', mark, sim.now());
    }

    // Input channel now free: overlap the next call's configuration with
    // the remainder of this task (paper section 4.1).
    if (i + 1 < workload.calls.size()) startPrepare(i + 1, workload);

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.computeTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.prrLane(executingPrr_.value_or(0)),
                    trace_.label(fn.name), '#', mark, sim.now());
    }

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.outputTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.htOut, trace_.dataOut, '<', mark, sim.now());
    }

    executingPrr_.reset();
    ++report_.calls;
  }
}

ExecutionReport PrtrExecutor::run(const tasks::Workload& workload) {
  report_ = ExecutionReport{};
  report_.executor = "PRTR";
  node_->manager().setRecoveryTimeline(options_.timeline);
  roundRobinSlot_ = 0;
  executingPrr_.reset();
  prep_.reset();
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.total = sim.now() - start;
  scrapeExecutionMetrics(report_, *node_, "prtr", cache_);
  return report_;
}

}  // namespace prtr::runtime
