#include "runtime/dynamic_executor.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/executor.hpp"
#include "util/error.hpp"

namespace prtr::runtime {

DynamicPrtrExecutor::DynamicPrtrExecutor(xd1::Node& node,
                                         const tasks::FunctionRegistry& registry,
                                         DynamicOptions options)
    : node_(&node),
      registry_(&registry),
      options_(options),
      allocator_(node.device(), options.firstColumn, options.columnCount),
      builder_(node.device()) {
  // The managed range must be signature-homogeneous so relocation moves
  // are always legal and every function fits anywhere.
  const auto columns = node.device().geometry().columns();
  for (std::size_t c = options.firstColumn;
       c < options.firstColumn + options.columnCount; ++c) {
    util::require(columns[c].kind == fabric::ColumnKind::kClb,
                  "DynamicPrtrExecutor: managed range must be CLB-only");
  }
}

std::size_t DynamicPrtrExecutor::widthFor(const tasks::HwFunction& fn) const {
  const auto columns = node_->device().geometry().columns();
  const fabric::ResourceVec perColumn =
      columns[options_.firstColumn].resources;
  const double demand = std::max(fn.resources.luts, fn.resources.ffs);
  const double capacity = std::max<std::uint32_t>(perColumn.luts, 1);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(demand / capacity)));
}

const bitstream::Bitstream& DynamicPrtrExecutor::streamFor(
    const fabric::Region& region, const tasks::HwFunction& fn) {
  const auto key =
      std::make_tuple(fn.id, region.firstColumn(), region.columnCount());
  const auto it = streamCache_.find(key);
  if (it != streamCache_.end()) return it->second;
  const double occupancy = std::clamp(
      region.resources(node_->device()).utilization(fn.resources), 0.05, 1.0);
  return streamCache_
      .emplace(key, builder_.buildModulePartial(region, fn.id, occupancy))
      .first->second;
}

sim::Process DynamicPrtrExecutor::fullLoad() {
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  if (!fullStream_) {
    fullStream_ =
        std::make_unique<bitstream::Bitstream>(builder_.buildFull(1));
  }
  config::ApiStatus status = config::ApiStatus::kOk;
  co_await node_->vendorApi().load(*fullStream_, status);
  util::require(status == config::ApiStatus::kOk,
                "DynamicPrtrExecutor: initial configuration rejected");
  report_.base.initialConfig += sim.now() - start;
}

sim::Process DynamicPrtrExecutor::configure(const fabric::Region& region,
                                            const tasks::HwFunction& fn) {
  const util::Time start = node_->sim().now();
  co_await node_->icap().load(streamFor(region, fn));
  report_.base.configStall += node_->sim().now() - start;
  ++report_.base.configurations;
}

sim::Process DynamicPrtrExecutor::defragWithCost() {
  ++report_.defragRuns;
  const auto moves = allocator_.defragment();
  for (const fabric::Move& move : moves) {
    ++report_.defragMoves;
    // Each relocation re-streams the module at its new address; model the
    // cost as the ICAP drain of a partial stream of the moved width.
    const util::Time cost = node_->icap().drainTime(allocator_.moveCost(move));
    const util::Time start = node_->sim().now();
    co_await node_->sim().delay(cost);
    report_.defragTime += node_->sim().now() - start;
  }
  // Placements keep allocation ids; refresh their column positions.
  for (auto& [module, placement] : placements_) {
    const auto it = allocator_.allocations().find(placement.allocationId);
    if (it != allocator_.allocations().end()) placement.allocation = it->second;
  }
}

void DynamicPrtrExecutor::evictUntilFits(std::size_t width) {
  while (allocator_.largestFreeBlock() < width && !placements_.empty()) {
    auto victim = placements_.begin();
    for (auto it = placements_.begin(); it != placements_.end(); ++it) {
      if (it->second.lastUse < victim->second.lastUse) victim = it;
    }
    allocator_.release(victim->second.allocationId);
    placements_.erase(victim);
    ++report_.evictions;
  }
}

sim::Process DynamicPrtrExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  co_await fullLoad();

  double occupiedSum = 0.0;
  for (const tasks::TaskCall& call : workload.calls) {
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);

    const auto placed = placements_.find(fn.id);
    if (placed == placements_.end()) {
      const std::size_t width = widthFor(fn);
      auto allocation = allocator_.allocate(width, options_.fitPolicy, fn.name);
      if (!allocation && options_.defragOnDemand) {
        co_await defragWithCost();
        allocation = allocator_.allocate(width, options_.fitPolicy, fn.name);
      }
      if (!allocation) {
        evictUntilFits(width);
        if (options_.defragOnDemand &&
            allocator_.largestFreeBlock() < width) {
          co_await defragWithCost();
        }
        allocation = allocator_.allocate(width, options_.fitPolicy, fn.name);
      }
      util::require(allocation.has_value(),
                    "DynamicPrtrExecutor: function wider than the fabric");
      co_await configure(allocation->region(), fn);
      placements_[fn.id] = Placement{allocation->id, *allocation, ++useClock_};
    } else {
      placed->second.lastUse = ++useClock_;
    }

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.base.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.base.inputTime += sim.now() - mark;

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.base.computeTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.base.outputTime += sim.now() - mark;

    ++report_.base.calls;
    occupiedSum += static_cast<double>(allocator_.managedColumns() -
                                       allocator_.freeColumns());
  }
  if (!workload.calls.empty()) {
    report_.meanOccupiedColumns =
        occupiedSum / static_cast<double>(workload.calls.size());
  }
}

DynamicReport DynamicPrtrExecutor::run(const tasks::Workload& workload) {
  report_ = DynamicReport{};
  report_.base.executor = "PRTR(dynamic)";
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.base.total = sim.now() - start;
  scrapeExecutionMetrics(report_.base, *node_, "dynamic", nullptr);
  report_.base.metrics.counters["dynamic.evictions"] = report_.evictions;
  report_.base.metrics.counters["dynamic.defrag_runs"] = report_.defragRuns;
  report_.base.metrics.counters["dynamic.defrag_moves"] = report_.defragMoves;
  report_.base.metrics.counters["dynamic.defrag_ps"] =
      static_cast<std::uint64_t>(report_.defragTime.ps());
  report_.base.metrics.gauges["dynamic.mean_occupied_columns"] =
      report_.meanOccupiedColumns;
  return report_;
}

}  // namespace prtr::runtime
