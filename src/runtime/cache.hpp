#pragma once
/// \file cache.hpp
/// Configuration caching over PRR slots (paper section 3.1 and refs
/// [24-27]): the PRRs act as a fully-associative cache of hardware modules.
/// A policy decides which resident module to evict when a missing module
/// must be configured. Belady's offline-optimal policy is included as the
/// upper bound for the ablation studies.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/builder.hpp"

namespace prtr::runtime {

using bitstream::ModuleId;

/// Replacement policies for the PRR module cache. The typed enum is the
/// API; the spec front end (analyze/spec.hpp) maps raw `.scn` strings
/// through cachePolicyFromString so an unknown name lints (MD011) instead
/// of throwing from this layer.
enum class CachePolicy : std::uint8_t { kLru, kLfu, kFifo, kRandom, kBelady };

/// Canonical lower-case name ("lru", "lfu", "fifo", "random", "belady").
[[nodiscard]] const char* toString(CachePolicy policy) noexcept;

/// Inverse of toString; nullopt for unknown names (never throws).
[[nodiscard]] std::optional<CachePolicy> cachePolicyFromString(
    std::string_view name) noexcept;

/// Every policy, in declaration order (drives name lists and ablations).
[[nodiscard]] std::span<const CachePolicy> allCachePolicies() noexcept;

/// Hit/miss counters shared by all policies.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits + misses; }
  [[nodiscard]] double hitRatio() const noexcept {
    return accesses() ? static_cast<double>(hits) / static_cast<double>(accesses())
                      : 0.0;
  }
};

/// Fully-associative module cache with `slotCount` PRR slots.
class ConfigCache {
 public:
  explicit ConfigCache(std::size_t slotCount);
  virtual ~ConfigCache() = default;

  [[nodiscard]] std::size_t slotCount() const noexcept { return slots_.size(); }
  [[nodiscard]] std::optional<ModuleId> slotContent(std::size_t slot) const;
  [[nodiscard]] std::optional<std::size_t> lookup(ModuleId module) const;

  /// Records an access to `module`. Returns the slot on a hit, nullopt on a
  /// miss (the caller then installs after configuring).
  std::optional<std::size_t> access(ModuleId module);

  /// Chooses the slot to receive `incoming` on a miss. `avoid` (the PRR
  /// currently executing a task) is never chosen; returns nullopt when
  /// every candidate is excluded. Prefers empty slots.
  [[nodiscard]] std::optional<std::size_t> chooseSlot(
      ModuleId incoming, std::optional<std::size_t> avoid);

  /// Installs `module` into `slot` (after its configuration completed).
  void install(std::size_t slot, ModuleId module);

  /// Empties every slot (e.g. after a full reconfiguration).
  void invalidateAll();

  /// Informs the policy that the workload is about to issue call
  /// `callIndex` (0-based). Only Belady uses this, to anchor its
  /// next-use scan; the default is a no-op.
  virtual void onCallBoundary(std::size_t callIndex) { (void)callIndex; }

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] virtual std::string policyName() const = 0;

 protected:
  /// Policy hook: pick a victim among `candidates` (all occupied, none
  /// equal to the avoided slot). Never called with an empty list.
  [[nodiscard]] virtual std::size_t pickVictim(
      const std::vector<std::size_t>& candidates, ModuleId incoming) = 0;

  /// Policy hook: a hit or install touched `slot`.
  virtual void onTouch(std::size_t slot, ModuleId module) = 0;

  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }

 private:
  std::vector<std::optional<ModuleId>> slots_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
};

/// Evicts the least recently used module.
class LruCache final : public ConfigCache {
 public:
  explicit LruCache(std::size_t slotCount);
  [[nodiscard]] std::string policyName() const override { return "LRU"; }

 protected:
  std::size_t pickVictim(const std::vector<std::size_t>& candidates,
                         ModuleId incoming) override;
  void onTouch(std::size_t slot, ModuleId module) override;

 private:
  std::vector<std::uint64_t> lastUse_;
};

/// Evicts the least frequently used module (ties: least recent).
class LfuCache final : public ConfigCache {
 public:
  explicit LfuCache(std::size_t slotCount);
  [[nodiscard]] std::string policyName() const override { return "LFU"; }

 protected:
  std::size_t pickVictim(const std::vector<std::size_t>& candidates,
                         ModuleId incoming) override;
  void onTouch(std::size_t slot, ModuleId module) override;

 private:
  std::vector<std::uint64_t> useCount_;
  std::vector<std::uint64_t> lastUse_;
};

/// Evicts in installation order.
class FifoCache final : public ConfigCache {
 public:
  explicit FifoCache(std::size_t slotCount);
  [[nodiscard]] std::string policyName() const override { return "FIFO"; }

 protected:
  std::size_t pickVictim(const std::vector<std::size_t>& candidates,
                         ModuleId incoming) override;
  void onTouch(std::size_t slot, ModuleId module) override;

 private:
  std::vector<std::uint64_t> installedAt_;
};

/// Evicts a uniformly random candidate (deterministic seed).
class RandomCache final : public ConfigCache {
 public:
  RandomCache(std::size_t slotCount, std::uint64_t seed);
  [[nodiscard]] std::string policyName() const override { return "Random"; }

 protected:
  std::size_t pickVictim(const std::vector<std::size_t>& candidates,
                         ModuleId incoming) override;
  void onTouch(std::size_t slot, ModuleId module) override;

 private:
  std::uint64_t state_;
};

/// Belady's offline-optimal policy: evicts the module whose next use is
/// farthest in the future. Needs the full future module sequence.
class BeladyCache final : public ConfigCache {
 public:
  BeladyCache(std::size_t slotCount, std::vector<ModuleId> futureSequence);
  [[nodiscard]] std::string policyName() const override { return "Belady"; }

  /// Advances the "current position" in the future sequence; call once per
  /// task call, before access().
  void advance() noexcept { ++position_; }

  /// Anchors the next-use scan at `callIndex` (executor integration).
  void onCallBoundary(std::size_t callIndex) override { position_ = callIndex; }

 protected:
  std::size_t pickVictim(const std::vector<std::size_t>& candidates,
                         ModuleId incoming) override;
  void onTouch(std::size_t slot, ModuleId module) override;

 private:
  [[nodiscard]] std::size_t nextUse(ModuleId module) const;

  std::vector<ModuleId> future_;
  std::size_t position_ = 0;
};

/// Factory by policy. `futureSequence` feeds Belady; `seed` feeds Random.
[[nodiscard]] std::unique_ptr<ConfigCache> makeCache(
    CachePolicy policy, std::size_t slotCount,
    const std::vector<ModuleId>& futureSequence = {}, std::uint64_t seed = 1);

/// Stringly-typed factory, kept for callers that predate CachePolicy.
/// Still throws DomainError for unknown names.
[[deprecated("use makeCache(CachePolicy, ...) / cachePolicyFromString")]]
[[nodiscard]] std::unique_ptr<ConfigCache> makeCache(
    const std::string& policy, std::size_t slotCount,
    const std::vector<ModuleId>& futureSequence = {}, std::uint64_t seed = 1);

}  // namespace prtr::runtime
