#pragma once
/// \file multitask.hpp
/// Multi-tasking PRTR (paper section 5: "PRTR ... is far more beneficial
/// for versatility purposes, multi-tasking applications, and hardware
/// virtualization"). Several applications submit task calls with their own
/// arrival processes; the scheduler runs them *concurrently* on the PRRs —
/// one task per region — configuring modules on demand through the shared
/// ICAP path and sharing the host links. This is the piece the sequential
/// executors cannot express: true spatial multi-tenancy of the fabric.

#include <cstdint>
#include <string>
#include <vector>

#include "bitstream/library.hpp"
#include "obs/hooks.hpp"
#include "runtime/report.hpp"
#include "tasks/workload.hpp"
#include "util/stats.hpp"
#include "xd1/node.hpp"

namespace prtr::runtime {

/// One application sharing the accelerator.
struct AppSpec {
  std::string name;
  tasks::Workload workload;        ///< its call sequence (issued in order)
  util::Time meanInterArrival;     ///< exponential inter-arrival time
};

/// Per-application outcome.
struct AppStats {
  std::string name;
  std::uint64_t completed = 0;
  util::RunningStats latencySeconds;   ///< arrival -> completion
  util::RunningStats queueingSeconds;  ///< arrival -> PRR granted
};

/// Aggregate outcome of a multitasking run.
struct MultitaskReport {
  std::vector<AppStats> apps;
  util::Time makespan;
  std::uint64_t configurations = 0;
  std::uint64_t hits = 0;
  std::uint64_t calls = 0;
  util::Time prrBusyTotal;  ///< summed busy time across PRRs
  obs::MetricsSnapshot metrics;  ///< sim/config/scheduler counters

  [[nodiscard]] double hitRatio() const noexcept {
    return calls ? static_cast<double>(hits) / static_cast<double>(calls) : 0.0;
  }
  /// Mean fraction of PRRs busy over the makespan.
  [[nodiscard]] double prrUtilization(std::size_t prrCount) const noexcept {
    const double horizon = makespan.toSeconds() * static_cast<double>(prrCount);
    return horizon > 0.0 ? prrBusyTotal.toSeconds() / horizon : 0.0;
  }
  [[nodiscard]] std::string toString() const;
};

/// Options for the multitasking scheduler.
struct MultitaskOptions {
  xd1::Layout layout = xd1::Layout::kDualPrr;
  util::Time tControl = util::Time::microseconds(10);
  std::uint64_t seed = 1;  ///< arrival-process seed
  /// Observability: hooks.timeline records per-PRR occupancy spans;
  /// hooks.metrics receives the run's snapshot; hooks.trace exports it.
  obs::Hooks hooks{};
};

/// Runs `apps` concurrently on one blade and returns the aggregate report.
[[nodiscard]] MultitaskReport runMultitask(const tasks::FunctionRegistry& registry,
                                           const std::vector<AppSpec>& apps,
                                           const MultitaskOptions& options);

}  // namespace prtr::runtime
