#pragma once
/// \file executor.hpp
/// Workload executors on the simulated XD1.
///
/// FrtrExecutor reproduces the Figure-3 profile: every call pays a full
/// reconfiguration, then transfer of control, data in, compute, data out.
///
/// PrtrExecutor reproduces the Figure-4 profiles: one initial full
/// configuration, then per call either a hit (module already resident in a
/// PRR — no configuration) or a miss (a partial reconfiguration that
/// overlaps the previous task's execution when look-ahead/prefetching
/// identified it in time). Partial bitstreams share the host->FPGA channel
/// with payload data, so a pending configuration may only start once the
/// current call's input transfer has finished (paper section 4.1).

#include <memory>
#include <optional>

#include "bitstream/library.hpp"
#include "model/calibration.hpp"
#include "runtime/cache.hpp"
#include "runtime/lanes.hpp"
#include "runtime/prefetch.hpp"
#include "runtime/report.hpp"
#include "sim/trace.hpp"
#include "tasks/workload.hpp"
#include "xd1/node.hpp"

namespace prtr::runtime {

/// How the PRTR executor learns what to configure ahead of time.
enum class PrepareSource : std::uint8_t {
  kNone,        ///< configure strictly on demand (no overlap)
  kQueue,       ///< peek at the next queued call (perfect knowledge)
  kPrefetcher,  ///< ask the Prefetcher (may guess wrong)
};

/// Options shared by both executors.
struct ExecutorOptions {
  model::ConfigTimeBasis basis = model::ConfigTimeBasis::kMeasured;
  util::Time tControl = util::Time::microseconds(10);
  /// Paper experiment mode: "always reconfigures the called tasks"
  /// (H = 0, M = 1) even when the module is still resident.
  bool forceMiss = false;
  PrepareSource prepare = PrepareSource::kQueue;
  sim::Timeline* timeline = nullptr;  ///< optional Gantt tracing
};

/// Freezes a finished run's observability counters into `report.metrics`:
/// sim kernel, configuration machinery, cache (may be null), and the
/// executor's own accounting, under the stable names documented in
/// src/obs/README.md. Shared by every executor flavour.
void scrapeExecutionMetrics(ExecutionReport& report, xd1::Node& node,
                            const std::string& executorName,
                            const ConfigCache* cache);

/// Full run-time reconfiguration baseline (Figure 3).
class FrtrExecutor {
 public:
  FrtrExecutor(xd1::Node& node, const tasks::FunctionRegistry& registry,
               bitstream::Library& library, ExecutorOptions options);

  /// Executes `workload` to completion on the node's simulator and returns
  /// the report. Expects a fresh simulator/node per run.
  [[nodiscard]] ExecutionReport run(const tasks::Workload& workload);

 private:
  sim::Process execute(const tasks::Workload& workload);
  sim::Process fullLoad();

  xd1::Node* node_;
  const tasks::FunctionRegistry* registry_;
  bitstream::Library* library_;
  ExecutorOptions options_;
  TimelineRecorder trace_;
  ExecutionReport report_;
};

/// Partial run-time reconfiguration executor (Figure 4).
class PrtrExecutor {
 public:
  PrtrExecutor(xd1::Node& node, const tasks::FunctionRegistry& registry,
               bitstream::Library& library, ConfigCache& cache,
               Prefetcher& prefetcher, ExecutorOptions options);

  [[nodiscard]] ExecutionReport run(const tasks::Workload& workload);

 private:
  /// In-flight ahead-of-time preparation for one upcoming call.
  struct Prep {
    std::size_t callIndex = 0;
    ModuleId module = 0;       ///< module being prepared
    bool finished = false;
    bool configIssued = false; ///< a partial configuration was performed
    std::optional<std::size_t> slot;
    std::unique_ptr<sim::Condition> done;
  };

  sim::Process execute(const tasks::Workload& workload);
  sim::Process fullLoad();
  sim::Process partialLoad(std::size_t prr, const tasks::HwFunction& fn);
  sim::Process prepareProcess(std::size_t callIndex, ModuleId module);
  sim::Process ensureResident(std::size_t callIndex, const tasks::HwFunction& fn);
  void startPrepare(std::size_t nextCallIndex, const tasks::Workload& workload);

  xd1::Node* node_;
  const tasks::FunctionRegistry* registry_;
  bitstream::Library* library_;
  ConfigCache* cache_;
  Prefetcher* prefetcher_;
  ExecutorOptions options_;
  TimelineRecorder trace_;
  ExecutionReport report_;
  std::optional<std::size_t> executingPrr_;
  std::unique_ptr<Prep> prep_;
  std::size_t roundRobinSlot_ = 0;  ///< forceMiss slot rotation
};

}  // namespace prtr::runtime
