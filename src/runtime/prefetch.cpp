#include "runtime/prefetch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::runtime {

OraclePrefetcher::OraclePrefetcher(std::vector<ModuleId> sequence,
                                   util::Time latency)
    : sequence_(std::move(sequence)), latency_(latency) {}

void OraclePrefetcher::observe(ModuleId module) {
  // Stay in lock-step with the sequence even if observations skip around.
  if (position_ < sequence_.size() && sequence_[position_] == module) {
    ++position_;
  } else {
    for (std::size_t i = position_; i < sequence_.size(); ++i) {
      if (sequence_[i] == module) {
        position_ = i + 1;
        return;
      }
    }
  }
}

std::optional<ModuleId> OraclePrefetcher::predictNext() {
  if (position_ < sequence_.size()) return sequence_[position_];
  return std::nullopt;
}

MarkovPrefetcher::MarkovPrefetcher(util::Time latency) : latency_(latency) {}

void MarkovPrefetcher::observe(ModuleId module) {
  if (last_) ++transitions_[*last_][module];
  last_ = module;
}

std::optional<ModuleId> MarkovPrefetcher::predictNext() {
  if (!last_) return std::nullopt;
  const auto it = transitions_.find(*last_);
  if (it == transitions_.end() || it->second.empty()) return std::nullopt;
  const auto best = std::max_element(
      it->second.begin(), it->second.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

AssociationPrefetcher::AssociationPrefetcher(std::size_t windowSize,
                                             util::Time latency)
    : windowSize_(windowSize), latency_(latency) {
  util::require(windowSize_ >= 2, "AssociationPrefetcher: window must be >= 2");
}

void AssociationPrefetcher::observe(ModuleId module) {
  for (const ModuleId predecessor : window_) {
    if (predecessor != module) ++pairCounts_[{predecessor, module}];
  }
  window_.push_back(module);
  if (window_.size() > windowSize_) window_.pop_front();
  last_ = module;
}

std::optional<ModuleId> AssociationPrefetcher::predictNext() {
  if (!last_) return std::nullopt;
  std::optional<ModuleId> best;
  std::uint64_t bestCount = 0;
  for (const auto& [pair, count] : pairCounts_) {
    if (pair.first == *last_ && count > bestCount) {
      best = pair.second;
      bestCount = count;
    }
  }
  return best;
}

const char* toString(PrefetcherKind kind) noexcept {
  switch (kind) {
    case PrefetcherKind::kNone: return "none";
    case PrefetcherKind::kOracle: return "oracle";
    case PrefetcherKind::kMarkov: return "markov";
    case PrefetcherKind::kAssociation: return "association";
  }
  return "?";
}

std::optional<PrefetcherKind> prefetcherKindFromString(
    std::string_view name) noexcept {
  for (const PrefetcherKind kind : allPrefetcherKinds()) {
    if (name == toString(kind)) return kind;
  }
  return std::nullopt;
}

std::span<const PrefetcherKind> allPrefetcherKinds() noexcept {
  static constexpr PrefetcherKind kAll[] = {
      PrefetcherKind::kNone, PrefetcherKind::kOracle, PrefetcherKind::kMarkov,
      PrefetcherKind::kAssociation};
  return kAll;
}

std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind,
                                           util::Time latency,
                                           const std::vector<ModuleId>& sequence,
                                           std::size_t window) {
  switch (kind) {
    case PrefetcherKind::kNone: return std::make_unique<NonePrefetcher>();
    case PrefetcherKind::kOracle:
      return std::make_unique<OraclePrefetcher>(sequence, latency);
    case PrefetcherKind::kMarkov:
      return std::make_unique<MarkovPrefetcher>(latency);
    case PrefetcherKind::kAssociation:
      return std::make_unique<AssociationPrefetcher>(window, latency);
  }
  throw util::DomainError{"makePrefetcher: invalid PrefetcherKind"};
}

std::unique_ptr<Prefetcher> makePrefetcher(const std::string& kind,
                                           util::Time latency,
                                           const std::vector<ModuleId>& sequence,
                                           std::size_t window) {
  const std::optional<PrefetcherKind> parsed = prefetcherKindFromString(kind);
  if (!parsed) {
    throw util::DomainError{"makePrefetcher: unknown kind '" + kind + "'"};
  }
  return makePrefetcher(*parsed, latency, sequence, window);
}

}  // namespace prtr::runtime
