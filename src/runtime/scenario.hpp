#pragma once
/// \file scenario.hpp
/// The library's top-level entry point: run one workload under FRTR and/or
/// PRTR on freshly instantiated simulated XD1 nodes, measure the speedup,
/// and validate it against the analytical model (equations 6/7).
/// This is what the examples and the figure-reproduction benches drive.
///
/// One options-driven entry point: `ScenarioOptions.sides` selects whether
/// the FRTR baseline runs at all (the old `runPrtrOnly` is a deprecated
/// shim over `sides = kPrtrOnly`), `assumedHitRatio` feeds model-only
/// derivations (the old 4-argument `deriveModelParams`), and `hooks`
/// attaches observability (timelines, metrics sink, trace exporter)
/// uniformly instead of raw Timeline pointers.

#include <optional>
#include <string>

#include "config/recovery.hpp"
#include "fault/fault.hpp"
#include "model/model.hpp"
#include "obs/hooks.hpp"
#include "runtime/executor.hpp"

namespace prtr::exec {
class ArtifactCache;
}  // namespace prtr::exec

namespace prtr::runtime {

/// The recovery knobs live with the configuration machinery that executes
/// them; the runtime re-exports the type as its own vocabulary.
using RecoveryPolicy = config::RecoveryPolicy;

/// Which executors a scenario run instantiates.
enum class ScenarioSides : std::uint8_t {
  kBoth,      ///< FRTR baseline + PRTR (measured speedup is meaningful)
  kPrtrOnly,  ///< PRTR only; the FRTR report stays empty and speedup is 0
};

[[nodiscard]] const char* toString(ScenarioSides sides) noexcept;

/// Everything a scenario needs besides the workload itself.
struct ScenarioOptions {
  xd1::Layout layout = xd1::Layout::kDualPrr;
  ScenarioSides sides = ScenarioSides::kBoth;
  model::ConfigTimeBasis basis = model::ConfigTimeBasis::kMeasured;
  util::Time tControl = util::Time::microseconds(10);
  /// Paper experiment mode (H = 0): reconfigure on every call.
  bool forceMiss = true;
  PrepareSource prepare = PrepareSource::kQueue;
  CachePolicy cachePolicy = CachePolicy::kLru;
  PrefetcherKind prefetcherKind = PrefetcherKind::kNone;
  util::Time decisionLatency = util::Time::zero();
  /// Multi-frame-write compression in the ICAP controller (extension;
  /// affects the measured basis only).
  bool mfwCompression = false;
  std::size_t associationWindow = 8;
  /// Hit ratio for model derivations that do not execute the scenario
  /// (deriveModelParams). Unset = use forceMiss semantics (H = 0).
  std::optional<double> assumedHitRatio;
  /// Fault-injection plan for both sides' nodes. The default (all rates
  /// zero) installs no hooks; outputs are bit-identical to a build without
  /// the fault layer.
  fault::Plan faults{};
  /// Recovery policy (retry/backoff, readback-verify, degradation ladder)
  /// handed to each node's config::Manager and honoured by the executors'
  /// measured-basis loads. Disabled by default.
  RecoveryPolicy recovery{};
  /// Observability: timelines, metrics sink, trace exporter.
  obs::Hooks hooks{};
  /// Inline timeline verification: after the run, both sides' timelines
  /// are checked against the verify::checkTimeline invariants (TL0xx —
  /// causality, PRR single-residency, ICAP exclusion, link conservation,
  /// recovery pairing). An error-severity finding aborts with DomainError,
  /// same contract as the strict pre-run lint. Timelines are recorded
  /// locally when no hook provides one, so enabling this needs no other
  /// observability setup.
  bool verify = false;
  /// Memoizes floorplans and bitstreams across runs (sweeps set this to
  /// share artifacts between points; see exec::ArtifactCache). Null = every
  /// run builds its own. Simulation results are identical either way — the
  /// artifacts are immutable and content-addressed.
  exec::ArtifactCache* artifacts = nullptr;
};

/// Measurements plus the model's prediction for the same parameters.
struct ScenarioResult {
  ExecutionReport frtr;       ///< empty when sides == kPrtrOnly
  ExecutionReport prtr;
  double speedup = 0.0;       ///< measured S = T_FRTR_total / T_PRTR_total
  model::Params modelParams;  ///< derived from the platform + measured H
  double modelSpeedup = 0.0;  ///< eq. (6) at those parameters
  double modelError = 0.0;    ///< |measured - model| / model
  /// Per-side metrics merged under "frtr." / "prtr." prefixes plus
  /// scenario-level gauges (scenario.speedup, scenario.model_speedup).
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::string toString() const;
};

/// Runs `workload` per `options.sides` and validates against the model.
[[nodiscard]] ScenarioResult runScenario(const tasks::FunctionRegistry& registry,
                                         const tasks::Workload& workload,
                                         const ScenarioOptions& options);

/// Runs only the PRTR side (used when the FRTR side is analytic anyway).
[[deprecated("set ScenarioOptions::sides = ScenarioSides::kPrtrOnly and use runScenario")]]
[[nodiscard]] ExecutionReport runPrtrOnly(const tasks::FunctionRegistry& registry,
                                          const tasks::Workload& workload,
                                          const ScenarioOptions& options);

/// Derives the model parameters a scenario implies (without running it),
/// at `options.assumedHitRatio` (H = 0 when unset).
[[nodiscard]] model::Params deriveModelParams(
    const tasks::FunctionRegistry& registry, const tasks::Workload& workload,
    const ScenarioOptions& options);

/// Same, with the hit ratio as a positional parameter.
[[deprecated("set ScenarioOptions::assumedHitRatio and use the 3-argument overload")]]
[[nodiscard]] model::Params deriveModelParams(
    const tasks::FunctionRegistry& registry, const tasks::Workload& workload,
    const ScenarioOptions& options, double hitRatio);

}  // namespace prtr::runtime
