#pragma once
/// \file scenario.hpp
/// The library's top-level entry point: run one workload under both FRTR
/// and PRTR on freshly instantiated simulated XD1 nodes, measure the
/// speedup, and validate it against the analytical model (equations 6/7).
/// This is what the examples and the figure-reproduction benches drive.

#include <string>

#include "model/model.hpp"
#include "runtime/executor.hpp"

namespace prtr::runtime {

/// Everything a scenario needs besides the workload itself.
struct ScenarioOptions {
  xd1::Layout layout = xd1::Layout::kDualPrr;
  model::ConfigTimeBasis basis = model::ConfigTimeBasis::kMeasured;
  util::Time tControl = util::Time::microseconds(10);
  /// Paper experiment mode (H = 0): reconfigure on every call.
  bool forceMiss = true;
  PrepareSource prepare = PrepareSource::kQueue;
  std::string cachePolicy = "lru";
  std::string prefetcherKind = "none";
  util::Time decisionLatency = util::Time::zero();
  /// Multi-frame-write compression in the ICAP controller (extension;
  /// affects the measured basis only).
  bool mfwCompression = false;
  std::size_t associationWindow = 8;
  sim::Timeline* frtrTimeline = nullptr;
  sim::Timeline* prtrTimeline = nullptr;
};

/// Measurements plus the model's prediction for the same parameters.
struct ScenarioResult {
  ExecutionReport frtr;
  ExecutionReport prtr;
  double speedup = 0.0;       ///< measured S = T_FRTR_total / T_PRTR_total
  model::Params modelParams;  ///< derived from the platform + measured H
  double modelSpeedup = 0.0;  ///< eq. (6) at those parameters
  double modelError = 0.0;    ///< |measured - model| / model

  [[nodiscard]] std::string toString() const;
};

/// Runs `workload` under FRTR and PRTR and validates against the model.
[[nodiscard]] ScenarioResult runScenario(const tasks::FunctionRegistry& registry,
                                         const tasks::Workload& workload,
                                         const ScenarioOptions& options);

/// Runs only the PRTR side (used when the FRTR side is analytic anyway).
[[nodiscard]] ExecutionReport runPrtrOnly(const tasks::FunctionRegistry& registry,
                                          const tasks::Workload& workload,
                                          const ScenarioOptions& options);

/// Derives the model parameters a scenario implies (without running it).
[[nodiscard]] model::Params deriveModelParams(
    const tasks::FunctionRegistry& registry, const tasks::Workload& workload,
    const ScenarioOptions& options, double hitRatio);

}  // namespace prtr::runtime
