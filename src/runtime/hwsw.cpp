#include "runtime/hwsw.hpp"

#include "model/calibration.hpp"
#include "runtime/executor.hpp"
#include "util/error.hpp"

namespace prtr::runtime {

const char* toString(Partitioning policy) noexcept {
  switch (policy) {
    case Partitioning::kAlwaysHardware: return "always-hw";
    case Partitioning::kAlwaysSoftware: return "always-sw";
    case Partitioning::kStaticThreshold: return "static-threshold";
    case Partitioning::kAdaptive: return "adaptive";
  }
  return "?";
}

HwSwExecutor::HwSwExecutor(xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           bitstream::Library& library, ConfigCache& cache,
                           HwSwOptions options)
    : node_(&node),
      registry_(&registry),
      library_(&library),
      cache_(&cache),
      options_(options),
      trace_(options.hooks.timeline) {
  util::require(cache.slotCount() == node.floorplan().prrCount(),
                "HwSwExecutor: cache slots must match the PRR count");
}

util::Time HwSwExecutor::hardwareCost(const tasks::TaskCall& call,
                                      bool resident) const {
  const tasks::HwFunction& fn = registry_->at(call.functionIndex);
  util::Time cost = options_.tControl +
                    model::taskTime(*node_, fn, call.dataBytes);
  if (!resident) {
    cost += node_->icap().drainTime(
        node_->floorplan().prr(0).partialBitstreamBytes(node_->device()));
  }
  return cost;
}

util::Time HwSwExecutor::softwareCost(const tasks::TaskCall& call) const {
  return options_.cpu.computeTime(call.dataBytes);
}

bool HwSwExecutor::placeInHardware(const tasks::TaskCall& call) const {
  const tasks::HwFunction& fn = registry_->at(call.functionIndex);
  switch (options_.policy) {
    case Partitioning::kAlwaysHardware:
      return true;
    case Partitioning::kAlwaysSoftware:
      return false;
    case Partitioning::kStaticThreshold:
      // Hardware only when it wins even while paying a configuration.
      return hardwareCost(call, /*resident=*/false) < softwareCost(call);
    case Partitioning::kAdaptive: {
      const bool resident = cache_->lookup(fn.id).has_value();
      return hardwareCost(call, resident) < softwareCost(call);
    }
  }
  return true;
}

sim::Process HwSwExecutor::fullLoad() {
  const util::Time start = node_->sim().now();
  co_await node_->manager().fullConfigure(library_->full());
  cache_->invalidateAll();
  report_.base.initialConfig += node_->sim().now() - start;
}

sim::Process HwSwExecutor::configureInto(std::size_t slot,
                                         const tasks::HwFunction& fn) {
  co_await node_->manager().loadModule(slot, fn.id,
                                       library_->modulePartial(slot, fn.id));
  cache_->install(slot, fn.id);
}

sim::Process HwSwExecutor::execute(const tasks::Workload& workload) {
  auto& sim = node_->sim();
  // The accelerator powers up lazily: the initial full configuration is
  // paid before the first call actually placed in hardware.
  bool deviceReady = false;

  for (std::size_t i = 0; i < workload.calls.size(); ++i) {
    const tasks::TaskCall& call = workload.calls[i];
    const tasks::HwFunction& fn = registry_->at(call.functionIndex);
    cache_->onCallBoundary(i);

    if (!placeInHardware(call)) {
      // Software path: data stays in host memory; the CPU crunches it.
      const util::Time start = sim.now();
      co_await sim.delay(softwareCost(call));
      report_.softwareTime += sim.now() - start;
      if (trace_.enabled()) {
        trace_.record(trace_.cpu, trace_.label(fn.name), 's', start, sim.now());
      }
      ++report_.softwareCalls;
      ++report_.base.calls;
      continue;
    }

    // Hardware path: configure on miss, then the Figure-2 sequence.
    if (!deviceReady) {
      co_await fullLoad();
      deviceReady = true;
    }
    if (!cache_->lookup(fn.id).has_value()) {
      const auto slot = cache_->chooseSlot(fn.id, std::nullopt);
      util::require(slot.has_value(), "HwSwExecutor: no PRR available");
      const util::Time stallStart = sim.now();
      co_await configureInto(*slot, fn);
      report_.base.configStall += sim.now() - stallStart;
      ++report_.base.configurations;
    }
    (void)cache_->access(fn.id);

    util::Time mark = sim.now();
    co_await sim.delay(options_.tControl);
    report_.base.controlTime += sim.now() - mark;

    mark = sim.now();
    co_await node_->linkIn().transfer(call.dataBytes);
    report_.base.inputTime += sim.now() - mark;

    mark = sim.now();
    co_await sim.delay(fn.computeTime(call.dataBytes));
    report_.base.computeTime += sim.now() - mark;
    if (trace_.enabled()) {
      trace_.record(trace_.fpga, trace_.label(fn.name), '#', mark, sim.now());
    }

    mark = sim.now();
    co_await node_->linkOut().transfer(fn.outputBytes(call.dataBytes));
    report_.base.outputTime += sim.now() - mark;

    ++report_.hardwareCalls;
    ++report_.base.calls;
  }
}

HwSwReport HwSwExecutor::run(const tasks::Workload& workload) {
  report_ = HwSwReport{};
  report_.base.executor = "HW/SW(" + std::string{toString(options_.policy)} + ")";
  auto& sim = node_->sim();
  const util::Time start = sim.now();
  sim.spawn(execute(workload));
  sim.run();
  report_.base.total = sim.now() - start;
  scrapeExecutionMetrics(report_.base, *node_, "hwsw", cache_);
  report_.base.metrics.counters["hwsw.hardware_calls"] = report_.hardwareCalls;
  report_.base.metrics.counters["hwsw.software_calls"] = report_.softwareCalls;
  report_.base.metrics.counters["hwsw.software_ps"] =
      report_.softwareTime > util::Time::zero()
          ? static_cast<std::uint64_t>(report_.softwareTime.ps())
          : 0;
  if (options_.hooks.metrics) {
    options_.hooks.metrics->absorb(report_.base.metrics);
  }
  if (options_.hooks.trace && options_.hooks.timeline &&
      !options_.hooks.timeline->empty()) {
    options_.hooks.trace->add("hwsw", *options_.hooks.timeline);
  }
  return report_;
}

}  // namespace prtr::runtime
