#pragma once
/// \file report.hpp
/// Execution reports produced by the FRTR/PRTR executors: total time, the
/// per-category breakdown of Figure 2 (configuration, transfer of control,
/// I/O, computation, pre-fetch decision), and cache statistics. These are
/// the observables the model-vs-simulation validator consumes.

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace prtr::runtime {

/// Result of executing one workload on one executor.
struct ExecutionReport {
  std::string executor;        ///< "FRTR" or "PRTR"
  std::uint64_t calls = 0;
  std::uint64_t configurations = 0;  ///< n_config (partial or full reloads)
  std::uint64_t prefetchIssued = 0;  ///< speculative configurations started
  std::uint64_t prefetchWrong = 0;   ///< speculative loads never used

  util::Time total;         ///< end-to-end simulated time
  util::Time initialConfig; ///< the leading full configuration (PRTR)
  util::Time configStall;   ///< time calls spent waiting on configuration
  util::Time decisionTime;  ///< accumulated T_decision
  util::Time controlTime;   ///< accumulated T_control
  util::Time inputTime;     ///< host->FPGA payload time on the critical path
  util::Time computeTime;   ///< fabric execution time
  util::Time outputTime;    ///< FPGA->host payload time

  /// Subsystem counters scraped at the end of the run: sim kernel, ICAP /
  /// vendor-API, cache, and the executor's own accounting (see obs/).
  obs::MetricsSnapshot metrics;

  /// Measured hit ratio: calls that found their module resident.
  [[nodiscard]] double hitRatio() const noexcept {
    if (calls == 0) return 0.0;
    const std::uint64_t missed =
        configurations < calls ? configurations : calls;
    return static_cast<double>(calls - missed) / static_cast<double>(calls);
  }

  /// Fraction of total time spent on (re)configuration stalls — the
  /// "25% to 98.5%" overhead figure of the paper's introduction.
  [[nodiscard]] double configOverheadFraction() const noexcept {
    return total > util::Time::zero()
               ? (configStall + initialConfig) / total
               : 0.0;
  }

  [[nodiscard]] std::string toString() const;
};

/// Speedup of `prtr` relative to `frtr` (the paper's S).
[[nodiscard]] double measuredSpeedup(const ExecutionReport& frtr,
                                     const ExecutionReport& prtr);

}  // namespace prtr::runtime
