#pragma once
/// \file dynamic_executor.hpp
/// Fully dynamic PRTR — the operational form of the paper's section-5
/// recommendation: "the partitions (PRRs) must be so fine grained to match
/// the task time requirements ... so as to reduce the configuration
/// overhead and to increase the system density."
///
/// Instead of fixed PRRs, each hardware function gets a region exactly as
/// wide as its resource footprint, allocated on demand from a managed
/// column range (fabric/allocator.hpp). Partial configuration time scales
/// with the module's own width, not with a worst-case region; eviction and
/// on-demand defragmentation (relocation moves, each costing a partial
/// reconfiguration) keep the fabric dense.

#include <map>
#include <optional>

#include "bitstream/builder.hpp"
#include "fabric/allocator.hpp"
#include "runtime/report.hpp"
#include "tasks/workload.hpp"
#include "xd1/node.hpp"

namespace prtr::runtime {

/// Options for the dynamic executor.
struct DynamicOptions {
  /// Managed column range (default: the XC2VP50's homogeneous 34-CLB
  /// stretch, columns 16..49).
  std::size_t firstColumn = 16;
  std::size_t columnCount = 34;
  fabric::FitPolicy fitPolicy = fabric::FitPolicy::kBestFit;
  util::Time tControl = util::Time::microseconds(10);
  /// Compact the fabric (relocation moves through the ICAP, each paid as
  /// a partial reconfiguration) when an allocation fails.
  bool defragOnDemand = true;
};

/// ExecutionReport plus allocation telemetry.
struct DynamicReport {
  ExecutionReport base;
  std::uint64_t evictions = 0;
  std::uint64_t defragRuns = 0;
  std::uint64_t defragMoves = 0;
  util::Time defragTime;
  double meanOccupiedColumns = 0.0;  ///< density over the call stream
};

/// PRTR executor with per-module right-sized dynamic regions.
class DynamicPrtrExecutor {
 public:
  DynamicPrtrExecutor(xd1::Node& node, const tasks::FunctionRegistry& registry,
                      DynamicOptions options = {});

  [[nodiscard]] DynamicReport run(const tasks::Workload& workload);

  /// Columns a function needs (its worst LUT/FF demand over one CLB
  /// column's capacity, at least 1).
  [[nodiscard]] std::size_t widthFor(const tasks::HwFunction& fn) const;

 private:
  struct Placement {
    std::uint64_t allocationId = 0;
    fabric::Allocation allocation;
    std::uint64_t lastUse = 0;
  };

  sim::Process execute(const tasks::Workload& workload);
  sim::Process fullLoad();
  sim::Process configure(const fabric::Region& region,
                         const tasks::HwFunction& fn);
  sim::Process defragWithCost();
  /// Frees LRU placements until `width` columns can be allocated.
  void evictUntilFits(std::size_t width);

  [[nodiscard]] const bitstream::Bitstream& streamFor(
      const fabric::Region& region, const tasks::HwFunction& fn);

  xd1::Node* node_;
  const tasks::FunctionRegistry* registry_;
  DynamicOptions options_;
  fabric::ColumnAllocator allocator_;
  bitstream::Builder builder_;
  std::unique_ptr<bitstream::Bitstream> fullStream_;
  std::map<bitstream::ModuleId, Placement> placements_;
  /// Built streams keyed by (module, firstColumn, width).
  std::map<std::tuple<bitstream::ModuleId, std::size_t, std::size_t>,
           bitstream::Bitstream>
      streamCache_;
  DynamicReport report_;
  std::uint64_t useClock_ = 0;
};

}  // namespace prtr::runtime
