#pragma once
/// \file lanes.hpp
/// Cached interned ids for the executor timeline conventions.
///
/// Executors record spans on a fixed set of lanes ("config", "HT-in",
/// "HT-out", "FPGA", "CPU", "PRR<n>") with mostly-fixed labels. This
/// recorder interns those names once per timeline at construction and
/// records by id, keeping the per-span cost free of string traffic. It is
/// null-safe: with no timeline attached, enabled() is false and record()
/// must not be reached (callers keep their `if (recorder.enabled())`
/// guards, matching the old `if (options_.timeline)` shape).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace prtr::runtime {

class TimelineRecorder {
 public:
  TimelineRecorder() = default;
  explicit TimelineRecorder(sim::Timeline* timeline) : tl_(timeline) {
    if (tl_ == nullptr) return;
    config = tl_->lane("config");
    htIn = tl_->lane("HT-in");
    htOut = tl_->lane("HT-out");
    fpga = tl_->lane("FPGA");
    cpu = tl_->lane("CPU");
    dataIn = tl_->label("data-in");
    dataOut = tl_->label("data-out");
    fullConfig = tl_->label("full-config");
    initialFullConfig = tl_->label("initial-full-config");
  }

  [[nodiscard]] bool enabled() const noexcept { return tl_ != nullptr; }
  [[nodiscard]] sim::Timeline* timeline() const noexcept { return tl_; }

  /// Interns an ad-hoc label (e.g. a function name). The symbol table is
  /// the cache: repeat calls are one heterogeneous hash lookup.
  [[nodiscard]] sim::LabelId label(std::string_view name) {
    return tl_->label(name);
  }

  /// "PRR<slot>" lane, cached per slot index.
  [[nodiscard]] sim::LaneId prrLane(std::size_t slot) {
    while (prrLanes_.size() <= slot) {
      prrLanes_.push_back(
          tl_->lane("PRR" + std::to_string(prrLanes_.size())));
    }
    return prrLanes_[slot];
  }

  void record(sim::LaneId lane, sim::LabelId labelId, char glyph,
              util::Time start, util::Time end) {
    tl_->record(lane, labelId, glyph, start, end);
  }

  // Executor lane/label conventions (valid only when enabled()).
  sim::LaneId config;
  sim::LaneId htIn;
  sim::LaneId htOut;
  sim::LaneId fpga;
  sim::LaneId cpu;
  sim::LabelId dataIn;
  sim::LabelId dataOut;
  sim::LabelId fullConfig;
  sim::LabelId initialFullConfig;

 private:
  sim::Timeline* tl_ = nullptr;
  std::vector<sim::LaneId> prrLanes_;
};

}  // namespace prtr::runtime
