#include "runtime/cache.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace prtr::runtime {

ConfigCache::ConfigCache(std::size_t slotCount) : slots_(slotCount) {
  util::require(slotCount >= 1, "ConfigCache: need at least one slot");
}

std::optional<ModuleId> ConfigCache::slotContent(std::size_t slot) const {
  util::require(slot < slots_.size(), "ConfigCache: slot out of range");
  return slots_[slot];
}

std::optional<std::size_t> ConfigCache::lookup(ModuleId module) const {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s] == module) return s;
  }
  return std::nullopt;
}

std::optional<std::size_t> ConfigCache::access(ModuleId module) {
  ++clock_;
  const auto slot = lookup(module);
  if (slot) {
    ++stats_.hits;
    onTouch(*slot, module);
  } else {
    ++stats_.misses;
  }
  return slot;
}

std::optional<std::size_t> ConfigCache::chooseSlot(
    ModuleId incoming, std::optional<std::size_t> avoid) {
  // Prefer an empty slot.
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].has_value() && s != avoid) return s;
  }
  std::vector<std::size_t> candidates;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (s != avoid) candidates.push_back(s);
  }
  if (candidates.empty()) return std::nullopt;
  const std::size_t victim = pickVictim(candidates, incoming);
  ++stats_.evictions;
  return victim;
}

void ConfigCache::install(std::size_t slot, ModuleId module) {
  util::require(slot < slots_.size(), "ConfigCache: slot out of range");
  slots_[slot] = module;
  onTouch(slot, module);
}

void ConfigCache::invalidateAll() {
  std::fill(slots_.begin(), slots_.end(), std::nullopt);
}

// ---- LRU -------------------------------------------------------------

LruCache::LruCache(std::size_t slotCount)
    : ConfigCache(slotCount), lastUse_(slotCount, 0) {}

std::size_t LruCache::pickVictim(const std::vector<std::size_t>& candidates,
                                 ModuleId) {
  return *std::min_element(candidates.begin(), candidates.end(),
                           [&](std::size_t a, std::size_t b) {
                             return lastUse_[a] < lastUse_[b];
                           });
}

void LruCache::onTouch(std::size_t slot, ModuleId) { lastUse_[slot] = clock(); }

// ---- LFU -------------------------------------------------------------

LfuCache::LfuCache(std::size_t slotCount)
    : ConfigCache(slotCount), useCount_(slotCount, 0), lastUse_(slotCount, 0) {}

std::size_t LfuCache::pickVictim(const std::vector<std::size_t>& candidates,
                                 ModuleId) {
  return *std::min_element(
      candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
        if (useCount_[a] != useCount_[b]) return useCount_[a] < useCount_[b];
        return lastUse_[a] < lastUse_[b];
      });
}

void LfuCache::onTouch(std::size_t slot, ModuleId module) {
  // A fresh install resets the frequency so stale popularity does not pin
  // a slot forever.
  if (slotContent(slot) != module) useCount_[slot] = 0;
  ++useCount_[slot];
  lastUse_[slot] = clock();
}

// ---- FIFO ------------------------------------------------------------

FifoCache::FifoCache(std::size_t slotCount)
    : ConfigCache(slotCount), installedAt_(slotCount, 0) {}

std::size_t FifoCache::pickVictim(const std::vector<std::size_t>& candidates,
                                  ModuleId) {
  return *std::min_element(candidates.begin(), candidates.end(),
                           [&](std::size_t a, std::size_t b) {
                             return installedAt_[a] < installedAt_[b];
                           });
}

void FifoCache::onTouch(std::size_t slot, ModuleId module) {
  if (slotContent(slot) != module) installedAt_[slot] = clock();
}

// ---- Random ----------------------------------------------------------

RandomCache::RandomCache(std::size_t slotCount, std::uint64_t seed)
    : ConfigCache(slotCount), state_(seed | 1) {}

std::size_t RandomCache::pickVictim(const std::vector<std::size_t>& candidates,
                                    ModuleId) {
  // xorshift64* step; deterministic across platforms.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t r = state_ * 0x2545F4914F6CDD1DULL;
  return candidates[r % candidates.size()];
}

void RandomCache::onTouch(std::size_t, ModuleId) {}

// ---- Belady ----------------------------------------------------------

BeladyCache::BeladyCache(std::size_t slotCount, std::vector<ModuleId> futureSequence)
    : ConfigCache(slotCount), future_(std::move(futureSequence)) {}

std::size_t BeladyCache::nextUse(ModuleId module) const {
  for (std::size_t i = position_; i < future_.size(); ++i) {
    if (future_[i] == module) return i;
  }
  return std::numeric_limits<std::size_t>::max();
}

std::size_t BeladyCache::pickVictim(const std::vector<std::size_t>& candidates,
                                    ModuleId) {
  return *std::max_element(candidates.begin(), candidates.end(),
                           [&](std::size_t a, std::size_t b) {
                             const auto ca = slotContent(a);
                             const auto cb = slotContent(b);
                             const std::size_t na = ca ? nextUse(*ca) : 0;
                             const std::size_t nb = cb ? nextUse(*cb) : 0;
                             return na < nb;
                           });
}

void BeladyCache::onTouch(std::size_t, ModuleId) {}

// ---- factory ----------------------------------------------------------

const char* toString(CachePolicy policy) noexcept {
  switch (policy) {
    case CachePolicy::kLru: return "lru";
    case CachePolicy::kLfu: return "lfu";
    case CachePolicy::kFifo: return "fifo";
    case CachePolicy::kRandom: return "random";
    case CachePolicy::kBelady: return "belady";
  }
  return "?";
}

std::optional<CachePolicy> cachePolicyFromString(
    std::string_view name) noexcept {
  for (const CachePolicy policy : allCachePolicies()) {
    if (name == toString(policy)) return policy;
  }
  return std::nullopt;
}

std::span<const CachePolicy> allCachePolicies() noexcept {
  static constexpr CachePolicy kAll[] = {
      CachePolicy::kLru, CachePolicy::kLfu, CachePolicy::kFifo,
      CachePolicy::kRandom, CachePolicy::kBelady};
  return kAll;
}

std::unique_ptr<ConfigCache> makeCache(CachePolicy policy,
                                       std::size_t slotCount,
                                       const std::vector<ModuleId>& futureSequence,
                                       std::uint64_t seed) {
  switch (policy) {
    case CachePolicy::kLru: return std::make_unique<LruCache>(slotCount);
    case CachePolicy::kLfu: return std::make_unique<LfuCache>(slotCount);
    case CachePolicy::kFifo: return std::make_unique<FifoCache>(slotCount);
    case CachePolicy::kRandom:
      return std::make_unique<RandomCache>(slotCount, seed);
    case CachePolicy::kBelady:
      return std::make_unique<BeladyCache>(slotCount, futureSequence);
  }
  throw util::DomainError{"makeCache: invalid CachePolicy"};
}

std::unique_ptr<ConfigCache> makeCache(const std::string& policy,
                                       std::size_t slotCount,
                                       const std::vector<ModuleId>& futureSequence,
                                       std::uint64_t seed) {
  const std::optional<CachePolicy> parsed = cachePolicyFromString(policy);
  if (!parsed) {
    throw util::DomainError{"makeCache: unknown policy '" + policy + "'"};
  }
  return makeCache(*parsed, slotCount, futureSequence, seed);
}

}  // namespace prtr::runtime
