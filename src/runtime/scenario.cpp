#include "runtime/scenario.hpp"

#include <sstream>

#include "analyze/lint.hpp"
#include "exec/artifact_cache.hpp"
#include "model/calibration.hpp"
#include "prof/counters.hpp"
#include "prof/profiler.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "verify/timeline_rules.hpp"

namespace prtr::runtime {
namespace {

/// NodeConfig for one scenario run; when an artifact cache is attached, the
/// floorplan is fetched through it (keyed by device + layout) instead of
/// rebuilt per node.
xd1::NodeConfig nodeConfigFor(const ScenarioOptions& options) {
  xd1::NodeConfig nodeConfig;
  nodeConfig.layout = options.layout;
  nodeConfig.faults = options.faults;
  nodeConfig.recovery = options.recovery;
  if (options.artifacts != nullptr) {
    exec::ArtifactCache* cache = options.artifacts;
    nodeConfig.floorplanSource =
        [cache](xd1::Layout layout,
                const std::function<fabric::Floorplan()>& build) {
          const exec::ArtifactCache::Key key = exec::KeyBuilder{}
                                                   .add("xd1.floorplan")
                                                   .add("XC2VP50")
                                                   .add(toString(layout))
                                                   .value();
          return cache->floorplan(key, build);
        };
  }
  return nodeConfig;
}

/// Library for one node; with a cache attached, streams resolve through it.
bitstream::Library makeLibrary(const ScenarioOptions& options,
                               const tasks::FunctionRegistry& registry,
                               const xd1::Node& node) {
  bitstream::StreamSource source;
  if (options.artifacts != nullptr) {
    source = exec::cachingStreamSource(*options.artifacts);
  }
  bitstream::Library library{
      node.floorplan(),
      registry.moduleSpecs(node.floorplan().prr(0).resources(node.device())),
      std::move(source)};
  library.setProfiler(options.hooks.profiler);
  return library;
}

/// Module-id sequence of a workload (for Belady / oracle construction).
std::vector<ModuleId> moduleSequence(const tasks::FunctionRegistry& registry,
                                     const tasks::Workload& workload) {
  std::vector<ModuleId> seq;
  seq.reserve(workload.calls.size());
  for (const tasks::TaskCall& call : workload.calls) {
    seq.push_back(registry.at(call.functionIndex).id);
  }
  return seq;
}

/// Average task time requirement across the workload on `node`.
util::Time averageTaskTime(const xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           const tasks::Workload& workload) {
  util::require(!workload.calls.empty(), "averageTaskTime: empty workload");
  double sum = 0.0;
  for (const tasks::TaskCall& call : workload.calls) {
    sum += model::taskTime(node, registry.at(call.functionIndex), call.dataBytes)
               .toSeconds();
  }
  return util::Time::seconds(sum / static_cast<double>(workload.calls.size()));
}

ExecutorOptions executorOptions(const ScenarioOptions& options,
                                sim::Timeline* timeline) {
  ExecutorOptions eo;
  eo.basis = options.basis;
  eo.tControl = options.tControl;
  eo.forceMiss = options.forceMiss;
  eo.prepare = options.prepare;
  eo.timeline = timeline;
  return eo;
}

/// The PRTR side on a fresh node. Shared by runScenario and the
/// deprecated runPrtrOnly shim (which must keep its lint-free behavior).
ExecutionReport runPrtrSide(const tasks::FunctionRegistry& registry,
                            const tasks::Workload& workload,
                            const ScenarioOptions& options,
                            sim::Timeline* timeline) {
  sim::Simulator sim;
  xd1::NodeConfig nodeConfig = nodeConfigFor(options);
  nodeConfig.icapTiming.multiFrameWrite = options.mfwCompression;
  xd1::Node node{sim, nodeConfig};
  bitstream::Library library = makeLibrary(options, registry, node);

  const auto sequence = moduleSequence(registry, workload);
  auto cache = makeCache(options.cachePolicy, node.floorplan().prrCount(),
                         sequence);
  auto prefetcher = makePrefetcher(options.prefetcherKind,
                                   options.decisionLatency, sequence,
                                   options.associationWindow);
  PrtrExecutor executor{node,   registry,     library,
                        *cache, *prefetcher, executorOptions(options, timeline)};
  return executor.run(workload);
}

model::Params deriveModelParamsAt(const tasks::FunctionRegistry& registry,
                                  const tasks::Workload& workload,
                                  const ScenarioOptions& options,
                                  double hitRatio) {
  sim::Simulator sim;
  const xd1::Node node{sim, nodeConfigFor(options)};

  model::AbsoluteParams abs;
  const model::ConfigTimes times = model::configTimes(node);
  abs.nCalls = workload.callCount();
  abs.tFrtr = times.full(options.basis);
  abs.tPrtr = times.partial(options.basis);
  abs.tTask = averageTaskTime(node, registry, workload);
  abs.tControl = options.tControl;
  abs.tDecision = options.decisionLatency;
  abs.hitRatio = hitRatio;
  return abs.normalized();
}

}  // namespace

const char* toString(ScenarioSides sides) noexcept {
  switch (sides) {
    case ScenarioSides::kBoth: return "both";
    case ScenarioSides::kPrtrOnly: return "prtr-only";
  }
  return "?";
}

std::string ScenarioResult::toString() const {
  std::ostringstream os;
  os << "measured S = " << speedup << ", model S = " << modelSpeedup
     << " (error " << modelError * 100.0 << "%)\n";
  os << frtr.toString() << prtr.toString();
  return os.str();
}

model::Params deriveModelParams(const tasks::FunctionRegistry& registry,
                                const tasks::Workload& workload,
                                const ScenarioOptions& options) {
  return deriveModelParamsAt(registry, workload, options,
                             options.assumedHitRatio.value_or(0.0));
}

ScenarioResult runScenario(const tasks::FunctionRegistry& registry,
                           const tasks::Workload& workload,
                           const ScenarioOptions& options) {
  prof::Profiler* profiler = options.hooks.profiler;

  // Strict mode: statically lint the scenario before instantiating any
  // simulator. Error-severity findings abort here with the same codes
  // prtr-lint reports; warnings are advisory and do not block execution.
  {
    const prof::Scope scope{profiler, "scenario.lint"};
    analyze::LintTargets lintTargets;
    lintTargets.scenario = &options;
    const analyze::DiagnosticSink lint = analyze::lintAll(lintTargets);
    if (lint.hasErrors()) {
      throw util::DomainError{"runScenario: " + lint.firstError().format()};
    }
  }

  // Resolve timelines: caller-provided ones win; when a trace collector is
  // attached (or inline verification requested) without timelines, record
  // into locals so the trace/checker still sees the run.
  sim::Timeline localFrtr;
  sim::Timeline localPrtr;
  const obs::Hooks& hooks = options.hooks;
  sim::Timeline* frtrTl = hooks.frtrTimeline;
  sim::Timeline* prtrTl = hooks.timeline;
  if (hooks.trace != nullptr || options.verify) {
    if (frtrTl == nullptr && options.sides == ScenarioSides::kBoth) {
      frtrTl = &localFrtr;
    }
    if (prtrTl == nullptr) prtrTl = &localPrtr;
  }

  ScenarioResult result;

  if (options.sides == ScenarioSides::kBoth) {
    const prof::Scope scope{profiler, "scenario.frtr"};
    sim::Simulator sim;
    xd1::Node node{sim, nodeConfigFor(options)};
    bitstream::Library library = makeLibrary(options, registry, node);
    FrtrExecutor frtr{node, registry, library, executorOptions(options, frtrTl)};
    result.frtr = frtr.run(workload);
  }

  {
    const prof::Scope scope{profiler, "scenario.prtr"};
    result.prtr = runPrtrSide(registry, workload, options, prtrTl);
  }

  const double hitRatio = options.forceMiss ? 0.0 : result.prtr.hitRatio();
  {
    const prof::Scope scope{profiler, "scenario.model"};
    result.modelParams = deriveModelParamsAt(registry, workload, options,
                                             hitRatio);
    result.modelSpeedup = model::speedup(result.modelParams);
  }
  if (options.sides == ScenarioSides::kBoth) {
    result.speedup = measuredSpeedup(result.frtr, result.prtr);
    result.modelError =
        util::relativeError(result.speedup, result.modelSpeedup);
  }

  if (options.sides == ScenarioSides::kBoth) {
    result.metrics.merge(result.frtr.metrics, "frtr.");
  }
  result.metrics.merge(result.prtr.metrics, "prtr.");
  result.metrics.gauges["scenario.speedup"] = result.speedup;
  result.metrics.gauges["scenario.model_speedup"] = result.modelSpeedup;
  result.metrics.gauges["scenario.model_error"] = result.modelError;

  if (hooks.metrics != nullptr) hooks.metrics->absorb(result.metrics);
  if (hooks.shardedMetrics != nullptr) {
    // Only the additive series: which shard a sweep point lands on depends
    // on scheduling, and gauges overwrite, so absorbing them would make the
    // merged snapshot schedule-dependent.
    hooks.shardedMetrics->local().absorbAdditive(result.metrics);
  }
  if (hooks.trace != nullptr) {
    if (frtrTl != nullptr && !frtrTl->empty()) {
      hooks.trace->add("frtr", *frtrTl);
      hooks.trace->addCounters("frtr", prof::sampleTimelineCounters(*frtrTl));
    }
    if (prtrTl != nullptr && !prtrTl->empty()) {
      hooks.trace->add("prtr", *prtrTl);
      hooks.trace->addCounters("prtr", prof::sampleTimelineCounters(*prtrTl));
    }
  }

  // Inline invariant verification: the captured timelines must respect the
  // platform's physical exclusivity constraints. Same abort contract as
  // the strict pre-run lint above.
  if (options.verify) {
    const prof::Scope scope{profiler, "scenario.verify"};
    analyze::DiagnosticSink findings;
    if (frtrTl != nullptr) verify::checkTimeline("frtr", *frtrTl, findings);
    if (prtrTl != nullptr) verify::checkTimeline("prtr", *prtrTl, findings);
    if (findings.hasErrors()) {
      throw util::DomainError{"runScenario: " + findings.firstError().format()};
    }
  }
  return result;
}

// Deprecated shims. Their replacements are declared [[deprecated]] in the
// header; defining them here must not warn under -Werror.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

ExecutionReport runPrtrOnly(const tasks::FunctionRegistry& registry,
                            const tasks::Workload& workload,
                            const ScenarioOptions& options) {
  return runPrtrSide(registry, workload, options, options.hooks.timeline);
}

model::Params deriveModelParams(const tasks::FunctionRegistry& registry,
                                const tasks::Workload& workload,
                                const ScenarioOptions& options,
                                double hitRatio) {
  return deriveModelParamsAt(registry, workload, options, hitRatio);
}

#pragma GCC diagnostic pop

}  // namespace prtr::runtime
