#include "runtime/scenario.hpp"

#include <sstream>

#include "analyze/lint.hpp"
#include "model/calibration.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace prtr::runtime {
namespace {

/// Module-id sequence of a workload (for Belady / oracle construction).
std::vector<ModuleId> moduleSequence(const tasks::FunctionRegistry& registry,
                                     const tasks::Workload& workload) {
  std::vector<ModuleId> seq;
  seq.reserve(workload.calls.size());
  for (const tasks::TaskCall& call : workload.calls) {
    seq.push_back(registry.at(call.functionIndex).id);
  }
  return seq;
}

/// Average task time requirement across the workload on `node`.
util::Time averageTaskTime(const xd1::Node& node,
                           const tasks::FunctionRegistry& registry,
                           const tasks::Workload& workload) {
  util::require(!workload.calls.empty(), "averageTaskTime: empty workload");
  double sum = 0.0;
  for (const tasks::TaskCall& call : workload.calls) {
    sum += model::taskTime(node, registry.at(call.functionIndex), call.dataBytes)
               .toSeconds();
  }
  return util::Time::seconds(sum / static_cast<double>(workload.calls.size()));
}

ExecutorOptions executorOptions(const ScenarioOptions& options,
                                sim::Timeline* timeline) {
  ExecutorOptions eo;
  eo.basis = options.basis;
  eo.tControl = options.tControl;
  eo.forceMiss = options.forceMiss;
  eo.prepare = options.prepare;
  eo.timeline = timeline;
  return eo;
}

}  // namespace

std::string ScenarioResult::toString() const {
  std::ostringstream os;
  os << "measured S = " << speedup << ", model S = " << modelSpeedup
     << " (error " << modelError * 100.0 << "%)\n";
  os << frtr.toString() << prtr.toString();
  return os.str();
}

ExecutionReport runPrtrOnly(const tasks::FunctionRegistry& registry,
                            const tasks::Workload& workload,
                            const ScenarioOptions& options) {
  sim::Simulator sim;
  xd1::NodeConfig nodeConfig;
  nodeConfig.layout = options.layout;
  nodeConfig.icapTiming.multiFrameWrite = options.mfwCompression;
  xd1::Node node{sim, nodeConfig};
  bitstream::Library library{
      node.floorplan(),
      registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};

  const auto sequence = moduleSequence(registry, workload);
  auto cache = makeCache(options.cachePolicy, node.floorplan().prrCount(),
                         sequence);
  auto prefetcher = makePrefetcher(options.prefetcherKind,
                                   options.decisionLatency, sequence,
                                   options.associationWindow);
  PrtrExecutor executor{node,  registry,    library,
                        *cache, *prefetcher, executorOptions(options,
                                                             options.prtrTimeline)};
  return executor.run(workload);
}

model::Params deriveModelParams(const tasks::FunctionRegistry& registry,
                                const tasks::Workload& workload,
                                const ScenarioOptions& options, double hitRatio) {
  sim::Simulator sim;
  xd1::NodeConfig nodeConfig;
  nodeConfig.layout = options.layout;
  const xd1::Node node{sim, nodeConfig};

  model::AbsoluteParams abs;
  const model::ConfigTimes times = model::configTimes(node);
  abs.nCalls = workload.callCount();
  abs.tFrtr = times.full(options.basis);
  abs.tPrtr = times.partial(options.basis);
  abs.tTask = averageTaskTime(node, registry, workload);
  abs.tControl = options.tControl;
  abs.tDecision = options.decisionLatency;
  abs.hitRatio = hitRatio;
  return abs.normalized();
}

ScenarioResult runScenario(const tasks::FunctionRegistry& registry,
                           const tasks::Workload& workload,
                           const ScenarioOptions& options) {
  // Strict mode: statically lint the scenario before instantiating any
  // simulator. Error-severity findings (unknown policy names, contradictory
  // option sets) abort here with the same codes prtr-lint reports; warnings
  // are advisory and do not block execution.
  analyze::LintTargets lintTargets;
  lintTargets.scenario = &options;
  const analyze::DiagnosticSink lint = analyze::lintAll(lintTargets);
  if (lint.hasErrors()) {
    throw util::DomainError{"runScenario: " + lint.firstError().format()};
  }

  ScenarioResult result;

  {
    sim::Simulator sim;
    xd1::NodeConfig nodeConfig;
    nodeConfig.layout = options.layout;
    xd1::Node node{sim, nodeConfig};
    bitstream::Library library{
        node.floorplan(),
        registry.moduleSpecs(node.floorplan().prr(0).resources(node.device()))};
    FrtrExecutor frtr{node, registry, library,
                      executorOptions(options, options.frtrTimeline)};
    result.frtr = frtr.run(workload);
  }

  result.prtr = runPrtrOnly(registry, workload, options);
  result.speedup = measuredSpeedup(result.frtr, result.prtr);

  const double hitRatio =
      options.forceMiss ? 0.0 : result.prtr.hitRatio();
  result.modelParams = deriveModelParams(registry, workload, options, hitRatio);
  result.modelSpeedup = model::speedup(result.modelParams);
  result.modelError =
      util::relativeError(result.speedup, result.modelSpeedup);
  return result;
}

}  // namespace prtr::runtime
