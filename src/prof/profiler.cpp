#include "prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace prtr::prof {
namespace {

void observeInto(obs::HistogramSummary& h, std::int64_t value) {
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[obs::HistogramSummary::bucketIndex(value)];
}

void writeSummaryJson(util::json::Writer& w, const obs::HistogramSummary& h) {
  w.beginObject();
  w.key("count").value(h.count);
  w.key("total").value(h.sum);
  w.key("min").value(h.min);
  w.key("max").value(h.max);
  w.key("p50").value(h.p50());
  w.key("p95").value(h.p95());
  w.endObject();
}

}  // namespace

std::string ProfileSnapshot::toString() const {
  std::ostringstream os;
  for (const auto& [label, h] : phases) {
    os << label << " count=" << h.count << " total=" << h.sum
       << " min=" << h.min << " max=" << h.max
       << " p50=" << util::json::formatNumber(h.p50())
       << " p95=" << util::json::formatNumber(h.p95()) << '\n';
  }
  for (const auto& [label, value] : counts) {
    os << label << ' ' << value << '\n';
  }
  for (const auto& [label, h] : samples) {
    os << label << " count=" << h.count << " min=" << h.min
       << " max=" << h.max << " p50=" << util::json::formatNumber(h.p50())
       << " p95=" << util::json::formatNumber(h.p95()) << '\n';
  }
  return os.str();
}

void ProfileSnapshot::writeJson(util::json::Writer& w) const {
  w.beginObject();
  w.key("phases").beginObject();
  for (const auto& [label, h] : phases) {
    w.key(label);
    writeSummaryJson(w, h);
  }
  w.endObject();
  w.key("counts").beginObject();
  for (const auto& [label, value] : counts) w.key(label).value(value);
  w.endObject();
  w.key("samples").beginObject();
  for (const auto& [label, h] : samples) {
    w.key(label);
    writeSummaryJson(w, h);
  }
  w.endObject();
  w.endObject();
}

std::string ProfileSnapshot::toJson() const {
  std::ostringstream os;
  util::json::Writer w{os};
  writeJson(w);
  return os.str();
}

std::int64_t Profiler::nowNanoseconds() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::record(std::string_view label, std::int64_t elapsed_ns) {
  const std::scoped_lock lock{mutex_};
  observeInto(state_.phases[std::string{label}], elapsed_ns);
}

void Profiler::count(std::string_view label, std::uint64_t delta) {
  const std::scoped_lock lock{mutex_};
  state_.counts[std::string{label}] += delta;
}

void Profiler::sample(std::string_view label, std::int64_t value) {
  const std::scoped_lock lock{mutex_};
  observeInto(state_.samples[std::string{label}], value);
}

ProfileSnapshot Profiler::snapshot() const {
  const std::scoped_lock lock{mutex_};
  return state_;
}

}  // namespace prtr::prof
