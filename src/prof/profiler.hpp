#pragma once
/// \file profiler.hpp
/// Host-side wall-clock profiling. The simulator's own clocks measure
/// *simulated* time; this layer measures the *host* cost of producing those
/// numbers — how long the bitstream builds, pool tasks, cache fills, and
/// scenario phases take in wall-clock terms, and how often the cheap events
/// (steals, cache hits) fire. A Profiler aggregates thread-safely under
/// stable dotted labels; prof::Scope is the RAII timer subsystems open
/// against the optional obs::Hooks::profiler pointer. A null profiler is
/// zero-overhead: Scope neither reads the clock nor takes a lock.
///
/// Aggregation reuses obs::HistogramSummary (count/sum/min/max plus
/// deterministic log2-bucket p50/p95), so the same quantile semantics apply
/// to simulated histograms and host-side phase timings.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace prtr::prof {

/// Frozen profiler state: phase timings (nanoseconds), event counts, and
/// sampled gauge series. Ordered maps make rendering stable.
struct ProfileSnapshot {
  /// Wall-clock phase timings in nanoseconds, one series per label.
  std::map<std::string, obs::HistogramSummary> phases;
  /// Monotonic event counts ("exec.pool.steal", "exec.cache.hit").
  std::map<std::string, std::uint64_t> counts;
  /// Sampled gauge observations ("exec.pool.queue_depth", "exec.cache.bytes").
  std::map<std::string, obs::HistogramSummary> samples;

  [[nodiscard]] bool empty() const noexcept {
    return phases.empty() && counts.empty() && samples.empty();
  }

  /// "label count=N total=T min=... max=... p50=... p95=..." per phase line,
  /// then counts, then samples.
  [[nodiscard]] std::string toString() const;

  /// {"phases":{...},"counts":{...},"samples":{...}}.
  void writeJson(util::json::Writer& w) const;
  [[nodiscard]] std::string toJson() const;

  friend bool operator==(const ProfileSnapshot&,
                         const ProfileSnapshot&) = default;
};

/// Thread-safe wall-clock aggregator. Subsystems never own one; they borrow
/// a pointer (obs::Hooks::profiler, exec::Pool::setProfiler, ...) and treat
/// null as "profiling off".
class Profiler {
 public:
  /// Monotonic host time in nanoseconds (steady_clock).
  [[nodiscard]] static std::int64_t nowNanoseconds() noexcept;

  /// Records one timed interval under `label`.
  void record(std::string_view label, std::int64_t elapsed_ns);

  /// Adds `delta` to the event counter under `label`.
  void count(std::string_view label, std::uint64_t delta = 1);

  /// Records one gauge observation under `label`.
  void sample(std::string_view label, std::int64_t value);

  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  ProfileSnapshot state_;
};

/// RAII phase timer: measures construction-to-destruction wall time and
/// records it under `label`. A null profiler makes every operation a no-op
/// (no clock read, no lock), so instrumented code paths cost nothing when
/// profiling is off. The label must outlive the scope (string literals at
/// every call site).
class Scope {
 public:
  Scope(Profiler* profiler, std::string_view label) noexcept
      : profiler_(profiler),
        label_(label),
        start_ns_(profiler ? Profiler::nowNanoseconds() : 0) {}

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  ~Scope() {
    if (profiler_ != nullptr) {
      profiler_->record(label_, Profiler::nowNanoseconds() - start_ns_);
    }
  }

 private:
  Profiler* profiler_;
  std::string_view label_;
  std::int64_t start_ns_;
};

}  // namespace prtr::prof
