#pragma once
/// \file regression.hpp
/// Bench-regression comparison: parses the JSON documents the bench
/// binaries emit via obs::BenchReport (--json), compares a current run
/// against a committed baseline (bench/baselines/BENCH_<name>.json), and
/// classifies every scalar and table delta. Simulated-time scalars must
/// match exactly (within a libm-noise relative tolerance); wall-clock
/// scalars are machine-dependent, so they are reported informationally by
/// default and only gated when the caller opts in with a percentage band.
/// The prtr-report CLI renders the result as a terminal/markdown dashboard
/// and a machine JSON verdict.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace prtr::prof {

/// One parsed bench --json document. Member order follows the document so
/// dashboards list scalars the way the bench registered them.
struct BenchDoc {
  struct Table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    friend bool operator==(const Table&, const Table&) = default;
  };

  std::string bench;
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<std::pair<std::string, std::string>> notes;
  std::vector<std::pair<std::string, Table>> tables;

  [[nodiscard]] const double* findScalar(std::string_view name) const noexcept;
  [[nodiscard]] const Table* findTable(std::string_view name) const noexcept;

  /// Parses one bench document (already-parsed JSON). Throws
  /// util::DomainError when required members are missing or mistyped.
  [[nodiscard]] static BenchDoc parse(const util::json::Value& doc);

  /// Reads and parses `path`. Throws util::Error when the file cannot be
  /// read, util::DomainError when it is not a bench document.
  [[nodiscard]] static BenchDoc parseFile(const std::string& path);
};

/// Noise policy for one comparison.
struct ComparePolicy {
  /// Relative tolerance for deterministic scalars: the numbers come from
  /// double arithmetic that may cross libm versions, so "exact" means
  /// agreeing to ~9 significant digits, not bit equality.
  double exactRelTol = 1e-9;

  /// Allowed relative band for wall-clock scalars when gating them.
  double wallBand = 0.25;

  /// Wall-clock deltas fail the comparison only when set; by default they
  /// are reported informationally (CI machines differ too much).
  bool gateWallClock = false;

  /// True for scalars whose value depends on the host machine rather than
  /// the simulation: "threads", "*_ms", "time_*", "chassis_*", "speedup_*",
  /// and anything containing "wall".
  [[nodiscard]] static bool isWallClockScalar(std::string_view name) noexcept;

  /// True for tables whose cells render wall-clock measurements ("*time*",
  /// "*wall*").
  [[nodiscard]] static bool isWallClockTable(std::string_view name) noexcept;
};

/// Classification of one compared item.
enum class DeltaKind {
  kMatch,       ///< within tolerance / band
  kInfo,        ///< wall-clock drift, not gated
  kRegression,  ///< out of tolerance — fails the comparison
  kMissing,     ///< present in baseline, absent in current — fails
  kNew,         ///< absent in baseline — informational
};

[[nodiscard]] std::string_view toString(DeltaKind kind) noexcept;

struct ScalarDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / |baseline|; 0 when baseline is 0 and they match.
  double relDelta = 0.0;
  bool wallClock = false;
  DeltaKind kind = DeltaKind::kMatch;
};

struct TableDelta {
  std::string name;
  bool wallClock = false;
  DeltaKind kind = DeltaKind::kMatch;
  /// First difference ("row 3 col 2: \"9.1\" vs \"9.4\"", "row count 5 vs 6").
  std::string detail;
};

/// Full comparison outcome for one bench.
struct CompareResult {
  std::string bench;
  std::vector<ScalarDelta> scalars;
  std::vector<TableDelta> tables;
  bool pass = true;

  /// Fixed-width terminal dashboard (one line per scalar/table).
  [[nodiscard]] std::string renderText() const;

  /// GitHub-flavoured markdown table for CI artifacts.
  [[nodiscard]] std::string renderMarkdown() const;

  /// {"bench":...,"pass":...,"scalars":[...],"tables":[...]}.
  void writeJson(util::json::Writer& w) const;
};

/// Compares `current` against `baseline` under `policy`. The bench names
/// need not match (callers pair files up); the result carries the current
/// document's name.
[[nodiscard]] CompareResult compare(const BenchDoc& baseline,
                                    const BenchDoc& current,
                                    const ComparePolicy& policy = {});

}  // namespace prtr::prof
