#pragma once
/// \file counters.hpp
/// Derives sampled counter tracks (obs::CounterTrack) from a recorded
/// sim::Timeline: the simulated horizon is cut into equal buckets and each
/// lane class contributes one busy-fraction curve —
///
///   "link.in.occupancy"   from the "HT-in" lane,
///   "link.out.occupancy"  from the "HT-out" lane,
///   "icap.busy"           from the "config" lane (configuration port),
///   "prr.residency"       averaged over the "PRR*"/"FPGA" compute lanes.
///
/// Everything is integer-picosecond arithmetic until the final division, so
/// two bit-identical runs emit bit-identical counter tracks. The tracks feed
/// obs::ChromeTrace::addCounters, rendering as utilization curves above the
/// span lanes in ui.perfetto.dev.

#include <cstddef>
#include <vector>

#include "obs/trace_export.hpp"
#include "sim/trace.hpp"

namespace prtr::prof {

/// Samples busy-fraction counter tracks from `timeline` over `buckets`
/// equal sim-time intervals. Tracks whose lane class recorded no spans are
/// omitted; an empty timeline yields no tracks. Values are fractions in
/// [0, 1]; each sample is stamped at its bucket's start time.
[[nodiscard]] std::vector<obs::CounterTrack> sampleTimelineCounters(
    const sim::Timeline& timeline, std::size_t buckets = 128);

}  // namespace prtr::prof
