#include "prof/regression.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace prtr::prof {
namespace {

bool startsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) noexcept {
  return text.find(needle) != std::string_view::npos;
}

/// Symmetric relative difference; 0 for exact equality (including 0 vs 0).
double relativeDelta(double baseline, double current) noexcept {
  if (baseline == current) return 0.0;
  const double denom = std::max(std::abs(baseline), std::abs(current));
  return (current - baseline) / denom;
}

std::string formatPercent(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.2f%%", rel * 100.0);
  return buf;
}

BenchDoc::Table parseTable(const util::json::Value& value) {
  BenchDoc::Table table;
  for (const util::json::Value& cell : value.at("header").asArray()) {
    table.header.push_back(cell.asString());
  }
  for (const util::json::Value& row : value.at("rows").asArray()) {
    std::vector<std::string> cells;
    for (const util::json::Value& cell : row.asArray()) {
      cells.push_back(cell.asString());
    }
    table.rows.push_back(std::move(cells));
  }
  return table;
}

/// First cell-level difference between two tables, or empty when equal.
std::string firstTableDiff(const BenchDoc::Table& baseline,
                           const BenchDoc::Table& current) {
  if (baseline.header != current.header) return "header differs";
  if (baseline.rows.size() != current.rows.size()) {
    return "row count " + std::to_string(baseline.rows.size()) + " vs " +
           std::to_string(current.rows.size());
  }
  for (std::size_t r = 0; r < baseline.rows.size(); ++r) {
    const auto& a = baseline.rows[r];
    const auto& b = current.rows[r];
    if (a.size() != b.size()) {
      return "row " + std::to_string(r) + " cell count differs";
    }
    for (std::size_t c = 0; c < a.size(); ++c) {
      if (a[c] != b[c]) {
        return "row " + std::to_string(r) + " col " + std::to_string(c) +
               ": \"" + a[c] + "\" vs \"" + b[c] + "\"";
      }
    }
  }
  return {};
}

}  // namespace

const double* BenchDoc::findScalar(std::string_view name) const noexcept {
  for (const auto& [scalarName, value] : scalars) {
    if (scalarName == name) return &value;
  }
  return nullptr;
}

const BenchDoc::Table* BenchDoc::findTable(std::string_view name)
    const noexcept {
  for (const auto& [tableName, table] : tables) {
    if (tableName == name) return &table;
  }
  return nullptr;
}

BenchDoc BenchDoc::parse(const util::json::Value& doc) {
  BenchDoc out;
  out.bench = doc.at("bench").asString();
  for (const auto& [name, value] : doc.at("scalars").asObject()) {
    out.scalars.emplace_back(name, value.asNumber());
  }
  if (const util::json::Value* notes = doc.find("notes")) {
    for (const auto& [name, value] : notes->asObject()) {
      out.notes.emplace_back(name, value.asString());
    }
  }
  if (const util::json::Value* tables = doc.find("tables")) {
    for (const auto& [name, value] : tables->asObject()) {
      out.tables.emplace_back(name, parseTable(value));
    }
  }
  return out;
}

BenchDoc BenchDoc::parseFile(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw util::Error{"regression: cannot read " + path};
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return parse(util::json::Value::parse(buffer.str()));
  } catch (const util::DomainError& e) {
    throw util::DomainError{path + ": " + e.what()};
  }
}

bool ComparePolicy::isWallClockScalar(std::string_view name) noexcept {
  return name == "threads" || contains(name, "wall") ||
         endsWith(name, "_ms") || startsWith(name, "time_") ||
         startsWith(name, "chassis_") || startsWith(name, "speedup_");
}

bool ComparePolicy::isWallClockTable(std::string_view name) noexcept {
  return contains(name, "time") || contains(name, "wall");
}

std::string_view toString(DeltaKind kind) noexcept {
  switch (kind) {
    case DeltaKind::kMatch: return "ok";
    case DeltaKind::kInfo: return "info";
    case DeltaKind::kRegression: return "REGRESSION";
    case DeltaKind::kMissing: return "MISSING";
    case DeltaKind::kNew: return "new";
  }
  return "?";
}

CompareResult compare(const BenchDoc& baseline, const BenchDoc& current,
                      const ComparePolicy& policy) {
  CompareResult result;
  result.bench = current.bench;

  for (const auto& [name, base] : baseline.scalars) {
    ScalarDelta delta;
    delta.name = name;
    delta.baseline = base;
    delta.wallClock = ComparePolicy::isWallClockScalar(name);
    const double* cur = current.findScalar(name);
    if (cur == nullptr) {
      delta.kind = DeltaKind::kMissing;
      result.pass = false;
    } else {
      delta.current = *cur;
      delta.relDelta = relativeDelta(base, *cur);
      if (delta.wallClock) {
        if (!policy.gateWallClock) {
          delta.kind = DeltaKind::kInfo;
        } else if (std::abs(delta.relDelta) <= policy.wallBand) {
          delta.kind = DeltaKind::kMatch;
        } else {
          delta.kind = DeltaKind::kRegression;
          result.pass = false;
        }
      } else if (std::abs(delta.relDelta) <= policy.exactRelTol) {
        delta.kind = DeltaKind::kMatch;
      } else {
        delta.kind = DeltaKind::kRegression;
        result.pass = false;
      }
    }
    result.scalars.push_back(std::move(delta));
  }
  for (const auto& [name, value] : current.scalars) {
    if (baseline.findScalar(name) != nullptr) continue;
    ScalarDelta delta;
    delta.name = name;
    delta.current = value;
    delta.wallClock = ComparePolicy::isWallClockScalar(name);
    delta.kind = DeltaKind::kNew;
    result.scalars.push_back(std::move(delta));
  }

  for (const auto& [name, base] : baseline.tables) {
    TableDelta delta;
    delta.name = name;
    delta.wallClock = ComparePolicy::isWallClockTable(name);
    const BenchDoc::Table* cur = current.findTable(name);
    if (cur == nullptr) {
      delta.kind = DeltaKind::kMissing;
      result.pass = false;
    } else if (std::string diff = firstTableDiff(base, *cur); !diff.empty()) {
      delta.detail = std::move(diff);
      if (delta.wallClock && !policy.gateWallClock) {
        delta.kind = DeltaKind::kInfo;
      } else {
        delta.kind = DeltaKind::kRegression;
        result.pass = false;
      }
    }
    result.tables.push_back(std::move(delta));
  }
  for (const auto& [name, table] : current.tables) {
    if (baseline.findTable(name) != nullptr) continue;
    TableDelta delta;
    delta.name = name;
    delta.wallClock = ComparePolicy::isWallClockTable(name);
    delta.kind = DeltaKind::kNew;
    result.tables.push_back(std::move(delta));
  }
  return result;
}

std::string CompareResult::renderText() const {
  std::ostringstream os;
  os << "bench " << bench << ": " << (pass ? "PASS" : "FAIL") << '\n';
  for (const ScalarDelta& d : scalars) {
    os << "  scalar " << d.name << "  baseline="
       << util::json::formatNumber(d.baseline)
       << " current=" << util::json::formatNumber(d.current)
       << " delta=" << formatPercent(d.relDelta) << "  [" << toString(d.kind)
       << (d.wallClock ? ", wall-clock" : "") << "]\n";
  }
  for (const TableDelta& d : tables) {
    os << "  table  " << d.name << "  [" << toString(d.kind)
       << (d.wallClock ? ", wall-clock" : "") << "]";
    if (!d.detail.empty()) os << "  " << d.detail;
    os << '\n';
  }
  return os.str();
}

std::string CompareResult::renderMarkdown() const {
  std::ostringstream os;
  os << "### " << bench << " — " << (pass ? "PASS" : "FAIL") << "\n\n";
  os << "| item | baseline | current | delta | status |\n";
  os << "|---|---:|---:|---:|---|\n";
  for (const ScalarDelta& d : scalars) {
    os << "| `" << d.name << "` | " << util::json::formatNumber(d.baseline)
       << " | " << util::json::formatNumber(d.current) << " | "
       << formatPercent(d.relDelta) << " | " << toString(d.kind)
       << (d.wallClock ? " (wall-clock)" : "") << " |\n";
  }
  for (const TableDelta& d : tables) {
    os << "| table `" << d.name << "` | | | | " << toString(d.kind);
    if (!d.detail.empty()) os << ": " << d.detail;
    os << " |\n";
  }
  os << '\n';
  return os.str();
}

void CompareResult::writeJson(util::json::Writer& w) const {
  w.beginObject();
  w.key("bench").value(bench);
  w.key("pass").value(pass);
  w.key("scalars").beginArray();
  for (const ScalarDelta& d : scalars) {
    w.beginObject();
    w.key("name").value(d.name);
    w.key("baseline").value(d.baseline);
    w.key("current").value(d.current);
    w.key("rel_delta").value(d.relDelta);
    w.key("wall_clock").value(d.wallClock);
    w.key("status").value(toString(d.kind));
    w.endObject();
  }
  w.endArray();
  w.key("tables").beginArray();
  for (const TableDelta& d : tables) {
    w.beginObject();
    w.key("name").value(d.name);
    w.key("wall_clock").value(d.wallClock);
    w.key("status").value(toString(d.kind));
    w.key("detail").value(d.detail);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

}  // namespace prtr::prof
