#include "prof/counters.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prtr::prof {
namespace {

/// Lane roles for bucketed occupancy sampling. Classified once per lane id
/// from the timeline's symbol table; the per-span loop is integer-only.
enum class LaneRole : std::uint8_t { kOther, kLinkIn, kLinkOut, kIcap, kCompute };

LaneRole classify(std::string_view lane) {
  if (lane == "HT-in") return LaneRole::kLinkIn;
  if (lane == "HT-out") return LaneRole::kLinkOut;
  if (lane == "config") return LaneRole::kIcap;
  if (lane == "FPGA" || lane.substr(0, 3) == "PRR") return LaneRole::kCompute;
  return LaneRole::kOther;
}

/// Accumulates the [start, end) overlap of one span into per-bucket busy
/// picosecond counts.
void accumulate(std::vector<std::uint64_t>& busy, std::int64_t width,
                std::int64_t start, std::int64_t end) {
  if (end <= start || width <= 0) return;
  const auto first = static_cast<std::size_t>(start / width);
  for (std::size_t b = first; b < busy.size(); ++b) {
    const std::int64_t lo = static_cast<std::int64_t>(b) * width;
    if (lo >= end) break;
    const std::int64_t hi = lo + width;
    const std::int64_t overlap = std::min(end, hi) - std::max(start, lo);
    if (overlap > 0) busy[b] += static_cast<std::uint64_t>(overlap);
  }
}

obs::CounterTrack finishTrack(std::string name,
                              const std::vector<std::uint64_t>& busy,
                              std::int64_t width, std::int64_t horizon,
                              std::uint64_t laneCount) {
  obs::CounterTrack track;
  track.name = std::move(name);
  track.samples.reserve(busy.size());
  for (std::size_t b = 0; b < busy.size(); ++b) {
    const std::int64_t lo = static_cast<std::int64_t>(b) * width;
    const std::int64_t span = std::min(width, horizon - lo);
    if (span <= 0) break;
    const double denom =
        static_cast<double>(span) * static_cast<double>(laneCount);
    const double fraction =
        std::min(1.0, static_cast<double>(busy[b]) / denom);
    track.samples.push_back({lo, fraction});
  }
  return track;
}

}  // namespace

std::vector<obs::CounterTrack> sampleTimelineCounters(
    const sim::Timeline& timeline, std::size_t buckets) {
  std::vector<obs::CounterTrack> tracks;
  const std::int64_t horizon = timeline.horizon().ps();
  if (horizon <= 0 || buckets == 0 || timeline.empty()) return tracks;

  const auto n = static_cast<std::int64_t>(buckets);
  const std::int64_t width = (horizon + n - 1) / n;  // >= 1 ps
  const auto bucketCount =
      static_cast<std::size_t>((horizon + width - 1) / width);

  std::vector<std::uint64_t> linkIn(bucketCount), linkOut(bucketCount),
      icap(bucketCount), compute(bucketCount);
  bool haveIn = false, haveOut = false, haveIcap = false;

  const sim::SymbolTable& symbols = timeline.symbols();
  std::vector<LaneRole> roles(symbols.laneCount());
  std::vector<bool> computeSeen(symbols.laneCount(), false);
  for (std::size_t i = 0; i < roles.size(); ++i) {
    roles[i] = classify(symbols.laneNames()[i]);
  }
  std::uint64_t computeLanes = 0;

  for (const sim::Span& span : timeline.spans()) {
    const std::int64_t start = span.start.ps();
    const std::int64_t end = span.end.ps();
    switch (roles[span.lane.index()]) {
      case LaneRole::kLinkIn:
        haveIn = true;
        accumulate(linkIn, width, start, end);
        break;
      case LaneRole::kLinkOut:
        haveOut = true;
        accumulate(linkOut, width, start, end);
        break;
      case LaneRole::kIcap:
        haveIcap = true;
        accumulate(icap, width, start, end);
        break;
      case LaneRole::kCompute:
        if (!computeSeen[span.lane.index()]) {
          computeSeen[span.lane.index()] = true;
          ++computeLanes;
        }
        accumulate(compute, width, start, end);
        break;
      case LaneRole::kOther:
        break;
    }
  }

  if (haveIn) {
    tracks.push_back(
        finishTrack("link.in.occupancy", linkIn, width, horizon, 1));
  }
  if (haveOut) {
    tracks.push_back(
        finishTrack("link.out.occupancy", linkOut, width, horizon, 1));
  }
  if (haveIcap) {
    tracks.push_back(finishTrack("icap.busy", icap, width, horizon, 1));
  }
  if (computeLanes > 0) {
    tracks.push_back(
        finishTrack("prr.residency", compute, width, horizon, computeLanes));
  }
  return tracks;
}

}  // namespace prtr::prof
