#include "bitstream/relocate.hpp"

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {

bool regionsCompatible(const fabric::Device& device, const fabric::Region& a,
                       const fabric::Region& b) {
  if (a.columnCount() != b.columnCount()) return false;
  const auto columns = device.geometry().columns();
  for (std::size_t i = 0; i < a.columnCount(); ++i) {
    if (columns[a.firstColumn() + i].kind != columns[b.firstColumn() + i].kind) {
      return false;
    }
  }
  return true;
}

Bitstream relocate(const Bitstream& stream, const fabric::Device& device,
                   const fabric::Region& from, const fabric::Region& to) {
  util::require(regionsCompatible(device, from, to),
                "relocate: regions have different column signatures");
  if (!stream.isPartial()) {
    throw util::BitstreamError{"relocate: only partial streams relocate"};
  }
  const fabric::FrameRange fromFrames = from.frames(device);
  const fabric::FrameRange toFrames = to.frames(device);
  if (stream.header().firstFrame < fromFrames.first ||
      stream.header().firstFrame + stream.header().frameCount >
          fromFrames.end()) {
    throw util::BitstreamError{
        "relocate: stream does not target the source region"};
  }

  // The byte layout is header | {addr, payload}... | crc (format.hpp).
  const auto& enc = device.geometry().encoding();
  std::vector<std::uint8_t> bytes = stream.bytes();
  const std::int64_t offset = static_cast<std::int64_t>(toFrames.first) -
                              static_cast<std::int64_t>(fromFrames.first);

  auto rewriteU32 = [&bytes](std::size_t at, std::uint32_t v) {
    bytes[at] = static_cast<std::uint8_t>(v);
    bytes[at + 1] = static_cast<std::uint8_t>(v >> 8);
    bytes[at + 2] = static_cast<std::uint8_t>(v >> 16);
    bytes[at + 3] = static_cast<std::uint8_t>(v >> 24);
  };
  auto readU32 = [&bytes](std::size_t at) {
    return static_cast<std::uint32_t>(bytes[at]) |
           static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[at + 3]) << 24;
  };

  Header header = stream.header();
  header.firstFrame =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(header.firstFrame) +
                                 offset);
  rewriteU32(12, header.firstFrame);  // firstFrame field (see builder)

  std::size_t at = enc.partialOverheadBytes - 4;
  for (std::uint32_t i = 0; i < header.frameCount; ++i) {
    const std::uint32_t frame = readU32(at);
    rewriteU32(at, static_cast<std::uint32_t>(
                       static_cast<std::int64_t>(frame) + offset));
    at += enc.frameAddressBytes + enc.frameBytes;
  }

  // Recompute the trailing CRC.
  const std::uint32_t crc = util::Crc32::of(
      std::span{bytes.data(), bytes.size() - 4});
  rewriteU32(bytes.size() - 4, crc);

  return Bitstream{header, std::move(bytes)};
}

RelocationSavings relocationSavings(util::Bytes streamBytes,
                                    std::size_t nModules,
                                    std::size_t nCompatibleRegions) {
  RelocationSavings savings;
  savings.withoutRelocation =
      streamBytes * static_cast<std::uint64_t>(nModules * nCompatibleRegions);
  savings.withRelocation = streamBytes * static_cast<std::uint64_t>(nModules);
  return savings;
}

}  // namespace prtr::bitstream
