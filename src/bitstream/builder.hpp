#pragma once
/// \file builder.hpp
/// Bitstream generation: full-device streams, module-based partial streams
/// (all frames of a region, fixed size), and difference-based partial
/// streams (only the frames that differ between two module images, variable
/// size) — the two Xilinx flows compared in paper section 2.2.

#include <cstdint>
#include <vector>

#include "bitstream/format.hpp"
#include "fabric/device.hpp"
#include "fabric/region.hpp"

namespace prtr::bitstream {

/// Identifies a module implementation placed into a region. `moduleId` 0 is
/// reserved for the empty/baseline image of a region.
using ModuleId = std::uint64_t;

/// Deterministic synthetic payload of frame `frame` when module `module`
/// (with `framesUsed` occupied frames starting at the region base) is
/// placed into a region beginning at `regionFirstFrame`.
[[nodiscard]] std::vector<std::uint8_t> framePayload(ModuleId module,
                                                     std::uint32_t regionFirstFrame,
                                                     std::uint32_t framesUsed,
                                                     std::uint32_t frame,
                                                     std::uint32_t frameBytes);

/// Builds bitstreams against one device's geometry.
class Builder {
 public:
  explicit Builder(const fabric::Device& device) : device_(&device) {}

  /// Full-device stream configuring every frame; `designId` identifies the
  /// overall design (static + initial modules).
  [[nodiscard]] Bitstream buildFull(ModuleId designId) const;

  /// Module-based partial stream: every frame of `region`, regardless of
  /// how much of the region the module occupies (fixed size per region).
  /// `occupancy` in (0,1] scales the frames whose payload is non-baseline.
  [[nodiscard]] Bitstream buildModulePartial(const fabric::Region& region,
                                             ModuleId module,
                                             double occupancy = 1.0) const;

  /// Difference-based partial stream from `fromModule` to `toModule` in
  /// `region`: only frames whose payload differs (variable size).
  [[nodiscard]] Bitstream buildDifferencePartial(const fabric::Region& region,
                                                 ModuleId fromModule,
                                                 double fromOccupancy,
                                                 ModuleId toModule,
                                                 double toOccupancy) const;

 private:
  [[nodiscard]] std::uint32_t usedFrames(const fabric::Region& region,
                                         double occupancy) const;

  const fabric::Device* device_;
};

}  // namespace prtr::bitstream
