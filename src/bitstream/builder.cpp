#include "bitstream/builder.hpp"

#include <algorithm>
#include <cmath>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace prtr::bitstream {
namespace {

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
  putU32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Emits the fixed-size header block (overhead minus the 4-byte CRC trailer).
void emitHeader(std::vector<std::uint8_t>& out, const Header& header,
                std::uint32_t overheadBytes) {
  const std::size_t begin = out.size();
  putU32(out, Header::kMagic);
  out.push_back(static_cast<std::uint8_t>(header.type));
  out.push_back(0);  // version
  out.push_back(0);
  out.push_back(0);
  putU32(out, header.deviceTag);
  putU32(out, header.firstFrame);
  putU32(out, header.frameCount);
  putU32(out, header.frameBytes);
  putU64(out, header.moduleId);
  const std::size_t fieldBytes = out.size() - begin;
  util::require(overheadBytes >= fieldBytes + 4,
                "Builder: overhead too small for header fields");
  out.resize(begin + overheadBytes - 4, 0);  // command-preamble padding
}

void appendCrc(std::vector<std::uint8_t>& out) {
  const std::uint32_t crc = util::Crc32::of(out);
  putU32(out, crc);
}

/// Rng::chance(0.25) without the double round-trip: uniform() compares
/// (r >> 11) * 2^-53 against 2^-2, which holds exactly when r < 2^62.
constexpr std::uint64_t kQuarterThreshold = std::uint64_t{1} << 62;

/// framePayload appended in place: the frame's zero bytes come from the
/// resize and only content bytes are stored. Same bytes, same Rng draw
/// sequence as the standalone function.
void appendFramePayload(std::vector<std::uint8_t>& out, ModuleId module,
                        std::uint32_t regionFirstFrame,
                        std::uint32_t framesUsed, std::uint32_t frame,
                        std::uint32_t frameBytes) {
  const std::size_t base = out.size();
  out.resize(base + frameBytes, 0);
  const bool occupied = frame - regionFirstFrame < framesUsed;
  if (!occupied || module == 0) return;
  util::Rng rng{module * 0x100000001b3ULL ^ frame};
  std::uint8_t* payload = out.data() + base;
  for (std::uint32_t i = 0; i < frameBytes; ++i) {
    if (rng() < kQuarterThreshold) {
      payload[i] = static_cast<std::uint8_t>(rng() | 1);  // non-zero content
    }
  }
}

}  // namespace

std::vector<std::uint8_t> framePayload(ModuleId module,
                                       std::uint32_t regionFirstFrame,
                                       std::uint32_t framesUsed,
                                       std::uint32_t frame,
                                       std::uint32_t frameBytes) {
  // Frames inside the module's footprint take module-specific content;
  // frames beyond it take the region baseline (module 0 = erased fabric,
  // all zeros). This makes difference-based streams variable-sized, as in
  // the real flow.
  //
  // Occupied frames are *sparse*: real configuration frames are mostly
  // zero bits (unused routing/LUT entries), which is what makes bitstream
  // compression work. ~25% of bytes carry module-specific content.
  std::vector<std::uint8_t> payload;
  appendFramePayload(payload, module, regionFirstFrame, framesUsed, frame,
                     frameBytes);
  return payload;
}

std::uint32_t Builder::usedFrames(const fabric::Region& region,
                                  double occupancy) const {
  util::require(occupancy > 0.0 && occupancy <= 1.0,
                "Builder: occupancy must be in (0, 1]");
  const std::uint32_t total = region.frames(*device_).count;
  const auto used = static_cast<std::uint32_t>(
      std::ceil(occupancy * static_cast<double>(total)));
  return std::clamp<std::uint32_t>(used, 1, total);
}

Bitstream Builder::buildFull(ModuleId designId) const {
  const auto& geometry = device_->geometry();
  const auto& enc = geometry.encoding();
  Header header;
  header.type = StreamType::kFull;
  header.deviceTag = deviceTag(device_->name());
  header.firstFrame = 0;
  header.frameCount = geometry.totalFrames();
  header.frameBytes = enc.frameBytes;
  header.moduleId = designId;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(geometry.fullBitstreamBytes().count());
  emitHeader(bytes, header, enc.fullOverheadBytes);
  for (std::uint32_t frame = 0; frame < header.frameCount; ++frame) {
    appendFramePayload(bytes, designId, 0, header.frameCount, frame,
                       enc.frameBytes);
  }
  appendCrc(bytes);
  util::require(bytes.size() == geometry.fullBitstreamBytes().count(),
                "Builder: full stream size mismatch");
  return Bitstream{header, std::move(bytes)};
}

Bitstream Builder::buildModulePartial(const fabric::Region& region,
                                      ModuleId module, double occupancy) const {
  const auto& enc = device_->geometry().encoding();
  const fabric::FrameRange range = region.frames(*device_);
  const std::uint32_t used = usedFrames(region, occupancy);

  Header header;
  header.type = StreamType::kPartial;
  header.deviceTag = deviceTag(device_->name());
  header.firstFrame = range.first;
  header.frameCount = range.count;
  header.frameBytes = enc.frameBytes;
  header.moduleId = module;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(region.partialBitstreamBytes(*device_).count());
  emitHeader(bytes, header, enc.partialOverheadBytes);
  for (std::uint32_t frame = range.first; frame < range.end(); ++frame) {
    putU32(bytes, frame);
    appendFramePayload(bytes, module, range.first, used, frame,
                       enc.frameBytes);
  }
  appendCrc(bytes);
  util::require(bytes.size() == region.partialBitstreamBytes(*device_).count(),
                "Builder: module partial size mismatch");
  return Bitstream{header, std::move(bytes)};
}

Bitstream Builder::buildDifferencePartial(const fabric::Region& region,
                                          ModuleId fromModule,
                                          double fromOccupancy,
                                          ModuleId toModule,
                                          double toOccupancy) const {
  const auto& enc = device_->geometry().encoding();
  const fabric::FrameRange range = region.frames(*device_);
  const std::uint32_t fromUsed = usedFrames(region, fromOccupancy);
  const std::uint32_t toUsed = usedFrames(region, toOccupancy);

  // Collect only the frames whose payload changes.
  std::vector<std::uint32_t> changed;
  for (std::uint32_t frame = range.first; frame < range.end(); ++frame) {
    const auto before =
        framePayload(fromModule, range.first, fromUsed, frame, enc.frameBytes);
    const auto after =
        framePayload(toModule, range.first, toUsed, frame, enc.frameBytes);
    if (before != after) changed.push_back(frame);
  }

  Header header;
  header.type = StreamType::kPartial;
  header.deviceTag = deviceTag(device_->name());
  header.firstFrame = changed.empty() ? range.first : changed.front();
  header.frameCount = static_cast<std::uint32_t>(changed.size());
  header.frameBytes = enc.frameBytes;
  header.moduleId = toModule;

  std::vector<std::uint8_t> bytes;
  emitHeader(bytes, header, enc.partialOverheadBytes);
  for (const std::uint32_t frame : changed) {
    putU32(bytes, frame);
    appendFramePayload(bytes, toModule, range.first, toUsed, frame,
                       enc.frameBytes);
  }
  appendCrc(bytes);
  return Bitstream{header, std::move(bytes)};
}

}  // namespace prtr::bitstream
