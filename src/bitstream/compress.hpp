#pragma once
/// \file compress.hpp
/// Bitstream compression. Two cooperating mechanisms, both standard in the
/// partial-reconfiguration literature the paper builds on:
///
///  * **Byte-level zero-run codec** ("ZRL"): configuration frames are
///    mostly zero bytes; runs of zeros encode as a two/three-byte token.
///    Shrinks the stream *on the wire* (host memory, HyperTransport), so
///    a shared-channel download steals less bandwidth from payload data.
///
///  * **Frame-level multi-frame write ("MFW")**: when several frames of a
///    partial stream carry identical payloads (erased fabric, replicated
///    logic), the configuration port can write the payload once and replay
///    it to many addresses. Unlike wire compression this cuts the *ICAP
///    time itself*, which is the bottleneck of the measured path.
///
/// Both are lossless; round-trips are property-tested.

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/format.hpp"
#include "fabric/device.hpp"
#include "util/units.hpp"

namespace prtr::bitstream {

// ---- byte-level zero-run codec -----------------------------------------

/// Compresses `data` with the ZRL codec.
[[nodiscard]] std::vector<std::uint8_t> zrlCompress(
    std::span<const std::uint8_t> data);

/// Decompresses a ZRL stream; throws BitstreamError on malformed input.
[[nodiscard]] std::vector<std::uint8_t> zrlDecompress(
    std::span<const std::uint8_t> data);

/// compressed size / original size for `data` (1.0 = incompressible).
[[nodiscard]] double zrlRatio(std::span<const std::uint8_t> data);

// ---- frame-level multi-frame write -------------------------------------

/// MFW analysis of one partial stream.
struct MfwPlan {
  std::uint32_t totalFrames = 0;
  std::uint32_t uniqueFrames = 0;   ///< distinct payloads actually written
  util::Bytes wireBytes{};          ///< header + unique payloads + addresses
  util::Bytes rawBytes{};           ///< original stream size

  [[nodiscard]] double frameDedupRatio() const noexcept {
    return totalFrames ? static_cast<double>(uniqueFrames) /
                             static_cast<double>(totalFrames)
                       : 1.0;
  }
};

/// Builds the MFW plan for a partial `stream` on `device`: groups frames by
/// identical payload.
[[nodiscard]] MfwPlan planMfw(const Bitstream& stream,
                              const fabric::Device& device);

/// ICAP drain time under MFW: unique payloads stream at the port rate,
/// repeated frames cost only an address/command word each.
/// `payloadTimePerFrame` and `addressTime` come from the controller model.
[[nodiscard]] util::Time mfwDrainTime(const MfwPlan& plan,
                                      util::Time payloadTimePerFrame,
                                      util::Time addressTime);

}  // namespace prtr::bitstream
