#pragma once
/// \file library.hpp
/// Bitstream library: caches generated streams per (region, module) and
/// accounts for the flow cost comparison of paper section 2.2 — a module-
/// based flow needs n fixed-size bitstreams per region, a difference-based
/// flow needs n(n-1) variable-size bitstreams.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/builder.hpp"
#include "fabric/floorplan.hpp"

namespace prtr::bitstream {

/// Per-flow bitstream inventory statistics.
struct FlowStats {
  std::size_t streamCount = 0;
  util::Bytes totalBytes{};
  util::Bytes minBytes{};
  util::Bytes maxBytes{};
};

/// Owns every bitstream needed to run a module set on a floorplan.
class Library {
 public:
  /// A module to be made loadable into PRRs.
  struct ModuleSpec {
    ModuleId id = 0;
    std::string name;
    double occupancy = 1.0;  ///< fraction of region frames carrying content
  };

  Library(const fabric::Floorplan& floorplan, std::vector<ModuleSpec> modules);

  /// Module-based flow: builds one stream per (PRR, module).
  /// Returns aggregate stats; streams are retained for lookup.
  FlowStats buildModuleFlow();

  /// Difference-based flow: builds one stream per (PRR, from, to), from != to.
  FlowStats buildDifferenceFlow();

  /// Module-based stream for `module` in PRR `prrIndex` (built on demand).
  [[nodiscard]] const Bitstream& modulePartial(std::size_t prrIndex, ModuleId module);

  /// The full-device stream (static design + baseline PRR contents).
  [[nodiscard]] const Bitstream& full();

  [[nodiscard]] const std::vector<ModuleSpec>& modules() const noexcept {
    return modules_;
  }
  [[nodiscard]] const fabric::Floorplan& floorplan() const noexcept {
    return *floorplan_;
  }

  /// Streams a module-based flow must hold for n modules (= n per region).
  [[nodiscard]] static std::size_t moduleFlowStreams(std::size_t nModules) noexcept {
    return nModules;
  }
  /// Streams a difference-based flow must hold for n modules (= n(n-1)).
  [[nodiscard]] static std::size_t differenceFlowStreams(std::size_t nModules) noexcept {
    return nModules * (nModules - 1);
  }

 private:
  [[nodiscard]] const ModuleSpec& spec(ModuleId module) const;

  const fabric::Floorplan* floorplan_;
  std::vector<ModuleSpec> modules_;
  Builder builder_;
  std::unique_ptr<Bitstream> full_;
  std::map<std::pair<std::size_t, ModuleId>, Bitstream> modulePartials_;
  std::map<std::tuple<std::size_t, ModuleId, ModuleId>, Bitstream> diffPartials_;
};

}  // namespace prtr::bitstream
