#pragma once
/// \file library.hpp
/// Bitstream library: caches generated streams per (region, module) and
/// accounts for the flow cost comparison of paper section 2.2 — a module-
/// based flow needs n fixed-size bitstreams per region, a difference-based
/// flow needs n(n-1) variable-size bitstreams.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/builder.hpp"
#include "fabric/floorplan.hpp"
#include "prof/profiler.hpp"

namespace prtr::bitstream {

/// Per-flow bitstream inventory statistics.
struct FlowStats {
  std::size_t streamCount = 0;
  util::Bytes totalBytes{};
  util::Bytes minBytes{};
  util::Bytes maxBytes{};
};

/// Content address of one stream a Library needs: everything the stream's
/// bytes are a pure function of. Two sweep points on the same device,
/// floorplan, module, and flow produce byte-identical streams, so a cache
/// keyed by hash() (CRC-32 based; see exec::ArtifactCache) can share them.
struct StreamKey {
  enum class Flow : std::uint8_t { kFull, kModule, kDifference };

  std::uint32_t deviceTag = 0;     ///< CRC-32 of the device name
  std::uint32_t geometryCrc = 0;   ///< CRC-32 of the frame/encoding geometry
  Flow flow = Flow::kFull;
  std::uint32_t firstFrame = 0;    ///< region base (0 for full streams)
  std::uint32_t frameCount = 0;    ///< region frames (0 for full streams)
  ModuleId fromModule = 0;         ///< difference source (0 otherwise)
  ModuleId toModule = 0;           ///< target module / full designId
  double fromOccupancy = 0.0;
  double toOccupancy = 0.0;

  /// 64-bit content address of the key fields.
  [[nodiscard]] std::uint64_t hash() const noexcept;
};

/// Pluggable stream provider: given the content address and a builder for
/// the stream, returns a shared handle (typically memoized — see
/// exec::cachingStreamSource). An empty source means "always build".
using StreamSource = std::function<std::shared_ptr<const Bitstream>(
    const StreamKey&, const std::function<Bitstream()>&)>;

/// Owns every bitstream needed to run a module set on a floorplan.
class Library {
 public:
  /// A module to be made loadable into PRRs.
  struct ModuleSpec {
    ModuleId id = 0;
    std::string name;
    double occupancy = 1.0;  ///< fraction of region frames carrying content
  };

  /// `source`, when set, resolves every stream build (see StreamSource);
  /// unset, the library builds and owns each stream privately.
  Library(const fabric::Floorplan& floorplan, std::vector<ModuleSpec> modules,
          StreamSource source = {});

  /// Module-based flow: builds one stream per (PRR, module).
  /// Returns aggregate stats; streams are retained for lookup.
  FlowStats buildModuleFlow();

  /// Difference-based flow: builds one stream per (PRR, from, to), from != to.
  FlowStats buildDifferenceFlow();

  /// Module-based stream for `module` in PRR `prrIndex` (built on demand).
  [[nodiscard]] const Bitstream& modulePartial(std::size_t prrIndex, ModuleId module);

  /// Difference stream switching PRR `prrIndex` from `from` to `to`
  /// (built on demand; also the unit of work of buildDifferenceFlow).
  [[nodiscard]] const Bitstream& differencePartial(std::size_t prrIndex,
                                                   ModuleId from, ModuleId to);

  /// Recovery-ladder rung: `module`'s stream rebuilt at occupancy 1.0, so
  /// every frame in the PRR is rewritten — including frames a sparse module
  /// partial would skip and leave corrupted. Shares the module partial when
  /// the module already occupies the whole region.
  [[nodiscard]] const Bitstream& prrReload(std::size_t prrIndex, ModuleId module);

  /// The full-device stream (static design + baseline PRR contents).
  [[nodiscard]] const Bitstream& full();

  [[nodiscard]] const std::vector<ModuleSpec>& modules() const noexcept {
    return modules_;
  }
  [[nodiscard]] const fabric::Floorplan& floorplan() const noexcept {
    return *floorplan_;
  }

  /// Streams a module-based flow must hold for n modules (= n per region).
  [[nodiscard]] static std::size_t moduleFlowStreams(std::size_t nModules) noexcept {
    return nModules;
  }
  /// Streams a difference-based flow must hold for n modules (= n(n-1)).
  [[nodiscard]] static std::size_t differenceFlowStreams(std::size_t nModules) noexcept {
    return nModules * (nModules - 1);
  }

  /// Attaches a wall-clock profiler: every actual stream synthesis (cache
  /// hits excluded) is timed under "bitstream.build". Null = off.
  void setProfiler(prof::Profiler* profiler) noexcept { profiler_ = profiler; }

 private:
  [[nodiscard]] const ModuleSpec& spec(ModuleId module) const;
  /// Key template carrying the device/geometry tags of this floorplan.
  [[nodiscard]] StreamKey keyBase() const noexcept;
  /// Resolves via source_ when set, else builds privately.
  [[nodiscard]] std::shared_ptr<const Bitstream> resolve(
      const StreamKey& key, const std::function<Bitstream()>& build);

  const fabric::Floorplan* floorplan_;
  std::vector<ModuleSpec> modules_;
  Builder builder_;
  StreamSource source_;
  prof::Profiler* profiler_ = nullptr;
  std::uint32_t deviceTag_ = 0;
  std::uint32_t geometryCrc_ = 0;
  std::shared_ptr<const Bitstream> full_;
  std::map<std::pair<std::size_t, ModuleId>, std::shared_ptr<const Bitstream>>
      modulePartials_;
  std::map<std::tuple<std::size_t, ModuleId, ModuleId>,
           std::shared_ptr<const Bitstream>>
      diffPartials_;
  std::map<std::pair<std::size_t, ModuleId>, std::shared_ptr<const Bitstream>>
      prrReloads_;
};

}  // namespace prtr::bitstream
