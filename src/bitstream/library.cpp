#include "bitstream/library.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

void accumulate(FlowStats& stats, const Bitstream& stream) {
  const util::Bytes size = stream.size();
  if (stats.streamCount == 0) {
    stats.minBytes = stats.maxBytes = size;
  } else {
    stats.minBytes = std::min(stats.minBytes, size);
    stats.maxBytes = std::max(stats.maxBytes, size);
  }
  ++stats.streamCount;
  stats.totalBytes += size;
}

}  // namespace

Library::Library(const fabric::Floorplan& floorplan, std::vector<ModuleSpec> modules)
    : floorplan_(&floorplan),
      modules_(std::move(modules)),
      builder_(floorplan.device()) {
  util::require(!modules_.empty(), "Library: need at least one module");
  for (const ModuleSpec& m : modules_) {
    util::require(m.id != 0, "Library: module id 0 is reserved for the baseline");
  }
}

const Library::ModuleSpec& Library::spec(ModuleId module) const {
  const auto it = std::find_if(modules_.begin(), modules_.end(),
                               [&](const ModuleSpec& m) { return m.id == module; });
  util::require(it != modules_.end(), "Library: unknown module id");
  return *it;
}

FlowStats Library::buildModuleFlow() {
  FlowStats stats;
  for (std::size_t prr = 0; prr < floorplan_->prrCount(); ++prr) {
    for (const ModuleSpec& m : modules_) {
      accumulate(stats, modulePartial(prr, m.id));
    }
  }
  return stats;
}

FlowStats Library::buildDifferenceFlow() {
  FlowStats stats;
  for (std::size_t prr = 0; prr < floorplan_->prrCount(); ++prr) {
    const fabric::Region& region = floorplan_->prr(prr);
    for (const ModuleSpec& from : modules_) {
      for (const ModuleSpec& to : modules_) {
        if (from.id == to.id) continue;
        const auto key = std::make_tuple(prr, from.id, to.id);
        auto it = diffPartials_.find(key);
        if (it == diffPartials_.end()) {
          it = diffPartials_
                   .emplace(key, builder_.buildDifferencePartial(
                                     region, from.id, from.occupancy, to.id,
                                     to.occupancy))
                   .first;
        }
        accumulate(stats, it->second);
      }
    }
  }
  return stats;
}

const Bitstream& Library::modulePartial(std::size_t prrIndex, ModuleId module) {
  const auto key = std::make_pair(prrIndex, module);
  auto it = modulePartials_.find(key);
  if (it == modulePartials_.end()) {
    const ModuleSpec& m = spec(module);
    it = modulePartials_
             .emplace(key, builder_.buildModulePartial(floorplan_->prr(prrIndex),
                                                       m.id, m.occupancy))
             .first;
  }
  return it->second;
}

const Bitstream& Library::full() {
  if (!full_) {
    full_ = std::make_unique<Bitstream>(builder_.buildFull(/*designId=*/1));
  }
  return *full_;
}

}  // namespace prtr::bitstream
