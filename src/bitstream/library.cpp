#include "bitstream/library.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <tuple>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

void accumulate(FlowStats& stats, const Bitstream& stream) {
  const util::Bytes size = stream.size();
  if (stats.streamCount == 0) {
    stats.minBytes = stats.maxBytes = size;
  } else {
    stats.minBytes = std::min(stats.minBytes, size);
    stats.maxBytes = std::max(stats.maxBytes, size);
  }
  ++stats.streamCount;
  stats.totalBytes += size;
}

void feed(util::Crc32& crc, std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  crc.update(bytes);
}

/// CRC-32 of everything stream sizes/content depend on: rows, per-column
/// kind/frame layout, and the encoding constants.
std::uint32_t geometryCrc(const fabric::DeviceGeometry& geometry) {
  util::Crc32 crc;
  feed(crc, geometry.rows());
  for (const fabric::ColumnSpec& column : geometry.columns()) {
    feed(crc, static_cast<std::uint64_t>(column.kind));
    feed(crc, column.frames);
  }
  const fabric::DeviceGeometry::Encoding& enc = geometry.encoding();
  feed(crc, enc.frameBytes);
  feed(crc, enc.fullOverheadBytes);
  feed(crc, enc.partialOverheadBytes);
  feed(crc, enc.frameAddressBytes);
  return crc.value();
}

/// Process-wide memoization of stream synthesis. Stream bytes are a pure
/// function of the StreamKey fields, and Bitstream is immutable, so every
/// library asking for the same content shares one copy instead of paying
/// the multi-millisecond synthesis again (the FRTR and PRTR sides of one
/// scenario, and every point of a sweep, need identical streams). Keyed by
/// the full field tuple — not hash() — so a collision can never alias two
/// different streams. Entries live for the process; a sweep's worth of
/// distinct streams is a few tens of megabytes.
class StreamMemo {
 public:
  std::shared_ptr<const Bitstream> getOrBuild(
      const StreamKey& key, const std::function<Bitstream()>& build) {
    const auto mapKey =
        std::make_tuple(key.deviceTag, key.geometryCrc, key.flow,
                        key.firstFrame, key.frameCount, key.fromModule,
                        key.toModule, key.fromOccupancy, key.toOccupancy);
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      const auto it = map_.find(mapKey);
      if (it != map_.end()) return it->second;
    }
    // Build outside the lock: concurrent first requests may synthesize
    // twice, but both produce identical bytes and the first insert wins.
    auto stream = std::make_shared<const Bitstream>(build());
    const std::lock_guard<std::mutex> lock{mutex_};
    return map_.emplace(mapKey, std::move(stream)).first->second;
  }

 private:
  using MapKey = std::tuple<std::uint32_t, std::uint32_t, StreamKey::Flow,
                            std::uint32_t, std::uint32_t, ModuleId, ModuleId,
                            double, double>;
  std::mutex mutex_;
  std::map<MapKey, std::shared_ptr<const Bitstream>> map_;
};

StreamMemo& streamMemo() {
  static StreamMemo memo;
  return memo;
}

}  // namespace

std::uint64_t StreamKey::hash() const noexcept {
  util::Crc32 crc;
  feed(crc, deviceTag);
  feed(crc, geometryCrc);
  feed(crc, static_cast<std::uint64_t>(flow));
  feed(crc, firstFrame);
  feed(crc, frameCount);
  feed(crc, fromModule);
  feed(crc, toModule);
  feed(crc, std::bit_cast<std::uint64_t>(fromOccupancy));
  feed(crc, std::bit_cast<std::uint64_t>(toOccupancy));
  // Widen the CRC with the flow tag and frame count so the three flows (and
  // differently sized regions) land in disjoint 64-bit ranges even on a
  // 32-bit CRC collision.
  return (static_cast<std::uint64_t>(crc.value()) << 32) |
         (static_cast<std::uint64_t>(flow) << 24) |
         (frameCount & 0xFFFFFFu);
}

Library::Library(const fabric::Floorplan& floorplan,
                 std::vector<ModuleSpec> modules, StreamSource source)
    : floorplan_(&floorplan),
      modules_(std::move(modules)),
      builder_(floorplan.device()),
      source_(std::move(source)),
      deviceTag_(deviceTag(floorplan.device().name())),
      geometryCrc_(geometryCrc(floorplan.device().geometry())) {
  util::require(!modules_.empty(), "Library: need at least one module");
  for (const ModuleSpec& m : modules_) {
    util::require(m.id != 0, "Library: module id 0 is reserved for the baseline");
  }
}

const Library::ModuleSpec& Library::spec(ModuleId module) const {
  const auto it = std::find_if(modules_.begin(), modules_.end(),
                               [&](const ModuleSpec& m) { return m.id == module; });
  util::require(it != modules_.end(), "Library: unknown module id");
  return *it;
}

StreamKey Library::keyBase() const noexcept {
  StreamKey key;
  key.deviceTag = deviceTag_;
  key.geometryCrc = geometryCrc_;
  return key;
}

std::shared_ptr<const Bitstream> Library::resolve(
    const StreamKey& key, const std::function<Bitstream()>& build) {
  if (profiler_ == nullptr) {
    if (source_) return source_(key, build);
    return streamMemo().getOrBuild(key, build);
  }
  // Time actual synthesis only: a memoizing source (or the process-wide
  // memo) that hits its cache never invokes the builder, so no scope opens
  // for it.
  prof::Profiler* profiler = profiler_;
  const std::function<Bitstream()> timed = [&build, profiler] {
    const prof::Scope scope{profiler, "bitstream.build"};
    return build();
  };
  if (source_) return source_(key, timed);
  return streamMemo().getOrBuild(key, timed);
}

FlowStats Library::buildModuleFlow() {
  FlowStats stats;
  for (std::size_t prr = 0; prr < floorplan_->prrCount(); ++prr) {
    for (const ModuleSpec& m : modules_) {
      accumulate(stats, modulePartial(prr, m.id));
    }
  }
  return stats;
}

FlowStats Library::buildDifferenceFlow() {
  FlowStats stats;
  for (std::size_t prr = 0; prr < floorplan_->prrCount(); ++prr) {
    for (const ModuleSpec& from : modules_) {
      for (const ModuleSpec& to : modules_) {
        if (from.id == to.id) continue;
        accumulate(stats, differencePartial(prr, from.id, to.id));
      }
    }
  }
  return stats;
}

const Bitstream& Library::differencePartial(std::size_t prrIndex,
                                            ModuleId from, ModuleId to) {
  util::require(from != to, "Library: difference stream needs distinct modules");
  const auto mapKey = std::make_tuple(prrIndex, from, to);
  auto it = diffPartials_.find(mapKey);
  if (it == diffPartials_.end()) {
    const ModuleSpec& fromSpec = spec(from);
    const ModuleSpec& toSpec = spec(to);
    const fabric::Region& region = floorplan_->prr(prrIndex);
    const fabric::FrameRange frames = region.frames(floorplan_->device());
    StreamKey key = keyBase();
    key.flow = StreamKey::Flow::kDifference;
    key.firstFrame = frames.first;
    key.frameCount = frames.count;
    key.fromModule = fromSpec.id;
    key.toModule = toSpec.id;
    key.fromOccupancy = fromSpec.occupancy;
    key.toOccupancy = toSpec.occupancy;
    auto build = [&] {
      return builder_.buildDifferencePartial(region, fromSpec.id,
                                             fromSpec.occupancy, toSpec.id,
                                             toSpec.occupancy);
    };
    it = diffPartials_.emplace(mapKey, resolve(key, build)).first;
  }
  return *it->second;
}

const Bitstream& Library::prrReload(std::size_t prrIndex, ModuleId module) {
  const ModuleSpec& m = spec(module);
  if (m.occupancy >= 1.0) return modulePartial(prrIndex, module);
  const auto mapKey = std::make_pair(prrIndex, module);
  auto it = prrReloads_.find(mapKey);
  if (it == prrReloads_.end()) {
    const fabric::Region& region = floorplan_->prr(prrIndex);
    const fabric::FrameRange frames = region.frames(floorplan_->device());
    StreamKey key = keyBase();
    key.flow = StreamKey::Flow::kModule;
    key.firstFrame = frames.first;
    key.frameCount = frames.count;
    key.toModule = m.id;
    key.toOccupancy = 1.0;  // rewrite every frame in the region
    auto build = [&] {
      return builder_.buildModulePartial(region, m.id, /*occupancy=*/1.0);
    };
    it = prrReloads_.emplace(mapKey, resolve(key, build)).first;
  }
  return *it->second;
}

const Bitstream& Library::modulePartial(std::size_t prrIndex, ModuleId module) {
  const auto mapKey = std::make_pair(prrIndex, module);
  auto it = modulePartials_.find(mapKey);
  if (it == modulePartials_.end()) {
    const ModuleSpec& m = spec(module);
    const fabric::Region& region = floorplan_->prr(prrIndex);
    const fabric::FrameRange frames = region.frames(floorplan_->device());
    StreamKey key = keyBase();
    key.flow = StreamKey::Flow::kModule;
    key.firstFrame = frames.first;
    key.frameCount = frames.count;
    key.toModule = m.id;
    key.toOccupancy = m.occupancy;
    auto build = [&] {
      return builder_.buildModulePartial(region, m.id, m.occupancy);
    };
    it = modulePartials_.emplace(mapKey, resolve(key, build)).first;
  }
  return *it->second;
}

const Bitstream& Library::full() {
  if (!full_) {
    StreamKey key = keyBase();
    key.flow = StreamKey::Flow::kFull;
    key.toModule = 1;  // designId of the static + baseline design
    full_ = resolve(key, [&] { return builder_.buildFull(/*designId=*/1); });
  }
  return *full_;
}

}  // namespace prtr::bitstream
