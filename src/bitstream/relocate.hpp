#pragma once
/// \file relocate.hpp
/// Module relocation — the capability behind the paper's reference [24]
/// ("Configuration Prefetching Techniques for Partial Reconfigurable
/// Coprocessor with Relocation and Defragmentation"): retargeting a
/// module-based partial bitstream from one PRR to another *without*
/// re-implementing the module, by rewriting its frame addresses.
///
/// Relocation is only legal between regions with identical column
/// signatures (same kinds in the same order), because frame contents are
/// column-kind specific. With relocation, a library needs only one stream
/// per module instead of one per (module, PRR) pair — halving storage on
/// the dual-PRR layout.

#include "bitstream/format.hpp"
#include "bitstream/parser.hpp"
#include "fabric/region.hpp"

namespace prtr::bitstream {

/// True when `a` and `b` have identical column-kind signatures (and hence
/// identical frame counts), making relocation between them lossless.
[[nodiscard]] bool regionsCompatible(const fabric::Device& device,
                                     const fabric::Region& a,
                                     const fabric::Region& b);

/// Rewrites `stream` (a module-based partial for region `from`) so it
/// targets region `to`. Frame payloads are preserved; addresses shift by
/// the region offset and the CRC is recomputed.
/// Throws DomainError when the regions are incompatible and BitstreamError
/// when `stream` is not a partial for `from`.
[[nodiscard]] Bitstream relocate(const Bitstream& stream,
                                 const fabric::Device& device,
                                 const fabric::Region& from,
                                 const fabric::Region& to);

/// Storage accounting: bytes held by a per-(module, PRR) library versus a
/// relocatable one-stream-per-module library, for `nModules` modules and
/// `nCompatibleRegions` mutually compatible PRRs.
struct RelocationSavings {
  util::Bytes withoutRelocation;
  util::Bytes withRelocation;

  [[nodiscard]] double ratio() const noexcept {
    return withRelocation.count()
               ? static_cast<double>(withoutRelocation.count()) /
                     static_cast<double>(withRelocation.count())
               : 0.0;
  }
};

[[nodiscard]] RelocationSavings relocationSavings(util::Bytes streamBytes,
                                                  std::size_t nModules,
                                                  std::size_t nCompatibleRegions);

}  // namespace prtr::bitstream
