#pragma once
/// \file parser.hpp
/// Structural validation and decoding of XBF streams. The configuration
/// engine parses every stream before applying it, mirroring the checks a
/// real configuration controller performs (and the ones the Cray API layers
/// on top — see config/vendor_api.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/format.hpp"
#include "fabric/device.hpp"

namespace prtr::bitstream {

/// A decoded frame write.
struct FrameWrite {
  std::uint32_t frame = 0;
  std::span<const std::uint8_t> payload;
};

/// Parsed view over a validated stream. Non-owning: the underlying byte
/// buffer must outlive the view.
struct ParsedStream {
  Header header;
  std::vector<FrameWrite> writes;
};

/// Parses and validates `bytes` against `device`'s geometry.
/// Throws BitstreamError on: bad magic, unknown type, device mismatch,
/// truncated data, out-of-range frame addresses, or CRC failure.
[[nodiscard]] ParsedStream parse(std::span<const std::uint8_t> bytes,
                                 const fabric::Device& device);

/// Convenience overload.
[[nodiscard]] inline ParsedStream parse(const Bitstream& stream,
                                        const fabric::Device& device) {
  return parse(std::span{stream.bytes()}, device);
}

/// Cheap header-only peek (no CRC walk); used by size/type checks.
[[nodiscard]] Header peekHeader(std::span<const std::uint8_t> bytes);

}  // namespace prtr::bitstream
