#include "bitstream/compress.hpp"

#include <map>

#include "bitstream/parser.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

// ZRL token grammar:
//   0x00 <count>            run of <count>+1 zero bytes (count 0..254)
//   0x00 0xFF <lo> <hi>     run of 256..65535+256 zeros (little endian,
//                           value stored minus 256)
//   0x01 <count> <bytes...> literal block of <count>+1 bytes (count 0..254)
constexpr std::uint8_t kZeroRun = 0x00;
constexpr std::uint8_t kLiteral = 0x01;
constexpr std::size_t kMaxShortRun = 255;        // encoded as count+1
constexpr std::size_t kMaxLongRun = 65535 + 256;
constexpr std::size_t kMaxLiteral = 255;
// Zero runs shorter than this ride inside literals: a run token costs two
// bytes, so breaking a literal is only worth it for longer runs.
constexpr std::size_t kMinRun = 4;

}  // namespace

std::vector<std::uint8_t> zrlCompress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 16);

  std::vector<std::uint8_t> literal;
  auto flushLiteral = [&] {
    std::size_t at = 0;
    while (at < literal.size()) {
      const std::size_t len = std::min(kMaxLiteral, literal.size() - at);
      out.push_back(kLiteral);
      out.push_back(static_cast<std::uint8_t>(len - 1));
      out.insert(out.end(), literal.begin() + static_cast<std::ptrdiff_t>(at),
                 literal.begin() + static_cast<std::ptrdiff_t>(at + len));
      at += len;
    }
    literal.clear();
  };

  std::size_t i = 0;
  while (i < data.size()) {
    if (data[i] == 0) {
      std::size_t run = 0;
      while (i + run < data.size() && data[i + run] == 0 && run < kMaxLongRun) {
        ++run;
      }
      if (run < kMinRun) {
        literal.insert(literal.end(), run, 0);  // too short to tokenize
      } else {
        flushLiteral();
        if (run <= kMaxShortRun) {
          out.push_back(kZeroRun);
          out.push_back(static_cast<std::uint8_t>(run - 1));
        } else {
          const std::size_t stored = run - 256;
          out.push_back(kZeroRun);
          out.push_back(0xFF);
          out.push_back(static_cast<std::uint8_t>(stored));
          out.push_back(static_cast<std::uint8_t>(stored >> 8));
        }
      }
      i += run;
    } else {
      literal.push_back(data[i++]);
    }
  }
  flushLiteral();
  return out;
}

std::vector<std::uint8_t> zrlDecompress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t tag = data[i++];
    if (tag == kZeroRun) {
      if (i >= data.size()) throw util::BitstreamError{"ZRL: truncated run"};
      const std::uint8_t count = data[i++];
      if (count == 0xFF) {
        if (i + 2 > data.size()) throw util::BitstreamError{"ZRL: truncated long run"};
        const std::size_t stored = static_cast<std::size_t>(data[i]) |
                                   static_cast<std::size_t>(data[i + 1]) << 8;
        i += 2;
        out.insert(out.end(), stored + 256, 0);
      } else {
        out.insert(out.end(), static_cast<std::size_t>(count) + 1, 0);
      }
    } else if (tag == kLiteral) {
      if (i >= data.size()) throw util::BitstreamError{"ZRL: truncated literal"};
      const std::size_t len = static_cast<std::size_t>(data[i++]) + 1;
      if (i + len > data.size()) {
        throw util::BitstreamError{"ZRL: literal overruns input"};
      }
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                 data.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else {
      throw util::BitstreamError{"ZRL: unknown token"};
    }
  }
  return out;
}

double zrlRatio(std::span<const std::uint8_t> data) {
  if (data.empty()) return 1.0;
  return static_cast<double>(zrlCompress(data).size()) /
         static_cast<double>(data.size());
}

MfwPlan planMfw(const Bitstream& stream, const fabric::Device& device) {
  if (!stream.isPartial()) {
    throw util::BitstreamError{"planMfw: MFW applies to partial streams"};
  }
  const ParsedStream parsed = parse(stream, device);
  const auto& enc = device.geometry().encoding();

  MfwPlan plan;
  plan.totalFrames = static_cast<std::uint32_t>(parsed.writes.size());
  plan.rawBytes = stream.size();

  // Group frames by payload content.
  std::map<std::vector<std::uint8_t>, std::uint32_t> groups;
  for (const FrameWrite& write : parsed.writes) {
    ++groups[std::vector<std::uint8_t>(write.payload.begin(),
                                       write.payload.end())];
  }
  plan.uniqueFrames = static_cast<std::uint32_t>(groups.size());
  plan.wireBytes = util::Bytes{
      enc.partialOverheadBytes +
      static_cast<std::uint64_t>(plan.uniqueFrames) * enc.frameBytes +
      static_cast<std::uint64_t>(plan.totalFrames) * enc.frameAddressBytes};
  return plan;
}

util::Time mfwDrainTime(const MfwPlan& plan, util::Time payloadTimePerFrame,
                        util::Time addressTime) {
  return payloadTimePerFrame * static_cast<std::int64_t>(plan.uniqueFrames) +
         addressTime * static_cast<std::int64_t>(plan.totalFrames);
}

}  // namespace prtr::bitstream
