#include "bitstream/format.hpp"

#include <span>

#include "util/crc32.hpp"

namespace prtr::bitstream {

const char* toString(StreamType type) noexcept {
  switch (type) {
    case StreamType::kFull: return "full";
    case StreamType::kPartial: return "partial";
  }
  return "?";
}

std::uint32_t deviceTag(const std::string& deviceName) noexcept {
  return util::Crc32::of(std::span{
      reinterpret_cast<const std::uint8_t*>(deviceName.data()), deviceName.size()});
}

}  // namespace prtr::bitstream
