#include "bitstream/parser.hpp"

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {
namespace {

std::uint32_t getU32(std::span<const std::uint8_t> bytes, std::size_t at) {
  if (at + 4 > bytes.size()) throw util::BitstreamError{"XBF: truncated word"};
  return static_cast<std::uint32_t>(bytes[at]) |
         static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[at + 3]) << 24;
}

std::uint64_t getU64(std::span<const std::uint8_t> bytes, std::size_t at) {
  return static_cast<std::uint64_t>(getU32(bytes, at)) |
         static_cast<std::uint64_t>(getU32(bytes, at + 4)) << 32;
}

}  // namespace

Header peekHeader(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 32) throw util::BitstreamError{"XBF: stream too short"};
  if (getU32(bytes, 0) != Header::kMagic) {
    throw util::BitstreamError{"XBF: bad magic"};
  }
  Header header;
  const std::uint8_t type = bytes[4];
  if (type != static_cast<std::uint8_t>(StreamType::kFull) &&
      type != static_cast<std::uint8_t>(StreamType::kPartial)) {
    throw util::BitstreamError{"XBF: unknown stream type"};
  }
  header.type = static_cast<StreamType>(type);
  header.deviceTag = getU32(bytes, 8);
  header.firstFrame = getU32(bytes, 12);
  header.frameCount = getU32(bytes, 16);
  header.frameBytes = getU32(bytes, 20);
  header.moduleId = getU64(bytes, 24);
  return header;
}

ParsedStream parse(std::span<const std::uint8_t> bytes,
                   const fabric::Device& device) {
  const Header header = peekHeader(bytes);
  const auto& geometry = device.geometry();
  const auto& enc = geometry.encoding();

  if (header.deviceTag != deviceTag(device.name())) {
    throw util::BitstreamError{"XBF: stream targets a different device"};
  }
  if (header.frameBytes != enc.frameBytes) {
    throw util::BitstreamError{"XBF: frame size does not match device"};
  }

  // CRC over everything but the 4-byte trailer.
  if (bytes.size() < 4) throw util::BitstreamError{"XBF: missing CRC"};
  const std::uint32_t expected = getU32(bytes, bytes.size() - 4);
  const std::uint32_t actual = util::Crc32::of(bytes.subspan(0, bytes.size() - 4));
  if (expected != actual) throw util::BitstreamError{"XBF: CRC mismatch"};

  ParsedStream out;
  out.header = header;
  out.writes.reserve(header.frameCount);

  if (header.type == StreamType::kFull) {
    if (header.frameCount != geometry.totalFrames()) {
      throw util::BitstreamError{"XBF: full stream frame count mismatch"};
    }
    std::size_t at = enc.fullOverheadBytes - 4;
    for (std::uint32_t frame = 0; frame < header.frameCount; ++frame) {
      if (at + enc.frameBytes + 4 > bytes.size()) {
        throw util::BitstreamError{"XBF: truncated full stream"};
      }
      out.writes.push_back(FrameWrite{frame, bytes.subspan(at, enc.frameBytes)});
      at += enc.frameBytes;
    }
  } else {
    std::size_t at = enc.partialOverheadBytes - 4;
    for (std::uint32_t i = 0; i < header.frameCount; ++i) {
      const std::uint32_t frame = getU32(bytes, at);
      at += enc.frameAddressBytes;
      if (frame >= geometry.totalFrames()) {
        throw util::BitstreamError{"XBF: frame address out of range"};
      }
      if (at + enc.frameBytes + 4 > bytes.size()) {
        throw util::BitstreamError{"XBF: truncated partial stream"};
      }
      out.writes.push_back(FrameWrite{frame, bytes.subspan(at, enc.frameBytes)});
      at += enc.frameBytes;
    }
  }
  return out;
}

}  // namespace prtr::bitstream
