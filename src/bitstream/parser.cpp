#include "bitstream/parser.hpp"

#include "analyze/checks_bitstream.hpp"
#include "util/error.hpp"

namespace prtr::bitstream {

// Both entry points delegate to the analyze scanners so the parser and
// prtr-lint can never disagree about what makes a stream malformed; the
// first error-severity diagnostic becomes the thrown BitstreamError.

Header peekHeader(std::span<const std::uint8_t> bytes) {
  analyze::DiagnosticSink sink;
  const auto header = analyze::scanHeader(bytes, sink);
  if (!header) throw util::BitstreamError{"XBF: " + sink.firstError().format()};
  return *header;
}

ParsedStream parse(std::span<const std::uint8_t> bytes,
                   const fabric::Device& device) {
  analyze::DiagnosticSink sink;
  analyze::StreamScan scan = analyze::scanStream(bytes, device, sink);
  if (sink.hasErrors()) {
    throw util::BitstreamError{"XBF: " + sink.firstError().format()};
  }
  ParsedStream out;
  out.header = scan.header;
  out.writes = std::move(scan.writes);
  return out;
}

}  // namespace prtr::bitstream
