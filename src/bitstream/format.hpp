#pragma once
/// \file format.hpp
/// "XBF" — the synthetic bitstream encoding used by this library.
///
/// Real Xilinx bitstreams are opaque command streams; what matters to the
/// paper is their *size* (configuration time = size / port throughput) and
/// their structure (full streams write every frame sequentially; partial
/// streams carry per-frame addresses). XBF mirrors exactly that:
///
///   full:    [header: fullOverhead-4 bytes][frame payloads][crc32]
///   partial: [header: partialOverhead-4 bytes][{addr,payload}...][crc32]
///
/// Header fields live at the front of the header block; the remainder is
/// zero padding standing in for the command preamble of a real stream.

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/geometry.hpp"
#include "util/units.hpp"

namespace prtr::bitstream {

/// Stream type discriminator.
enum class StreamType : std::uint8_t { kFull = 1, kPartial = 2 };

[[nodiscard]] const char* toString(StreamType type) noexcept;

/// Decoded header fields (see format description above).
struct Header {
  static constexpr std::uint32_t kMagic = 0x58424631;  // "XBF1"

  StreamType type = StreamType::kFull;
  std::uint32_t deviceTag = 0;    ///< CRC-32 of the device name
  std::uint32_t firstFrame = 0;   ///< first frame index (partial only)
  std::uint32_t frameCount = 0;   ///< frames carried
  std::uint32_t frameBytes = 0;   ///< payload bytes per frame
  std::uint64_t moduleId = 0;     ///< identity of the configured design
};

/// An encoded bitstream plus its decoded identity.
class Bitstream {
 public:
  Bitstream(Header header, std::vector<std::uint8_t> bytes)
      : header_(header), bytes_(std::move(bytes)) {}

  [[nodiscard]] const Header& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] util::Bytes size() const noexcept {
    return util::Bytes{bytes_.size()};
  }
  [[nodiscard]] bool isPartial() const noexcept {
    return header_.type == StreamType::kPartial;
  }

 private:
  Header header_;
  std::vector<std::uint8_t> bytes_;
};

/// CRC-32 tag for a device name, stored in headers for compatibility checks.
[[nodiscard]] std::uint32_t deviceTag(const std::string& deviceName) noexcept;

}  // namespace prtr::bitstream
