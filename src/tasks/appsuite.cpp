#include "tasks/appsuite.hpp"

#include "util/error.hpp"

namespace prtr::tasks {
namespace {

/// Index of `name` in `registry` (throws when the library lacks it).
std::size_t fn(const FunctionRegistry& registry, const char* name) {
  const auto index = registry.indexOf(registry.byName(name).id);
  util::require(index.has_value(), "appsuite: function not in registry");
  return *index;
}

}  // namespace

Application makeRemoteSensingApp(const FunctionRegistry& registry,
                                 std::size_t scenes, util::Bytes sceneBytes,
                                 util::Rng& rng) {
  Application app;
  app.name = "remote-sensing";
  app.domain = "on-board cloud-cover assessment (ACCA-style)";
  app.workload.name = app.name;

  const std::size_t smoothing = fn(registry, "smoothing");
  const std::size_t gaussian = fn(registry, "gaussian5x5");
  const std::size_t threshold = fn(registry, "threshold");
  const std::size_t erode = fn(registry, "erode");
  const std::size_t dilate = fn(registry, "dilate");

  for (std::size_t scene = 0; scene < scenes; ++scene) {
    // Radiometric conditioning, two threshold cascades, morphological
    // cleanup; a second cleanup round on hazy scenes.
    app.workload.calls.push_back(TaskCall{smoothing, sceneBytes});
    app.workload.calls.push_back(TaskCall{gaussian, sceneBytes});
    app.workload.calls.push_back(TaskCall{threshold, sceneBytes});
    app.workload.calls.push_back(TaskCall{threshold, sceneBytes});
    app.workload.calls.push_back(TaskCall{erode, sceneBytes});
    app.workload.calls.push_back(TaskCall{dilate, sceneBytes});
    if (rng.chance(0.3)) {
      app.workload.calls.push_back(TaskCall{erode, sceneBytes});
      app.workload.calls.push_back(TaskCall{dilate, sceneBytes});
    }
  }
  return app;
}

Application makeHyperspectralApp(const FunctionRegistry& registry,
                                 std::size_t cubes, std::size_t bandsPerCube,
                                 util::Bytes bandBytes, util::Rng& rng) {
  Application app;
  app.name = "hyperspectral";
  app.domain = "wavelet spectral dimension reduction";
  app.workload.name = app.name;

  const std::size_t smoothing = fn(registry, "smoothing");
  const std::size_t gaussian = fn(registry, "gaussian5x5");
  const std::size_t histeq = fn(registry, "histeq");

  for (std::size_t cube = 0; cube < cubes; ++cube) {
    for (std::size_t band = 0; band < bandsPerCube; ++band) {
      // Two-level pyramid per band; occasional normalization.
      app.workload.calls.push_back(TaskCall{smoothing, bandBytes});
      app.workload.calls.push_back(
          TaskCall{gaussian, util::Bytes{bandBytes.count() / 4}});
      if (rng.chance(0.15)) {
        app.workload.calls.push_back(TaskCall{histeq, bandBytes});
      }
    }
  }
  return app;
}

Application makeTargetRecognitionApp(const FunctionRegistry& registry,
                                     std::size_t frames,
                                     util::Bytes frameBytes,
                                     double hitProbability, util::Rng& rng) {
  util::require(hitProbability >= 0.0 && hitProbability <= 1.0,
                "makeTargetRecognitionApp: hit probability in [0,1]");
  Application app;
  app.name = "target-recognition";
  app.domain = "ATR front end with data-dependent branching";
  app.workload.name = app.name;

  const std::size_t median = fn(registry, "median");
  const std::size_t sobel = fn(registry, "sobel");
  const std::size_t threshold = fn(registry, "threshold");
  const std::size_t dilate = fn(registry, "dilate");
  const std::size_t histeq = fn(registry, "histeq");

  for (std::size_t frame = 0; frame < frames; ++frame) {
    // Detection runs on every frame.
    app.workload.calls.push_back(TaskCall{sobel, frameBytes});
    app.workload.calls.push_back(TaskCall{threshold, frameBytes});
    if (rng.chance(hitProbability)) {
      // Candidate confirmation: the expensive chain, only on hits. This
      // is the "change the course of processing in a non-deterministic
      // fashion based on data" case the paper quotes from ref [27].
      app.workload.calls.push_back(TaskCall{median, frameBytes});
      app.workload.calls.push_back(TaskCall{histeq, frameBytes});
      app.workload.calls.push_back(TaskCall{dilate, frameBytes});
    }
  }
  return app;
}

std::vector<Application> makeApplicationSuite(const FunctionRegistry& registry,
                                              util::Rng& rng) {
  std::vector<Application> suite;
  suite.push_back(
      makeRemoteSensingApp(registry, 12, util::Bytes{30'000'000}, rng));
  suite.push_back(
      makeHyperspectralApp(registry, 4, 16, util::Bytes{4'000'000}, rng));
  suite.push_back(makeTargetRecognitionApp(registry, 40,
                                           util::Bytes{12'000'000}, 0.25, rng));
  return suite;
}

}  // namespace prtr::tasks
