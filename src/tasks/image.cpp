#include "tasks/image.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::tasks {

Image::Image(std::size_t width, std::size_t height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  util::require(width > 0 && height > 0, "Image: dimensions must be positive");
}

std::uint8_t Image::at(std::size_t x, std::size_t y) const {
  util::require(x < width_ && y < height_, "Image: access out of bounds");
  return pixels_[y * width_ + x];
}

std::uint8_t& Image::at(std::size_t x, std::size_t y) {
  util::require(x < width_ && y < height_, "Image: access out of bounds");
  return pixels_[y * width_ + x];
}

std::uint8_t Image::atClamped(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept {
  const auto cx = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(x, 0, static_cast<std::ptrdiff_t>(width_) - 1));
  const auto cy = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(y, 0, static_cast<std::ptrdiff_t>(height_) - 1));
  return pixels_[cy * width_ + cx];
}

double Image::meanIntensity() const noexcept {
  if (pixels_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto p : pixels_) sum += p;
  return sum / static_cast<double>(pixels_.size());
}

double Image::variance() const noexcept {
  if (pixels_.empty()) return 0.0;
  const double mean = meanIntensity();
  double acc = 0.0;
  for (const auto p : pixels_) {
    const double d = static_cast<double>(p) - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(pixels_.size());
}

Image makeNoiseImage(std::size_t width, std::size_t height, util::Rng& rng) {
  Image img{width, height};
  for (auto& p : img.pixels()) p = static_cast<std::uint8_t>(rng.below(256));
  return img;
}

Image makeGradientImage(std::size_t width, std::size_t height) {
  Image img{width, height};
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(
          width > 1 ? 255 * x / (width - 1) : 0);
    }
  }
  return img;
}

Image makeSaltPepperImage(std::size_t width, std::size_t height,
                          std::uint8_t base, double density, util::Rng& rng) {
  util::require(density >= 0.0 && density <= 1.0,
                "makeSaltPepperImage: density outside [0,1]");
  Image img{width, height, base};
  for (auto& p : img.pixels()) {
    if (rng.chance(density)) p = rng.chance(0.5) ? 255 : 0;
  }
  return img;
}

Image makeCheckerboardImage(std::size_t width, std::size_t height,
                            std::size_t tile) {
  util::require(tile > 0, "makeCheckerboardImage: tile must be positive");
  Image img{width, height};
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      img.at(x, y) = ((x / tile + y / tile) % 2 == 0) ? 255 : 0;
    }
  }
  return img;
}

}  // namespace prtr::tasks
