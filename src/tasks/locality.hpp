#pragma once
/// \file locality.hpp
/// Workload locality analysis. The model's H (hit ratio) is a property of
/// the workload crossed with the cache size; Mattson's stack-distance
/// algorithm computes, in one pass, the exact LRU hit ratio for *every*
/// possible PRR count simultaneously. That turns "how many PRRs do I
/// need?" into a table lookup — the quantitative form of the paper's
/// section-2.1 "processing spatial locality" argument.

#include <cstdint>
#include <limits>
#include <vector>

#include "tasks/workload.hpp"

namespace prtr::tasks {

/// Sentinel for first-touch (cold) accesses.
inline constexpr std::size_t kColdAccess = std::numeric_limits<std::size_t>::max();

/// LRU stack distance of every call: the number of *distinct* functions
/// referenced since the previous access to the same function
/// (kColdAccess for first touches). distance d hits in any LRU cache with
/// more than d slots.
[[nodiscard]] std::vector<std::size_t> stackDistances(const Workload& workload);

/// Exact LRU hit ratio of `workload` on a fully-associative cache with
/// `slots` slots (derived from the stack distances; Mattson inclusion).
[[nodiscard]] double lruHitRatio(const Workload& workload, std::size_t slots);

/// Hit-ratio curve for slot counts 1..maxSlots (non-decreasing).
[[nodiscard]] std::vector<double> lruHitRatioCurve(const Workload& workload,
                                                   std::size_t maxSlots);

/// Smallest slot count achieving at least `targetHitRatio`, or 0 when even
/// holding every function misses too often (cold misses are unavoidable).
[[nodiscard]] std::size_t slotsForHitRatio(const Workload& workload,
                                           double targetHitRatio);

/// Locality summary statistics.
struct LocalityProfile {
  std::size_t distinctFunctions = 0;
  std::uint64_t coldMisses = 0;
  double meanFiniteStackDistance = 0.0;  ///< over re-references only
  double selfTransitionRate = 0.0;       ///< immediate-repeat fraction
};

[[nodiscard]] LocalityProfile profileLocality(const Workload& workload);

}  // namespace prtr::tasks
