#pragma once
/// \file image.hpp
/// 8-bit grayscale images: the data the paper's hardware functions (image
/// processing cores, Table 1) operate on. The kernels in kernels.hpp are
/// behavioural models of those cores — functionally real so that tests can
/// assert on outputs, while the simulator only consumes their timing.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace prtr::tasks {

/// Row-major 8-bit grayscale image.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, std::uint8_t fill = 0);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixelCount() const noexcept { return width_ * height_; }
  [[nodiscard]] util::Bytes sizeBytes() const noexcept {
    return util::Bytes{pixelCount()};
  }

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const;
  [[nodiscard]] std::uint8_t& at(std::size_t x, std::size_t y);

  /// Clamped access: coordinates outside the image replicate the border.
  [[nodiscard]] std::uint8_t atClamped(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept;

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  [[nodiscard]] double meanIntensity() const noexcept;
  [[nodiscard]] double variance() const noexcept;

  friend bool operator==(const Image&, const Image&) = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Uniform random noise image.
[[nodiscard]] Image makeNoiseImage(std::size_t width, std::size_t height,
                                   util::Rng& rng);

/// Horizontal intensity gradient (0 at left edge to 255 at right edge).
[[nodiscard]] Image makeGradientImage(std::size_t width, std::size_t height);

/// Flat image with salt-and-pepper impulses at the given density.
[[nodiscard]] Image makeSaltPepperImage(std::size_t width, std::size_t height,
                                        std::uint8_t base, double density,
                                        util::Rng& rng);

/// Checkerboard with the given tile size (strong edges for Sobel tests).
[[nodiscard]] Image makeCheckerboardImage(std::size_t width, std::size_t height,
                                          std::size_t tile);

}  // namespace prtr::tasks
