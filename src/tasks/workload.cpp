#include "tasks/workload.hpp"

#include <set>
#include <sstream>

#include "util/error.hpp"

namespace prtr::tasks {

util::Bytes Workload::totalBytes() const noexcept {
  util::Bytes total{};
  for (const TaskCall& call : calls) total += call.dataBytes;
  return total;
}

std::size_t Workload::distinctFunctions() const {
  std::set<std::size_t> seen;
  for (const TaskCall& call : calls) seen.insert(call.functionIndex);
  return seen.size();
}

Workload makeRoundRobinWorkload(const FunctionRegistry& registry,
                                std::size_t callCount, util::Bytes dataBytes) {
  Workload w{"round-robin", {}};
  w.calls.reserve(callCount);
  for (std::size_t i = 0; i < callCount; ++i) {
    w.calls.push_back(TaskCall{i % registry.size(), dataBytes});
  }
  return w;
}

Workload makeUniformWorkload(const FunctionRegistry& registry,
                             std::size_t callCount, util::Bytes dataBytes,
                             util::Rng& rng) {
  Workload w{"uniform", {}};
  w.calls.reserve(callCount);
  for (std::size_t i = 0; i < callCount; ++i) {
    w.calls.push_back(TaskCall{rng.below(registry.size()), dataBytes});
  }
  return w;
}

Workload makeMarkovWorkload(const FunctionRegistry& registry,
                            std::size_t callCount, util::Bytes dataBytes,
                            double selfBias, util::Rng& rng) {
  util::require(selfBias >= 0.0 && selfBias <= 1.0,
                "makeMarkovWorkload: selfBias outside [0,1]");
  Workload w{"markov", {}};
  w.calls.reserve(callCount);
  std::size_t current = rng.below(registry.size());
  for (std::size_t i = 0; i < callCount; ++i) {
    if (i > 0 && !rng.chance(selfBias)) current = rng.below(registry.size());
    w.calls.push_back(TaskCall{current, dataBytes});
  }
  return w;
}

Workload makePhasedWorkload(const FunctionRegistry& registry,
                            std::size_t callCount, util::Bytes dataBytes,
                            std::size_t phaseLength, std::size_t workingSet,
                            util::Rng& rng) {
  util::require(phaseLength > 0, "makePhasedWorkload: phaseLength must be > 0");
  util::require(workingSet > 0 && workingSet <= registry.size(),
                "makePhasedWorkload: workingSet outside [1, registry size]");
  Workload w{"phased", {}};
  w.calls.reserve(callCount);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < callCount; ++i) {
    if (i % phaseLength == 0) {
      // Draw a fresh working set for the new phase.
      std::set<std::size_t> chosen;
      while (chosen.size() < workingSet) chosen.insert(rng.below(registry.size()));
      active.assign(chosen.begin(), chosen.end());
    }
    w.calls.push_back(TaskCall{active[rng.below(active.size())], dataBytes});
  }
  return w;
}

std::string toCsv(const Workload& workload) {
  std::ostringstream os;
  os << "functionIndex,dataBytes\n";
  for (const TaskCall& call : workload.calls) {
    os << call.functionIndex << ',' << call.dataBytes.count() << '\n';
  }
  return os.str();
}

Workload workloadFromCsv(const std::string& name, const std::string& csv,
                         const FunctionRegistry& registry) {
  Workload w{name, {}};
  std::istringstream is{csv};
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    const auto comma = line.find(',');
    util::require(comma != std::string::npos, "workloadFromCsv: malformed row");
    const auto index = static_cast<std::size_t>(std::stoull(line.substr(0, comma)));
    const auto bytes = std::stoull(line.substr(comma + 1));
    util::require(index < registry.size(),
                  "workloadFromCsv: function index out of range");
    w.calls.push_back(TaskCall{index, util::Bytes{bytes}});
  }
  return w;
}

}  // namespace prtr::tasks
