#pragma once
/// \file appsuite.hpp
/// Synthetic application suite modelled on the HPRC application studies the
/// paper cites in its introduction ([4]-[13]): multi-phase workloads with
/// the call mixes and data volumes of those domains, built from the
/// extended hardware library. These give the executors realistic
/// *structured* call streams (phases, pipelines, data-dependent branches)
/// rather than synthetic stationary mixes.

#include <string>
#include <vector>

#include "tasks/hwfunction.hpp"
#include "tasks/workload.hpp"
#include "util/rng.hpp"

namespace prtr::tasks {

/// A named application workload plus the registry slice it exercises.
struct Application {
  std::string name;
  std::string domain;
  Workload workload;
};

/// Remote-sensing on-board processing (ACCA-style cloud assessment, paper
/// ref [7]): per scene a fixed pipeline of radiometric smoothing,
/// thresholding cascades, and morphological cleanup over large frames.
[[nodiscard]] Application makeRemoteSensingApp(const FunctionRegistry& registry,
                                               std::size_t scenes,
                                               util::Bytes sceneBytes,
                                               util::Rng& rng);

/// Hyperspectral dimension reduction (wavelet spectral reduction, paper
/// ref [9]): many medium-size band images through smoothing/gaussian
/// pyramids with occasional histogram normalization.
[[nodiscard]] Application makeHyperspectralApp(const FunctionRegistry& registry,
                                               std::size_t cubes,
                                               std::size_t bandsPerCube,
                                               util::Bytes bandBytes,
                                               util::Rng& rng);

/// Target-recognition front end (ATR, paper ref [15]): data-dependent
/// branching — detection (Sobel+threshold) on every frame, the heavy
/// cleanup chain only on frames that "hit" (probability `hitProbability`).
[[nodiscard]] Application makeTargetRecognitionApp(
    const FunctionRegistry& registry, std::size_t frames,
    util::Bytes frameBytes, double hitProbability, util::Rng& rng);

/// The full suite with default sizing.
[[nodiscard]] std::vector<Application> makeApplicationSuite(
    const FunctionRegistry& registry, util::Rng& rng);

}  // namespace prtr::tasks
