#include "tasks/kernels.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace prtr::tasks::kernels {
namespace {

/// Applies a 3x3 neighbourhood reducer with border replication.
template <typename Reducer>
Image apply3x3(const Image& in, Reducer reduce) {
  Image out{in.width(), in.height()};
  for (std::size_t y = 0; y < in.height(); ++y) {
    for (std::size_t x = 0; x < in.width(); ++x) {
      std::array<std::uint8_t, 9> window;
      std::size_t k = 0;
      for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
        for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
          window[k++] = in.atClamped(static_cast<std::ptrdiff_t>(x) + dx,
                                     static_cast<std::ptrdiff_t>(y) + dy);
        }
      }
      out.at(x, y) = reduce(window);
    }
  }
  return out;
}

}  // namespace

Image medianFilter3x3(const Image& in) {
  return apply3x3(in, [](std::array<std::uint8_t, 9> w) {
    std::nth_element(w.begin(), w.begin() + 4, w.end());
    return w[4];
  });
}

Image sobelFilter(const Image& in) {
  Image out{in.width(), in.height()};
  for (std::size_t y = 0; y < in.height(); ++y) {
    for (std::size_t x = 0; x < in.width(); ++x) {
      const auto px = static_cast<std::ptrdiff_t>(x);
      const auto py = static_cast<std::ptrdiff_t>(y);
      auto p = [&](std::ptrdiff_t dx, std::ptrdiff_t dy) {
        return static_cast<int>(in.atClamped(px + dx, py + dy));
      };
      const int gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) +
                     2 * p(1, 0) + p(1, 1);
      const int gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) +
                     2 * p(0, 1) + p(1, 1);
      const int mag = static_cast<int>(
          std::lround(std::sqrt(static_cast<double>(gx * gx + gy * gy))));
      out.at(x, y) = static_cast<std::uint8_t>(std::clamp(mag, 0, 255));
    }
  }
  return out;
}

Image smoothingFilter3x3(const Image& in) {
  return apply3x3(in, [](const std::array<std::uint8_t, 9>& w) {
    int sum = 0;
    for (const auto v : w) sum += v;
    return static_cast<std::uint8_t>((sum + 4) / 9);
  });
}

Image gaussianBlur5x5(const Image& in) {
  // Binomial 5-tap kernel outer product: [1 4 6 4 1]^T [1 4 6 4 1] / 256.
  static constexpr std::array<int, 5> kTap{1, 4, 6, 4, 1};
  Image out{in.width(), in.height()};
  for (std::size_t y = 0; y < in.height(); ++y) {
    for (std::size_t x = 0; x < in.width(); ++x) {
      int acc = 0;
      for (std::ptrdiff_t dy = -2; dy <= 2; ++dy) {
        for (std::ptrdiff_t dx = -2; dx <= 2; ++dx) {
          const int weight = kTap[static_cast<std::size_t>(dy + 2)] *
                             kTap[static_cast<std::size_t>(dx + 2)];
          acc += weight * in.atClamped(static_cast<std::ptrdiff_t>(x) + dx,
                                       static_cast<std::ptrdiff_t>(y) + dy);
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>((acc + 128) / 256);
    }
  }
  return out;
}

Image threshold(const Image& in, std::uint8_t level) {
  Image out{in.width(), in.height()};
  for (std::size_t i = 0; i < in.pixels().size(); ++i) {
    out.pixels()[i] = in.pixels()[i] >= level ? 255 : 0;
  }
  return out;
}

Image histogramEqualize(const Image& in) {
  std::array<std::uint64_t, 256> histogram{};
  for (const auto p : in.pixels()) ++histogram[p];
  std::array<std::uint64_t, 256> cdf{};
  std::uint64_t acc = 0;
  std::uint64_t cdfMin = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    acc += histogram[v];
    cdf[v] = acc;
    if (cdfMin == 0 && acc > 0) cdfMin = acc;
  }
  const std::uint64_t total = in.pixels().size();
  Image out{in.width(), in.height()};
  if (total == cdfMin) return in;  // constant image: equalization is identity
  for (std::size_t i = 0; i < in.pixels().size(); ++i) {
    const std::uint64_t c = cdf[in.pixels()[i]];
    out.pixels()[i] = static_cast<std::uint8_t>(
        (c - cdfMin) * 255 / (total - cdfMin));
  }
  return out;
}

Image erode3x3(const Image& in) {
  return apply3x3(in, [](const std::array<std::uint8_t, 9>& w) {
    return *std::min_element(w.begin(), w.end());
  });
}

Image dilate3x3(const Image& in) {
  return apply3x3(in, [](const std::array<std::uint8_t, 9>& w) {
    return *std::max_element(w.begin(), w.end());
  });
}

Image invert(const Image& in) {
  Image out{in.width(), in.height()};
  for (std::size_t i = 0; i < in.pixels().size(); ++i) {
    out.pixels()[i] = static_cast<std::uint8_t>(255 - in.pixels()[i]);
  }
  return out;
}

}  // namespace prtr::tasks::kernels
