#pragma once
/// \file workload.hpp
/// Task-call sequences. A workload is the list of function calls an
/// application issues against the reconfigurable coprocessor (paper
/// section 3.1: "each application requires on the average a few hardware
/// functions (tasks)"). Generators produce sequences with controlled
/// temporal locality so prefetching hit ratios can be dialled in.

#include <cstddef>
#include <string>
#include <vector>

#include "tasks/hwfunction.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace prtr::tasks {

/// One function call: which core to run and how much data it processes.
struct TaskCall {
  std::size_t functionIndex = 0;  ///< index into the FunctionRegistry
  util::Bytes dataBytes{};        ///< input payload size

  friend bool operator==(const TaskCall&, const TaskCall&) = default;
};

/// A named call sequence over one registry.
struct Workload {
  std::string name;
  std::vector<TaskCall> calls;

  [[nodiscard]] std::size_t callCount() const noexcept { return calls.size(); }
  [[nodiscard]] util::Bytes totalBytes() const noexcept;
  /// Number of distinct functions referenced.
  [[nodiscard]] std::size_t distinctFunctions() const;
};

/// Round-robin over all functions with a fixed payload.
[[nodiscard]] Workload makeRoundRobinWorkload(const FunctionRegistry& registry,
                                              std::size_t callCount,
                                              util::Bytes dataBytes);

/// Uniformly random function choice.
[[nodiscard]] Workload makeUniformWorkload(const FunctionRegistry& registry,
                                           std::size_t callCount,
                                           util::Bytes dataBytes, util::Rng& rng);

/// First-order Markov sequence: with probability `selfBias` the next call
/// repeats the previous function, otherwise it is drawn uniformly. High
/// selfBias = strong processing locality (paper section 2.1).
[[nodiscard]] Workload makeMarkovWorkload(const FunctionRegistry& registry,
                                          std::size_t callCount,
                                          util::Bytes dataBytes, double selfBias,
                                          util::Rng& rng);

/// Phased sequence: the call stream is divided into phases of `phaseLength`
/// calls; within a phase only a working set of `workingSet` functions
/// (chosen per phase) is used.
[[nodiscard]] Workload makePhasedWorkload(const FunctionRegistry& registry,
                                          std::size_t callCount,
                                          util::Bytes dataBytes,
                                          std::size_t phaseLength,
                                          std::size_t workingSet, util::Rng& rng);

/// Serializes to / parses from a simple CSV (`functionIndex,dataBytes`).
[[nodiscard]] std::string toCsv(const Workload& workload);
[[nodiscard]] Workload workloadFromCsv(const std::string& name,
                                       const std::string& csv,
                                       const FunctionRegistry& registry);

}  // namespace prtr::tasks
