#include "tasks/hwfunction.hpp"

#include <algorithm>

#include "tasks/kernels.hpp"
#include "util/error.hpp"

namespace prtr::tasks {

FunctionRegistry::FunctionRegistry(std::vector<HwFunction> functions)
    : functions_(std::move(functions)) {
  util::require(!functions_.empty(), "FunctionRegistry: empty library");
  for (const HwFunction& f : functions_) {
    util::require(f.id != 0, "FunctionRegistry: module id 0 is reserved");
    util::require(f.cyclesPerPixel > 0.0,
                  "FunctionRegistry: cyclesPerPixel must be positive");
  }
}

const HwFunction& FunctionRegistry::at(std::size_t index) const {
  util::require(index < functions_.size(), "FunctionRegistry: index out of range");
  return functions_[index];
}

const HwFunction& FunctionRegistry::byId(bitstream::ModuleId id) const {
  const auto it = std::find_if(functions_.begin(), functions_.end(),
                               [&](const HwFunction& f) { return f.id == id; });
  util::require(it != functions_.end(), "FunctionRegistry: unknown module id");
  return *it;
}

const HwFunction& FunctionRegistry::byName(const std::string& name) const {
  const auto it = std::find_if(functions_.begin(), functions_.end(),
                               [&](const HwFunction& f) { return f.name == name; });
  util::require(it != functions_.end(),
                "FunctionRegistry: no function named '" + name + "'");
  return *it;
}

std::optional<std::size_t> FunctionRegistry::indexOf(bitstream::ModuleId id) const {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].id == id) return i;
  }
  return std::nullopt;
}

double FunctionRegistry::occupancy(std::size_t index,
                                   const fabric::ResourceVec& regionCapacity) const {
  const double used = regionCapacity.utilization(at(index).resources);
  return std::clamp(used, 0.05, 1.0);
}

std::vector<bitstream::Library::ModuleSpec> FunctionRegistry::moduleSpecs(
    const fabric::ResourceVec& regionCapacity) const {
  std::vector<bitstream::Library::ModuleSpec> specs;
  specs.reserve(functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    specs.push_back(bitstream::Library::ModuleSpec{
        functions_[i].id, functions_[i].name, occupancy(i, regionCapacity)});
  }
  return specs;
}

FunctionRegistry makePaperFunctions() {
  std::vector<HwFunction> fns;
  fns.push_back(HwFunction{
      /*id=*/1001, "median",
      fabric::ResourceVec{3141, 3270, 0, 0, 0},
      util::Frequency::megahertz(200), /*cyclesPerPixel=*/1.0,
      /*outputBytesPerInputByte=*/1.0, kernels::medianFilter3x3});
  fns.push_back(HwFunction{
      /*id=*/1002, "sobel",
      fabric::ResourceVec{1159, 1060, 0, 0, 0},
      util::Frequency::megahertz(200), 1.0, 1.0, kernels::sobelFilter});
  fns.push_back(HwFunction{
      /*id=*/1003, "smoothing",
      fabric::ResourceVec{2053, 1601, 0, 0, 0},
      util::Frequency::megahertz(200), 1.0, 1.0, kernels::smoothingFilter3x3});
  return FunctionRegistry{std::move(fns)};
}

FunctionRegistry makeExtendedFunctions() {
  auto base = makePaperFunctions().all();
  base.push_back(HwFunction{1004, "gaussian5x5",
                            fabric::ResourceVec{2890, 2410, 4, 4, 0},
                            util::Frequency::megahertz(180), 1.0, 1.0,
                            kernels::gaussianBlur5x5});
  base.push_back(HwFunction{1005, "threshold",
                            fabric::ResourceVec{240, 180, 0, 0, 0},
                            util::Frequency::megahertz(220), 1.0, 1.0,
                            [](const Image& in) { return kernels::threshold(in, 128); }});
  base.push_back(HwFunction{1006, "histeq",
                            fabric::ResourceVec{1480, 1220, 2, 0, 0},
                            util::Frequency::megahertz(200), 2.0, 1.0,
                            kernels::histogramEqualize});
  base.push_back(HwFunction{1007, "erode",
                            fabric::ResourceVec{980, 860, 0, 0, 0},
                            util::Frequency::megahertz(200), 1.0, 1.0,
                            kernels::erode3x3});
  base.push_back(HwFunction{1008, "dilate",
                            fabric::ResourceVec{985, 865, 0, 0, 0},
                            util::Frequency::megahertz(200), 1.0, 1.0,
                            kernels::dilate3x3});
  return FunctionRegistry{std::move(base)};
}

FunctionRegistry makeSyntheticFunctions(std::size_t count, double cyclesPerPixel) {
  util::require(count > 0, "makeSyntheticFunctions: count must be positive");
  std::vector<HwFunction> fns;
  fns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fns.push_back(HwFunction{2000 + i, "synthetic" + std::to_string(i),
                             fabric::ResourceVec{1000, 1000, 0, 0, 0},
                             util::Frequency::megahertz(200), cyclesPerPixel,
                             1.0, nullptr});
  }
  return FunctionRegistry{std::move(fns)};
}

}  // namespace prtr::tasks
