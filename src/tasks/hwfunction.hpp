#pragma once
/// \file hwfunction.hpp
/// Hardware-function descriptors: each entry couples a behavioural kernel
/// with the synthesis characteristics a real core would have (resources,
/// clock, pipeline rate). Resource figures for the first three functions
/// are the paper's Table 1; the extended set scales from them.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/library.hpp"
#include "fabric/resources.hpp"
#include "tasks/image.hpp"
#include "util/units.hpp"

namespace prtr::tasks {

/// One entry of the common hardware library.
struct HwFunction {
  bitstream::ModuleId id = 0;   ///< bitstream module identity (non-zero)
  std::string name;
  fabric::ResourceVec resources{};
  util::Frequency fabricClock = util::Frequency::megahertz(200);
  double cyclesPerPixel = 1.0;  ///< pipelined throughput (II of the core)
  double outputBytesPerInputByte = 1.0;
  /// Behavioural model; may be empty for purely synthetic functions.
  std::function<Image(const Image&)> behaviour;

  /// Compute time for `input` bytes of data at the core's pipeline rate.
  [[nodiscard]] util::Time computeTime(util::Bytes input) const noexcept {
    const double cycles = static_cast<double>(input.count()) * cyclesPerPixel;
    return util::Time::seconds(cycles / fabricClock.hertz());
  }

  [[nodiscard]] util::Bytes outputBytes(util::Bytes input) const noexcept {
    return util::Bytes{static_cast<std::uint64_t>(
        static_cast<double>(input.count()) * outputBytesPerInputByte)};
  }
};

/// The common hardware library applications are designed around (paper
/// section 3.1). Also computes per-PRR occupancies for bitstream content.
class FunctionRegistry {
 public:
  explicit FunctionRegistry(std::vector<HwFunction> functions);

  [[nodiscard]] std::size_t size() const noexcept { return functions_.size(); }
  [[nodiscard]] const HwFunction& at(std::size_t index) const;
  [[nodiscard]] const HwFunction& byId(bitstream::ModuleId id) const;
  [[nodiscard]] const HwFunction& byName(const std::string& name) const;
  [[nodiscard]] std::optional<std::size_t> indexOf(bitstream::ModuleId id) const;
  [[nodiscard]] const std::vector<HwFunction>& all() const noexcept {
    return functions_;
  }

  /// Fraction of `regionCapacity` a function occupies (for module-based
  /// bitstream content generation); clamped to (0, 1].
  [[nodiscard]] double occupancy(std::size_t index,
                                 const fabric::ResourceVec& regionCapacity) const;

  /// Library::ModuleSpec list for a floorplan whose PRRs all have
  /// `regionCapacity` resources.
  [[nodiscard]] std::vector<bitstream::Library::ModuleSpec> moduleSpecs(
      const fabric::ResourceVec& regionCapacity) const;

 private:
  std::vector<HwFunction> functions_;
};

/// The paper's three image-processing cores (Table 1): median filter,
/// Sobel filter, smoothing filter.
[[nodiscard]] FunctionRegistry makePaperFunctions();

/// Extended 8-core library (paper cores + Gaussian, threshold, histogram
/// equalization, erode, dilate) for virtualization studies.
[[nodiscard]] FunctionRegistry makeExtendedFunctions();

/// A synthetic library of `count` cores whose task-time requirement can be
/// tuned freely (used by model-validation sweeps). All cores share
/// `cyclesPerPixel` and a small footprint.
[[nodiscard]] FunctionRegistry makeSyntheticFunctions(std::size_t count,
                                                      double cyclesPerPixel);

}  // namespace prtr::tasks
