#pragma once
/// \file kernels.hpp
/// Behavioural models of the hardware image-processing cores. The first
/// three (median, Sobel, smoothing) are the functions of the paper's
/// Table 1; the rest extend the common hardware library so that
/// virtualization/prefetching experiments have more modules than PRRs.

#include "tasks/image.hpp"

namespace prtr::tasks::kernels {

/// 3x3 median filter (removes salt-and-pepper impulses).
[[nodiscard]] Image medianFilter3x3(const Image& in);

/// Sobel gradient magnitude, clamped to [0, 255].
[[nodiscard]] Image sobelFilter(const Image& in);

/// 3x3 box smoothing filter.
[[nodiscard]] Image smoothingFilter3x3(const Image& in);

/// 5x5 Gaussian blur (integer kernel, sum 256).
[[nodiscard]] Image gaussianBlur5x5(const Image& in);

/// Fixed-level binary threshold.
[[nodiscard]] Image threshold(const Image& in, std::uint8_t level);

/// Global histogram equalization.
[[nodiscard]] Image histogramEqualize(const Image& in);

/// 3x3 grayscale erosion (minimum filter).
[[nodiscard]] Image erode3x3(const Image& in);

/// 3x3 grayscale dilation (maximum filter).
[[nodiscard]] Image dilate3x3(const Image& in);

/// Photographic negative.
[[nodiscard]] Image invert(const Image& in);

}  // namespace prtr::tasks::kernels
