#include "tasks/locality.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace prtr::tasks {

std::vector<std::size_t> stackDistances(const Workload& workload) {
  std::vector<std::size_t> distances;
  distances.reserve(workload.calls.size());
  // LRU stack: most recent at the front. Function counts are small (a
  // hardware library has tens of entries), so linear scans win over
  // asymptotically better structures.
  std::vector<std::size_t> stack;
  for (const TaskCall& call : workload.calls) {
    const auto it = std::find(stack.begin(), stack.end(), call.functionIndex);
    if (it == stack.end()) {
      distances.push_back(kColdAccess);
    } else {
      distances.push_back(static_cast<std::size_t>(it - stack.begin()));
      stack.erase(it);
    }
    stack.insert(stack.begin(), call.functionIndex);
  }
  return distances;
}

double lruHitRatio(const Workload& workload, std::size_t slots) {
  util::require(slots >= 1, "lruHitRatio: need at least one slot");
  if (workload.calls.empty()) return 0.0;
  const auto distances = stackDistances(workload);
  std::uint64_t hits = 0;
  for (const std::size_t d : distances) {
    if (d != kColdAccess && d < slots) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(distances.size());
}

std::vector<double> lruHitRatioCurve(const Workload& workload,
                                     std::size_t maxSlots) {
  util::require(maxSlots >= 1, "lruHitRatioCurve: need at least one slot");
  const auto distances = stackDistances(workload);
  std::vector<std::uint64_t> hitsAtDistance(maxSlots, 0);
  for (const std::size_t d : distances) {
    if (d != kColdAccess && d < maxSlots) ++hitsAtDistance[d];
  }
  std::vector<double> curve(maxSlots, 0.0);
  std::uint64_t cumulative = 0;
  const auto total = static_cast<double>(
      std::max<std::size_t>(distances.size(), 1));
  for (std::size_t k = 0; k < maxSlots; ++k) {
    cumulative += hitsAtDistance[k];
    curve[k] = static_cast<double>(cumulative) / total;
  }
  return curve;
}

std::size_t slotsForHitRatio(const Workload& workload, double targetHitRatio) {
  util::require(targetHitRatio >= 0.0 && targetHitRatio <= 1.0,
                "slotsForHitRatio: target in [0,1]");
  const std::size_t distinct = workload.distinctFunctions();
  if (distinct == 0) return 0;
  const auto curve = lruHitRatioCurve(workload, distinct);
  for (std::size_t k = 0; k < curve.size(); ++k) {
    if (curve[k] >= targetHitRatio) return k + 1;
  }
  return 0;  // unattainable: cold misses dominate
}

LocalityProfile profileLocality(const Workload& workload) {
  LocalityProfile profile;
  profile.distinctFunctions = workload.distinctFunctions();
  const auto distances = stackDistances(workload);
  double finiteSum = 0.0;
  std::uint64_t finiteCount = 0;
  for (const std::size_t d : distances) {
    if (d == kColdAccess) {
      ++profile.coldMisses;
    } else {
      finiteSum += static_cast<double>(d);
      ++finiteCount;
    }
  }
  if (finiteCount > 0) {
    profile.meanFiniteStackDistance =
        finiteSum / static_cast<double>(finiteCount);
  }
  std::uint64_t repeats = 0;
  for (std::size_t i = 1; i < workload.calls.size(); ++i) {
    if (workload.calls[i].functionIndex == workload.calls[i - 1].functionIndex) {
      ++repeats;
    }
  }
  if (workload.calls.size() > 1) {
    profile.selfTransitionRate =
        static_cast<double>(repeats) /
        static_cast<double>(workload.calls.size() - 1);
  }
  return profile;
}

}  // namespace prtr::tasks
