#include "verify/schedule.hpp"

#include <bit>
#include <cstdio>
#include <set>
#include <utility>

#include "analysis/figures.hpp"
#include "exec/artifact_cache.hpp"
#include "exec/pool.hpp"
#include "sim/simulator.hpp"
#include "util/crc32.hpp"
#include "verify/oracle.hpp"

namespace prtr::verify {
namespace {

/// Exact byte image of a sweep result: bit patterns, not formatted text,
/// so a 1-ulp divergence cannot hide behind rounding.
std::string serialize(const std::vector<analysis::Fig9Point>& points) {
  std::string bytes;
  bytes.reserve(points.size() * 5 * 8);
  const auto append = [&bytes](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<char>(value >> (8 * i)));
    }
  };
  for (const analysis::Fig9Point& point : points) {
    append(std::bit_cast<std::uint64_t>(point.xTask));
    append(static_cast<std::uint64_t>(point.dataBytes.count()));
    append(std::bit_cast<std::uint64_t>(point.simSpeedup));
    append(std::bit_cast<std::uint64_t>(point.modelSpeedup));
    append(std::bit_cast<std::uint64_t>(point.modelAsymptote));
  }
  return bytes;
}

std::string crcHex(const std::string& bytes) {
  util::Crc32 crc;
  crc.update({reinterpret_cast<const std::uint8_t*>(bytes.data()),
              bytes.size()});
  char out[9];
  std::snprintf(out, sizeof out, "%08x", crc.value());
  return out;
}

std::string runSweep(const ExploreOptions& options,
                     exec::ArtifactCache* artifacts) {
  if (options.sweep) return options.sweep();
  analysis::Fig9Options fig9;
  fig9.points = options.points;
  fig9.nCalls = options.nCalls;
  fig9.artifacts = artifacts;
  return serialize(analysis::makeFig9(fig9));
}

}  // namespace

ExploreResult exploreSchedules(const ExploreOptions& options,
                               analyze::DiagnosticSink& sink) {
  ExploreResult result;

  // One content-addressed artifact cache across every replay: floorplans
  // and bitstreams are immutable, so sharing them changes nothing about
  // the bytes being compared and makes each run cheap enough to afford
  // hundreds of interleavings.
  exec::ArtifactCache artifacts;

  // Reference: the serial schedule — width 1, no oracle, the first queue
  // kind. Every perturbed replay must reproduce these bytes exactly.
  const sim::QueueKind priorKind = sim::Simulator::defaultQueueKind();
  if (!options.queueKinds.empty()) {
    sim::Simulator::setDefaultQueueKind(options.queueKinds.front());
  }
  exec::Pool::setGlobalThreads(1);
  const std::string reference = runSweep(options, &artifacts);
  result.referenceDigest = crcHex(reference);

  // Queue A/B: one serial replay per alternate EventQueue implementation.
  // Both queues realize the same (timePs, seq) total order, so the bytes
  // must be identical; anything else is a kernel bug, not a model one.
  for (std::size_t k = 1; k < options.queueKinds.size(); ++k) {
    const sim::QueueKind kind = options.queueKinds[k];
    sim::Simulator::setDefaultQueueKind(kind);
    const std::string bytes = runSweep(options, &artifacts);
    QueueRun run;
    run.kind = kind;
    run.identical = bytes == reference;
    if (!run.identical) {
      ++result.queueMismatches;
      sink.emit("DT004",
                std::string{"fig9 sweep, event queue "} + toString(kind),
                std::string{"queue implementation "} + toString(kind) +
                    " produced bytes with digest " + crcHex(bytes) +
                    " != reference " + result.referenceDigest + " (queue " +
                    toString(options.queueKinds.front()) + ")");
    }
    result.queueRuns.push_back(run);
  }
  if (!options.queueKinds.empty()) {
    sim::Simulator::setDefaultQueueKind(options.queueKinds.front());
  }

  std::set<std::pair<std::size_t, std::uint64_t>> schedules;
  std::uint64_t seed = options.baseSeed;
  for (const std::size_t width : options.widths) {
    exec::Pool::setGlobalThreads(width);
    for (std::size_t s = 0; s < options.seedsPerWidth; ++s, ++seed) {
      SeededOracle oracle{seed};
      exec::Pool& pool = exec::Pool::global();
      pool.setScheduleOracle(&oracle);
      const std::string bytes = runSweep(options, &artifacts);
      pool.setScheduleOracle(nullptr);

      ScheduleRun run;
      run.width = width;
      run.seed = seed;
      run.signature = oracle.signature();
      run.decisions = oracle.decisions();
      run.identical = bytes == reference;
      if (!run.identical) {
        ++result.mismatches;
        sink.emit("DT001",
                  "fig9 sweep, pool width " + std::to_string(width) +
                      ", seed " + std::to_string(seed),
                  "perturbed schedule (signature " +
                      std::to_string(run.signature) + ", " +
                      std::to_string(run.decisions) +
                      " decisions) produced bytes with digest " +
                      crcHex(bytes) + " != reference " +
                      result.referenceDigest);
      }
      schedules.emplace(width, run.signature);
      result.runs.push_back(run);
    }
  }
  exec::Pool::setGlobalThreads(0);  // restore the default-width pool
  sim::Simulator::setDefaultQueueKind(priorKind);

  result.distinctSchedules = schedules.size();
  if (options.minDistinctSchedules != 0 &&
      result.distinctSchedules < options.minDistinctSchedules) {
    sink.emit("DT003", "fig9 sweep exploration",
              "exercised " + std::to_string(result.distinctSchedules) +
                  " distinct schedules, fewer than the requested " +
                  std::to_string(options.minDistinctSchedules));
  }
  return result;
}

}  // namespace prtr::verify
