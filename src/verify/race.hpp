#pragma once
/// \file race.hpp
/// Vector-clock happens-before race detector for the exec layer. Plugs
/// into the exec::RaceObserver seam (exec::setRaceChecker) and folds the
/// release/acquire/access event stream of the pool and the artifact cache
/// into FastTrack-style vector clocks: each thread carries a clock vector,
/// each sync object stores the joined causal past released into it, and
/// each shared object remembers its last write epoch plus the clock of
/// every read since. Two conflicting accesses with no happens-before path
/// between them are a race, reported as stable-coded RC0xx diagnostics
/// through analyze::DiagnosticSink.
///
/// The detector is exact with respect to the reported events: it never
/// flags an ordered pair (no false positives for correctly synchronized
/// code) and it flags every unordered conflicting pair it is shown. What
/// it cannot see is code that bypasses the instrumentation seam — that is
/// what the tsan CI job covers from below.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "exec/instrument.hpp"

namespace prtr::verify {

/// One detected race (deduplicated per object and code).
struct Race {
  std::string code;      ///< RC001..RC004
  std::uint64_t objectId = 0;
  std::string site;      ///< stable site label, e.g. "exec.cache.entry"
  std::string detail;    ///< human-readable access pair description
};

/// Thread-safe happens-before detector. Attach while the pool is
/// quiescent (exec::setRaceChecker(&detector)), run the workload, detach,
/// then report(). All observer entry points are serialized on one mutex:
/// the detector trades throughput for exactness, which is the right trade
/// for a verification pass that runs scaled-down workloads.
class RaceDetector final : public exec::RaceObserver {
 public:
  void release(std::uint64_t syncId) noexcept override;
  void acquire(std::uint64_t syncId) noexcept override;
  void access(std::uint64_t objectId, const char* what,
              bool write) noexcept override;

  /// Detected races in detection order (deduplicated).
  [[nodiscard]] std::vector<Race> races() const;

  /// Emits every detected race as an RC diagnostic.
  void report(analyze::DiagnosticSink& sink) const;

  /// Event-stream counters, for tests and the CLI summary line.
  struct Stats {
    std::uint64_t releases = 0;
    std::uint64_t acquires = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t threads = 0;  ///< distinct threads observed
  };
  [[nodiscard]] Stats stats() const;

  /// Drops all clocks, races, and counters (detach first).
  void reset();

 private:
  using Clock = std::vector<std::uint64_t>;  ///< index = dense thread id

  struct SharedState {
    bool written = false;
    std::size_t writeThread = 0;      ///< dense id of last writer
    std::uint64_t writeEpoch = 0;     ///< writer's clock at the write
    std::string writeSite;
    Clock reads;                      ///< per-thread clock of the last read
    std::string readSite;
  };

  [[nodiscard]] std::size_t threadIndexLocked();
  void recordRaceLocked(const char* code, std::uint64_t objectId,
                        const char* site, std::string detail);
  static void joinInto(Clock& into, const Clock& from);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::size_t> threadIndex_;  ///< tid hash
  std::vector<Clock> threadClocks_;  ///< by dense thread index
  std::unordered_map<std::uint64_t, Clock> syncs_;
  std::unordered_map<std::uint64_t, SharedState> shared_;
  std::vector<Race> races_;
  Stats stats_;
};

}  // namespace prtr::verify
