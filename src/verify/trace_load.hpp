#pragma once
/// \file trace_load.hpp
/// Reads a Chrome trace written by obs::ChromeTrace back into raw span
/// lists, so the timeline invariant analyzer (timeline_rules.hpp) and the
/// prtr-verify CLI can run post-hoc over any captured --trace file. Spans
/// are returned as plain vectors rather than sim::Timeline objects on
/// purpose: Timeline::record rejects end < start, but the whole point of
/// post-hoc verification is to load traces that violate causality and
/// diagnose them (TL001) instead of refusing to look.

#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "sim/trace.hpp"

namespace prtr::verify {

/// One instant ("i") annotation loaded back from a trace.
struct InstantEvent {
  std::string lane;
  std::string label;
  util::Time at;
};

/// One flow half ("s"/"f") loaded back from a trace. Events sharing an id
/// form one arrow; `begin` marks the start half.
struct FlowEvent {
  std::string lane;
  std::string label;
  std::string id;
  util::Time at;
  bool begin = true;
};

/// One trace process: named span/instant/flow lists (record order
/// preserved).
struct TraceProcess {
  std::string name;
  std::vector<sim::NamedSpan> spans;
  std::vector<InstantEvent> instants;
  std::vector<FlowEvent> flows;
};

/// Parses one Chrome trace JSON document ("traceEvents" with M metadata,
/// X duration events, i instants, and s/f flow arrows; C counter events
/// are ignored). Lane names come from the thread_name metadata, falling
/// back to the event's "cat".
/// Throws util::DomainError on malformed JSON or a missing traceEvents key.
[[nodiscard]] std::vector<TraceProcess> loadChromeTrace(
    std::string_view jsonText);

/// Reads and parses a trace file. Throws util::Error when unreadable.
[[nodiscard]] std::vector<TraceProcess> loadChromeTraceFile(
    const std::string& path);

/// Runs the timeline invariant rules (TL) and the request-lane rules (RQ)
/// over every process of a loaded trace.
void checkTrace(const std::vector<TraceProcess>& processes,
                analyze::DiagnosticSink& sink);

/// Structural comparison of two captures of the same scenario: process
/// names, span/instant/flow counts, and every event's fields must match.
/// Differences are emitted as DT002 diagnostics (first difference per
/// process).
void compareTraces(const std::vector<TraceProcess>& left,
                   const std::vector<TraceProcess>& right,
                   analyze::DiagnosticSink& sink);

}  // namespace prtr::verify
