#include "verify/trace_load.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"
#include "verify/request_rules.hpp"
#include "verify/timeline_rules.hpp"

namespace prtr::verify {
namespace {

util::Time timeFromMicroseconds(double us) {
  return util::Time::picoseconds(
      static_cast<std::int64_t>(std::llround(us * 1e6)));
}

std::uint64_t idOf(const util::json::Value& event, std::string_view key) {
  const util::json::Value* value = event.find(key);
  return value == nullptr ? 0
                          : static_cast<std::uint64_t>(value->asNumber());
}

}  // namespace

std::vector<TraceProcess> loadChromeTrace(std::string_view jsonText) {
  const util::json::Value document = util::json::Value::parse(jsonText);
  const util::json::Value& events = document.at("traceEvents");

  std::map<std::uint64_t, std::string> processNames;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> laneNames;
  // First pass: metadata. The writer emits it before the X events, but a
  // hand-edited trace need not keep that order.
  for (const util::json::Value& event : events.asArray()) {
    const util::json::Value* ph = event.find("ph");
    if (ph == nullptr || ph->asString() != "M") continue;
    const std::string& kind = event.at("name").asString();
    if (kind == "process_name") {
      processNames[idOf(event, "pid")] =
          event.at("args").at("name").asString();
    } else if (kind == "thread_name") {
      laneNames[{idOf(event, "pid"), idOf(event, "tid")}] =
          event.at("args").at("name").asString();
    }
  }

  std::map<std::uint64_t, TraceProcess> processes;
  const auto processOf = [&](std::uint64_t pid) -> TraceProcess& {
    TraceProcess& process = processes[pid];
    if (process.name.empty()) {
      const auto named = processNames.find(pid);
      process.name = named != processNames.end()
                         ? named->second
                         : "pid " + std::to_string(pid);
    }
    return process;
  };
  const auto laneOf = [&](const util::json::Value& event, std::uint64_t pid) {
    const auto lane = laneNames.find({pid, idOf(event, "tid")});
    if (lane != laneNames.end()) return lane->second;
    if (const util::json::Value* cat = event.find("cat")) {
      return cat->asString();
    }
    return std::string{};
  };
  for (const util::json::Value& event : events.asArray()) {
    const util::json::Value* ph = event.find("ph");
    if (ph == nullptr) continue;
    const std::string& kind = ph->asString();
    const std::uint64_t pid = idOf(event, "pid");
    if (kind == "X") {
      TraceProcess& process = processOf(pid);
      sim::NamedSpan span;
      span.lane = laneOf(event, pid);
      span.label = event.at("name").asString();
      span.start = timeFromMicroseconds(event.at("ts").asNumber());
      span.end = span.start + timeFromMicroseconds(event.at("dur").asNumber());
      process.spans.push_back(std::move(span));
    } else if (kind == "i") {
      TraceProcess& process = processOf(pid);
      InstantEvent instant;
      instant.lane = laneOf(event, pid);
      instant.label = event.at("name").asString();
      instant.at = timeFromMicroseconds(event.at("ts").asNumber());
      process.instants.push_back(std::move(instant));
    } else if (kind == "s" || kind == "f") {
      TraceProcess& process = processOf(pid);
      FlowEvent flow;
      flow.lane = laneOf(event, pid);
      flow.label = event.at("name").asString();
      flow.id = event.at("id").asString();
      flow.at = timeFromMicroseconds(event.at("ts").asNumber());
      flow.begin = kind == "s";
      process.flows.push_back(std::move(flow));
    }
  }

  std::vector<TraceProcess> out;
  out.reserve(processes.size());
  for (auto& [pid, process] : processes) out.push_back(std::move(process));
  return out;
}

std::vector<TraceProcess> loadChromeTraceFile(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw util::Error{"trace_load: cannot open '" + path + "'"};
  std::ostringstream text;
  text << in.rdbuf();
  return loadChromeTrace(text.str());
}

void checkTrace(const std::vector<TraceProcess>& processes,
                analyze::DiagnosticSink& sink) {
  for (const TraceProcess& process : processes) {
    checkSpans(process.name, process.spans, sink);
    checkRequestLanes(process, sink);
  }
}

void compareTraces(const std::vector<TraceProcess>& left,
                   const std::vector<TraceProcess>& right,
                   analyze::DiagnosticSink& sink) {
  if (left.size() != right.size()) {
    sink.emit("DT002", "trace",
              "process counts differ: " + std::to_string(left.size()) +
                  " vs " + std::to_string(right.size()));
    return;
  }
  for (std::size_t p = 0; p < left.size(); ++p) {
    const TraceProcess& a = left[p];
    const TraceProcess& b = right[p];
    const std::string location = "process '" + a.name + "'";
    if (a.name != b.name) {
      sink.emit("DT002", location, "process name differs: '" + a.name +
                                       "' vs '" + b.name + "'");
      continue;
    }
    if (a.spans.size() != b.spans.size()) {
      sink.emit("DT002", location,
                "span counts differ: " + std::to_string(a.spans.size()) +
                    " vs " + std::to_string(b.spans.size()));
      continue;
    }
    if (a.instants.size() != b.instants.size()) {
      sink.emit("DT002", location,
                "instant counts differ: " + std::to_string(a.instants.size()) +
                    " vs " + std::to_string(b.instants.size()));
      continue;
    }
    if (a.flows.size() != b.flows.size()) {
      sink.emit("DT002", location,
                "flow counts differ: " + std::to_string(a.flows.size()) +
                    " vs " + std::to_string(b.flows.size()));
      continue;
    }
    bool differs = false;
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
      const sim::NamedSpan& x = a.spans[i];
      const sim::NamedSpan& y = b.spans[i];
      if (x.lane != y.lane || x.label != y.label || x.start != y.start ||
          x.end != y.end) {
        sink.emit("DT002", location + " span " + std::to_string(i),
                  "'" + x.label + "'@" + x.lane + " [" + x.start.toString() +
                      ", " + x.end.toString() + ") vs '" + y.label + "'@" +
                      y.lane + " [" + y.start.toString() + ", " +
                      y.end.toString() + ")");
        differs = true;
        break;  // first difference per process keeps the report readable
      }
    }
    if (differs) continue;
    for (std::size_t i = 0; i < a.instants.size(); ++i) {
      const InstantEvent& x = a.instants[i];
      const InstantEvent& y = b.instants[i];
      if (x.lane != y.lane || x.label != y.label || x.at != y.at) {
        sink.emit("DT002", location + " instant " + std::to_string(i),
                  "'" + x.label + "'@" + x.lane + " " + x.at.toString() +
                      " vs '" + y.label + "'@" + y.lane + " " +
                      y.at.toString());
        differs = true;
        break;
      }
    }
    if (differs) continue;
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
      const FlowEvent& x = a.flows[i];
      const FlowEvent& y = b.flows[i];
      if (x.lane != y.lane || x.label != y.label || x.id != y.id ||
          x.at != y.at || x.begin != y.begin) {
        sink.emit("DT002", location + " flow " + std::to_string(i),
                  "'" + x.label + "' id " + x.id + "@" + x.lane + " " +
                      x.at.toString() + " vs '" + y.label + "' id " + y.id +
                      "@" + y.lane + " " + y.at.toString());
        break;
      }
    }
  }
}

}  // namespace prtr::verify
