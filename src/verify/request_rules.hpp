#pragma once
/// \file request_rules.hpp
/// Request-lane invariant analyzer: checks the "rq:<id>" span trees a
/// fleet trace carries (see trace/request.hpp for the label grammar) and
/// reports violations as RQ0xx diagnostics:
///
///   RQ001  a child span extends outside its request's root span
///   RQ002  a request lane without exactly one root "request ..." span
///   RQ003  an attempt's component span escapes the attempt's bounds
///   RQ004  a component span whose attempt number has no attempt span
///   RQ005  hedge-winner uniqueness: multiple "hedge:win" marks, or a win
///          on a lane with no hedged attempt
///   RQ006  a shed request with dispatch activity (shed means the request
///          never reached a blade)
///
/// The analyzer parses the exported labels back, so it runs over any
/// captured --trace file with no access to the recorder's state.

#include <string_view>

#include "analyze/diagnostic.hpp"
#include "verify/trace_load.hpp"

namespace prtr::verify {

/// A parsed request-lane span label.
struct RequestLabel {
  enum class Kind : std::uint8_t {
    kUnknown,
    kRequest,
    kAttempt,
    kQueue,
    kService,
    kStall,
    kReload,
    kExecute,
  };
  Kind kind = Kind::kUnknown;
  int attempt = 0;          ///< 1-based; 0 for the root
  int blade = -1;           ///< service spans only
  bool hedge = false;       ///< "attempt#N:hedge"
  std::string_view outcome; ///< root spans: "ok", "failed", "shed:queue", ...
};

/// Parses "request ok", "attempt#2:hedge", "service#1@b3", ... Unparseable
/// labels return Kind::kUnknown.
[[nodiscard]] RequestLabel parseRequestLabel(std::string_view label) noexcept;

/// True for "rq:<id>" request lanes.
[[nodiscard]] bool isRequestLane(std::string_view lane) noexcept;

/// Checks every request lane of one loaded trace process and emits RQ
/// diagnostics.
void checkRequestLanes(const TraceProcess& process,
                       analyze::DiagnosticSink& sink);

}  // namespace prtr::verify
