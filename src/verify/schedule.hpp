#pragma once
/// \file schedule.hpp
/// Bounded schedule explorer: replays a scaled-down Figure-9 sweep under
/// seeded pool-interleaving perturbations (verify::SeededOracle injected
/// via exec::Pool::setScheduleOracle) across a range of pool widths, and
/// proves the pool's determinism contract — results stored by index are
/// byte-identical regardless of which worker ran which point, in which
/// order, stolen from whom. A mismatch is a DT001 error pinpointing the
/// width and seed that broke it; a run that exercised fewer distinct
/// schedules than requested is a DT003 warning (the proof was weaker than
/// asked for, e.g. a pool too narrow for the seeds to matter).
///
/// Declared here with the verify headers; the implementation compiles
/// into prtr_analysis (it drives analysis::makeFig9), the same split as
/// the analyze checker translation units.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "sim/event_queue.hpp"

namespace prtr::verify {

/// Exploration shape. The defaults are sized for a CI gate: a few dozen
/// runs of a small sweep, a few seconds total.
struct ExploreOptions {
  std::vector<std::size_t> widths{1, 2, 3, 4};  ///< global pool widths
  std::size_t seedsPerWidth = 8;                ///< oracle seeds per width
  std::uint64_t baseSeed = 0x5EED;
  /// Minimum distinct (width, signature) pairs the exploration must
  /// exercise; 0 disables the DT003 check.
  std::size_t minDistinctSchedules = 0;
  /// Scaled-down Fig-9 sweep driven at every run.
  std::size_t points = 4;
  std::uint64_t nCalls = 40;
  /// Replaces the Fig-9 sweep with an arbitrary byte-producing workload.
  /// Used by the negative tests to prove the explorer actually catches a
  /// schedule-dependent result (DT001); production callers leave it unset.
  std::function<std::string()> sweep;
  /// Event-queue implementations to A/B. The first kind drives the whole
  /// width x seed matrix; each further kind gets one serial replay whose
  /// bytes must equal the reference (the queue axis is orthogonal to pool
  /// interleaving, so one replay proves the total order). A divergence is
  /// a DT004 error.
  std::vector<sim::QueueKind> queueKinds{sim::QueueKind::kCalendar,
                                         sim::QueueKind::kBinaryHeap};
};

/// One perturbed replay.
struct ScheduleRun {
  std::size_t width = 0;
  std::uint64_t seed = 0;
  std::uint64_t signature = 0;   ///< oracle decision-stream hash
  std::uint64_t decisions = 0;   ///< scheduling decisions perturbed
  bool identical = false;        ///< bytes matched the reference run
};

/// One alternate-queue replay of the serial reference.
struct QueueRun {
  sim::QueueKind kind = sim::QueueKind::kCalendar;
  bool identical = false;  ///< bytes matched the reference run
};

struct ExploreResult {
  std::vector<ScheduleRun> runs;
  std::vector<QueueRun> queueRuns;  ///< one per alternate queue kind
  std::size_t distinctSchedules = 0;
  std::size_t mismatches = 0;       ///< schedule-perturbation divergences
  std::size_t queueMismatches = 0;  ///< queue-implementation divergences
  std::string referenceDigest;  ///< CRC-32 (hex) of the reference bytes

  [[nodiscard]] bool deterministic() const noexcept {
    return mismatches == 0 && queueMismatches == 0;
  }
};

/// Runs the exploration and reports DT001/DT003 findings. Rebuilds the
/// global pool per width (exec::Pool::setGlobalThreads) and restores the
/// default width afterwards, so call it from a quiescent process (tests,
/// the prtr-verify CLI), not mid-sweep.
[[nodiscard]] ExploreResult exploreSchedules(const ExploreOptions& options,
                                             analyze::DiagnosticSink& sink);

}  // namespace prtr::verify
