#pragma once
/// \file oracle.hpp
/// Seeded schedule oracle: a thread-safe exec::ScheduleOracle that draws
/// every scheduling decision from a splitmix64 stream and folds the
/// decisions it actually made into a running signature. Two runs with
/// different signatures provably took different schedules, so the count
/// of distinct signatures across seeds is a lower bound on the distinct
/// interleavings the explorer exercised.

#include <atomic>
#include <cstdint>

#include "exec/instrument.hpp"

namespace prtr::verify {

/// splitmix64 step — the standard finalizer-based generator; also usable
/// standalone as a mixing function for signatures.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Seeded decision source for exec::Pool::setScheduleOracle.
class SeededOracle final : public exec::ScheduleOracle {
 public:
  explicit SeededOracle(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::size_t choose(std::size_t choices,
                                   std::uint64_t site) noexcept override;

  /// Order-sensitive hash of every (index, site, decision) the pool asked
  /// for. Identical streams give identical signatures.
  [[nodiscard]] std::uint64_t signature() const noexcept {
    return signature_.load(std::memory_order_relaxed);
  }

  /// Total decisions served.
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> state_;
  std::atomic<std::uint64_t> signature_{0};
  std::atomic<std::uint64_t> decisions_{0};
};

}  // namespace prtr::verify
