#include "verify/oracle.hpp"

namespace prtr::verify {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::size_t SeededOracle::choose(std::size_t choices,
                                 std::uint64_t site) noexcept {
  if (choices <= 1) return 0;
  // One atomic splitmix step; concurrent callers interleave arbitrarily,
  // which is exactly the point — the signature records what happened.
  std::uint64_t state = state_.fetch_add(0x9E3779B97F4A7C15ull,
                                         std::memory_order_relaxed) +
                        0x9E3779B97F4A7C15ull;
  std::uint64_t draw = state;
  draw = (draw ^ (draw >> 30)) * 0xBF58476D1CE4E5B9ull;
  draw = (draw ^ (draw >> 27)) * 0x94D049BB133111EBull;
  draw ^= draw >> 31;
  const std::size_t decision = static_cast<std::size_t>(draw % choices);

  const std::uint64_t index =
      decisions_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t mix = index * 0x9E3779B97F4A7C15ull;
  mix ^= site + 0x165667B19E3779F9ull + (mix << 6) + (mix >> 2);
  mix ^= decision + 0x27D4EB2F165667C5ull + (mix << 6) + (mix >> 2);
  mix = (mix ^ (mix >> 30)) * 0xBF58476D1CE4E5B9ull;
  signature_.fetch_xor(mix ^ (mix >> 27), std::memory_order_relaxed);
  return decision;
}

}  // namespace prtr::verify
