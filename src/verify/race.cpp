#include "verify/race.hpp"

#include <algorithm>
#include <thread>

namespace prtr::verify {
namespace {

std::uint64_t currentThreadKey() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

std::size_t RaceDetector::threadIndexLocked() {
  const std::uint64_t key = currentThreadKey();
  const auto it = threadIndex_.find(key);
  if (it != threadIndex_.end()) return it->second;
  const std::size_t index = threadClocks_.size();
  threadIndex_.emplace(key, index);
  // Own epoch starts at 1 so a recorded read epoch of 0 means "no read".
  Clock clock(index + 1, 0);
  clock[index] = 1;
  threadClocks_.push_back(std::move(clock));
  ++stats_.threads;
  return index;
}

void RaceDetector::joinInto(Clock& into, const Clock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void RaceDetector::recordRaceLocked(const char* code, std::uint64_t objectId,
                                    const char* site, std::string detail) {
  const auto duplicate = std::any_of(
      races_.begin(), races_.end(), [&](const Race& race) {
        return race.objectId == objectId && race.code == code;
      });
  if (duplicate) return;
  races_.push_back(Race{code, objectId, site, std::move(detail)});
}

void RaceDetector::release(std::uint64_t syncId) noexcept {
  try {
    const std::scoped_lock lock{mutex_};
    const std::size_t self = threadIndexLocked();
    Clock& sync = syncs_[syncId];
    joinInto(sync, threadClocks_[self]);
    // Advance the epoch so later same-thread events are not confused with
    // the causal past just published.
    ++threadClocks_[self][self];
    ++stats_.releases;
  } catch (...) {
    // noexcept seam: an allocation failure here must not kill the pool.
  }
}

void RaceDetector::acquire(std::uint64_t syncId) noexcept {
  try {
    const std::scoped_lock lock{mutex_};
    const std::size_t self = threadIndexLocked();
    const auto it = syncs_.find(syncId);
    if (it == syncs_.end()) {
      recordRaceLocked("RC004", syncId, "exec.sync",
                       "acquire of sync object " + std::to_string(syncId) +
                           " that nothing released into");
    } else {
      joinInto(threadClocks_[self], it->second);
    }
    ++stats_.acquires;
  } catch (...) {
  }
}

void RaceDetector::access(std::uint64_t objectId, const char* what,
                          bool write) noexcept {
  try {
    const std::scoped_lock lock{mutex_};
    const std::size_t self = threadIndexLocked();
    Clock& clock = threadClocks_[self];
    SharedState& shared = shared_[objectId];
    const auto knows = [&](std::size_t thread, std::uint64_t epoch) {
      return thread < clock.size() && clock[thread] >= epoch;
    };
    if (write) {
      if (shared.written && shared.writeThread != self &&
          !knows(shared.writeThread, shared.writeEpoch)) {
        recordRaceLocked("RC001", objectId, what,
                         std::string{"unordered writes at "} +
                             shared.writeSite + " and " + what);
      }
      for (std::size_t reader = 0; reader < shared.reads.size(); ++reader) {
        if (reader == self || shared.reads[reader] == 0) continue;
        if (!knows(reader, shared.reads[reader])) {
          recordRaceLocked("RC002", objectId, what,
                           std::string{"write at "} + what +
                               " unordered with a read at " + shared.readSite);
        }
      }
      shared.written = true;
      shared.writeThread = self;
      shared.writeEpoch = clock[self];
      shared.writeSite = what;
      shared.reads.clear();
      ++stats_.writes;
    } else {
      if (shared.written && shared.writeThread != self &&
          !knows(shared.writeThread, shared.writeEpoch)) {
        recordRaceLocked("RC003", objectId, what,
                         std::string{"read at "} + what +
                             " unordered with the write at " +
                             shared.writeSite);
      }
      if (shared.reads.size() <= self) shared.reads.resize(self + 1, 0);
      shared.reads[self] = clock[self];
      shared.readSite = what;
      ++stats_.reads;
    }
  } catch (...) {
  }
}

std::vector<Race> RaceDetector::races() const {
  const std::scoped_lock lock{mutex_};
  return races_;
}

void RaceDetector::report(analyze::DiagnosticSink& sink) const {
  for (const Race& race : races()) {
    sink.emit(race.code, race.site + " object " + std::to_string(race.objectId),
              race.detail);
  }
}

RaceDetector::Stats RaceDetector::stats() const {
  const std::scoped_lock lock{mutex_};
  return stats_;
}

void RaceDetector::reset() {
  const std::scoped_lock lock{mutex_};
  threadIndex_.clear();
  threadClocks_.clear();
  syncs_.clear();
  shared_.clear();
  races_.clear();
  stats_ = Stats{};
}

}  // namespace prtr::verify
