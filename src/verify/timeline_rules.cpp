#include "verify/timeline_rules.hpp"

#include <algorithm>
#include <map>

namespace prtr::verify {
namespace {

/// Overlap rule code for one lane class.
const char* overlapCode(LaneKind kind) noexcept {
  switch (kind) {
    case LaneKind::kConfigPort: return "TL005";
    case LaneKind::kComputeRegion: return "TL004";
    case LaneKind::kLink: return "TL006";
    case LaneKind::kRecovery:
    case LaneKind::kRequest:
    case LaneKind::kSerial: return "TL003";
  }
  return "TL003";
}

std::string where(const std::string& process, const std::string& lane) {
  return "process '" + process + "' lane '" + lane + "'";
}

std::string timesOf(const sim::NamedSpan& span) {
  return "[" + span.start.toString() + ", " + span.end.toString() + ")";
}

bool overlaps(const sim::NamedSpan& a, const sim::NamedSpan& b) noexcept {
  // Half-open intervals: touching endpoints are not an overlap.
  return a.start < b.end && b.start < a.end;
}

}  // namespace

LaneKind classifyLane(std::string_view lane) noexcept {
  if (lane == "config") return LaneKind::kConfigPort;
  if (lane.starts_with("PRR") || lane == "FPGA") {
    return LaneKind::kComputeRegion;
  }
  if (lane.starts_with("HT")) return LaneKind::kLink;
  if (lane == "recovery") return LaneKind::kRecovery;
  if (lane.starts_with("rq:")) return LaneKind::kRequest;
  return LaneKind::kSerial;
}

void checkSpans(const std::string& process,
                const std::vector<sim::NamedSpan>& spans,
                analyze::DiagnosticSink& sink) {
  // Bucket per lane in record order (std::map: deterministic lane order in
  // the report regardless of recording interleavings).
  std::map<std::string, std::vector<const sim::NamedSpan*>> lanes;
  for (const sim::NamedSpan& span : spans) {
    if (span.end < span.start) {
      sink.emit("TL001", where(process, span.lane) + " span '" + span.label + "'",
                "span " + timesOf(span) + " ends " +
                    (span.start - span.end).toString() + " before it starts");
    }
    lanes[span.lane].push_back(&span);
  }

  for (auto& [lane, laneSpans] : lanes) {
    const LaneKind kind = classifyLane(lane);

    // TL002: the recorder appends in event order, so per-lane starts must
    // be nondecreasing; an out-of-order start means a component stamped a
    // span with a clock it had already passed.
    for (std::size_t i = 1; i < laneSpans.size(); ++i) {
      if (laneSpans[i]->start < laneSpans[i - 1]->start) {
        sink.emit("TL002",
                  where(process, lane) + " span '" + laneSpans[i]->label + "'",
                  "span " + timesOf(*laneSpans[i]) +
                      " recorded after span '" + laneSpans[i - 1]->label +
                      "' " + timesOf(*laneSpans[i - 1]) +
                      " but starts earlier");
        break;  // one report per lane: later pairs are usually the same bug
      }
    }

    // Request lanes hold one nested span tree: the root contains every
    // attempt, so overlap is the design, not a violation. The RQ rules
    // (request_rules.hpp) check the nesting instead.
    if (kind == LaneKind::kRequest) continue;

    // Overlap check on start-sorted spans; the running max-end span is the
    // only candidate an in-order span can still overlap.
    std::vector<const sim::NamedSpan*> sorted = laneSpans;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const sim::NamedSpan* a, const sim::NamedSpan* b) {
                       return a->start < b->start;
                     });
    const sim::NamedSpan* busiest = nullptr;
    for (const sim::NamedSpan* span : sorted) {
      if (span->end < span->start) continue;  // already reported as TL001
      if (busiest != nullptr && overlaps(*busiest, *span)) {
        sink.emit(overlapCode(kind),
                  where(process, lane) + " span '" + span->label + "'",
                  "span " + timesOf(*span) + " overlaps span '" +
                      busiest->label + "' " + timesOf(*busiest));
      }
      if (busiest == nullptr || busiest->end < span->end) busiest = span;
    }
  }

  // TL007: every recovery episode must contain configuration activity
  // (a retry or degraded reload on the config lane). Only checkable when
  // the capture includes the config lane at all.
  const auto recovery = lanes.find("recovery");
  const auto config = lanes.find("config");
  if (recovery != lanes.end() && config != lanes.end()) {
    for (const sim::NamedSpan* episode : recovery->second) {
      const bool paired = std::any_of(
          config->second.begin(), config->second.end(),
          [&](const sim::NamedSpan* load) { return overlaps(*episode, *load); });
      if (!paired) {
        sink.emit("TL007",
                  where(process, "recovery") + " span '" + episode->label + "'",
                  "recovery episode " + timesOf(*episode) +
                      " contains no configuration activity");
      }
    }
  }
}

void checkTimeline(const std::string& process, const sim::Timeline& timeline,
                   analyze::DiagnosticSink& sink) {
  checkSpans(process, timeline.materialize(), sink);
}

}  // namespace prtr::verify
