#include "verify/request_rules.hpp"

#include <map>
#include <vector>

namespace prtr::verify {
namespace {

/// Parses a decimal integer prefix of `text`, advancing it. Returns -1 when
/// no digit is present.
int parseInt(std::string_view& text) noexcept {
  if (text.empty() || text.front() < '0' || text.front() > '9') return -1;
  int value = 0;
  while (!text.empty() && text.front() >= '0' && text.front() <= '9') {
    value = value * 10 + (text.front() - '0');
    text.remove_prefix(1);
  }
  return value;
}

std::string where(const std::string& process, const std::string& lane) {
  return "process '" + process + "' lane '" + lane + "'";
}

std::string timesOf(const sim::NamedSpan& span) {
  return "[" + span.start.toString() + ", " + span.end.toString() + ")";
}

}  // namespace

RequestLabel parseRequestLabel(std::string_view label) noexcept {
  RequestLabel out;
  if (label.starts_with("request ")) {
    out.kind = RequestLabel::Kind::kRequest;
    out.outcome = label.substr(8);
    return out;
  }
  const auto numbered = [&](std::string_view prefix,
                            RequestLabel::Kind kind) {
    if (!label.starts_with(prefix)) return false;
    std::string_view rest = label.substr(prefix.size());
    const int attempt = parseInt(rest);
    if (attempt < 0) return false;
    out.kind = kind;
    out.attempt = attempt;
    if (kind == RequestLabel::Kind::kAttempt && rest == ":hedge") {
      out.hedge = true;
      rest = {};
    }
    if (kind == RequestLabel::Kind::kService && rest.starts_with("@b")) {
      rest.remove_prefix(2);
      out.blade = parseInt(rest);
    }
    if (!rest.empty()) {
      out = RequestLabel{};
      return false;
    }
    return true;
  };
  if (numbered("attempt#", RequestLabel::Kind::kAttempt)) return out;
  if (numbered("queue#", RequestLabel::Kind::kQueue)) return out;
  if (numbered("service#", RequestLabel::Kind::kService)) return out;
  if (numbered("stall#", RequestLabel::Kind::kStall)) return out;
  if (numbered("reload#", RequestLabel::Kind::kReload)) return out;
  if (numbered("execute#", RequestLabel::Kind::kExecute)) return out;
  return out;
}

bool isRequestLane(std::string_view lane) noexcept {
  return lane.starts_with("rq:");
}

void checkRequestLanes(const TraceProcess& process,
                       analyze::DiagnosticSink& sink) {
  std::map<std::string, std::vector<const sim::NamedSpan*>> lanes;
  for (const sim::NamedSpan& span : process.spans) {
    if (isRequestLane(span.lane)) lanes[span.lane].push_back(&span);
  }
  std::map<std::string, std::vector<const InstantEvent*>> marks;
  for (const InstantEvent& instant : process.instants) {
    if (isRequestLane(instant.lane)) marks[instant.lane].push_back(&instant);
  }

  for (const auto& [lane, spans] : lanes) {
    const std::string location = where(process.name, lane);

    const sim::NamedSpan* root = nullptr;
    std::size_t rootCount = 0;
    for (const sim::NamedSpan* span : spans) {
      if (parseRequestLabel(span->label).kind ==
          RequestLabel::Kind::kRequest) {
        root = span;
        ++rootCount;
      }
    }
    if (rootCount != 1) {
      sink.emit("RQ002", location,
                rootCount == 0
                    ? "request lane has no root 'request ...' span"
                    : "request lane has " + std::to_string(rootCount) +
                          " root spans");
      continue;  // nothing to anchor the remaining rules to
    }
    const RequestLabel rootLabel = parseRequestLabel(root->label);

    // Attempt spans by number; component containment checks hang off them.
    std::map<int, const sim::NamedSpan*> attempts;
    bool anyHedge = false;
    for (const sim::NamedSpan* span : spans) {
      const RequestLabel label = parseRequestLabel(span->label);
      if (label.kind == RequestLabel::Kind::kAttempt) {
        attempts[label.attempt] = span;
        anyHedge = anyHedge || label.hedge;
      }
    }

    for (const sim::NamedSpan* span : spans) {
      if (span == root) continue;
      const RequestLabel label = parseRequestLabel(span->label);
      if (span->start < root->start || root->end < span->end) {
        sink.emit("RQ001", location + " span '" + span->label + "'",
                  "span " + timesOf(*span) + " escapes its request's root " +
                      timesOf(*root));
      }
      if (label.kind == RequestLabel::Kind::kUnknown ||
          label.kind == RequestLabel::Kind::kAttempt) {
        continue;
      }
      const auto attempt = attempts.find(label.attempt);
      if (attempt == attempts.end()) {
        sink.emit("RQ004", location + " span '" + span->label + "'",
                  "component span references attempt#" +
                      std::to_string(label.attempt) +
                      " but the lane has no such attempt span");
        continue;
      }
      if (span->start < attempt->second->start ||
          attempt->second->end < span->end) {
        sink.emit("RQ003", location + " span '" + span->label + "'",
                  "span " + timesOf(*span) + " escapes its attempt '" +
                      attempt->second->label + "' " +
                      timesOf(*attempt->second));
      }
    }

    std::size_t hedgeWins = 0;
    const auto laneMarks = marks.find(lane);
    if (laneMarks != marks.end()) {
      for (const InstantEvent* mark : laneMarks->second) {
        if (mark->label == "hedge:win") ++hedgeWins;
      }
    }
    if (hedgeWins > 1) {
      sink.emit("RQ005", location,
                "request has " + std::to_string(hedgeWins) +
                    " 'hedge:win' marks; the hedge winner must be unique");
    } else if (hedgeWins == 1 && !anyHedge) {
      sink.emit("RQ005", location,
                "'hedge:win' mark on a request with no hedged attempt");
    }

    if (rootLabel.outcome.substr(0, 5) == "shed:" && !attempts.empty()) {
      sink.emit("RQ006", location,
                "request shed at admission ('" + std::string{root->label} +
                    "') but the lane records " +
                    std::to_string(attempts.size()) + " attempt span(s)");
    }
  }
}

}  // namespace prtr::verify
