#pragma once
/// \file timeline_rules.hpp
/// Timeline invariant analyzer: statically checks a captured sim::Timeline
/// (or raw span list loaded back from a Chrome trace) against the physical
/// invariants of the simulated platform and reports violations as TL0xx
/// diagnostics. The rules encode what the hardware cannot do:
///
///   TL001  a span ends before it starts (causality)
///   TL002  spans on one lane are recorded out of time order
///   TL003  overlapping spans on a serial resource lane (CPU, recovery)
///   TL004  two personas resident in one PRR at overlapping times
///   TL005  overlapping configuration sessions on the ICAP
///   TL006  overlapping transfers on a simplex HT link
///   TL007  recovery span containing no configuration activity
///
/// Lane semantics follow the executors' conventions: "config" is the
/// single configuration port, "PRR<n>"/"FPGA" are compute regions,
/// "HT-in"/"HT-out" are dedicated simplex links, "recovery" holds PR-4
/// recovery episodes, "rq:<id>" lanes carry one fleet request's nested
/// span tree (checked by the RQ rules in request_rules.hpp, exempt from
/// the serial-overlap rule), anything else ("CPU", ...) is a serial
/// resource.

#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "sim/trace.hpp"

namespace prtr::verify {

/// Physical resource class a timeline lane models.
enum class LaneKind : std::uint8_t {
  kConfigPort,  ///< ICAP: mutual exclusion (TL005)
  kComputeRegion,  ///< PRR / full fabric: single residency (TL004)
  kLink,        ///< simplex HT channel: occupancy conservation (TL006)
  kRecovery,    ///< recovery episodes: serial + must pair with config
  kRequest,     ///< "rq:" request lane: spans nest, overlap is expected
  kSerial,      ///< any other single resource (TL003)
};

[[nodiscard]] LaneKind classifyLane(std::string_view lane) noexcept;

/// Checks one process's spans (any lane mix) and emits TL diagnostics.
/// `process` labels diagnostic locations, e.g. a trace process name.
/// Spans carry materialized names (sim::NamedSpan) because post-hoc traces
/// arrive without a symbol table.
void checkSpans(const std::string& process,
                const std::vector<sim::NamedSpan>& spans,
                analyze::DiagnosticSink& sink);

/// Convenience overload for a live timeline.
void checkTimeline(const std::string& process, const sim::Timeline& timeline,
                   analyze::DiagnosticSink& sink);

}  // namespace prtr::verify
