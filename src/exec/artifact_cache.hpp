#pragma once
/// \file artifact_cache.hpp
/// Content-addressed cache for the expensive immutable artifacts a sweep
/// rebuilds at every point today: validated Floorplans and full / module /
/// difference partial bitstreams. This is the host-side mirror of the
/// paper's own insight (eq. 6–7): avoiding redundant configuration work is
/// where the speedup lives — here applied to the simulator harness itself,
/// whose sweep points differ only in workload parameters, never in the
/// device geometry or the streams loaded onto it.
///
/// Keys are content addresses built with KeyBuilder (CRC-32 over device
/// geometry, floorplan spec, module id, and flow — see
/// bitstream::StreamKey). Values are handed out as shared-ownership
/// handles, so eviction under the LRU byte budget never invalidates a
/// handle a running simulator still holds. getOrBuild is single-flight:
/// concurrent requests for the same key run the builder exactly once and
/// share the result (asserted by the cache test suite).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include <atomic>

#include "bitstream/library.hpp"
#include "exec/instrument.hpp"
#include "fabric/floorplan.hpp"
#include "obs/metrics.hpp"
#include "prof/profiler.hpp"
#include "util/crc32.hpp"

namespace prtr::exec {

/// Accumulates typed fields into a CRC-32-based content address.
class KeyBuilder {
 public:
  KeyBuilder& add(std::uint64_t value) noexcept;
  KeyBuilder& add(std::string_view text) noexcept;
  KeyBuilder& add(double value) noexcept;

  /// CRC-32 of everything fed, widened with the fed byte count so keys of
  /// different lengths never collide trivially.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  util::Crc32 crc_;
  std::uint64_t fed_ = 0;
};

/// Thread-safe LRU cache of immutable artifacts with a byte budget.
class ArtifactCache {
 public:
  using Key = std::uint64_t;

  /// Default budget: 256 MiB, comfortably above one layout's full stream
  /// plus every partial of the paper's module set.
  static constexpr std::uint64_t kDefaultByteBudget = 256ull << 20;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< builder invocations (single-flight)
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;       ///< resident artifact bytes
    std::uint64_t entries = 0;     ///< resident artifact count

    [[nodiscard]] double hitRate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit ArtifactCache(std::uint64_t byteBudget = kDefaultByteBudget);

  /// Returns the bitstream under `key`, invoking `build` once on a miss.
  /// Concurrent misses on the same key wait for the one in-flight build.
  [[nodiscard]] std::shared_ptr<const bitstream::Bitstream> bitstream(
      Key key, const std::function<bitstream::Bitstream()>& build);

  /// Same, for validated floorplans.
  [[nodiscard]] std::shared_ptr<const fabric::Floorplan> floorplan(
      Key key, const std::function<fabric::Floorplan()>& build);

  /// Shrinks/raises the budget, evicting immediately when over.
  void setByteBudget(std::uint64_t bytes);

  /// Drops every resident entry (outstanding handles stay valid).
  void clear();

  [[nodiscard]] Stats stats() const;

  /// Counters/gauges under exec.cache.* (hits, misses, evictions, bytes,
  /// entries, hit_rate).
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const;

  /// Attaches a wall-clock profiler: builder invocations are timed under
  /// "exec.cache.build", hits/misses counted under "exec.cache.hit"/
  /// "exec.cache.miss", and resident bytes sampled under
  /// "exec.cache.bytes" after every build. Null (default) = profiling off.
  void setProfiler(prof::Profiler* profiler) noexcept {
    profiler_.store(profiler, std::memory_order_relaxed);
  }

  /// Attaches a happens-before race checker: the cache mutex and every
  /// single-flight latch are modeled as sync objects, and entry lookups /
  /// inserts / evictions are reported as reads/writes of the entry's key
  /// (site label "exec.cache.entry"). Null (default) = uninstrumented.
  void setRaceChecker(RaceObserver* observer) noexcept {
    if (observer != nullptr) {
      // Publish the mutex's initial (unlocked) state so the first lock's
      // acquire has a matching release instead of a spurious RC004.
      observer->release(reinterpret_cast<std::uint64_t>(&mutex_));
    }
    raceObserver_.store(observer, std::memory_order_release);
  }

  /// Process-wide cache shared by benches and CLI runs.
  [[nodiscard]] static ArtifactCache& global();

 private:
  struct Entry {
    std::shared_ptr<const void> artifact;
    std::uint64_t bytes = 0;
    std::list<Key>::iterator lruPosition;
  };

  /// Single-flight latch for one in-progress build.
  struct Inflight {
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
    std::shared_ptr<const void> artifact;
    std::exception_ptr failure;
  };

  using ErasedBuild =
      std::function<std::pair<std::shared_ptr<const void>, std::uint64_t>()>;

  [[nodiscard]] std::shared_ptr<const void> getOrBuild(Key key,
                                                       const ErasedBuild& build);
  void evictOverBudgetLocked();

  std::atomic<prof::Profiler*> profiler_{nullptr};
  std::atomic<RaceObserver*> raceObserver_{nullptr};
  mutable std::mutex mutex_;
  std::uint64_t byteBudget_;
  std::uint64_t bytes_ = 0;  ///< guarded by mutex_
  std::list<Key> lru_;       ///< front = most recently used
  std::unordered_map<Key, Entry> entries_;
  std::unordered_map<Key, std::shared_ptr<Inflight>> inflight_;
  Stats stats_;  ///< guarded by mutex_ (bytes/entries mirrored on read)
};

/// Adapter: a bitstream::StreamSource that resolves every library build
/// through `cache`, keyed by the stream's content address (StreamKey::hash).
[[nodiscard]] bitstream::StreamSource cachingStreamSource(ArtifactCache& cache);

}  // namespace prtr::exec
