#include "exec/artifact_cache.hpp"

#include <bit>
#include <utility>

namespace prtr::exec {
namespace {

/// Disjoint key salts per artifact type, so a bitstream and a floorplan
/// whose KeyBuilder inputs collide still occupy distinct cache slots.
constexpr std::uint64_t kBitstreamSalt = 0x5842462D42495453ull;  // "XBF-BITS"
constexpr std::uint64_t kFloorplanSalt = 0x464C4F4F52504C4Eull;  // "FLOORPLN"

/// Resident byte estimate of one bitstream: encoded bytes plus the handle
/// and header bookkeeping.
std::uint64_t bitstreamBytes(const bitstream::Bitstream& stream) {
  return stream.bytes().size() + sizeof(bitstream::Bitstream);
}

/// Floorplans carry no frame payloads; estimate per-region/bus-macro
/// bookkeeping so the budget still sees them.
std::uint64_t floorplanBytes(const fabric::Floorplan& plan) {
  return sizeof(fabric::Floorplan) +
         plan.prrs().size() * (sizeof(fabric::Region) + 64) +
         plan.busMacros().size() * sizeof(fabric::BusMacro) +
         plan.device().geometry().columnCount() * sizeof(fabric::ColumnSpec);
}

}  // namespace

KeyBuilder& KeyBuilder::add(std::uint64_t value) noexcept {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  crc_.update(bytes);
  fed_ += 8;
  return *this;
}

KeyBuilder& KeyBuilder::add(std::string_view text) noexcept {
  crc_.update({reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size()});
  fed_ += text.size();
  // Length separator: "ab" + "c" must not alias "a" + "bc".
  return add(static_cast<std::uint64_t>(text.size()));
}

KeyBuilder& KeyBuilder::add(double value) noexcept {
  return add(std::bit_cast<std::uint64_t>(value));
}

std::uint64_t KeyBuilder::value() const noexcept {
  return (static_cast<std::uint64_t>(crc_.value()) << 32) |
         (fed_ & 0xFFFFFFFFull);
}

ArtifactCache::ArtifactCache(std::uint64_t byteBudget)
    : byteBudget_(byteBudget) {}

std::shared_ptr<const void> ArtifactCache::getOrBuild(Key key,
                                                      const ErasedBuild& build) {
  prof::Profiler* profiler = profiler_.load(std::memory_order_relaxed);
  RaceObserver* observer = raceObserver_.load(std::memory_order_acquire);
  // mutex_ and each Inflight latch are modeled as sync objects so the
  // detector sees the same hand-offs the real locks provide; removing a
  // lock here without removing its acquire/release edge would surface as
  // an RC diagnostic in the cache race tests.
  const auto mutexSync = reinterpret_cast<std::uint64_t>(&mutex_);
  std::shared_ptr<Inflight> flight;
  bool builder = false;
  {
    std::unique_lock lock{mutex_};
    if (observer != nullptr) observer->acquire(mutexSync);
    const auto hit = entries_.find(key);
    if (hit != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, hit->second.lruPosition);
      auto artifact = hit->second.artifact;
      if (observer != nullptr) {
        observer->access(key, "exec.cache.entry", /*write=*/false);
        observer->release(mutexSync);
      }
      lock.unlock();
      if (profiler != nullptr) profiler->count("exec.cache.hit");
      return artifact;
    }
    const auto pending = inflight_.find(key);
    if (pending != inflight_.end()) {
      flight = pending->second;  // someone else is building: wait below
    } else {
      ++stats_.misses;
      flight = std::make_shared<Inflight>();
      inflight_.emplace(key, flight);
      builder = true;
    }
    if (observer != nullptr) observer->release(mutexSync);
  }
  const auto flightSync = reinterpret_cast<std::uint64_t>(flight.get());

  if (!builder) {
    if (profiler != nullptr) profiler->count("exec.cache.hit");
    std::unique_lock wait{flight->mutex};
    flight->done.wait(wait, [&] { return flight->finished; });
    // Latch departure: adopt everything the builder did before it
    // published the artifact.
    if (observer != nullptr) observer->acquire(flightSync);
    if (flight->failure) std::rethrow_exception(flight->failure);
    // A waiter counts as a hit: the artifact was not rebuilt for it.
    const std::scoped_lock lock{mutex_};
    if (observer != nullptr) observer->acquire(mutexSync);
    ++stats_.hits;
    if (observer != nullptr) {
      observer->access(key, "exec.cache.entry", /*write=*/false);
      observer->release(mutexSync);
    }
    return flight->artifact;
  }
  if (profiler != nullptr) profiler->count("exec.cache.miss");

  std::shared_ptr<const void> artifact;
  std::uint64_t artifactBytes = 0;
  std::exception_ptr failure;
  try {
    const prof::Scope scope{profiler, "exec.cache.build"};
    std::tie(artifact, artifactBytes) = build();
  } catch (...) {
    failure = std::current_exception();
  }

  std::uint64_t residentBytes = 0;
  {
    const std::scoped_lock lock{mutex_};
    if (observer != nullptr) observer->acquire(mutexSync);
    inflight_.erase(key);
    if (!failure) {
      if (observer != nullptr) {
        observer->access(key, "exec.cache.entry", /*write=*/true);
      }
      lru_.push_front(key);
      entries_.emplace(key, Entry{artifact, artifactBytes, lru_.begin()});
      bytes_ += artifactBytes;
      evictOverBudgetLocked();
    }
    residentBytes = bytes_;
    if (observer != nullptr) observer->release(mutexSync);
  }
  if (profiler != nullptr && !failure) {
    profiler->sample("exec.cache.bytes",
                     static_cast<std::int64_t>(residentBytes));
  }
  {
    const std::scoped_lock lock{flight->mutex};
    flight->finished = true;
    flight->artifact = artifact;
    flight->failure = failure;
    // Latch publication: waiters acquire flightSync after the wait.
    if (observer != nullptr) observer->release(flightSync);
  }
  flight->done.notify_all();
  if (failure) std::rethrow_exception(failure);
  return artifact;
}

void ArtifactCache::evictOverBudgetLocked() {
  RaceObserver* observer = raceObserver_.load(std::memory_order_acquire);
  while (bytes_ > byteBudget_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    ++stats_.evictions;
    if (observer != nullptr) {
      observer->access(victim, "exec.cache.entry", /*write=*/true);
    }
  }
}

std::shared_ptr<const bitstream::Bitstream> ArtifactCache::bitstream(
    Key key, const std::function<bitstream::Bitstream()>& build) {
  auto erased = getOrBuild(key ^ kBitstreamSalt, [&] {
    auto stream = std::make_shared<const bitstream::Bitstream>(build());
    const std::uint64_t size = bitstreamBytes(*stream);
    return std::pair<std::shared_ptr<const void>, std::uint64_t>{
        std::move(stream), size};
  });
  return std::static_pointer_cast<const bitstream::Bitstream>(erased);
}

std::shared_ptr<const fabric::Floorplan> ArtifactCache::floorplan(
    Key key, const std::function<fabric::Floorplan()>& build) {
  auto erased = getOrBuild(key ^ kFloorplanSalt, [&] {
    auto plan = std::make_shared<const fabric::Floorplan>(build());
    const std::uint64_t size = floorplanBytes(*plan);
    return std::pair<std::shared_ptr<const void>, std::uint64_t>{
        std::move(plan), size};
  });
  return std::static_pointer_cast<const fabric::Floorplan>(erased);
}

void ArtifactCache::setByteBudget(std::uint64_t bytes) {
  const std::scoped_lock lock{mutex_};
  byteBudget_ = bytes;
  evictOverBudgetLocked();
}

void ArtifactCache::clear() {
  RaceObserver* observer = raceObserver_.load(std::memory_order_acquire);
  const auto mutexSync = reinterpret_cast<std::uint64_t>(&mutex_);
  const std::scoped_lock lock{mutex_};
  if (observer != nullptr) {
    observer->acquire(mutexSync);
    for (const auto& [key, entry] : entries_) {
      observer->access(key, "exec.cache.entry", /*write=*/true);
    }
  }
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  if (observer != nullptr) observer->release(mutexSync);
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::scoped_lock lock{mutex_};
  Stats stats = stats_;
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  return stats;
}

obs::MetricsSnapshot ArtifactCache::metricsSnapshot() const {
  struct Ids {
    obs::CounterId hits, misses, evictions, bytes, entries;
    obs::GaugeId hitRate;
  };
  static const Ids kIds = [] {
    obs::MetricTable& t = obs::MetricTable::global();
    return Ids{t.counter("exec.cache.hits"),    t.counter("exec.cache.misses"),
               t.counter("exec.cache.evictions"), t.counter("exec.cache.bytes"),
               t.counter("exec.cache.entries"),  t.gauge("exec.cache.hit_rate")};
  }();
  const Stats stats = this->stats();
  obs::Registry reg;
  reg.add(kIds.hits, stats.hits);
  reg.add(kIds.misses, stats.misses);
  reg.add(kIds.evictions, stats.evictions);
  reg.add(kIds.bytes, stats.bytes);
  reg.add(kIds.entries, stats.entries);
  reg.set(kIds.hitRate, stats.hitRate());
  return reg.takeSnapshot();
}

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache cache;
  return cache;
}

bitstream::StreamSource cachingStreamSource(ArtifactCache& cache) {
  return [&cache](const bitstream::StreamKey& key,
                  const std::function<bitstream::Bitstream()>& build) {
    return cache.bitstream(key.hash(), build);
  };
}

}  // namespace prtr::exec
