#include "exec/pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "exec/artifact_cache.hpp"

namespace prtr::exec {
namespace {

/// Identifies the pool (and worker slot) owning the current thread, so
/// push() can target the worker's own deque and obtain() can prefer it.
thread_local Pool* tlsPool = nullptr;
thread_local std::size_t tlsWorker = 0;

/// obs thread-slot provider: pool workers map to workerIndex + 1, every
/// other thread (the caller participating in a parallelFor included) to
/// slot 0 — so ShardedRegistry::local() never shares a shard between two
/// recording threads.
std::size_t poolThreadSlot() noexcept {
  return tlsPool != nullptr ? tlsWorker + 1 : 0;
}

const bool threadSlotRegistered = [] {  // NOLINT(cert-err58-cpp)
  obs::setThreadSlotProvider(&poolThreadSlot);
  return true;
}();

/// Distinguishes a task's completion sync object from its submission one,
/// so "submitted happens-before run" and "ran happens-before joined" are
/// separate edges.
constexpr std::uint64_t kTaskDoneSalt = 0x444F4E45ull << 32;  // "DONE"

std::mutex globalMutex;
std::unique_ptr<Pool> globalPool;       // NOLINT(cert-err58-cpp)
std::size_t globalThreadRequest = 0;    // 0 = hardware concurrency

}  // namespace

std::size_t hardwareConcurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Pool::Pool(std::size_t threads) {
  const std::size_t n = threads == 0 ? hardwareConcurrency() : threads;
  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerMain(i); });
  }
}

Pool::~Pool() {
  {
    const std::scoped_lock lock{sleepMutex_};
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Pool::push(std::unique_ptr<Task> task) {
  task->syncId = nextSyncId_.fetch_add(1, std::memory_order_relaxed);
  if (RaceObserver* observer = raceObserver_.load(std::memory_order_acquire)) {
    // Submission edge: everything the submitter did so far happens-before
    // whatever thread later runs this task.
    observer->release(task->syncId);
  }
  std::size_t target =
      tlsPool == this
          ? tlsWorker
          : pushCursor_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  if (ScheduleOracle* oracle = lockOracle()) {
    target = oracle->choose(deques_.size(), kOracleSitePush);
    unlockOracle();
  }
  {
    const std::scoped_lock lock{deques_[target]->mutex};
    deques_[target]->tasks.push_back(std::move(task));
  }
  std::size_t depth = 0;
  {
    const std::scoped_lock lock{sleepMutex_};
    depth = ++readyHint_;
  }
  wake_.notify_one();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (prof::Profiler* profiler = profiler_.load(std::memory_order_relaxed)) {
    profiler->sample("exec.pool.queue_depth",
                     static_cast<std::int64_t>(depth));
  }
}

// Both seq_cst round-trips pair with setScheduleOracle's store-then-drain:
// either the pinning thread sees the new pointer, or the detacher sees the
// pin and waits — the old oracle is never touched after detach returns.
ScheduleOracle* Pool::lockOracle() noexcept {
  if (oracle_.load(std::memory_order_acquire) == nullptr) return nullptr;
  oracleUsers_.fetch_add(1, std::memory_order_seq_cst);
  ScheduleOracle* oracle = oracle_.load(std::memory_order_seq_cst);
  if (oracle == nullptr) unlockOracle();
  return oracle;
}

void Pool::unlockOracle() noexcept {
  oracleUsers_.fetch_sub(1, std::memory_order_seq_cst);
}

std::unique_ptr<Pool::Task> Pool::obtain(std::size_t self) {
  ScheduleOracle* oracle = lockOracle();
  std::unique_ptr<Task> task;
  // Own deque: pop the back (the owner's LIFO end); an oracle may flip the
  // pop to the FIFO end to surface order-dependent bugs.
  {
    const std::scoped_lock lock{deques_[self]->mutex};
    if (!deques_[self]->tasks.empty()) {
      const bool front =
          oracle != nullptr && oracle->choose(2, kOracleSitePopEnd) == 1;
      if (front) {
        task = std::move(deques_[self]->tasks.front());
        deques_[self]->tasks.pop_front();
      } else {
        task = std::move(deques_[self]->tasks.back());
        deques_[self]->tasks.pop_back();
      }
    }
  }
  // Steal: take the front (FIFO end) of the first non-empty victim. The
  // oracle rotates which victim the probe starts at.
  if (!task) {
    const std::size_t n = deques_.size();
    const std::size_t spin =
        oracle != nullptr && n > 1
            ? oracle->choose(n - 1, kOracleSiteStealOrder)
            : 0;
    for (std::size_t k = 1; k < n && !task; ++k) {
      const std::size_t victim = (self + 1 + (spin + k - 1) % (n - 1)) % n;
      const std::scoped_lock lock{deques_[victim]->mutex};
      if (!deques_[victim]->tasks.empty()) {
        task = std::move(deques_[victim]->tasks.front());
        deques_[victim]->tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (prof::Profiler* profiler =
                profiler_.load(std::memory_order_relaxed)) {
          profiler->count("exec.pool.steal");
        }
      }
    }
  }
  if (oracle != nullptr) unlockOracle();
  if (task) {
    const std::scoped_lock lock{sleepMutex_};
    --readyHint_;
  }
  return task;
}

void Pool::runObtainedTask(Task& task) {
  RaceObserver* observer = raceObserver_.load(std::memory_order_acquire);
  if (observer != nullptr) observer->acquire(task.syncId);
  {
    const prof::Scope scope{profiler_.load(std::memory_order_relaxed),
                            "exec.pool.task"};
    task.run();
  }
  // Completion edge: a joiner that later acquires syncId ^ kTaskDoneSalt
  // (the parallelFor barrier does, through its ForState sync) observes
  // everything the task did.
  if (observer != nullptr) observer->release(task.syncId ^ kTaskDoneSalt);
  executed_.fetch_add(1, std::memory_order_relaxed);
}

void Pool::workerMain(std::size_t index) {
  tlsPool = this;
  tlsWorker = index;
  for (;;) {
    std::unique_ptr<Task> task = obtain(index);
    if (task) {
      runObtainedTask(*task);
      continue;
    }
    std::unique_lock lock{sleepMutex_};
    wake_.wait(lock, [this] { return stopping_ || readyHint_ > 0; });
    if (stopping_ && readyHint_ == 0) return;  // drained: safe to exit
  }
}

bool Pool::tryRunOneTask() {
  const std::size_t self = tlsPool == this ? tlsWorker : 0;
  std::unique_ptr<Task> task = obtain(self);
  if (!task) return false;
  runObtainedTask(*task);
  return true;
}

/// Shared state of one parallelFor call.
struct Pool::ForState {
  std::size_t count = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pendingRunners = 0;  ///< guarded by mutex
  std::exception_ptr failure;      ///< guarded by mutex
  /// Barrier sync object: every runner releases into it when its chunks
  /// are done; the caller acquires it once, after the last runner.
  RaceObserver* observer = nullptr;
  std::uint64_t barrierSyncId = 0;
};

void Pool::runChunks(ForState& state) {
  for (;;) {
    if (state.stop.load(std::memory_order_relaxed)) return;
    const std::size_t begin =
        state.next.fetch_add(state.chunk, std::memory_order_relaxed);
    if (begin >= state.count) return;
    const std::size_t end = std::min(begin + state.chunk, state.count);
    try {
      for (std::size_t i = begin; i < end; ++i) (*state.fn)(i);
    } catch (...) {
      const std::scoped_lock lock{state.mutex};
      if (!state.failure) state.failure = std::current_exception();
      state.stop.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

struct Pool::ForRunner final : Task {
  explicit ForRunner(std::shared_ptr<ForState> s) : state(std::move(s)) {}
  void run() noexcept override {
    runChunks(*state);
    if (state->observer != nullptr) state->observer->release(state->barrierSyncId);
    const std::scoped_lock lock{state->mutex};
    if (--state->pendingRunners == 0) state->done.notify_all();
  }
  std::shared_ptr<ForState> state;
};

void Pool::parallelFor(std::size_t count,
                       const std::function<void(std::size_t)>& fn,
                       ForOptions options) {
  if (count == 0) return;
  std::size_t participants =
      options.threads == 0 ? threadCount() : options.threads;
  participants = std::min(participants, count);
  if (participants <= 1) {
    // Serial fast path: same contract as the pooled path — the first
    // exception propagates unchanged and no further indices start.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  parallelFors_.fetch_add(1, std::memory_order_relaxed);

  auto state = std::make_shared<ForState>();
  state->count = count;
  state->fn = &fn;
  const std::size_t grain = std::max<std::size_t>(options.grain, 1);
  state->chunk = std::max(grain, count / (participants * 8));
  state->observer = raceObserver_.load(std::memory_order_acquire);
  if (state->observer != nullptr) {
    state->barrierSyncId = nextSyncId_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::size_t runners = participants - 1;  // caller is a participant
  state->pendingRunners = runners;
  for (std::size_t r = 0; r < runners; ++r) {
    push(std::make_unique<ForRunner>(state));
  }

  runChunks(*state);

  // Help run queued tasks (ours or anyone's) while the runners finish, so
  // nested sweeps cannot deadlock and a 1-worker pool still makes progress.
  std::unique_lock lock{state->mutex};
  while (state->pendingRunners != 0) {
    lock.unlock();
    if (!tryRunOneTask()) {
      lock.lock();
      state->done.wait_for(lock, std::chrono::milliseconds(1),
                           [&] { return state->pendingRunners == 0; });
    } else {
      lock.lock();
    }
  }
  // Barrier departure: adopt everything every runner did before returning
  // to the caller, matching the releases in ForRunner::run.
  if (state->observer != nullptr) state->observer->acquire(state->barrierSyncId);
  if (state->failure) std::rethrow_exception(state->failure);
}

obs::MetricsSnapshot Pool::metricsSnapshot() const {
  struct Ids {
    obs::CounterId threads, submitted, executed, steals, parallelFors;
  };
  static const Ids kIds = [] {
    obs::MetricTable& t = obs::MetricTable::global();
    return Ids{t.counter("exec.pool.threads"),
               t.counter("exec.pool.submitted"),
               t.counter("exec.pool.executed"),
               t.counter("exec.pool.steals"),
               t.counter("exec.pool.parallel_fors")};
  }();
  obs::Registry reg;
  reg.add(kIds.threads, threadCount());
  reg.add(kIds.submitted, submitted_.load(std::memory_order_relaxed));
  reg.add(kIds.executed, executed_.load(std::memory_order_relaxed));
  reg.add(kIds.steals, steals_.load(std::memory_order_relaxed));
  reg.add(kIds.parallelFors, parallelFors_.load(std::memory_order_relaxed));
  return reg.takeSnapshot();
}

Pool& Pool::global() {
  const std::scoped_lock lock{globalMutex};
  if (!globalPool) globalPool = std::make_unique<Pool>(globalThreadRequest);
  return *globalPool;
}

void Pool::setGlobalThreads(std::size_t threads) {
  const std::scoped_lock lock{globalMutex};
  globalThreadRequest = threads;
  const std::size_t resolved =
      threads == 0 ? hardwareConcurrency() : threads;
  if (globalPool && globalPool->threadCount() != resolved) globalPool.reset();
}

void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 ForOptions options) {
  Pool::global().parallelFor(count, fn, options);
}

void setRaceChecker(RaceObserver* observer) {
  Pool::global().setRaceChecker(observer);
  ArtifactCache::global().setRaceChecker(observer);
}

}  // namespace prtr::exec
