#pragma once
/// \file instrument.hpp
/// Concurrency-instrumentation seams for the exec layer. Both interfaces
/// follow the prof::Profiler pattern from PR 5: an atomic pointer that is
/// null by default, so the hot paths pay one relaxed load and a branch when
/// instrumentation is off, and implementations live in a higher layer
/// (prtr::verify) that exec never links against.
///
/// RaceObserver receives the happens-before-relevant events of the pool and
/// the artifact cache: release/acquire edges through sync objects (task
/// submission, task completion, parallelFor barriers, mutex hand-offs) and
/// reads/writes of logically shared state. verify::RaceDetector folds them
/// into vector clocks and reports unordered conflicting accesses as RC0xx
/// diagnostics.
///
/// ScheduleOracle lets a driver (verify::exploreSchedules) perturb the
/// pool's scheduling decisions — which deque a task lands on, which victim
/// a steal probes first, which end of the owner's deque pops — so a seeded
/// oracle enumerates distinct task interleavings while the pool's
/// determinism contract (results stored by index) keeps outputs identical.
/// The oracle observes its own decision stream, which doubles as the
/// schedule's signature.

#include <cstddef>
#include <cstdint>

namespace prtr::exec {

/// Receives happens-before events. Implementations must be thread-safe:
/// every pool worker and every submitting thread calls in concurrently.
/// Callee identifies the calling thread itself (std::this_thread); the
/// exec layer only names the sync object or shared location.
class RaceObserver {
 public:
  virtual ~RaceObserver() = default;

  /// The calling thread publishes its causal past into sync object
  /// `syncId` (task enqueue, barrier arrival, mutex unlock).
  virtual void release(std::uint64_t syncId) noexcept = 0;

  /// The calling thread adopts the causal past stored in `syncId` (task
  /// dequeue/run, barrier departure, mutex lock).
  virtual void acquire(std::uint64_t syncId) noexcept = 0;

  /// The calling thread touched logically shared state `objectId`
  /// (`what` is a stable site label such as "exec.cache.entry").
  /// Unordered write/write, write/read, and read/write pairs are races.
  virtual void access(std::uint64_t objectId, const char* what,
                      bool write) noexcept = 0;
};

/// Perturbs pool scheduling decisions. choose() must return a value in
/// [0, choices); `site` tags the decision point so an oracle can fold the
/// decision stream into a schedule signature. Called concurrently from
/// every worker; implementations must be thread-safe.
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;
  [[nodiscard]] virtual std::size_t choose(std::size_t choices,
                                           std::uint64_t site) noexcept = 0;
};

/// Decision-site tags fed to ScheduleOracle::choose.
inline constexpr std::uint64_t kOracleSitePush = 1;       ///< target deque
inline constexpr std::uint64_t kOracleSitePopEnd = 2;     ///< LIFO vs FIFO pop
inline constexpr std::uint64_t kOracleSiteStealOrder = 3; ///< victim rotation

}  // namespace prtr::exec
