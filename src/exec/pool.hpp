#pragma once
/// \file pool.hpp
/// Persistent work-stealing thread pool for the sweep-shaped workloads of
/// this library (figure sweeps, chassis blades, what-if grids). Every sweep
/// point is an independent Simulator run, so the pool's job is purely to
/// keep host cores busy without paying thread spawn/join per call the way
/// the old analysis::parallelFor did.
///
/// Structure: one worker thread per hardware context (configurable), each
/// owning a Chase-Lev-style deque — the owner pushes and pops at the back
/// (LIFO, cache-friendly for nested fork), idle workers steal from the
/// front (FIFO, grabs the oldest/biggest work first). Deques are guarded by
/// small per-deque mutexes rather than lock-free CAS loops: tasks here are
/// whole simulator runs (milliseconds to seconds), so queue overhead is
/// noise and the mutexed variant is trivially ThreadSanitizer-clean.
///
/// Blocking submitters help: a thread that waits inside parallelFor/
/// parallelMap executes queued tasks itself instead of sleeping, which (a)
/// makes nested parallelism deadlock-free and (b) means `threads == 1`
/// degenerates to a plain serial loop on the calling thread.
///
/// Determinism contract: parallelFor hands out index chunks dynamically,
/// but results are stored by index, so any reduction that combines results
/// in index order is byte-identical to the serial run regardless of the
/// thread count. The determinism test suite asserts this for the figure
/// sweeps and chassis runs.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/instrument.hpp"
#include "obs/metrics.hpp"
#include "prof/profiler.hpp"

namespace prtr::exec {

/// Hardware thread count, at least 1.
[[nodiscard]] std::size_t hardwareConcurrency() noexcept;

/// Knobs for one parallelFor/parallelMap call.
struct ForOptions {
  /// Maximum concurrently active participants (calling thread included).
  /// 0 = the pool's thread count; 1 = serial on the calling thread.
  std::size_t threads = 0;
  /// Minimum indices per dynamically claimed chunk. The chunk size itself
  /// is fixed statically per call (count / (threads * 8), floored at
  /// `grain`); chunks are claimed dynamically for load balance.
  std::size_t grain = 1;
};

/// Persistent work-stealing pool. Thread-safe; one lazily created global
/// instance serves the whole process (Pool::global()), and independent
/// instances can be constructed for isolation (tests, embedders).
class Pool {
 public:
  /// Starts `threads` workers (0 = hardwareConcurrency()).
  explicit Pool(std::size_t threads = 0);
  /// Drains queued tasks, then joins every worker.
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return deques_.size();
  }

  /// Enqueues `fn` and returns its future. Exceptions thrown by `fn`
  /// surface from future::get().
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>&>> {
    using R = std::invoke_result_t<std::decay_t<Fn>&>;
    std::packaged_task<R()> task{std::forward<Fn>(fn)};
    std::future<R> future = task.get_future();
    push(std::make_unique<TaskImpl<R>>(std::move(task)));
    return future;
  }

  /// Applies `fn(index)` for every index in [0, count). The calling thread
  /// participates (and helps run unrelated queued tasks while waiting, so
  /// nesting parallelFor inside pool tasks cannot deadlock). The first
  /// exception (in completion order) is rethrown after no new chunks start;
  /// indices already claimed by other participants may still run.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn,
                   ForOptions options = {});

  /// Maps `fn` over `inputs`, preserving order. Results need not be
  /// default-constructible: they are emplaced into per-index optional slots
  /// and moved out once the sweep completes.
  template <typename T, typename Fn>
  [[nodiscard]] auto parallelMap(const std::vector<T>& inputs, Fn&& fn,
                                 ForOptions options = {})
      -> std::vector<std::invoke_result_t<Fn&, const T&>> {
    using R = std::invoke_result_t<Fn&, const T&>;
    std::vector<std::optional<R>> slots(inputs.size());
    parallelFor(
        inputs.size(),
        [&](std::size_t i) { slots[i].emplace(fn(inputs[i])); }, options);
    std::vector<R> results;
    results.reserve(inputs.size());
    for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Pops one queued task (own deque first, then stealing) and runs it on
  /// the calling thread. Returns false when every deque is empty.
  bool tryRunOneTask();

  /// Pool counters under exec.pool.* (threads, submitted, executed, steals,
  /// parallel_fors) for obs consumers.
  [[nodiscard]] obs::MetricsSnapshot metricsSnapshot() const;

  /// Attaches a wall-clock profiler: task execution is timed under
  /// "exec.pool.task", steals counted under "exec.pool.steal", and the
  /// ready-task backlog sampled under "exec.pool.queue_depth" at every
  /// push. Null (the default) keeps the hot paths unprofiled. The profiler
  /// must outlive the pool or be detached first.
  void setProfiler(prof::Profiler* profiler) noexcept {
    profiler_.store(profiler, std::memory_order_relaxed);
  }

  /// Attaches a happens-before race checker: task submit/steal/complete
  /// and parallelFor barrier edges are reported as release/acquire pairs
  /// on per-task sync objects (see exec/instrument.hpp). Null (the
  /// default) keeps the hot paths uninstrumented. The observer must
  /// outlive the pool or be detached first.
  void setRaceChecker(RaceObserver* observer) noexcept {
    raceObserver_.store(observer, std::memory_order_release);
  }

  /// Injects a schedule oracle that perturbs task placement, pop ends,
  /// and steal-victim order (verify::exploreSchedules drives this with
  /// seeded oracles to enumerate interleavings). Null = default policy.
  /// Unlike the race checker, the oracle does NOT have to outlive the
  /// pool: this call quiesces before returning, so the previous oracle
  /// may be destroyed as soon as it is detached (exploreSchedules runs a
  /// scoped oracle per replay).
  void setScheduleOracle(ScheduleOracle* oracle) noexcept {
    oracle_.store(oracle, std::memory_order_seq_cst);
    // A thread that loaded the previous oracle holds oracleUsers_ until
    // it is done calling into it; once the count drains, no thread can
    // reach the old oracle again (lockOracle re-checks after pinning).
    while (oracleUsers_.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }

  /// The process-wide pool, created on first use with the thread count last
  /// given to setGlobalThreads (default: hardware concurrency).
  [[nodiscard]] static Pool& global();

  /// Sets the global pool's thread count. An already created global pool of
  /// a different size is torn down (draining its queue) and lazily rebuilt.
  /// Call at startup, before concurrent users hold references.
  static void setGlobalThreads(std::size_t threads);

 private:
  /// Type-erased queued unit of work. run() must not throw: user exceptions
  /// are captured into futures (submit) or the sweep state (parallelFor).
  /// syncId identifies the task as a happens-before sync object: push()
  /// releases into it, the running thread acquires from it.
  struct Task {
    virtual ~Task() = default;
    virtual void run() noexcept = 0;
    std::uint64_t syncId = 0;
  };

  template <typename R>
  struct TaskImpl final : Task {
    explicit TaskImpl(std::packaged_task<R()> t) : task(std::move(t)) {}
    void run() noexcept override { task(); }
    std::packaged_task<R()> task;
  };

  /// Pins the attached oracle against a concurrent setScheduleOracle
  /// (which quiesces on oracleUsers_). Returns null without pinning when
  /// no oracle is attached; a non-null return must be paired with
  /// unlockOracle().
  [[nodiscard]] ScheduleOracle* lockOracle() noexcept;
  void unlockOracle() noexcept;

  /// Shared state of one parallelFor call; runners hold shared ownership
  /// so the state outlives early caller unwinding paths.
  struct ForState;
  struct ForRunner;

  struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::unique_ptr<Task>> tasks;
  };

  void push(std::unique_ptr<Task> task);
  [[nodiscard]] std::unique_ptr<Task> obtain(std::size_t self);
  void workerMain(std::size_t index);
  void runObtainedTask(Task& task);
  static void runChunks(ForState& state);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex sleepMutex_;
  std::condition_variable wake_;
  std::size_t readyHint_ = 0;  ///< queued tasks (guarded by sleepMutex_)
  bool stopping_ = false;      ///< guarded by sleepMutex_

  std::atomic<prof::Profiler*> profiler_{nullptr};
  // Observer/oracle pointers publish with release and are read with
  // acquire (free on x86) so the pointee's construction is visible to a
  // worker before its first callback.
  std::atomic<RaceObserver*> raceObserver_{nullptr};
  std::atomic<ScheduleOracle*> oracle_{nullptr};
  std::atomic<std::size_t> oracleUsers_{0};
  std::atomic<std::uint64_t> nextSyncId_{1};
  std::atomic<std::size_t> pushCursor_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parallelFors_{0};
};

/// Convenience wrappers over Pool::global().
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn,
                 ForOptions options = {});

/// Attaches `observer` to the process-wide pool and artifact cache in one
/// call (the usual way verify::RaceDetector is armed). Null detaches both.
void setRaceChecker(RaceObserver* observer);

template <typename T, typename Fn>
[[nodiscard]] auto parallelMap(const std::vector<T>& inputs, Fn&& fn,
                               ForOptions options = {})
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  return Pool::global().parallelMap(inputs, std::forward<Fn>(fn), options);
}

}  // namespace prtr::exec
