#pragma once
/// \file checks_bitstream.hpp
/// XBF bitstream structural rules (codes BS001..BS011). This is the single
/// home of the rule logic: `bitstream::parse()` and `peekHeader()` route
/// their validation through scanStream()/scanHeader(), so a stream that
/// parses successfully can never lint with errors and vice versa.

#include <cstdint>
#include <optional>
#include <span>

#include "analyze/diagnostic.hpp"
#include "bitstream/parser.hpp"
#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"

namespace prtr::analyze {

/// Result of a structural scan. `writes` is only meaningful when no error
/// was emitted; like bitstream::ParsedStream it is non-owning (the byte
/// buffer must outlive it).
struct StreamScan {
  bool headerValid = false;
  bitstream::Header header{};
  std::vector<bitstream::FrameWrite> writes;
};

/// Header-only scan (magic, type, fixed fields). Returns the header when
/// structurally valid; emits BS001..BS003 otherwise.
[[nodiscard]] std::optional<bitstream::Header> scanHeader(
    std::span<const std::uint8_t> bytes, DiagnosticSink& sink);

/// Full structural scan of `bytes` against `device`'s geometry: header,
/// device compatibility, CRC, the complete frame-write walk, and the
/// size-vs-frame-math consistency check.
[[nodiscard]] StreamScan scanStream(std::span<const std::uint8_t> bytes,
                                    const fabric::Device& device,
                                    DiagnosticSink& sink);

/// Cross-check: a partial stream's frame range must sit inside one PRR of
/// `floorplan` (BS011). Full streams pass trivially.
void checkStreamFitsFloorplan(const StreamScan& scan,
                              const fabric::Floorplan& floorplan,
                              DiagnosticSink& sink);

}  // namespace prtr::analyze
