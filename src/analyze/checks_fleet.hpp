#pragma once
/// \file checks_fleet.hpp
/// FL* rules: fleet-configuration validation, plus the `.fleet` spec
/// format consumed by `prtr-lint fleet-spec` and bench_fleet.
///
/// Fleet spec (one `<key> <value>` per line, '#' comments):
///     cells <n>             blades <n>             requests <n>
///     seed <n>              arrival poisson|fixed-rate|trace
///     offered-load <x>      users <n>              task-affinity <x>
///     payload-kib <n>       payload-spread <x>
///     routing least-loaded|p2c|round-robin
///     max-attempts <n>      retry-budget <x>       retry-burst <x>
///     retry-backoff-us <t>  retry-backoff-factor <x>
///     breaker true|false    breaker-failures <n>   breaker-open-us <t>
///     breaker-probes <n>    breaker-probe-successes <n>
///     slo-factor <x>        max-queue-depth <n>
///     hedge true|false      hedge-quantile <x>     hedge-min-samples <n>
///     hedge-budget <x>
///     degraded-fraction <x> escalate-after <n>     recover-after <n>
///     rate-limit true|false rate-limit-rps <x>     rate-limit-burst <x>
///     trace true|false      trace-sample-rate <x>  trace-slow-quantile <x>
///     trace-slow-min-samples <n>                   trace-max-per-cell <n>
///     slo true|false        slo-objective <x>      slo-latency-us <t>
///     slo-window-us <t>     slo-fast-windows <n>   slo-slow-windows <n>
///     slo-fast-burn <x>     slo-slow-burn <x>
///
/// Fault plans stay out of the spec deliberately: bench_fleet composes a
/// `.fleet` spec with `.flt` fault specs (checks_fault.hpp), one for the
/// healthy blades and one for the degraded subset, mirroring bench_chaos.
///
/// Compiled into the prtr_fleet library (analyze itself stays dependency-
/// free of the subsystems it validates — same split as the other checkers).

#include <istream>
#include <string>

#include "analyze/diagnostic.hpp"
#include "fleet/fleet.hpp"

namespace prtr::analyze {

/// A fleet configuration as written, before any validation.
struct FleetSpec {
  std::uint64_t cells = 4;
  std::uint64_t blades = 6;
  std::uint64_t requests = 100'000;
  std::uint64_t seed = 0xF1EE7u;
  std::string arrival = "poisson";  ///< poisson | fixed-rate | trace
  double offeredLoad = 0.7;
  std::uint64_t users = 64;
  double taskAffinity = 0.75;
  std::uint64_t payloadKib = 1024;
  double payloadSpread = 0.25;
  std::string routing = "p2c";  ///< least-loaded | p2c | round-robin
  std::uint64_t maxAttempts = 3;
  double retryBudget = 0.2;
  double retryBurst = 10.0;
  double retryBackoffUs = 0.2;
  double retryBackoffFactor = 2.0;
  bool breaker = true;
  std::uint64_t breakerFailures = 5;
  double breakerOpenUs = 5000.0;
  std::uint64_t breakerProbes = 3;
  std::uint64_t breakerProbeSuccesses = 2;
  double sloFactor = 16.0;
  std::uint64_t maxQueueDepth = 64;
  bool hedge = false;
  double hedgeQuantile = 0.95;
  std::uint64_t hedgeMinSamples = 100;
  double hedgeBudget = 0.05;
  double degradedFraction = 0.0;
  std::uint64_t escalateAfter = 3;
  std::uint64_t recoverAfter = 16;
  bool rateLimit = false;
  double rateLimitRps = 50.0;
  double rateLimitBurst = 10.0;
  bool trace = false;
  double traceSampleRate = 0.01;
  double traceSlowQuantile = 0.99;
  std::uint64_t traceSlowMinSamples = 1000;
  std::uint64_t traceMaxPerCell = 10'000;
  bool slo = false;
  double sloObjective = 0.999;
  double sloLatencyUs = 0.0;   ///< 0 = derive from the admission deadline
  double sloWindowUs = 50'000.0;
  std::uint64_t sloFastWindows = 3;
  std::uint64_t sloSlowWindows = 12;
  double sloFastBurn = 14.0;
  double sloSlowBurn = 6.0;
};

/// Parses a fleet spec; throws DomainError (with the line number) on
/// syntax errors. Unknown arrival/routing names parse fine — they lint as
/// FL005 / FL004.
[[nodiscard]] FleetSpec parseFleetSpec(std::istream& in);

/// Runs the string-boundary rules (FL004, FL005) and all typed FL rules
/// over a parsed spec.
[[nodiscard]] DiagnosticSink lintFleetSpec(const FleetSpec& spec);

/// Typed-boundary FL rules over assembled options — what runFleet's
/// callers use before committing to a million-request run. Checks the
/// fault plans too (degraded-plan interplay: FL014, FL015).
void checkFleetOptions(const fleet::FleetOptions& options,
                       DiagnosticSink& sink);

/// FL017 over a calibrated blade profile: a task whose every cost
/// component collapsed to zero means the calibration scenarios never
/// exercised it (zero-byte payloads, a single degenerate scenario) — the
/// fleet would simulate free requests instead of failing loudly.
void checkBladeProfile(const fleet::BladeProfile& profile,
                       DiagnosticSink& sink);

/// Converts a (lint-clean) spec into typed options. Unknown routing and
/// arrival names fall back to the defaults, mirroring the scenario spec's
/// value_or behaviour. Fault plans and the trace stay default — callers
/// attach those programmatically.
[[nodiscard]] fleet::FleetOptions fleetSpecToOptions(const FleetSpec& spec);

}  // namespace prtr::analyze
