#pragma once
/// \file diagnostic.hpp
/// Core of the `prtr::analyze` static-diagnostics subsystem.
///
/// Every rule the checkers (checks_floorplan.hpp, checks_bitstream.hpp,
/// checks_model.hpp, checks_fault.hpp, checks_fleet.hpp,
/// verify/timeline_rules.hpp, verify/race.hpp) can raise has a stable
/// machine-readable code — `FPxxx` for floorplan rules, `BSxxx` for
/// bitstream rules, `MDxxx` for model and scenario rules, `FTxxx` for
/// fault-plan and recovery rules, `FLxxx` for fleet-configuration rules,
/// `TRxxx` for trace-sampling policies, `SLxxx` for SLO burn-rate specs,
/// `RCxxx` for happens-before races,
/// `TLxxx` for timeline invariants, `RQxxx` for request-lane span trees,
/// `DTxxx` for determinism rules —
/// registered once in the rule catalog together with its
/// severity, one-line summary, and a generic fix hint. Checkers emit by
/// code, so a code's severity can never disagree between call sites, and
/// the reference documentation (docs/LINT_RULES.md, `prtr-lint codes`) is
/// generated from the same table the diagnostics come from.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace prtr::analyze {

/// Diagnostic severity. Errors make an artifact unusable (the owning
/// constructor/parser throws); warnings flag configurations that are legal
/// but suspicious or provably unprofitable.
enum class Severity : std::uint8_t { kWarning, kError };

[[nodiscard]] const char* toString(Severity severity) noexcept;

/// Rule family, derived from the code prefix.
enum class Category : std::uint8_t {
  kFloorplan,
  kBitstream,
  kModel,
  kFault,
  kFleet,
  kTracing,
  kSlo,
  kRace,
  kTimeline,
  kRequest,
  kDeterminism,
};

[[nodiscard]] const char* toString(Category category) noexcept;

/// One entry of the rule catalog.
struct RuleInfo {
  const char* code;      ///< stable identifier, e.g. "FP004"
  Category category;
  Severity severity;
  const char* summary;   ///< one-line description for the reference
  const char* fixHint;   ///< generic remediation advice
};

/// Every rule the checkers can raise, ordered by code.
[[nodiscard]] std::span<const RuleInfo> ruleCatalog() noexcept;

/// Catalog lookup. Throws DomainError for an unknown code (a checker bug).
[[nodiscard]] const RuleInfo& ruleInfo(std::string_view code);

/// Markdown reference of every rule (committed as docs/LINT_RULES.md and
/// printed by `prtr-lint codes`).
[[nodiscard]] std::string renderRuleReference();

/// One reported finding.
struct Diagnostic {
  std::string code;      ///< catalog code, e.g. "FP004"
  Severity severity = Severity::kError;
  std::string location;  ///< artifact-relative location, e.g. "PRR 'PRR0'"
  std::string message;   ///< specific message for this finding
  std::string fixHint;   ///< specific hint (catalog default when empty)

  /// "error[FP004] PRR 'A': PRRs 'A' and 'B' overlap".
  [[nodiscard]] std::string format() const;
};

/// Collects diagnostics from any number of checkers and renders them as
/// human-readable text or stable machine-readable JSON.
class DiagnosticSink {
 public:
  /// Emits under `code`, taking severity (and fix hint, unless `fixHint`
  /// is non-empty) from the catalog.
  void emit(std::string_view code, std::string location, std::string message,
            std::string fixHint = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t errorCount() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warningCount() const noexcept {
    return diagnostics_.size() - errors_;
  }
  [[nodiscard]] bool hasErrors() const noexcept { return errors_ > 0; }

  /// First error-severity diagnostic; throws DomainError when none exists.
  [[nodiscard]] const Diagnostic& firstError() const;

  /// True when `code` was emitted at least once.
  [[nodiscard]] bool has(std::string_view code) const noexcept;

  /// Distinct codes emitted, sorted.
  [[nodiscard]] std::vector<std::string> codes() const;

  /// One line per diagnostic plus a trailing summary count line.
  [[nodiscard]] std::string toText() const;

  /// Stable JSON: {"errors":N,"warnings":N,"diagnostics":[{...}]}.
  [[nodiscard]] std::string toJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
};

/// Escapes `text` for embedding inside a JSON string literal. Thin alias
/// of util::json::escape, kept for source compatibility with callers that
/// predate the shared writer.
[[nodiscard]] std::string jsonEscape(std::string_view text);

}  // namespace prtr::analyze
