#include "analyze/checks_scenario.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace prtr::analyze {
namespace {

bool contains(std::span<const char* const> names, const std::string& name) {
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return name == n; });
}

std::string joined(std::span<const char* const> names) {
  std::string out;
  for (const char* name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::span<const char* const> knownCachePolicies() noexcept {
  static const auto kNames = [] {
    std::array<const char*, 5> names{};
    const auto all = runtime::allCachePolicies();
    for (std::size_t i = 0; i < names.size() && i < all.size(); ++i) {
      names[i] = runtime::toString(all[i]);
    }
    return names;
  }();
  return kNames;
}

std::span<const char* const> knownPrefetcherKinds() noexcept {
  static const auto kNames = [] {
    std::array<const char*, 4> names{};
    const auto all = runtime::allPrefetcherKinds();
    for (std::size_t i = 0; i < names.size() && i < all.size(); ++i) {
      names[i] = runtime::toString(all[i]);
    }
    return names;
  }();
  return kNames;
}

void checkScenarioNames(const std::string& cachePolicy,
                        const std::string& prefetcherKind,
                        DiagnosticSink& sink) {
  if (!contains(knownCachePolicies(), cachePolicy)) {
    sink.emit("MD011", "cachePolicy",
              "unknown cache policy '" + cachePolicy + "' (known: " +
                  joined(knownCachePolicies()) + ")");
  }
  if (!contains(knownPrefetcherKinds(), prefetcherKind)) {
    sink.emit("MD012", "prefetcherKind",
              "unknown prefetcher kind '" + prefetcherKind +
                  "' (known: " + joined(knownPrefetcherKinds()) + ")");
  }
}

void checkScenarioOptions(const runtime::ScenarioOptions& options,
                          DiagnosticSink& sink) {
  if (options.forceMiss &&
      options.cachePolicy != runtime::CachePolicy::kLru) {
    sink.emit("MD009", "cachePolicy",
              std::string{"forceMiss reconfigures on every call, so cache "
                          "policy '"} +
                  runtime::toString(options.cachePolicy) +
                  "' never influences the run");
  }
  const bool prefetcherSet =
      options.prefetcherKind != runtime::PrefetcherKind::kNone;
  const bool prefetcherUsed =
      options.prepare == runtime::PrepareSource::kPrefetcher;
  if (prefetcherSet && !prefetcherUsed) {
    sink.emit("MD010", "prefetcherKind",
              std::string{"prefetcher '"} +
                  runtime::toString(options.prefetcherKind) +
                  "' is configured but prepare is not "
                  "PrepareSource::kPrefetcher");
  } else if (!prefetcherSet && prefetcherUsed) {
    sink.emit("MD010", "prepare",
              "prepare is PrepareSource::kPrefetcher but prefetcherKind is "
              "'none': every look-ahead will come back empty");
  }
}

}  // namespace prtr::analyze
