#include "analyze/checks_scenario.hpp"

#include <algorithm>
#include <array>
#include <string>

namespace prtr::analyze {
namespace {

constexpr std::array kCachePolicies{"lru", "lfu", "fifo", "random", "belady"};
constexpr std::array kPrefetcherKinds{"none", "oracle", "markov",
                                      "association"};

bool contains(std::span<const char* const> names, const std::string& name) {
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return name == n; });
}

std::string joined(std::span<const char* const> names) {
  std::string out;
  for (const char* name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::span<const char* const> knownCachePolicies() noexcept {
  return kCachePolicies;
}

std::span<const char* const> knownPrefetcherKinds() noexcept {
  return kPrefetcherKinds;
}

void checkScenarioOptions(const runtime::ScenarioOptions& options,
                          DiagnosticSink& sink) {
  if (!contains(kCachePolicies, options.cachePolicy)) {
    sink.emit("MD011", "cachePolicy",
              "unknown cache policy '" + options.cachePolicy + "' (known: " +
                  joined(kCachePolicies) + ")");
  }
  if (!contains(kPrefetcherKinds, options.prefetcherKind)) {
    sink.emit("MD012", "prefetcherKind",
              "unknown prefetcher kind '" + options.prefetcherKind +
                  "' (known: " + joined(kPrefetcherKinds) + ")");
  }
  if (options.forceMiss && options.cachePolicy != "lru") {
    sink.emit("MD009", "cachePolicy",
              "forceMiss reconfigures on every call, so cache policy '" +
                  options.cachePolicy + "' never influences the run");
  }
  const bool prefetcherSet = options.prefetcherKind != "none";
  const bool prefetcherUsed =
      options.prepare == runtime::PrepareSource::kPrefetcher;
  if (prefetcherSet && !prefetcherUsed) {
    sink.emit("MD010", "prefetcherKind",
              "prefetcher '" + options.prefetcherKind + "' is configured "
              "but prepare is not PrepareSource::kPrefetcher");
  } else if (!prefetcherSet && prefetcherUsed) {
    sink.emit("MD010", "prepare",
              "prepare is PrepareSource::kPrefetcher but prefetcherKind is "
              "'none': every look-ahead will come back empty");
  }
}

}  // namespace prtr::analyze
