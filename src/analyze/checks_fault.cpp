#include "analyze/checks_fault.hpp"

#include <utility>

#include "analyze/spec_util.hpp"

namespace prtr::analyze {

namespace {

void checkRate(double rate, const char* name, DiagnosticSink& sink) {
  if (rate < 0.0 || rate > 1.0) {
    sink.emit("FT001", std::string{"plan."} + name,
              std::string{name} + " = " + std::to_string(rate) +
                  " is not a probability");
  }
}

}  // namespace

FaultSpec parseFaultSpec(std::istream& in) {
  using namespace specdetail;
  FaultSpec spec;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) fail(lineNo, "expected '<key> <value>'");
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    if (key == "seed") {
      spec.seed = parseU64(value, lineNo);
    } else if (key == "arrival") {
      spec.arrival = value;
    } else if (key == "fixed-period") {
      spec.fixedPeriod = parseU64(value, lineNo);
    } else if (key == "link-stall-rate") {
      spec.linkStallRate = parseDouble(value, lineNo);
    } else if (key == "stall-us") {
      spec.stallUs = parseDouble(value, lineNo);
    } else if (key == "word-flip-rate") {
      spec.wordFlipRate = parseDouble(value, lineNo);
    } else if (key == "timeout-rate") {
      spec.transferTimeoutRate = parseDouble(value, lineNo);
    } else if (key == "abort-rate") {
      spec.icapAbortRate = parseDouble(value, lineNo);
    } else if (key == "api-reject-rate") {
      spec.apiRejectRate = parseDouble(value, lineNo);
    } else if (key == "recovery") {
      spec.recoveryEnabled = parseBool(value, lineNo);
    } else if (key == "max-retries") {
      spec.maxRetries = parseU64(value, lineNo);
    } else if (key == "repair-rounds") {
      spec.repairRounds = parseU64(value, lineNo);
    } else if (key == "backoff-us") {
      spec.backoffUs = parseDouble(value, lineNo);
    } else if (key == "backoff-factor") {
      spec.backoffFactor = parseDouble(value, lineNo);
    } else if (key == "verify") {
      spec.verify = value;
    } else if (key == "ladder") {
      spec.ladder = parseBool(value, lineNo);
    } else {
      fail(lineNo, "unrecognized key '" + key + "'");
    }
  }
  return spec;
}

void checkFaultOptions(const fault::Plan& plan,
                       const config::RecoveryPolicy& recovery,
                       DiagnosticSink& sink) {
  checkRate(plan.linkStallRate, "link-stall-rate", sink);
  checkRate(plan.wordFlipRate, "word-flip-rate", sink);
  checkRate(plan.transferTimeoutRate, "timeout-rate", sink);
  checkRate(plan.icapAbortRate, "abort-rate", sink);
  checkRate(plan.apiRejectRate, "api-reject-rate", sink);
  if (plan.linkStallRate > 0.0 && plan.stallDuration <= util::Time::zero()) {
    sink.emit("FT002", "plan.stall-us",
              "link-stall-rate is " + std::to_string(plan.linkStallRate) +
                  " but the stall duration is not positive");
  }
  if (plan.arrival == fault::Arrival::kFixedPeriod && plan.fixedPeriod == 0) {
    sink.emit("FT003", "plan.fixed-period",
              "arrival is 'fixed' with period 0");
  }
  if (recovery.enabled &&
      (recovery.backoffFactor < 1.0 ||
       recovery.backoffBase <= util::Time::zero())) {
    sink.emit("FT006", "recovery.backoff",
              "backoff base " +
                  std::to_string(recovery.backoffBase.toMicroseconds()) +
                  " us with factor " +
                  std::to_string(recovery.backoffFactor));
  }
  if (plan.active() && !recovery.enabled) {
    sink.emit("FT008", "recovery.enabled",
              "the plan injects faults but no recovery policy is enabled");
  }
  if (recovery.enabled && recovery.maxRetries == 0 && !recovery.ladder) {
    sink.emit("FT009", "recovery.max-retries",
              "max-retries is 0 and the ladder is disabled");
  }
  if (plan.wordFlipRate > 1e-2) {
    sink.emit("FT010", "plan.word-flip-rate",
              "word-flip-rate " + std::to_string(plan.wordFlipRate) +
                  " exceeds 1e-2 per word");
  }
}

std::pair<fault::Plan, config::RecoveryPolicy> faultSpecToOptions(
    const FaultSpec& spec) {
  fault::Plan plan;
  plan.seed = spec.seed;
  plan.arrival = spec.arrival == "fixed" ? fault::Arrival::kFixedPeriod
                                         : fault::Arrival::kPoisson;
  plan.fixedPeriod = spec.fixedPeriod;
  plan.linkStallRate = spec.linkStallRate;
  plan.stallDuration =
      util::Time::picoseconds(static_cast<std::int64_t>(spec.stallUs * 1e6));
  plan.wordFlipRate = spec.wordFlipRate;
  plan.transferTimeoutRate = spec.transferTimeoutRate;
  plan.icapAbortRate = spec.icapAbortRate;
  plan.apiRejectRate = spec.apiRejectRate;

  config::RecoveryPolicy recovery;
  recovery.enabled = spec.recoveryEnabled;
  recovery.maxRetries = static_cast<std::uint32_t>(spec.maxRetries);
  recovery.maxRepairRounds = static_cast<std::uint32_t>(spec.repairRounds);
  recovery.backoffBase =
      util::Time::picoseconds(static_cast<std::int64_t>(spec.backoffUs * 1e6));
  recovery.backoffFactor = spec.backoffFactor;
  recovery.verify = spec.verify == "off"      ? config::VerifyMode::kOff
                    : spec.verify == "always" ? config::VerifyMode::kAlways
                                              : config::VerifyMode::kOnFault;
  recovery.ladder = spec.ladder;
  return {plan, recovery};
}

DiagnosticSink lintFaultSpec(const FaultSpec& spec) {
  DiagnosticSink sink;
  // String-boundary rules first, mirroring MD011/MD012: the typed options
  // below fall back to defaults so the remaining rules still run.
  if (spec.arrival != "poisson" && spec.arrival != "fixed") {
    sink.emit("FT004", "arrival", "unknown arrival '" + spec.arrival + "'");
  }
  if (spec.verify != "off" && spec.verify != "on-fault" &&
      spec.verify != "always") {
    sink.emit("FT005", "verify", "unknown verify mode '" + spec.verify + "'");
  }
  const auto [plan, recovery] = faultSpecToOptions(spec);
  checkFaultOptions(plan, recovery, sink);
  if (!plan.active()) {
    sink.emit("FT007", "plan",
              "all fault rates are zero; nothing will be injected");
  }
  return sink;
}

}  // namespace prtr::analyze
