#pragma once
/// \file checks_model.hpp
/// Model-parameter rules (codes MD001..MD008). This is the single home of
/// the rule logic: `model::Params::validate()` routes its domain checks
/// through checkParams(), so parameters the model accepts can never lint
/// with errors. Scenario-option coherence lives in checks_scenario.hpp to
/// keep this header free of runtime includes.
///
/// Beyond pure domain checks, the feasibility rules apply the paper's
/// bounds: MD007 flags parameter sets where equation (7) proves PRTR can
/// never beat FRTR, and MD008 flags speedup targets above the universal
/// bound (1 + X_task)/X_task — both provable without running a cycle.

#include "analyze/diagnostic.hpp"
#include "model/params.hpp"

namespace prtr::analyze {

/// Domain checks (MD001..MD006) plus the equation-(7) profitability check
/// (MD007) when the domain checks pass.
void checkParams(const model::Params& params, DiagnosticSink& sink);

/// MD008: is `targetSpeedup` reachable at any hit ratio for these task and
/// configuration sizes? No-op for targets <= 1 (trivially reachable) and
/// when `sink` already holds domain errors.
void checkSpeedupTarget(const model::Params& params, double targetSpeedup,
                        DiagnosticSink& sink);

}  // namespace prtr::analyze
