#include "analyze/lint.hpp"

#include "analyze/checks_bitstream.hpp"
#include "analyze/checks_fault.hpp"
#include "analyze/checks_floorplan.hpp"
#include "analyze/checks_model.hpp"
#include "analyze/checks_scenario.hpp"
#include "util/error.hpp"

namespace prtr::analyze {

DiagnosticSink lintAll(const LintTargets& targets) {
  DiagnosticSink sink;
  if (targets.floorplan != nullptr) {
    checkFloorplan(targets.floorplan->device(), targets.floorplan->prrs(),
                   targets.floorplan->busMacros(), sink);
  }
  if (!targets.streamBytes.empty()) {
    util::require(targets.device != nullptr,
                  "lintAll: stream bytes given without a device");
    const StreamScan scan = scanStream(targets.streamBytes, *targets.device,
                                       sink);
    if (targets.floorplan != nullptr) {
      checkStreamFitsFloorplan(scan, *targets.floorplan, sink);
    }
  }
  if (targets.params != nullptr) {
    checkParams(*targets.params, sink);
    checkSpeedupTarget(*targets.params, targets.speedupTarget, sink);
  }
  if (targets.scenario != nullptr) {
    checkScenarioOptions(*targets.scenario, sink);
    // FT rules only apply once the fault layer is in play; the default
    // (no faults, no recovery) must stay lint-silent.
    if (targets.scenario->faults.active() ||
        targets.scenario->recovery.enabled) {
      checkFaultOptions(targets.scenario->faults, targets.scenario->recovery,
                        sink);
    }
  }
  if (targets.cachePolicyName != nullptr ||
      targets.prefetcherKindName != nullptr) {
    static const std::string kDefaultPolicy = "lru";
    static const std::string kDefaultKind = "none";
    checkScenarioNames(
        targets.cachePolicyName ? *targets.cachePolicyName : kDefaultPolicy,
        targets.prefetcherKindName ? *targets.prefetcherKindName
                                   : kDefaultKind,
        sink);
  }
  return sink;
}

}  // namespace prtr::analyze
