#pragma once
/// \file lint.hpp
/// Aggregated linting over any combination of artifacts. `prtr-lint` and
/// `runtime::runScenario()`'s strict-mode hook both funnel through
/// lintAll(), so the CLI and the runtime can never disagree about what is
/// an error.

#include <cstdint>
#include <span>

#include "analyze/diagnostic.hpp"
#include "fabric/floorplan.hpp"
#include "model/params.hpp"
#include "runtime/scenario.hpp"

namespace prtr::analyze {

/// Artifacts to lint; every field is optional (null/empty = skip).
struct LintTargets {
  /// Floorplan rules run over this (already-constructed, hence error-free)
  /// floorplan; still useful for the warning-severity rules.
  const fabric::Floorplan* floorplan = nullptr;
  /// Raw XBF stream; checked against `device` (required when non-empty),
  /// and cross-checked against `floorplan` when that is set too.
  std::span<const std::uint8_t> streamBytes{};
  const fabric::Device* device = nullptr;
  /// Model parameters (domain + equation-7 profitability), with an
  /// optional speedup target for reachability (0 = no target).
  const model::Params* params = nullptr;
  double speedupTarget = 0.0;
  /// Scenario option coherence.
  const runtime::ScenarioOptions* scenario = nullptr;
  /// Raw policy/prefetcher names from a spec file or CLI flag, checked
  /// against the known lists (MD011/MD012). Null = skip; typed options
  /// cannot carry unknown names, so only string front ends set these.
  const std::string* cachePolicyName = nullptr;
  const std::string* prefetcherKindName = nullptr;
};

/// Runs every applicable checker. Throws DomainError when `streamBytes` is
/// non-empty but `device` is null.
[[nodiscard]] DiagnosticSink lintAll(const LintTargets& targets);

}  // namespace prtr::analyze
