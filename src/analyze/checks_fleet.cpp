#include "analyze/checks_fleet.hpp"

#include <cmath>

#include "analyze/spec_util.hpp"

namespace prtr::analyze {

FleetSpec parseFleetSpec(std::istream& in) {
  using namespace specdetail;
  FleetSpec spec;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) fail(lineNo, "expected '<key> <value>'");
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    if (key == "cells") {
      spec.cells = parseU64(value, lineNo);
    } else if (key == "blades") {
      spec.blades = parseU64(value, lineNo);
    } else if (key == "requests") {
      spec.requests = parseU64(value, lineNo);
    } else if (key == "seed") {
      spec.seed = parseU64(value, lineNo);
    } else if (key == "arrival") {
      spec.arrival = value;
    } else if (key == "offered-load") {
      spec.offeredLoad = parseDouble(value, lineNo);
    } else if (key == "users") {
      spec.users = parseU64(value, lineNo);
    } else if (key == "task-affinity") {
      spec.taskAffinity = parseDouble(value, lineNo);
    } else if (key == "payload-kib") {
      spec.payloadKib = parseU64(value, lineNo);
    } else if (key == "payload-spread") {
      spec.payloadSpread = parseDouble(value, lineNo);
    } else if (key == "routing") {
      spec.routing = value;
    } else if (key == "max-attempts") {
      spec.maxAttempts = parseU64(value, lineNo);
    } else if (key == "retry-budget") {
      spec.retryBudget = parseDouble(value, lineNo);
    } else if (key == "retry-burst") {
      spec.retryBurst = parseDouble(value, lineNo);
    } else if (key == "retry-backoff-us") {
      spec.retryBackoffUs = parseDouble(value, lineNo);
    } else if (key == "retry-backoff-factor") {
      spec.retryBackoffFactor = parseDouble(value, lineNo);
    } else if (key == "breaker") {
      spec.breaker = parseBool(value, lineNo);
    } else if (key == "breaker-failures") {
      spec.breakerFailures = parseU64(value, lineNo);
    } else if (key == "breaker-open-us") {
      spec.breakerOpenUs = parseDouble(value, lineNo);
    } else if (key == "breaker-probes") {
      spec.breakerProbes = parseU64(value, lineNo);
    } else if (key == "breaker-probe-successes") {
      spec.breakerProbeSuccesses = parseU64(value, lineNo);
    } else if (key == "slo-factor") {
      spec.sloFactor = parseDouble(value, lineNo);
    } else if (key == "max-queue-depth") {
      spec.maxQueueDepth = parseU64(value, lineNo);
    } else if (key == "hedge") {
      spec.hedge = parseBool(value, lineNo);
    } else if (key == "hedge-quantile") {
      spec.hedgeQuantile = parseDouble(value, lineNo);
    } else if (key == "hedge-min-samples") {
      spec.hedgeMinSamples = parseU64(value, lineNo);
    } else if (key == "hedge-budget") {
      spec.hedgeBudget = parseDouble(value, lineNo);
    } else if (key == "degraded-fraction") {
      spec.degradedFraction = parseDouble(value, lineNo);
    } else if (key == "escalate-after") {
      spec.escalateAfter = parseU64(value, lineNo);
    } else if (key == "recover-after") {
      spec.recoverAfter = parseU64(value, lineNo);
    } else if (key == "rate-limit") {
      spec.rateLimit = parseBool(value, lineNo);
    } else if (key == "rate-limit-rps") {
      spec.rateLimitRps = parseDouble(value, lineNo);
    } else if (key == "rate-limit-burst") {
      spec.rateLimitBurst = parseDouble(value, lineNo);
    } else if (key == "trace") {
      spec.trace = parseBool(value, lineNo);
    } else if (key == "trace-sample-rate") {
      spec.traceSampleRate = parseDouble(value, lineNo);
    } else if (key == "trace-slow-quantile") {
      spec.traceSlowQuantile = parseDouble(value, lineNo);
    } else if (key == "trace-slow-min-samples") {
      spec.traceSlowMinSamples = parseU64(value, lineNo);
    } else if (key == "trace-max-per-cell") {
      spec.traceMaxPerCell = parseU64(value, lineNo);
    } else if (key == "slo") {
      spec.slo = parseBool(value, lineNo);
    } else if (key == "slo-objective") {
      spec.sloObjective = parseDouble(value, lineNo);
    } else if (key == "slo-latency-us") {
      spec.sloLatencyUs = parseDouble(value, lineNo);
    } else if (key == "slo-window-us") {
      spec.sloWindowUs = parseDouble(value, lineNo);
    } else if (key == "slo-fast-windows") {
      spec.sloFastWindows = parseU64(value, lineNo);
    } else if (key == "slo-slow-windows") {
      spec.sloSlowWindows = parseU64(value, lineNo);
    } else if (key == "slo-fast-burn") {
      spec.sloFastBurn = parseDouble(value, lineNo);
    } else if (key == "slo-slow-burn") {
      spec.sloSlowBurn = parseDouble(value, lineNo);
    } else {
      fail(lineNo, "unrecognized key '" + key + "'");
    }
  }
  return spec;
}

void checkFleetOptions(const fleet::FleetOptions& options,
                       DiagnosticSink& sink) {
  if (options.cells < 1 || options.bladesPerCell < 1 ||
      options.bladesPerCell > 6) {
    sink.emit("FL001", "fleet.topology",
              std::to_string(options.cells) + " cell(s) of " +
                  std::to_string(options.bladesPerCell) + " blade(s)");
  }
  if (options.requests < 1) {
    sink.emit("FL002", "fleet.requests", "requests = 0");
  }
  if (!(options.offeredLoad > 0.0) || !std::isfinite(options.offeredLoad)) {
    sink.emit("FL003", "fleet.offered-load",
              "offered-load = " + std::to_string(options.offeredLoad));
  }
  if (options.arrival == fleet::ArrivalProcess::kTrace &&
      options.trace.empty()) {
    sink.emit("FL006", "fleet.arrival",
              "arrival is 'trace' but the trace is empty");
  }
  if (options.retry.maxAttempts < 1 || options.retry.budgetFraction < 0.0) {
    sink.emit("FL007", "fleet.retry",
              "max-attempts = " + std::to_string(options.retry.maxAttempts) +
                  ", retry-budget = " +
                  std::to_string(options.retry.budgetFraction));
  }
  if (options.breaker.enabled &&
      (options.breaker.consecutiveFailures < 1 ||
       options.breaker.halfOpenProbes < 1 ||
       options.breaker.probeSuccesses < 1 ||
       options.breaker.probeSuccesses > options.breaker.halfOpenProbes ||
       options.breaker.openDuration <= util::Time::zero())) {
    sink.emit("FL008", "fleet.breaker",
              "failures = " +
                  std::to_string(options.breaker.consecutiveFailures) +
                  ", probes = " +
                  std::to_string(options.breaker.halfOpenProbes) + "/" +
                  std::to_string(options.breaker.probeSuccesses) +
                  ", open = " + options.breaker.openDuration.toString());
  }
  if (options.hedge.enabled &&
      (options.hedge.quantile <= 0.0 || options.hedge.quantile >= 1.0 ||
       options.hedge.budgetFraction < 0.0)) {
    sink.emit("FL009", "fleet.hedge",
              "quantile = " + std::to_string(options.hedge.quantile) +
                  ", hedge-budget = " +
                  std::to_string(options.hedge.budgetFraction));
  }
  if (options.users < 1 || options.taskAffinity < 0.0 ||
      options.taskAffinity > 1.0 || options.payloadSpread < 0.0 ||
      options.payloadSpread >= 1.0 || options.degradedFraction < 0.0 ||
      options.degradedFraction > 1.0 || options.payloadBytes.count() < 2) {
    sink.emit("FL010", "fleet.mix",
              "users = " + std::to_string(options.users) +
                  ", task-affinity = " +
                  std::to_string(options.taskAffinity) +
                  ", payload-spread = " +
                  std::to_string(options.payloadSpread) +
                  ", degraded-fraction = " +
                  std::to_string(options.degradedFraction) + ", payload = " +
                  std::to_string(options.payloadBytes.count()) + " B");
  }
  if (options.admission.maxQueueDepth < 1 ||
      !(options.admission.sloFactor > 0.0)) {
    sink.emit("FL011", "fleet.admission",
              "max-queue-depth = " +
                  std::to_string(options.admission.maxQueueDepth) +
                  ", slo-factor = " +
                  std::to_string(options.admission.sloFactor));
  }
  if (options.offeredLoad >= 1.0 && std::isfinite(options.offeredLoad)) {
    sink.emit("FL012", "fleet.offered-load",
              "offered-load = " + std::to_string(options.offeredLoad) +
                  " saturates every blade");
  }
  if (options.retry.budgetFraction > 0.5) {
    sink.emit("FL013", "fleet.retry-budget",
              "retry-budget = " +
                  std::to_string(options.retry.budgetFraction));
  }
  if (options.degradedFraction > 0.0 && !options.degradedFaults.active()) {
    sink.emit("FL014", "fleet.degraded",
              "degraded-fraction = " +
                  std::to_string(options.degradedFraction) +
                  " but the degraded plan injects nothing");
  }
  if (options.degradedFraction > 0.0 && options.degradedFaults.active() &&
      !options.breaker.enabled) {
    sink.emit("FL015", "fleet.breaker",
              "degraded blades configured with the breaker disabled");
  }
  if (options.rateLimit.enabled &&
      (!(options.rateLimit.ratePerSecond > 0.0) ||
       !(options.rateLimit.burst > 0.0) ||
       !std::isfinite(options.rateLimit.ratePerSecond) ||
       !std::isfinite(options.rateLimit.burst))) {
    sink.emit("FL016", "fleet.rate-limit",
              "rate-limit-rps = " +
                  std::to_string(options.rateLimit.ratePerSecond) +
                  ", rate-limit-burst = " +
                  std::to_string(options.rateLimit.burst));
  }
  if (options.tracing.enabled) {
    if (options.tracing.sampleRate < 0.0 ||
        options.tracing.sampleRate > 1.0 ||
        !std::isfinite(options.tracing.sampleRate)) {
      sink.emit("TR001", "fleet.trace",
                "trace-sample-rate = " +
                    std::to_string(options.tracing.sampleRate));
    }
    if (options.tracing.slowQuantile <= 0.0 ||
        options.tracing.slowQuantile >= 1.0) {
      sink.emit("TR002", "fleet.trace",
                "trace-slow-quantile = " +
                    std::to_string(options.tracing.slowQuantile));
    }
    if (options.tracing.sampleRate > 0.0 &&
        options.tracing.maxSampledPerCell == 0) {
      sink.emit("TR003", "fleet.trace",
                "trace-sample-rate = " +
                    std::to_string(options.tracing.sampleRate) +
                    " with trace-max-per-cell = 0");
    }
    if (options.tracing.sampleRate >= 0.5 && options.requests >= 1'000'000) {
      sink.emit("TR004", "fleet.trace",
                "trace-sample-rate = " +
                    std::to_string(options.tracing.sampleRate) + " over " +
                    std::to_string(options.requests) + " requests");
    }
  }
  if (options.slo.enabled) {
    if (options.slo.objective <= 0.0 || options.slo.objective >= 1.0 ||
        !std::isfinite(options.slo.objective)) {
      sink.emit("SL001", "fleet.slo",
                "slo-objective = " + std::to_string(options.slo.objective));
    }
    if (options.slo.windowPs <= 0 || options.slo.latencyTargetPs < 0) {
      sink.emit("SL002", "fleet.slo",
                "slo-window = " + std::to_string(options.slo.windowPs) +
                    " ps, slo-latency-target = " +
                    std::to_string(options.slo.latencyTargetPs) + " ps");
    }
    if (options.slo.fastWindows < 1 ||
        options.slo.slowWindows < options.slo.fastWindows) {
      sink.emit("SL003", "fleet.slo",
                "slo-fast-windows = " +
                    std::to_string(options.slo.fastWindows) +
                    ", slo-slow-windows = " +
                    std::to_string(options.slo.slowWindows));
    }
    if (!(options.slo.fastBurn > 0.0) || !(options.slo.slowBurn > 0.0) ||
        options.slo.fastBurn < options.slo.slowBurn) {
      sink.emit("SL004", "fleet.slo",
                "slo-fast-burn = " + std::to_string(options.slo.fastBurn) +
                    ", slo-slow-burn = " +
                    std::to_string(options.slo.slowBurn));
    }
    if (options.slo.objective > 0.0 && options.slo.objective < 1.0 &&
        (1.0 - options.slo.objective) *
                static_cast<double>(options.requests) <
            10.0) {
      sink.emit("SL005", "fleet.slo",
                "error budget is " +
                    std::to_string((1.0 - options.slo.objective) *
                                   static_cast<double>(options.requests)) +
                    " requests over the whole run");
    }
  }
}

void checkBladeProfile(const fleet::BladeProfile& profile,
                       DiagnosticSink& sink) {
  for (std::size_t fn = 0; fn < profile.tasks.size(); ++fn) {
    const fleet::TaskProfile& t = profile.tasks[fn];
    const bool freeExec = t.execFixedPs <= 0 && t.execPsPerByte <= 0.0;
    if (freeExec || t.configPs <= 0) {
      sink.emit("FL017", "task " + std::to_string(fn),
                std::string(freeExec ? "zero execution cost"
                                     : "zero reconfiguration cost") +
                    " (configPs = " + std::to_string(t.configPs) +
                    ", execFixedPs = " + std::to_string(t.execFixedPs) +
                    ", execPsPerByte = " + std::to_string(t.execPsPerByte) +
                    ")");
    }
  }
}

fleet::FleetOptions fleetSpecToOptions(const FleetSpec& spec) {
  fleet::FleetOptions options;
  options.cells = static_cast<std::size_t>(spec.cells);
  options.bladesPerCell = static_cast<std::size_t>(spec.blades);
  options.requests = spec.requests;
  options.seed = spec.seed;
  options.arrival = spec.arrival == "fixed-rate"
                        ? fleet::ArrivalProcess::kFixedRate
                    : spec.arrival == "trace"
                        ? fleet::ArrivalProcess::kTrace
                        : fleet::ArrivalProcess::kPoisson;
  options.offeredLoad = spec.offeredLoad;
  options.users = spec.users;
  options.taskAffinity = spec.taskAffinity;
  options.payloadBytes = util::Bytes::kibi(spec.payloadKib);
  options.payloadSpread = spec.payloadSpread;
  options.routing = spec.routing == "least-loaded"
                        ? fleet::RoutingPolicy::kLeastLoaded
                    : spec.routing == "round-robin"
                        ? fleet::RoutingPolicy::kRoundRobin
                        : fleet::RoutingPolicy::kPowerOfTwoChoices;
  options.retry.maxAttempts = static_cast<std::uint32_t>(spec.maxAttempts);
  options.retry.budgetFraction = spec.retryBudget;
  options.retry.burstTokens = spec.retryBurst;
  options.retry.backoffBase = util::Time::picoseconds(
      static_cast<std::int64_t>(spec.retryBackoffUs * 1e6));
  options.retry.backoffFactor = spec.retryBackoffFactor;
  options.breaker.enabled = spec.breaker;
  options.breaker.consecutiveFailures =
      static_cast<std::uint32_t>(spec.breakerFailures);
  options.breaker.openDuration = util::Time::picoseconds(
      static_cast<std::int64_t>(spec.breakerOpenUs * 1e6));
  options.breaker.halfOpenProbes =
      static_cast<std::uint32_t>(spec.breakerProbes);
  options.breaker.probeSuccesses =
      static_cast<std::uint32_t>(spec.breakerProbeSuccesses);
  options.admission.sloFactor = spec.sloFactor;
  options.admission.maxQueueDepth =
      static_cast<std::uint32_t>(spec.maxQueueDepth);
  options.hedge.enabled = spec.hedge;
  options.hedge.quantile = spec.hedgeQuantile;
  options.hedge.minSamples = spec.hedgeMinSamples;
  options.hedge.budgetFraction = spec.hedgeBudget;
  options.degradedFraction = spec.degradedFraction;
  options.escalateAfter = static_cast<std::uint32_t>(spec.escalateAfter);
  options.recoverAfter = static_cast<std::uint32_t>(spec.recoverAfter);
  options.rateLimit.enabled = spec.rateLimit;
  options.rateLimit.ratePerSecond = spec.rateLimitRps;
  options.rateLimit.burst = spec.rateLimitBurst;
  options.tracing.enabled = spec.trace;
  options.tracing.sampleRate = spec.traceSampleRate;
  options.tracing.slowQuantile = spec.traceSlowQuantile;
  options.tracing.slowMinSamples = spec.traceSlowMinSamples;
  options.tracing.maxSampledPerCell = spec.traceMaxPerCell;
  options.slo.enabled = spec.slo;
  options.slo.objective = spec.sloObjective;
  options.slo.latencyTargetPs =
      static_cast<std::int64_t>(spec.sloLatencyUs * 1e6);
  options.slo.windowPs = static_cast<std::int64_t>(spec.sloWindowUs * 1e6);
  options.slo.fastWindows = static_cast<std::uint32_t>(spec.sloFastWindows);
  options.slo.slowWindows = static_cast<std::uint32_t>(spec.sloSlowWindows);
  options.slo.fastBurn = spec.sloFastBurn;
  options.slo.slowBurn = spec.sloSlowBurn;
  return options;
}

DiagnosticSink lintFleetSpec(const FleetSpec& spec) {
  DiagnosticSink sink;
  // String-boundary rules first, mirroring MD011/MD012 and FT004/FT005:
  // the typed options below fall back to defaults so the remaining rules
  // still run.
  if (spec.routing != "least-loaded" && spec.routing != "p2c" &&
      spec.routing != "round-robin") {
    sink.emit("FL004", "routing", "unknown routing '" + spec.routing + "'");
  }
  if (spec.arrival != "poisson" && spec.arrival != "fixed-rate" &&
      spec.arrival != "trace") {
    sink.emit("FL005", "arrival", "unknown arrival '" + spec.arrival + "'");
  }
  checkFleetOptions(fleetSpecToOptions(spec), sink);
  return sink;
}

}  // namespace prtr::analyze
