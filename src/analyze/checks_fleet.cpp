#include "analyze/checks_fleet.hpp"

#include <cmath>

#include "analyze/spec_util.hpp"

namespace prtr::analyze {

FleetSpec parseFleetSpec(std::istream& in) {
  using namespace specdetail;
  FleetSpec spec;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) fail(lineNo, "expected '<key> <value>'");
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    if (key == "cells") {
      spec.cells = parseU64(value, lineNo);
    } else if (key == "blades") {
      spec.blades = parseU64(value, lineNo);
    } else if (key == "requests") {
      spec.requests = parseU64(value, lineNo);
    } else if (key == "seed") {
      spec.seed = parseU64(value, lineNo);
    } else if (key == "arrival") {
      spec.arrival = value;
    } else if (key == "offered-load") {
      spec.offeredLoad = parseDouble(value, lineNo);
    } else if (key == "users") {
      spec.users = parseU64(value, lineNo);
    } else if (key == "task-affinity") {
      spec.taskAffinity = parseDouble(value, lineNo);
    } else if (key == "payload-kib") {
      spec.payloadKib = parseU64(value, lineNo);
    } else if (key == "payload-spread") {
      spec.payloadSpread = parseDouble(value, lineNo);
    } else if (key == "routing") {
      spec.routing = value;
    } else if (key == "max-attempts") {
      spec.maxAttempts = parseU64(value, lineNo);
    } else if (key == "retry-budget") {
      spec.retryBudget = parseDouble(value, lineNo);
    } else if (key == "retry-burst") {
      spec.retryBurst = parseDouble(value, lineNo);
    } else if (key == "retry-backoff-us") {
      spec.retryBackoffUs = parseDouble(value, lineNo);
    } else if (key == "retry-backoff-factor") {
      spec.retryBackoffFactor = parseDouble(value, lineNo);
    } else if (key == "breaker") {
      spec.breaker = parseBool(value, lineNo);
    } else if (key == "breaker-failures") {
      spec.breakerFailures = parseU64(value, lineNo);
    } else if (key == "breaker-open-us") {
      spec.breakerOpenUs = parseDouble(value, lineNo);
    } else if (key == "breaker-probes") {
      spec.breakerProbes = parseU64(value, lineNo);
    } else if (key == "breaker-probe-successes") {
      spec.breakerProbeSuccesses = parseU64(value, lineNo);
    } else if (key == "slo-factor") {
      spec.sloFactor = parseDouble(value, lineNo);
    } else if (key == "max-queue-depth") {
      spec.maxQueueDepth = parseU64(value, lineNo);
    } else if (key == "hedge") {
      spec.hedge = parseBool(value, lineNo);
    } else if (key == "hedge-quantile") {
      spec.hedgeQuantile = parseDouble(value, lineNo);
    } else if (key == "hedge-min-samples") {
      spec.hedgeMinSamples = parseU64(value, lineNo);
    } else if (key == "hedge-budget") {
      spec.hedgeBudget = parseDouble(value, lineNo);
    } else if (key == "degraded-fraction") {
      spec.degradedFraction = parseDouble(value, lineNo);
    } else if (key == "escalate-after") {
      spec.escalateAfter = parseU64(value, lineNo);
    } else if (key == "recover-after") {
      spec.recoverAfter = parseU64(value, lineNo);
    } else {
      fail(lineNo, "unrecognized key '" + key + "'");
    }
  }
  return spec;
}

void checkFleetOptions(const fleet::FleetOptions& options,
                       DiagnosticSink& sink) {
  if (options.cells < 1 || options.bladesPerCell < 1 ||
      options.bladesPerCell > 6) {
    sink.emit("FL001", "fleet.topology",
              std::to_string(options.cells) + " cell(s) of " +
                  std::to_string(options.bladesPerCell) + " blade(s)");
  }
  if (options.requests < 1) {
    sink.emit("FL002", "fleet.requests", "requests = 0");
  }
  if (!(options.offeredLoad > 0.0) || !std::isfinite(options.offeredLoad)) {
    sink.emit("FL003", "fleet.offered-load",
              "offered-load = " + std::to_string(options.offeredLoad));
  }
  if (options.arrival == fleet::ArrivalProcess::kTrace &&
      options.trace.empty()) {
    sink.emit("FL006", "fleet.arrival",
              "arrival is 'trace' but the trace is empty");
  }
  if (options.retry.maxAttempts < 1 || options.retry.budgetFraction < 0.0) {
    sink.emit("FL007", "fleet.retry",
              "max-attempts = " + std::to_string(options.retry.maxAttempts) +
                  ", retry-budget = " +
                  std::to_string(options.retry.budgetFraction));
  }
  if (options.breaker.enabled &&
      (options.breaker.consecutiveFailures < 1 ||
       options.breaker.halfOpenProbes < 1 ||
       options.breaker.probeSuccesses < 1 ||
       options.breaker.probeSuccesses > options.breaker.halfOpenProbes ||
       options.breaker.openDuration <= util::Time::zero())) {
    sink.emit("FL008", "fleet.breaker",
              "failures = " +
                  std::to_string(options.breaker.consecutiveFailures) +
                  ", probes = " +
                  std::to_string(options.breaker.halfOpenProbes) + "/" +
                  std::to_string(options.breaker.probeSuccesses) +
                  ", open = " + options.breaker.openDuration.toString());
  }
  if (options.hedge.enabled &&
      (options.hedge.quantile <= 0.0 || options.hedge.quantile >= 1.0 ||
       options.hedge.budgetFraction < 0.0)) {
    sink.emit("FL009", "fleet.hedge",
              "quantile = " + std::to_string(options.hedge.quantile) +
                  ", hedge-budget = " +
                  std::to_string(options.hedge.budgetFraction));
  }
  if (options.users < 1 || options.taskAffinity < 0.0 ||
      options.taskAffinity > 1.0 || options.payloadSpread < 0.0 ||
      options.payloadSpread >= 1.0 || options.degradedFraction < 0.0 ||
      options.degradedFraction > 1.0 || options.payloadBytes.count() < 2) {
    sink.emit("FL010", "fleet.mix",
              "users = " + std::to_string(options.users) +
                  ", task-affinity = " +
                  std::to_string(options.taskAffinity) +
                  ", payload-spread = " +
                  std::to_string(options.payloadSpread) +
                  ", degraded-fraction = " +
                  std::to_string(options.degradedFraction) + ", payload = " +
                  std::to_string(options.payloadBytes.count()) + " B");
  }
  if (options.admission.maxQueueDepth < 1 ||
      !(options.admission.sloFactor > 0.0)) {
    sink.emit("FL011", "fleet.admission",
              "max-queue-depth = " +
                  std::to_string(options.admission.maxQueueDepth) +
                  ", slo-factor = " +
                  std::to_string(options.admission.sloFactor));
  }
  if (options.offeredLoad >= 1.0 && std::isfinite(options.offeredLoad)) {
    sink.emit("FL012", "fleet.offered-load",
              "offered-load = " + std::to_string(options.offeredLoad) +
                  " saturates every blade");
  }
  if (options.retry.budgetFraction > 0.5) {
    sink.emit("FL013", "fleet.retry-budget",
              "retry-budget = " +
                  std::to_string(options.retry.budgetFraction));
  }
  if (options.degradedFraction > 0.0 && !options.degradedFaults.active()) {
    sink.emit("FL014", "fleet.degraded",
              "degraded-fraction = " +
                  std::to_string(options.degradedFraction) +
                  " but the degraded plan injects nothing");
  }
  if (options.degradedFraction > 0.0 && options.degradedFaults.active() &&
      !options.breaker.enabled) {
    sink.emit("FL015", "fleet.breaker",
              "degraded blades configured with the breaker disabled");
  }
}

fleet::FleetOptions fleetSpecToOptions(const FleetSpec& spec) {
  fleet::FleetOptions options;
  options.cells = static_cast<std::size_t>(spec.cells);
  options.bladesPerCell = static_cast<std::size_t>(spec.blades);
  options.requests = spec.requests;
  options.seed = spec.seed;
  options.arrival = spec.arrival == "fixed-rate"
                        ? fleet::ArrivalProcess::kFixedRate
                    : spec.arrival == "trace"
                        ? fleet::ArrivalProcess::kTrace
                        : fleet::ArrivalProcess::kPoisson;
  options.offeredLoad = spec.offeredLoad;
  options.users = spec.users;
  options.taskAffinity = spec.taskAffinity;
  options.payloadBytes = util::Bytes::kibi(spec.payloadKib);
  options.payloadSpread = spec.payloadSpread;
  options.routing = spec.routing == "least-loaded"
                        ? fleet::RoutingPolicy::kLeastLoaded
                    : spec.routing == "round-robin"
                        ? fleet::RoutingPolicy::kRoundRobin
                        : fleet::RoutingPolicy::kPowerOfTwoChoices;
  options.retry.maxAttempts = static_cast<std::uint32_t>(spec.maxAttempts);
  options.retry.budgetFraction = spec.retryBudget;
  options.retry.burstTokens = spec.retryBurst;
  options.retry.backoffBase = util::Time::picoseconds(
      static_cast<std::int64_t>(spec.retryBackoffUs * 1e6));
  options.retry.backoffFactor = spec.retryBackoffFactor;
  options.breaker.enabled = spec.breaker;
  options.breaker.consecutiveFailures =
      static_cast<std::uint32_t>(spec.breakerFailures);
  options.breaker.openDuration = util::Time::picoseconds(
      static_cast<std::int64_t>(spec.breakerOpenUs * 1e6));
  options.breaker.halfOpenProbes =
      static_cast<std::uint32_t>(spec.breakerProbes);
  options.breaker.probeSuccesses =
      static_cast<std::uint32_t>(spec.breakerProbeSuccesses);
  options.admission.sloFactor = spec.sloFactor;
  options.admission.maxQueueDepth =
      static_cast<std::uint32_t>(spec.maxQueueDepth);
  options.hedge.enabled = spec.hedge;
  options.hedge.quantile = spec.hedgeQuantile;
  options.hedge.minSamples = spec.hedgeMinSamples;
  options.hedge.budgetFraction = spec.hedgeBudget;
  options.degradedFraction = spec.degradedFraction;
  options.escalateAfter = static_cast<std::uint32_t>(spec.escalateAfter);
  options.recoverAfter = static_cast<std::uint32_t>(spec.recoverAfter);
  return options;
}

DiagnosticSink lintFleetSpec(const FleetSpec& spec) {
  DiagnosticSink sink;
  // String-boundary rules first, mirroring MD011/MD012 and FT004/FT005:
  // the typed options below fall back to defaults so the remaining rules
  // still run.
  if (spec.routing != "least-loaded" && spec.routing != "p2c" &&
      spec.routing != "round-robin") {
    sink.emit("FL004", "routing", "unknown routing '" + spec.routing + "'");
  }
  if (spec.arrival != "poisson" && spec.arrival != "fixed-rate" &&
      spec.arrival != "trace") {
    sink.emit("FL005", "arrival", "unknown arrival '" + spec.arrival + "'");
  }
  checkFleetOptions(fleetSpecToOptions(spec), sink);
  return sink;
}

}  // namespace prtr::analyze
