#include "analyze/checks_bitstream.hpp"

#include <algorithm>
#include <string>

#include "util/crc32.hpp"

namespace prtr::analyze {
namespace {

using bitstream::Header;
using bitstream::StreamType;

std::string at(std::size_t offset) {
  return "byte " + std::to_string(offset);
}

std::string hex32(std::uint32_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out += kDigits[(value >> shift) & 0xF];
  }
  return out;
}

std::optional<std::uint32_t> readU32(std::span<const std::uint8_t> bytes,
                                     std::size_t offset) {
  if (offset + 4 > bytes.size()) return std::nullopt;
  return static_cast<std::uint32_t>(bytes[offset]) |
         static_cast<std::uint32_t>(bytes[offset + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[offset + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[offset + 3]) << 24;
}

}  // namespace

std::optional<Header> scanHeader(std::span<const std::uint8_t> bytes,
                                 DiagnosticSink& sink) {
  if (bytes.size() < 32) {
    sink.emit("BS001", at(bytes.size()),
              "stream is " + std::to_string(bytes.size()) +
                  " bytes, shorter than the 32-byte XBF header");
    return std::nullopt;
  }
  if (*readU32(bytes, 0) != Header::kMagic) {
    sink.emit("BS002", at(0), "magic word is not 'XBF1'");
    return std::nullopt;
  }
  const std::uint8_t type = bytes[4];
  if (type != static_cast<std::uint8_t>(StreamType::kFull) &&
      type != static_cast<std::uint8_t>(StreamType::kPartial)) {
    sink.emit("BS003", at(4),
              "stream type " + std::to_string(type) + " is neither full (1) "
              "nor partial (2)");
    return std::nullopt;
  }
  Header header;
  header.type = static_cast<StreamType>(type);
  header.deviceTag = *readU32(bytes, 8);
  header.firstFrame = *readU32(bytes, 12);
  header.frameCount = *readU32(bytes, 16);
  header.frameBytes = *readU32(bytes, 20);
  header.moduleId = static_cast<std::uint64_t>(*readU32(bytes, 24)) |
                    static_cast<std::uint64_t>(*readU32(bytes, 28)) << 32;
  return header;
}

StreamScan scanStream(std::span<const std::uint8_t> bytes,
                      const fabric::Device& device, DiagnosticSink& sink) {
  StreamScan scan;
  const std::optional<Header> header = scanHeader(bytes, sink);
  if (!header) return scan;
  scan.headerValid = true;
  scan.header = *header;

  const auto& geometry = device.geometry();
  const auto& enc = geometry.encoding();

  if (header->deviceTag != bitstream::deviceTag(device.name())) {
    sink.emit("BS004", at(8),
              "stream was built for a different device than '" +
                  device.name() + "'");
  }
  // CRC over everything but the 4-byte trailer (header scan guaranteed >= 32
  // bytes, so the trailer read cannot fail).
  const std::uint32_t expected = *readU32(bytes, bytes.size() - 4);
  const std::uint32_t actual =
      util::Crc32::of(bytes.subspan(0, bytes.size() - 4));
  if (expected != actual) {
    sink.emit("BS006", at(bytes.size() - 4),
              "stored CRC " + hex32(expected) +
                  " does not match the stream contents (computed " +
                  hex32(actual) + ")");
  }
  if (header->frameBytes != enc.frameBytes) {
    sink.emit("BS005", at(20),
              "stream carries " + std::to_string(header->frameBytes) +
                  "-byte frames but device '" + device.name() + "' uses " +
                  std::to_string(enc.frameBytes) + "-byte frames");
    return scan;  // the payload stride is unknown; the walk would misread
  }

  std::size_t offset = 0;
  scan.writes.reserve(header->frameCount);
  if (header->type == StreamType::kFull) {
    if (header->frameCount != geometry.totalFrames()) {
      sink.emit("BS007", at(16),
                "full stream carries " + std::to_string(header->frameCount) +
                    " frames but the device has " +
                    std::to_string(geometry.totalFrames()));
      return scan;
    }
    offset = enc.fullOverheadBytes - 4;
    for (std::uint32_t frame = 0; frame < header->frameCount; ++frame) {
      if (offset + enc.frameBytes + 4 > bytes.size()) {
        sink.emit("BS001", at(offset),
                  "full stream truncated at frame " + std::to_string(frame) +
                      " of " + std::to_string(header->frameCount));
        return scan;
      }
      scan.writes.push_back(
          bitstream::FrameWrite{frame, bytes.subspan(offset, enc.frameBytes)});
      offset += enc.frameBytes;
    }
  } else {
    offset = enc.partialOverheadBytes - 4;
    bool monotone = true;
    std::uint32_t previous = 0;
    for (std::uint32_t i = 0; i < header->frameCount; ++i) {
      const std::optional<std::uint32_t> frame = readU32(bytes, offset);
      if (!frame || offset + enc.frameAddressBytes + enc.frameBytes + 4 >
                        bytes.size()) {
        sink.emit("BS001", at(offset),
                  "partial stream truncated at frame write " +
                      std::to_string(i) + " of " +
                      std::to_string(header->frameCount));
        return scan;
      }
      offset += enc.frameAddressBytes;
      if (*frame >= geometry.totalFrames()) {
        sink.emit("BS008", at(offset - enc.frameAddressBytes),
                  "frame address " + std::to_string(*frame) +
                      " exceeds the device's " +
                      std::to_string(geometry.totalFrames()) + " frames");
      }
      if (i > 0 && monotone && *frame <= previous) {
        monotone = false;
        sink.emit("BS009", at(offset - enc.frameAddressBytes),
                  "frame address " + std::to_string(*frame) +
                      " follows frame " + std::to_string(previous));
      }
      previous = *frame;
      scan.writes.push_back(
          bitstream::FrameWrite{*frame, bytes.subspan(offset, enc.frameBytes)});
      offset += enc.frameBytes;
    }
  }
  if (offset + 4 != bytes.size()) {
    sink.emit("BS010", at(offset),
              "stream is " + std::to_string(bytes.size()) + " bytes but the "
              "frame math expects " + std::to_string(offset + 4));
  }
  return scan;
}

void checkStreamFitsFloorplan(const StreamScan& scan,
                              const fabric::Floorplan& floorplan,
                              DiagnosticSink& sink) {
  if (!scan.headerValid || scan.header.type != StreamType::kPartial ||
      scan.writes.empty()) {
    return;
  }
  auto [lowest, highest] = std::minmax_element(
      scan.writes.begin(), scan.writes.end(),
      [](const bitstream::FrameWrite& a, const bitstream::FrameWrite& b) {
        return a.frame < b.frame;
      });
  const fabric::Device& device = floorplan.device();
  for (const fabric::Region& prr : floorplan.prrs()) {
    const fabric::FrameRange range = prr.frames(device);
    if (range.contains(lowest->frame) && range.contains(highest->frame)) {
      return;
    }
  }
  sink.emit("BS011", "frames [" + std::to_string(lowest->frame) + ", " +
                         std::to_string(highest->frame) + "]",
            "partial stream touches frames outside every PRR of the "
            "floorplan");
}

}  // namespace prtr::analyze
