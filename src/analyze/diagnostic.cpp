#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace prtr::analyze {

const char* toString(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* toString(Category category) noexcept {
  switch (category) {
    case Category::kFloorplan: return "floorplan";
    case Category::kBitstream: return "bitstream";
    case Category::kModel: return "model";
    case Category::kFault: return "fault";
    case Category::kFleet: return "fleet";
    case Category::kTracing: return "tracing";
    case Category::kSlo: return "slo";
    case Category::kRace: return "race";
    case Category::kTimeline: return "timeline";
    case Category::kRequest: return "request";
    case Category::kDeterminism: return "determinism";
  }
  return "?";
}

namespace {

constexpr std::array kCatalog{
    // Floorplan rules (fabric::Floorplan construction delegates to these).
    RuleInfo{"FP001", Category::kFloorplan, Severity::kError,
             "region listed as a PRR does not have the PRR role",
             "construct the region with RegionRole::kPrr or move it to the "
             "static partition"},
    RuleInfo{"FP002", Category::kFloorplan, Severity::kError,
             "PRR extends beyond the device column range",
             "shrink the PRR or target a larger device"},
    RuleInfo{"FP003", Category::kFloorplan, Severity::kError,
             "PRR claims a hard-core/clock (PPC or GCLK) column, which "
             "cannot be reconfigured",
             "move the PRR off the PPC/GCLK columns (device centre on the "
             "XC2VP50)"},
    RuleInfo{"FP004", Category::kFloorplan, Severity::kError,
             "two PRRs overlap in the column range",
             "make the PRR column ranges disjoint"},
    RuleInfo{"FP005", Category::kFloorplan, Severity::kError,
             "bus macro references a PRR that is not in the floorplan",
             "fix the bus macro's prrName or add the missing PRR"},
    RuleInfo{"FP006", Category::kFloorplan, Severity::kError,
             "bus macro is not pinned to its PRR's boundary column",
             "place the macro on the PRR's first or one-past-last column"},
    RuleInfo{"FP007", Category::kFloorplan, Severity::kWarning,
             "PRR has no bus macros, so no signals can cross its boundary",
             "add at least one bus macro pair per PRR boundary"},
    RuleInfo{"FP008", Category::kFloorplan, Severity::kWarning,
             "PRR bus macros are asymmetric (unbalanced directions)",
             "pair each left-to-right macro with a right-to-left macro"},
    RuleInfo{"FP009", Category::kFloorplan, Severity::kWarning,
             "degenerate static region: PRRs plus bus-macro overhead leave "
             "no usable static fabric",
             "shrink the PRRs; the static design needs LUTs for interface "
             "services and the PR controller"},
    RuleInfo{"FP010", Category::kFloorplan, Severity::kError,
             "duplicate PRR name makes bus-macro and module binding "
             "ambiguous",
             "give every PRR a unique name"},
    // Bitstream rules (bitstream::parse delegates to these).
    RuleInfo{"BS001", Category::kBitstream, Severity::kError,
             "stream is truncated (shorter than its header, payload, or "
             "CRC trailer requires)",
             "regenerate the stream; a partial transfer or file corruption "
             "dropped bytes"},
    RuleInfo{"BS002", Category::kBitstream, Severity::kError,
             "bad magic: not an XBF stream",
             "check that the file is an XBF bitstream, not a raw payload"},
    RuleInfo{"BS003", Category::kBitstream, Severity::kError,
             "unknown stream type discriminator",
             "regenerate the stream with a current Builder"},
    RuleInfo{"BS004", Category::kBitstream, Severity::kError,
             "stream targets a different device (device tag mismatch)",
             "rebuild the stream for this device or load it on its own "
             "device"},
    RuleInfo{"BS005", Category::kBitstream, Severity::kError,
             "per-frame payload size does not match the device geometry",
             "rebuild the stream against this device's frame encoding"},
    RuleInfo{"BS006", Category::kBitstream, Severity::kError,
             "CRC-32 trailer does not match the stream contents",
             "regenerate the stream; it was corrupted after generation"},
    RuleInfo{"BS007", Category::kBitstream, Severity::kError,
             "full stream frame count differs from the device's total "
             "frame count",
             "a full stream must write every frame exactly once"},
    RuleInfo{"BS008", Category::kBitstream, Severity::kError,
             "partial stream frame address is outside the device",
             "rebuild the partial stream for this device's frame range"},
    RuleInfo{"BS009", Category::kBitstream, Severity::kWarning,
             "partial stream frame addresses are not strictly increasing",
             "sort frame writes; configuration ports stream fastest on "
             "monotone addresses"},
    RuleInfo{"BS010", Category::kBitstream, Severity::kWarning,
             "stream size disagrees with the device frame math (extra or "
             "unaccounted bytes before the CRC)",
             "regenerate the stream; size = overhead + frames * "
             "(address + payload) must hold exactly"},
    RuleInfo{"BS011", Category::kBitstream, Severity::kError,
             "partial stream does not fit inside any single PRR of the "
             "floorplan",
             "rebuild the persona for one of the floorplan's PRRs"},
    // Model and scenario rules (model::Params::validate delegates to these).
    RuleInfo{"MD001", Category::kModel, Severity::kError,
             "nCalls must be at least 1", "run at least one task call"},
    RuleInfo{"MD002", Category::kModel, Severity::kError,
             "xTask must be positive and finite",
             "task time is normalized by T_FRTR and cannot be zero"},
    RuleInfo{"MD003", Category::kModel, Severity::kError,
             "xPrtr must lie in (0, 1]: a partial configuration cannot "
             "exceed the full configuration",
             "check T_PRTR and T_FRTR; equation (2) normalizes by T_FRTR"},
    RuleInfo{"MD004", Category::kModel, Severity::kError,
             "xControl must be non-negative",
             "transfer-of-control time cannot be negative"},
    RuleInfo{"MD005", Category::kModel, Severity::kError,
             "xDecision must be non-negative",
             "pre-fetch decision latency cannot be negative"},
    RuleInfo{"MD006", Category::kModel, Severity::kError,
             "hitRatio must lie in [0, 1]",
             "H is the fraction of calls finding their module resident"},
    RuleInfo{"MD007", Category::kModel, Severity::kWarning,
             "PRTR cannot beat FRTR at these parameters (asymptotic "
             "speedup <= 1, equation 7)",
             "reduce xPrtr (finer-grained PRRs) or raise the hit ratio"},
    RuleInfo{"MD008", Category::kModel, Severity::kWarning,
             "requested speedup target is unreachable at any hit ratio "
             "(equation 7 supremum below target)",
             "the bound (1 + xTask)/xTask caps the speedup; lower the "
             "target or shrink xTask"},
    RuleInfo{"MD009", Category::kModel, Severity::kWarning,
             "forceMiss reconfigures on every call, so the configured "
             "cache policy has no effect",
             "disable forceMiss to exercise the cache, or drop the policy "
             "back to the default"},
    RuleInfo{"MD010", Category::kModel, Severity::kWarning,
             "prefetcher configuration is contradictory (prefetcher set "
             "but never consulted, or consulted but absent)",
             "match ScenarioOptions::prepare with prefetcherKind"},
    RuleInfo{"MD011", Category::kModel, Severity::kError,
             "unknown cache policy name",
             "use one of the policies listed by knownCachePolicies()"},
    RuleInfo{"MD012", Category::kModel, Severity::kError,
             "unknown prefetcher kind",
             "use one of the kinds listed by knownPrefetcherKinds()"},
    // Fault-plan and recovery rules (checks_fault.hpp; prtr-lint fault-spec).
    RuleInfo{"FT001", Category::kFault, Severity::kError,
             "fault rate outside [0, 1]",
             "rates are probabilities per event; keep them in [0, 1]"},
    RuleInfo{"FT002", Category::kFault, Severity::kError,
             "link stalls enabled with a non-positive stall duration",
             "give stall-us a positive value or set link-stall-rate to 0"},
    RuleInfo{"FT003", Category::kFault, Severity::kError,
             "fixed-schedule arrival needs a positive period",
             "set fixed-period to 1 or more"},
    RuleInfo{"FT004", Category::kFault, Severity::kError,
             "unknown arrival model",
             "use 'poisson' or 'fixed'"},
    RuleInfo{"FT005", Category::kFault, Severity::kError,
             "unknown verify mode",
             "use 'off', 'on-fault', or 'always'"},
    RuleInfo{"FT006", Category::kFault, Severity::kError,
             "backoff schedule cannot make progress (non-positive base or "
             "factor below 1)",
             "use a positive backoff-us and a backoff-factor >= 1"},
    RuleInfo{"FT007", Category::kFault, Severity::kWarning,
             "fault plan enables no fault kind, so the chaos run is a no-op",
             "raise at least one rate, or drop the plan"},
    RuleInfo{"FT008", Category::kFault, Severity::kWarning,
             "faults are injected but recovery is disabled: the first fault "
             "aborts the scenario",
             "enable recovery, or accept fail-fast semantics deliberately"},
    RuleInfo{"FT009", Category::kFault, Severity::kWarning,
             "recovery can neither retry nor escalate (zero retries with "
             "the ladder disabled)",
             "allow at least one retry or enable the degradation ladder"},
    RuleInfo{"FT010", Category::kFault, Severity::kWarning,
             "word-flip rate above 1e-2 per word corrupts nearly every "
             "load; repair rounds will thrash",
             "lower word-flip-rate (the chaos sweeps use 1e-6..1e-4)"},
    // Fleet-configuration rules (checks_fleet.hpp; prtr-lint fleet-spec).
    RuleInfo{"FL001", Category::kFleet, Severity::kError,
             "fleet topology invalid (no cells, or blades per cell outside "
             "the XD1 chassis bound of 1..6)",
             "use at least one cell and 1..6 blades per cell"},
    RuleInfo{"FL002", Category::kFleet, Severity::kError,
             "fleet run needs at least one request",
             "set requests to 1 or more"},
    RuleInfo{"FL003", Category::kFleet, Severity::kError,
             "offered-load must be positive and finite",
             "target a per-blade utilization like 0.7"},
    RuleInfo{"FL004", Category::kFleet, Severity::kError,
             "unknown routing policy name",
             "use 'least-loaded', 'p2c', or 'round-robin'"},
    RuleInfo{"FL005", Category::kFleet, Severity::kError,
             "unknown arrival process name",
             "use 'poisson', 'fixed-rate', or 'trace'"},
    RuleInfo{"FL006", Category::kFleet, Severity::kError,
             "trace-driven arrivals configured without a trace",
             "supply TraceArrival entries programmatically, or use a "
             "synthetic arrival process"},
    RuleInfo{"FL007", Category::kFleet, Severity::kError,
             "retry policy degenerate (zero attempts or negative budget)",
             "allow at least one attempt and a non-negative retry-budget"},
    RuleInfo{"FL008", Category::kFleet, Severity::kError,
             "breaker thresholds degenerate (zero failure threshold, zero "
             "probes, more required probe successes than probes, or a "
             "non-positive open duration)",
             "keep failures >= 1, probes >= successes >= 1, open-us > 0"},
    RuleInfo{"FL009", Category::kFleet, Severity::kError,
             "hedge configuration invalid (quantile outside (0, 1) or "
             "negative hedge budget)",
             "hedge at a tail quantile like 0.95 with a small budget"},
    RuleInfo{"FL010", Category::kFleet, Severity::kError,
             "request-mix parameter out of range (no users, task-affinity "
             "or payload-spread or degraded-fraction outside bounds, or a "
             "payload under 2 bytes)",
             "keep fractions within [0, 1] (spread below 1) and size the "
             "payload in bytes"},
    RuleInfo{"FL011", Category::kFleet, Severity::kError,
             "admission policy can never admit (zero queue depth or a "
             "non-positive SLO factor)",
             "allow at least depth 1 and a positive slo-factor"},
    RuleInfo{"FL012", Category::kFleet, Severity::kWarning,
             "offered-load at or above 1 saturates every blade; the open "
             "loop will shed heavily and the queue-wait tail is unbounded "
             "by design",
             "stay below 1.0 per blade, or accept the overload study"},
    RuleInfo{"FL013", Category::kFleet, Severity::kWarning,
             "retry budget above 0.5 lets retries add more than half of "
             "fresh traffic again — a retry-storm risk under correlated "
             "failure",
             "keep retry-budget at or below 0.5 (production proxies "
             "default to ~0.2)"},
    RuleInfo{"FL014", Category::kFleet, Severity::kWarning,
             "chaos no-op: degraded-fraction marks blades hostile but the "
             "degraded fault plan injects nothing",
             "give the degraded plan at least one positive rate, or drop "
             "degraded-fraction"},
    RuleInfo{"FL015", Category::kFleet, Severity::kWarning,
             "degraded blades configured with the circuit breaker "
             "disabled: nothing isolates a failing blade from traffic",
             "enable the breaker for chaos runs, or accept sustained "
             "failures deliberately"},
    RuleInfo{"FL016", Category::kFleet, Severity::kError,
             "rate limiter enabled with a non-positive refill rate or "
             "burst",
             "give rate-limit-rps and rate-limit-burst positive values, or "
             "disable the limiter"},
    RuleInfo{"FL017", Category::kFleet, Severity::kWarning,
             "degenerate calibration: a task profile carries a zero cost "
             "component (flat execute slope, free persona reload, or zero "
             "configuration words)",
             "calibrate against scenarios whose payloads actually differ, "
             "and check the hardware function registry"},
    // Trace-sampling rules (trace::TracePolicy via checks_fleet.hpp).
    RuleInfo{"TR001", Category::kTracing, Severity::kError,
             "trace sample rate outside [0, 1]",
             "the rate is a keep probability for non-tail requests"},
    RuleInfo{"TR002", Category::kTracing, Severity::kError,
             "trace slow quantile outside (0, 1)",
             "use a tail quantile like 0.99; 1.0 would never classify a "
             "completion as slow"},
    RuleInfo{"TR003", Category::kTracing, Severity::kError,
             "positive sample rate with a zero per-cell sample cap keeps "
             "no rate-sampled trace at all",
             "raise trace-max-per-cell, or set the sample rate to 0 to "
             "keep only tail traces"},
    RuleInfo{"TR004", Category::kTracing, Severity::kWarning,
             "sample rate at or above 0.5 on a large run will retain "
             "most requests; the trace file will be huge",
             "sample at 1% or below on runs beyond 100k requests; tail "
             "requests are always kept regardless"},
    // SLO burn-rate rules (obs::SloSpec via checks_fleet.hpp).
    RuleInfo{"SL001", Category::kSlo, Severity::kError,
             "SLO objective outside (0, 1)",
             "state the objective as a good fraction like 0.999"},
    RuleInfo{"SL002", Category::kSlo, Severity::kError,
             "SLO window or latency target invalid (non-positive window, "
             "or a negative latency target)",
             "use a positive slo-window-us; latency target 0 derives the "
             "admission deadline"},
    RuleInfo{"SL003", Category::kSlo, Severity::kError,
             "burn-rate windows degenerate (zero windows, or the fast "
             "window wider than the slow window)",
             "keep 1 <= fast windows <= slow windows (the classic pair is "
             "3 and 12)"},
    RuleInfo{"SL004", Category::kSlo, Severity::kError,
             "burn-rate thresholds degenerate (non-positive, or the fast "
             "threshold below the slow threshold)",
             "use fast-burn >= slow-burn > 0 (the classic pair is 14 and "
             "6)"},
    RuleInfo{"SL005", Category::kSlo, Severity::kWarning,
             "error budget smaller than ~10 requests over the whole run: "
             "burn rates will be all-or-nothing noise",
             "loosen the objective or run more requests so the budget is "
             "statistically meaningful"},
    // Happens-before race rules (verify::RaceDetector; exec instrumentation).
    RuleInfo{"RC001", Category::kRace, Severity::kError,
             "write/write race: two threads wrote the same shared object "
             "with no happens-before edge between them",
             "order the writes through a sync object (task hand-off, "
             "barrier, or mutex) or make the object thread-local"},
    RuleInfo{"RC002", Category::kRace, Severity::kError,
             "read/write race: a read and a later write of the same shared "
             "object are unordered",
             "publish the write through a release/acquire edge the reader "
             "passes through"},
    RuleInfo{"RC003", Category::kRace, Severity::kError,
             "write/read race: a read observes a write it is not ordered "
             "after",
             "acquire from the sync object the writer released into before "
             "reading"},
    RuleInfo{"RC004", Category::kRace, Severity::kWarning,
             "sync object acquired that was never released into (empty "
             "causal past; likely an instrumentation gap)",
             "check that every acquire() site has a matching release() on "
             "the producing thread"},
    // Timeline invariant rules (verify::checkTimelines; prtr-verify trace).
    RuleInfo{"TL001", Category::kTimeline, Severity::kError,
             "span violates causality: it ends before it starts",
             "fix the emitting component's clock arithmetic; durations "
             "must be non-negative"},
    RuleInfo{"TL002", Category::kTimeline, Severity::kError,
             "lane is not time-ordered: a span starts before the previous "
             "span on the same lane",
             "emit spans in nondecreasing start order per lane (sim::"
             "Timeline::record appends in event order)"},
    RuleInfo{"TL003", Category::kTimeline, Severity::kError,
             "overlapping spans on a serial resource lane",
             "a serial lane (CPU, recovery) can host one activity at a "
             "time; check the scheduler's busy-until bookkeeping"},
    RuleInfo{"TL004", Category::kTimeline, Severity::kError,
             "PRR double-residency: two personas occupy one PRR at "
             "overlapping times",
             "a PRR hosts one module between reconfigurations; serialize "
             "the residency intervals"},
    RuleInfo{"TL005", Category::kTimeline, Severity::kError,
             "ICAP mutual exclusion violated: overlapping configuration "
             "sessions",
             "the configuration port is a single resource; queue "
             "reconfiguration requests"},
    RuleInfo{"TL006", Category::kTimeline, Severity::kError,
             "link occupancy not conserved: overlapping transfers on a "
             "simplex link",
             "HT-in/HT-out model dedicated simplex channels; serialize "
             "transfers per direction"},
    RuleInfo{"TL007", Category::kTimeline, Severity::kWarning,
             "recovery span with no configuration activity inside it",
             "a recovery episode must contain at least one retry or "
             "degraded reload on the config lane"},
    // Request-lane rules (verify::checkRequestLanes; prtr-verify trace).
    RuleInfo{"RQ001", Category::kRequest, Severity::kError,
             "span outlives its request: a child span extends outside the "
             "root 'request ...' span",
             "the root must cover every attempt, including losing hedge "
             "copies; check the recorder's finalize clipping"},
    RuleInfo{"RQ002", Category::kRequest, Severity::kError,
             "request lane without exactly one root 'request ...' span",
             "every rq: lane carries one request; check the exporter's "
             "lane naming"},
    RuleInfo{"RQ003", Category::kRequest, Severity::kError,
             "attempt nesting broken: a queue/service/stall/reload/execute "
             "span escapes its attempt's bounds",
             "component spans of attempt N must lie inside attempt#N; "
             "check the service-breakdown arithmetic"},
    RuleInfo{"RQ004", Category::kRequest, Severity::kError,
             "component span references an attempt number with no attempt "
             "span on the lane",
             "every dispatch must open an attempt span before queue/"
             "service spans reference it"},
    RuleInfo{"RQ005", Category::kRequest, Severity::kError,
             "hedge winner not unique (multiple 'hedge:win' marks, or a "
             "win with no hedged attempt)",
             "exactly one copy may win; check the completion handler's "
             "first-completion-wins logic"},
    RuleInfo{"RQ006", Category::kRequest, Severity::kWarning,
             "request shed at admission but the lane records dispatch "
             "activity",
             "a shed request never reaches a blade; check the admission "
             "path's early-exit ordering"},
    // Determinism rules (verify::exploreSchedules; prtr-verify explore).
    RuleInfo{"DT001", Category::kDeterminism, Severity::kError,
             "schedule-dependent result: a perturbed pool interleaving "
             "changed the sweep's bytes",
             "store results by index and keep reductions in index order "
             "(the pool determinism contract)"},
    RuleInfo{"DT002", Category::kDeterminism, Severity::kError,
             "two captures of the same scenario disagree (trace diff)",
             "eliminate the nondeterminism source (unseeded RNG, wall "
             "clock, iteration over pointer-keyed maps)"},
    RuleInfo{"DT003", Category::kDeterminism, Severity::kWarning,
             "schedule exploration exercised fewer distinct interleavings "
             "than requested",
             "raise the seed count or widen the pool; a narrow pool "
             "collapses many seeds onto one schedule"},
    RuleInfo{"DT004", Category::kDeterminism, Severity::kError,
             "event-queue implementation changed the simulated bytes",
             "both sim::EventQueue implementations must realize the same "
             "(timePs, seq) total order; fix the queue, not the model"},
};

}  // namespace

std::span<const RuleInfo> ruleCatalog() noexcept { return kCatalog; }

const RuleInfo& ruleInfo(std::string_view code) {
  const auto it = std::find_if(kCatalog.begin(), kCatalog.end(),
                               [&](const RuleInfo& r) { return code == r.code; });
  util::require(it != kCatalog.end(),
                "ruleInfo: unknown diagnostic code '" + std::string{code} + "'");
  return *it;
}

std::string renderRuleReference() {
  std::ostringstream os;
  os << "# prtr-lint rule reference\n\n"
     << "Generated by `prtr-lint codes --markdown` from "
        "`prtr::analyze::ruleCatalog()`. Do not edit by hand.\n";
  Category last = Category::kModel;
  bool first = true;
  for (const RuleInfo& rule : kCatalog) {
    if (first || rule.category != last) {
      os << "\n## " << toString(rule.category) << " rules\n\n"
         << "| Code | Severity | Summary | Fix |\n"
         << "|------|----------|---------|-----|\n";
      last = rule.category;
      first = false;
    }
    os << "| " << rule.code << " | " << toString(rule.severity) << " | "
       << rule.summary << " | " << rule.fixHint << " |\n";
  }
  return os.str();
}

std::string Diagnostic::format() const {
  std::string out = std::string{toString(severity)} + "[" + code + "] " +
                    location + ": " + message;
  if (!fixHint.empty()) out += " (fix: " + fixHint + ")";
  return out;
}

void DiagnosticSink::emit(std::string_view code, std::string location,
                          std::string message, std::string fixHint) {
  const RuleInfo& rule = ruleInfo(code);
  Diagnostic d;
  d.code = rule.code;
  d.severity = rule.severity;
  d.location = std::move(location);
  d.message = std::move(message);
  d.fixHint = fixHint.empty() ? rule.fixHint : std::move(fixHint);
  if (d.severity == Severity::kError) ++errors_;
  diagnostics_.push_back(std::move(d));
}

const Diagnostic& DiagnosticSink::firstError() const {
  const auto it = std::find_if(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; });
  util::require(it != diagnostics_.end(),
                "DiagnosticSink: no error diagnostic recorded");
  return *it;
}

bool DiagnosticSink::has(std::string_view code) const noexcept {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::vector<std::string> DiagnosticSink::codes() const {
  std::vector<std::string> out;
  for (const Diagnostic& d : diagnostics_) out.push_back(d.code);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string DiagnosticSink::toText() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << d.format() << '\n';
  os << errorCount() << " error(s), " << warningCount() << " warning(s)\n";
  return os.str();
}

std::string DiagnosticSink::toJson() const {
  std::ostringstream os;
  os << "{\"errors\":" << errorCount() << ",\"warnings\":" << warningCount()
     << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << jsonEscape(d.code) << "\",\"severity\":\""
       << toString(d.severity) << "\",\"category\":\""
       << toString(ruleInfo(d.code).category) << "\",\"location\":\""
       << jsonEscape(d.location) << "\",\"message\":\"" << jsonEscape(d.message)
       << "\",\"fixHint\":\"" << jsonEscape(d.fixHint) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string jsonEscape(std::string_view text) {
  return util::json::escape(text);
}
}  // namespace prtr::analyze
