#pragma once
/// \file checks_scenario.hpp
/// Scenario-option coherence rules (codes MD009..MD012), applied by
/// `runtime::runScenario()` before executing anything (strict mode) and by
/// `prtr-lint scenario`. Split from checks_model.hpp so the model library
/// does not pull in runtime headers.

#include <span>

#include "analyze/diagnostic.hpp"
#include "runtime/scenario.hpp"

namespace prtr::analyze {

/// Contradictory option combinations (MD009, MD010) and unknown
/// policy/prefetcher names (MD011, MD012).
void checkScenarioOptions(const runtime::ScenarioOptions& options,
                          DiagnosticSink& sink);

/// Cache-policy names `runtime::makeCache` accepts (cross-checked by test).
[[nodiscard]] std::span<const char* const> knownCachePolicies() noexcept;

/// Prefetcher kinds `runtime::makePrefetcher` accepts.
[[nodiscard]] std::span<const char* const> knownPrefetcherKinds() noexcept;

}  // namespace prtr::analyze
