#pragma once
/// \file checks_scenario.hpp
/// Scenario-option coherence rules (codes MD009..MD012), applied by
/// `runtime::runScenario()` before executing anything (strict mode) and by
/// `prtr-lint scenario`. Split from checks_model.hpp so the model library
/// does not pull in runtime headers.
///
/// Since ScenarioOptions moved to typed enums, an unknown policy or
/// prefetcher name is unrepresentable there — MD011/MD012 now fire at the
/// string boundary (spec files, CLI flags) through checkScenarioNames,
/// while checkScenarioOptions keeps the coherence rules on typed options.

#include <span>
#include <string>

#include "analyze/diagnostic.hpp"
#include "runtime/scenario.hpp"

namespace prtr::analyze {

/// Contradictory option combinations (MD009, MD010).
void checkScenarioOptions(const runtime::ScenarioOptions& options,
                          DiagnosticSink& sink);

/// Unknown policy/prefetcher names (MD011, MD012) — the string-boundary
/// check used by the spec front end and the CLI before fromString.
void checkScenarioNames(const std::string& cachePolicy,
                        const std::string& prefetcherKind,
                        DiagnosticSink& sink);

/// Cache-policy names `runtime::cachePolicyFromString` accepts, generated
/// from the enum so the list can never drift from the runtime.
[[nodiscard]] std::span<const char* const> knownCachePolicies() noexcept;

/// Prefetcher kinds `runtime::prefetcherKindFromString` accepts.
[[nodiscard]] std::span<const char* const> knownPrefetcherKinds() noexcept;

}  // namespace prtr::analyze
