#pragma once
/// \file checks_floorplan.hpp
/// Floorplan design rules (codes FP001..FP010). This is the single home of
/// the rule logic: `fabric::Floorplan`'s constructor routes its validation
/// through checkFloorplan(), so a floorplan that constructs successfully
/// can never lint with errors and vice versa.

#include <vector>

#include "analyze/diagnostic.hpp"
#include "fabric/device.hpp"
#include "fabric/region.hpp"

namespace prtr::analyze {

/// Runs every floorplan rule over the would-be floorplan
/// (device, PRRs, bus macros), emitting into `sink`.
void checkFloorplan(const fabric::Device& device,
                    const std::vector<fabric::Region>& prrs,
                    const std::vector<fabric::BusMacro>& busMacros,
                    DiagnosticSink& sink);

}  // namespace prtr::analyze
