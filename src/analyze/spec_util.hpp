#pragma once
/// \file spec_util.hpp
/// Shared helpers for the line-oriented spec parsers (spec.cpp in the
/// runtime library, checks_fault.cpp in the fault library). Internal to
/// prtr::analyze — not part of the lint API surface.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace prtr::analyze::specdetail {

[[noreturn]] inline void fail(std::size_t lineNo, const std::string& what) {
  throw util::DomainError{"spec line " + std::to_string(lineNo) + ": " + what};
}

/// Strips a '#' comment and returns the whitespace-split tokens.
inline std::vector<std::string> tokenize(const std::string& line) {
  const std::size_t hash = line.find('#');
  std::istringstream is{hash == std::string::npos ? line
                                                  : line.substr(0, hash)};
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

inline double parseDouble(const std::string& token, std::size_t lineNo) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(lineNo, "trailing characters in number");
    return value;
  } catch (const std::invalid_argument&) {
    fail(lineNo, "expected a number, got '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(lineNo, "number out of range: '" + token + "'");
  }
}

inline std::uint64_t parseU64(const std::string& token, std::size_t lineNo) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size()) fail(lineNo, "trailing characters in number");
    return value;
  } catch (const std::invalid_argument&) {
    fail(lineNo, "expected an integer, got '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(lineNo, "integer out of range: '" + token + "'");
  }
}

inline bool parseBool(const std::string& token, std::size_t lineNo) {
  if (token == "true") return true;
  if (token == "false") return false;
  fail(lineNo, "expected true/false, got '" + token + "'");
}

}  // namespace prtr::analyze::specdetail
