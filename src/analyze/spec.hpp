#pragma once
/// \file spec.hpp
/// Tiny line-oriented spec formats so floorplans and scenarios can be
/// linted from files (prtr-lint, golden tests, CI self-checks) without
/// constructing the validated objects — construction would throw on the
/// very defects the linter is supposed to report.
///
/// Floorplan spec (one directive per line, '#' comments):
///     device xc2vp50
///     prr <name> <firstColumn> <columnCount>
///     busmacro <prrName> l2r|r2l <widthBits> <boundaryColumn>
///
/// Scenario spec:
///     ncalls <n>          xtask <x>      xprtr <x>
///     xcontrol <x>        xdecision <x>  hit <h>
///     target <speedup>    force-miss true|false
///     cache <policy>      prefetcher <kind>
///     prepare none|queue|prefetcher

#include <istream>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "fabric/region.hpp"
#include "model/params.hpp"

namespace prtr::analyze {

/// A floorplan as written, before any validation.
struct FloorplanSpec {
  std::string deviceName = "xc2vp50";
  std::vector<fabric::Region> prrs;
  std::vector<fabric::BusMacro> busMacros;
};

/// Parses a floorplan spec. Throws DomainError (with the line number) on
/// syntax errors; defects in the described floorplan are NOT errors here —
/// they are what lintFloorplanSpec reports.
[[nodiscard]] FloorplanSpec parseFloorplanSpec(std::istream& in);

/// Runs the floorplan rules over a parsed spec (resolves the device name
/// via the catalog; unknown names throw DomainError).
[[nodiscard]] DiagnosticSink lintFloorplanSpec(const FloorplanSpec& spec);

/// A scenario as written: model parameters plus executor options.
struct ScenarioSpec {
  model::Params params{};
  double speedupTarget = 0.0;  ///< 0 = no target configured
  bool forceMiss = true;
  std::string cachePolicy = "lru";
  std::string prefetcherKind = "none";
  std::string prepare = "queue";  ///< none | queue | prefetcher
};

/// Parses a scenario spec; throws DomainError on syntax errors.
[[nodiscard]] ScenarioSpec parseScenarioSpec(std::istream& in);

/// Runs the model-domain, feasibility, and option-coherence rules.
[[nodiscard]] DiagnosticSink lintScenarioSpec(const ScenarioSpec& spec);

}  // namespace prtr::analyze
