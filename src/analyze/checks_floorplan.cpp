#include "analyze/checks_floorplan.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

namespace prtr::analyze {
namespace {

std::string prrLoc(const fabric::Region& prr) {
  return "PRR '" + prr.name() + "'";
}

}  // namespace

void checkFloorplan(const fabric::Device& device,
                    const std::vector<fabric::Region>& prrs,
                    const std::vector<fabric::BusMacro>& busMacros,
                    DiagnosticSink& sink) {
  const auto& geometry = device.geometry();

  for (std::size_t i = 0; i < prrs.size(); ++i) {
    const fabric::Region& prr = prrs[i];
    if (prr.role() != fabric::RegionRole::kPrr) {
      sink.emit("FP001", prrLoc(prr),
                "region '" + prr.name() + "' is listed as a PRR but has the "
                "static role");
    }
    if (prr.endColumn() > geometry.columnCount()) {
      sink.emit("FP002", prrLoc(prr),
                "columns [" + std::to_string(prr.firstColumn()) + ", " +
                    std::to_string(prr.endColumn()) + ") extend beyond the " +
                    std::to_string(geometry.columnCount()) + "-column device");
    } else {
      for (std::size_t c = prr.firstColumn(); c < prr.endColumn(); ++c) {
        const fabric::ColumnKind kind = geometry.columns()[c].kind;
        if (kind == fabric::ColumnKind::kPpc ||
            kind == fabric::ColumnKind::kGclk) {
          sink.emit("FP003", prrLoc(prr),
                    "column " + std::to_string(c) + " is a " +
                        std::string{fabric::toString(kind)} +
                        " column and cannot be reconfigured");
          break;
        }
      }
    }
    for (std::size_t j = i + 1; j < prrs.size(); ++j) {
      if (prr.name() == prrs[j].name()) {
        sink.emit("FP010", prrLoc(prr),
                  "two PRRs share the name '" + prr.name() + "'");
      }
      if (prr.overlaps(prrs[j])) {
        sink.emit("FP004", prrLoc(prr),
                  "PRRs '" + prr.name() + "' and '" + prrs[j].name() +
                      "' overlap");
      }
    }
  }

  for (const fabric::BusMacro& macro : busMacros) {
    const auto it = std::find_if(
        prrs.begin(), prrs.end(),
        [&](const fabric::Region& r) { return r.name() == macro.prrName; });
    if (it == prrs.end()) {
      sink.emit("FP005", "bus macro '" + macro.prrName + "'",
                "bus macro references unknown PRR '" + macro.prrName + "'");
      continue;
    }
    const bool onBoundary = macro.boundaryColumn == it->firstColumn() ||
                            macro.boundaryColumn == it->endColumn();
    if (!onBoundary) {
      sink.emit("FP006", "bus macro '" + macro.prrName + "'",
                "boundary column " + std::to_string(macro.boundaryColumn) +
                    " is not on PRR '" + macro.prrName + "' boundary (" +
                    std::to_string(it->firstColumn()) + " or " +
                    std::to_string(it->endColumn()) + ")");
    }
  }

  // Per-PRR macro inventory: FP007 (none at all) and FP008 (unbalanced
  // directions make one direction of the interface unroutable).
  for (const fabric::Region& prr : prrs) {
    std::uint32_t l2r = 0;
    std::uint32_t r2l = 0;
    for (const fabric::BusMacro& macro : busMacros) {
      if (macro.prrName != prr.name()) continue;
      if (macro.direction == fabric::BusMacro::Direction::kLeftToRight) {
        ++l2r;
      } else {
        ++r2l;
      }
    }
    if (l2r + r2l == 0) {
      sink.emit("FP007", prrLoc(prr),
                "PRR '" + prr.name() + "' has no bus macros");
    } else if (l2r != r2l) {
      sink.emit("FP008", prrLoc(prr),
                "PRR '" + prr.name() + "' has " + std::to_string(l2r) +
                    " left-to-right but " + std::to_string(r2l) +
                    " right-to-left macros");
    }
  }

  // FP009: degenerate static region. Mirrors Floorplan::staticResources()
  // (saturating arithmetic) without requiring a constructed Floorplan.
  if (!prrs.empty()) {
    fabric::ResourceVec remaining = device.usableResources();
    for (const fabric::Region& prr : prrs) {
      if (prr.endColumn() <= geometry.columnCount()) {
        remaining = remaining - prr.resources(device);
      }
    }
    for (const fabric::BusMacro& macro : busMacros) {
      remaining = remaining - macro.resourceCost();
    }
    if (remaining.luts == 0) {
      sink.emit("FP009", "static region",
                "PRRs and bus-macro overhead consume every usable LUT; the "
                "static design (interface services, PR controller) cannot "
                "be placed");
    }
  }
}

}  // namespace prtr::analyze
