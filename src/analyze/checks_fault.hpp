#pragma once
/// \file checks_fault.hpp
/// FT* rules: fault-plan and recovery-policy validation, plus the `.flt`
/// fault-plan spec format consumed by `prtr-lint fault-spec`, bench_chaos
/// and prtrsim_cli.
///
/// Fault spec (one `<key> <value>` per line, '#' comments):
///     seed <n>                 arrival poisson|fixed   fixed-period <n>
///     link-stall-rate <p>      stall-us <t>
///     word-flip-rate <p>       timeout-rate <p>        abort-rate <p>
///     api-reject-rate <p>
///     recovery true|false      max-retries <n>         repair-rounds <n>
///     backoff-us <t>           backoff-factor <x>
///     verify off|on-fault|always                       ladder true|false
///
/// Compiled into the prtr_fault library (analyze itself stays dependency-
/// free of the subsystems it validates — same split as the other checkers).

#include <istream>
#include <string>

#include "analyze/diagnostic.hpp"
#include "config/recovery.hpp"
#include "fault/fault.hpp"

namespace prtr::analyze {

/// A fault plan plus recovery policy as written, before any validation.
struct FaultSpec {
  std::uint64_t seed = 0x5EEDu;
  std::string arrival = "poisson";  ///< poisson | fixed
  std::uint64_t fixedPeriod = 2;
  double linkStallRate = 0.0;
  double stallUs = 100.0;
  double wordFlipRate = 0.0;
  double transferTimeoutRate = 0.0;
  double icapAbortRate = 0.0;
  double apiRejectRate = 0.0;
  bool recoveryEnabled = true;
  std::uint64_t maxRetries = 3;
  std::uint64_t repairRounds = 4;
  double backoffUs = 50.0;
  double backoffFactor = 2.0;
  std::string verify = "on-fault";  ///< off | on-fault | always
  bool ladder = true;
};

/// Parses a fault spec; throws DomainError (with the line number) on syntax
/// errors. Unknown arrival/verify names parse fine — they lint as FT004 /
/// FT005.
[[nodiscard]] FaultSpec parseFaultSpec(std::istream& in);

/// Runs the string-boundary rules (FT004, FT005) and all typed FT rules
/// over a parsed spec; also flags no-op plans (FT007).
[[nodiscard]] DiagnosticSink lintFaultSpec(const FaultSpec& spec);

/// Typed-boundary FT rules over an assembled plan/policy pair — used by
/// runScenario's strict lint hook. Does not emit FT007 (a rate-0 plan with
/// recovery enabled is the legitimate "healthy baseline" configuration).
void checkFaultOptions(const fault::Plan& plan,
                       const config::RecoveryPolicy& recovery,
                       DiagnosticSink& sink);

/// Converts a (lint-clean) spec into the typed plan and policy. Unknown
/// arrival/verify names fall back to the defaults, mirroring the scenario
/// spec's value_or behaviour.
[[nodiscard]] std::pair<fault::Plan, config::RecoveryPolicy> faultSpecToOptions(
    const FaultSpec& spec);

}  // namespace prtr::analyze
