#include "analyze/checks_model.hpp"

#include <cmath>
#include <string>

#include "model/bounds.hpp"
#include "model/model.hpp"
#include "util/table.hpp"

namespace prtr::analyze {

void checkParams(const model::Params& params, DiagnosticSink& sink) {
  // Gate the derived checks on the domain errors *this* call emits, not on
  // whatever an earlier checker left in the sink (lintAll shares one sink
  // across artifacts).
  const std::size_t errorsBefore = sink.errorCount();
  if (params.nCalls < 1) {
    sink.emit("MD001", "nCalls", "nCalls is 0; the model needs at least one "
              "task call");
  }
  if (!(params.xTask > 0.0) || !std::isfinite(params.xTask)) {
    sink.emit("MD002", "xTask",
              "xTask = " + util::formatDouble(params.xTask) +
                  " is outside (0, inf)");
  }
  if (!(params.xPrtr > 0.0 && params.xPrtr <= 1.0)) {
    sink.emit("MD003", "xPrtr",
              "xPrtr = " + util::formatDouble(params.xPrtr) +
                  " is outside (0, 1]");
  }
  if (!(params.xControl >= 0.0)) {
    sink.emit("MD004", "xControl",
              "xControl = " + util::formatDouble(params.xControl) +
                  " is negative");
  }
  if (!(params.xDecision >= 0.0)) {
    sink.emit("MD005", "xDecision",
              "xDecision = " + util::formatDouble(params.xDecision) +
                  " is negative");
  }
  if (!(params.hitRatio >= 0.0 && params.hitRatio <= 1.0)) {
    sink.emit("MD006", "hitRatio",
              "hitRatio = " + util::formatDouble(params.hitRatio) +
                  " is outside [0, 1]");
  }
  if (sink.errorCount() == errorsBefore) {
    // Eq. 7 asymptote computed from the validate-free per-call cost:
    // model::asymptoticSpeedup() re-validates its Params, and Params::
    // validate() routes through this checker, so calling it here would
    // recurse without bound.
    const double sInf = (1.0 + params.xControl + params.xTask) /
                        model::prtrPerCallNormalized(params);
    if (sInf <= 1.0) {
      sink.emit("MD007", "params",
                "asymptotic speedup is " + util::formatDouble(sInf) +
                    " <= 1: PRTR is provably unprofitable here");
    }
  }
}

void checkSpeedupTarget(const model::Params& params, double targetSpeedup,
                        DiagnosticSink& sink) {
  if (targetSpeedup <= 1.0) return;
  // Only evaluate the bound when its inputs are in-domain (MD002/MD003
  // already flag the violation; recomputing from bad inputs would throw).
  if (!(params.xTask > 0.0 && std::isfinite(params.xTask)) ||
      !(params.xPrtr > 0.0 && params.xPrtr <= 1.0)) {
    return;
  }
  const double neededH =
      model::requiredHitRatio(params.xTask, params.xPrtr, targetSpeedup);
  if (neededH > 1.0) {
    sink.emit("MD008", "target",
              "speedup target " + util::formatDouble(targetSpeedup) +
                  " exceeds the bound " +
                  util::formatDouble(model::upperBoundForTask(params.xTask)) +
                  " reachable at xTask = " + util::formatDouble(params.xTask));
  }
}

}  // namespace prtr::analyze
