#include "analyze/spec.hpp"

#include "analyze/checks_floorplan.hpp"
#include "analyze/checks_model.hpp"
#include "analyze/checks_scenario.hpp"
#include "analyze/spec_util.hpp"
#include "fabric/device.hpp"
#include "util/error.hpp"

namespace prtr::analyze {

using specdetail::fail;
using specdetail::parseBool;
using specdetail::parseDouble;
using specdetail::parseU64;
using specdetail::tokenize;

FloorplanSpec parseFloorplanSpec(std::istream& in) {
  FloorplanSpec spec;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "device" && tokens.size() == 2) {
      spec.deviceName = tokens[1];
    } else if (tokens[0] == "prr" && tokens.size() == 4) {
      // Parse outside the try: parseU64's errors already carry the line
      // prefix, and re-wrapping would double it. The catch covers only
      // Region's own constraints (empty name, zero columns).
      const std::uint64_t first = parseU64(tokens[2], lineNo);
      const std::uint64_t count = parseU64(tokens[3], lineNo);
      try {
        spec.prrs.emplace_back(tokens[1], fabric::RegionRole::kPrr, first,
                               count);
      } catch (const util::DomainError& e) {
        fail(lineNo, e.what());
      }
    } else if (tokens[0] == "busmacro" && tokens.size() == 5) {
      fabric::BusMacro macro;
      macro.prrName = tokens[1];
      if (tokens[2] == "l2r") {
        macro.direction = fabric::BusMacro::Direction::kLeftToRight;
      } else if (tokens[2] == "r2l") {
        macro.direction = fabric::BusMacro::Direction::kRightToLeft;
      } else {
        fail(lineNo, "busmacro direction must be l2r or r2l");
      }
      macro.widthBits = static_cast<std::uint32_t>(parseU64(tokens[3], lineNo));
      macro.boundaryColumn = parseU64(tokens[4], lineNo);
      spec.busMacros.push_back(std::move(macro));
    } else {
      fail(lineNo, "unrecognized directive '" + tokens[0] + "'");
    }
  }
  return spec;
}

DiagnosticSink lintFloorplanSpec(const FloorplanSpec& spec) {
  const fabric::Device device = fabric::makeDevice(spec.deviceName);
  DiagnosticSink sink;
  checkFloorplan(device, spec.prrs, spec.busMacros, sink);
  return sink;
}

ScenarioSpec parseScenarioSpec(std::istream& in) {
  ScenarioSpec spec;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) fail(lineNo, "expected '<key> <value>'");
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    if (key == "ncalls") {
      spec.params.nCalls = parseU64(value, lineNo);
    } else if (key == "xtask") {
      spec.params.xTask = parseDouble(value, lineNo);
    } else if (key == "xprtr") {
      spec.params.xPrtr = parseDouble(value, lineNo);
    } else if (key == "xcontrol") {
      spec.params.xControl = parseDouble(value, lineNo);
    } else if (key == "xdecision") {
      spec.params.xDecision = parseDouble(value, lineNo);
    } else if (key == "hit") {
      spec.params.hitRatio = parseDouble(value, lineNo);
    } else if (key == "target") {
      spec.speedupTarget = parseDouble(value, lineNo);
    } else if (key == "force-miss") {
      spec.forceMiss = parseBool(value, lineNo);
    } else if (key == "cache") {
      spec.cachePolicy = value;
    } else if (key == "prefetcher") {
      spec.prefetcherKind = value;
    } else if (key == "prepare") {
      if (value != "none" && value != "queue" && value != "prefetcher") {
        fail(lineNo, "prepare must be none, queue, or prefetcher");
      }
      spec.prepare = value;
    } else {
      fail(lineNo, "unrecognized key '" + key + "'");
    }
  }
  return spec;
}

DiagnosticSink lintScenarioSpec(const ScenarioSpec& spec) {
  DiagnosticSink sink;
  checkParams(spec.params, sink);
  checkSpeedupTarget(spec.params, spec.speedupTarget, sink);
  // Unknown names lint here (MD011/MD012) at the string boundary; the
  // typed options below fall back to defaults so the coherence rules can
  // still run over whatever else the spec sets.
  checkScenarioNames(spec.cachePolicy, spec.prefetcherKind, sink);
  runtime::ScenarioOptions options;
  options.forceMiss = spec.forceMiss;
  options.cachePolicy = runtime::cachePolicyFromString(spec.cachePolicy)
                            .value_or(runtime::CachePolicy::kLru);
  options.prefetcherKind =
      runtime::prefetcherKindFromString(spec.prefetcherKind)
          .value_or(runtime::PrefetcherKind::kNone);
  options.prepare = spec.prepare == "none"
                        ? runtime::PrepareSource::kNone
                        : spec.prepare == "queue"
                              ? runtime::PrepareSource::kQueue
                              : runtime::PrepareSource::kPrefetcher;
  checkScenarioOptions(options, sink);
  return sink;
}

}  // namespace prtr::analyze
