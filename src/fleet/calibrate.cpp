#include "fleet/calibrate.hpp"

#include <algorithm>

#include "analyze/checks_fleet.hpp"
#include "hprc/chassis.hpp"
#include "util/error.hpp"

namespace prtr::fleet {
namespace {

/// One calibration run: `calls` invocations of function `fn` at `payload`.
runtime::ExecutionReport calibrationRun(const tasks::FunctionRegistry& registry,
                                        const runtime::ScenarioOptions& blade,
                                        std::size_t fn, util::Bytes payload,
                                        std::size_t calls, bool forceMiss) {
  tasks::Workload workload;
  workload.name = "calibrate/" + registry.at(fn).name;
  workload.calls.assign(calls, tasks::TaskCall{fn, payload});
  runtime::ScenarioOptions options = blade;
  options.forceMiss = forceMiss;
  return runtime::runScenario(registry, workload, options).prtr;
}

/// Per-call service time once the leading full configuration is excluded.
/// `resident` additionally excludes configuration stalls (the single warmup
/// partial load), leaving the pure hit-path service time; forced-miss runs
/// keep the stall — pricing the reload is their entire point.
std::int64_t perCallPs(const runtime::ExecutionReport& report, bool resident) {
  util::require(report.calls > 0, "calibrateBladeProfile: empty report");
  std::int64_t steady = (report.total - report.initialConfig).ps();
  if (resident) steady -= report.configStall.ps();
  return std::max<std::int64_t>(0, steady) /
         static_cast<std::int64_t>(report.calls);
}

std::uint64_t icapBytes(const runtime::ExecutionReport& report) {
  return report.metrics.counterOr("config.icap.bytes_written");
}

}  // namespace

std::int64_t BladeProfile::meanExecPs(std::uint64_t bytes) const noexcept {
  if (tasks.empty()) return 0;
  std::int64_t sum = 0;
  for (const TaskProfile& t : tasks) sum += t.execPs(bytes);
  return sum / static_cast<std::int64_t>(tasks.size());
}

std::int64_t BladeProfile::meanConfigPs() const noexcept {
  if (tasks.empty()) return 0;
  std::int64_t sum = 0;
  for (const TaskProfile& t : tasks) sum += t.configPs;
  return sum / static_cast<std::int64_t>(tasks.size());
}

BladeProfile calibrateBladeProfile(const tasks::FunctionRegistry& registry,
                                   const runtime::ScenarioOptions& scenario,
                                   util::Bytes payload) {
  util::require(payload.count() >= 2, "calibrateBladeProfile: payload too small");
  util::require(registry.size() > 0,
                "calibrateBladeProfile: empty function registry");
  constexpr std::size_t kCalls = 8;
  runtime::ScenarioOptions blade =
      hprc::bladeScenarioOptions(scenario, /*blade=*/0);
  // Calibration measures the healthy platform: fault injection and recovery
  // belong to the fleet's own blade model, not to the service baseline.
  blade.faults = fault::Plan{};
  blade.recovery = runtime::RecoveryPolicy{};
  const util::Bytes half{payload.count() / 2};

  BladeProfile profile;
  profile.calibrationPayload = payload;
  profile.tasks.reserve(registry.size());
  for (std::size_t fn = 0; fn < registry.size(); ++fn) {
    // Resident runs at two payloads split the fixed per-call overhead from
    // the per-byte slope; the forced-miss run prices the persona reload.
    const auto resident =
        calibrationRun(registry, blade, fn, payload, kCalls, /*forceMiss=*/false);
    const auto residentHalf =
        calibrationRun(registry, blade, fn, half, kCalls, /*forceMiss=*/false);
    const auto miss =
        calibrationRun(registry, blade, fn, payload, kCalls, /*forceMiss=*/true);

    const std::int64_t execFull = perCallPs(resident, /*resident=*/true);
    const std::int64_t execHalf = perCallPs(residentHalf, /*resident=*/true);
    TaskProfile t;
    t.execPsPerByte = std::max(
        0.0, static_cast<double>(execFull - execHalf) /
                 static_cast<double>(payload.count() - half.count()));
    t.execFixedPs = std::max<std::int64_t>(
        0, execFull - static_cast<std::int64_t>(
                          t.execPsPerByte * static_cast<double>(payload.count())));
    t.configPs = std::max<std::int64_t>(
        0, perCallPs(miss, /*resident=*/false) - execFull);
    // The forced-miss run reloads the persona once per call on top of the
    // resident run's single leading load; the byte delta over kCalls loads
    // is the per-load ICAP word count.
    const std::uint64_t deltaBytes =
        icapBytes(miss) > icapBytes(resident)
            ? icapBytes(miss) - icapBytes(resident)
            : 0;
    t.configWords = deltaBytes / 4 / kCalls;
    profile.tasks.push_back(t);
  }
  return profile;
}

BladeProfile calibrateBladeProfile(const tasks::FunctionRegistry& registry,
                                   const runtime::ScenarioOptions& scenario,
                                   util::Bytes payload,
                                   analyze::DiagnosticSink& sink) {
  BladeProfile profile = calibrateBladeProfile(registry, scenario, payload);
  analyze::checkBladeProfile(profile, sink);
  return profile;
}

}  // namespace prtr::fleet
