#pragma once
/// \file calibrate.hpp
/// Blade service-model calibration for the fleet simulator.
///
/// The fleet layer serves millions of requests, so it cannot afford a full
/// DES node per request; instead it runs the real blade simulator once per
/// hardware function — through runtime::runScenario with the same
/// hook-free, PRTR-only options hprc::runChassis hands its blades — and
/// distils each function into a TaskProfile: persona reconfiguration cost,
/// per-call fixed overhead, and the payload-proportional service slope.
/// Every fleet latency therefore traces back to the paper-calibrated
/// XD1 timing model, not to invented constants.

#include <cstdint>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "runtime/scenario.hpp"
#include "tasks/hwfunction.hpp"
#include "util/units.hpp"

namespace prtr::fleet {

/// Calibrated service model of one hardware function on one blade.
struct TaskProfile {
  /// Partial-reconfiguration cost of making this persona resident (the
  /// forced-miss per-call cost minus the resident per-call cost).
  std::int64_t configPs = 0;
  /// Payload-independent per-call overhead (control transfer, decision).
  std::int64_t execFixedPs = 0;
  /// Payload-proportional service slope (input + compute + output).
  double execPsPerByte = 0.0;
  /// Configuration words one persona load writes (repair-round pricing).
  std::uint64_t configWords = 0;

  /// Resident (hit) service time for a `bytes`-byte request.
  [[nodiscard]] std::int64_t execPs(std::uint64_t bytes) const noexcept {
    return execFixedPs +
           static_cast<std::int64_t>(execPsPerByte * static_cast<double>(bytes));
  }
};

/// The per-function profiles one blade exposes to the fleet front end.
struct BladeProfile {
  std::vector<TaskProfile> tasks;
  util::Bytes calibrationPayload{};

  [[nodiscard]] std::size_t taskCount() const noexcept { return tasks.size(); }

  /// Mean resident service time across tasks at `bytes` per request.
  [[nodiscard]] std::int64_t meanExecPs(std::uint64_t bytes) const noexcept;
  /// Mean persona-reconfiguration cost across tasks.
  [[nodiscard]] std::int64_t meanConfigPs() const noexcept;
};

/// Calibrates every function of `registry` under `scenario` blade semantics
/// (layout, basis, compression — hooks are stripped and sides forced to
/// PRTR-only exactly as hprc::runChassis does). Three scenario runs per
/// function: a resident run at `payload`, a resident run at half payload
/// (splitting fixed overhead from the per-byte slope), and a forced-miss
/// run pricing the persona reload and its ICAP word count.
[[nodiscard]] BladeProfile calibrateBladeProfile(
    const tasks::FunctionRegistry& registry,
    const runtime::ScenarioOptions& scenario, util::Bytes payload);

/// Same calibration, with analyze::checkBladeProfile run over the result:
/// a task whose costs all collapsed to zero (degenerate scenario, payload
/// too small to split the slope) lands in `sink` as FL017 instead of
/// silently simulating free requests.
[[nodiscard]] BladeProfile calibrateBladeProfile(
    const tasks::FunctionRegistry& registry,
    const runtime::ScenarioOptions& scenario, util::Bytes payload,
    analyze::DiagnosticSink& sink);

}  // namespace prtr::fleet
